#!/usr/bin/env python3
"""SIMD-kernel gate for the release-bench CI job.

Compares two bench --json documents from the same sweep, one forced to
--kernel scalar (the baseline) and one at --kernel auto (the candidate,
dispatching the widest ISA the runner supports), and fails unless the
SIMD path delivers its contract:

  1. Extraction is bit-identical at every isovalue: the canonical mesh
     CRC (--mesh-crc must be on in both runs), triangle count, active
     metacells, active cells, and cells classified all match exactly —
     a vectorized classify may never change the mesh or what the
     incremental pipeline visits.
  2. Classification got faster: classify throughput summed over the
     sweep (cells_classified / classify_seconds) must reach
     --min-speedup (default 1.3x) of the scalar run's. When the runner
     resolves --kernel auto to scalar (no SIMD available, or
     OOCISO_DISABLE_SIMD in the environment), the ratchet is skipped
     with a warning — identity above still gates.
  3. The measured completion sum does not regress beyond --max-delta
     (default 25%): classification is one phase among I/O, decode, and
     triangulation, and shared runners are noisy, so this is a guard
     rail, not the primary assertion.

Usage: check_kernel.py SCALAR.json AUTO.json [--min-speedup 1.3]
                                             [--max-delta 0.25]
"""

import argparse
import json
import sys

EPSILON = 1e-12  # classify_seconds is a summed CPU-clock reading


def load(path: str):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    queries = [q for run in doc["runs"] for q in run["queries"]]
    if not queries:
        raise SystemExit(f"{path}: no queries in document")
    return doc["setup"], doc["runs"], queries


def classify_throughput(queries):
    cells = sum(q["cells_classified"] for q in queries)
    seconds = sum(q["classify_seconds"] for q in queries)
    return cells, seconds, (cells / seconds if seconds > EPSILON else 0.0)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scalar", help="bench --json output at --kernel scalar")
    parser.add_argument("auto", help="bench --json output at --kernel auto")
    parser.add_argument("--min-speedup", type=float, default=1.3,
                        help="smallest allowed auto/scalar classify "
                             "throughput ratio (default 1.3x)")
    parser.add_argument("--max-delta", type=float, default=0.25,
                        help="largest allowed measured-completion regression "
                             "(default 25%%)")
    options = parser.parse_args()

    scalar_setup, _, scalar_queries = load(options.scalar)
    auto_setup, _, auto_queries = load(options.auto)

    failures = []
    if scalar_setup.get("kernel_isa") != "scalar":
        failures.append(f"baseline document ran kernel "
                        f"{scalar_setup.get('kernel_isa')!r}, expected "
                        f"'scalar'")
    for name, setup in (("baseline", scalar_setup), ("candidate", auto_setup)):
        if not setup.get("mesh_crc"):
            failures.append(f"{name} document was run without --mesh-crc — "
                            f"the identity gate needs the canonical hash")
    if len(scalar_queries) != len(auto_queries):
        raise SystemExit(f"query count mismatch: {len(scalar_queries)} vs "
                         f"{len(auto_queries)}")

    isas = sorted({q["kernel_isa"] for q in auto_queries})
    print(f"kernel gate: scalar -> auto ({'/'.join(isas)}), "
          f"{len(scalar_queries)} isovalues")

    print(f"{'isovalue':>9} {'cells':>12} {'scalar c/s':>13} "
          f"{'auto c/s':>13}  mesh")
    for s, a in zip(scalar_queries, auto_queries):
        if s["isovalue"] != a["isovalue"]:
            raise SystemExit(f"isovalue mismatch: {s['isovalue']} vs "
                             f"{a['isovalue']} — compare like sweeps")
        identical = all(
            s.get(field) == a.get(field)
            for field in ("mesh_crc", "triangles", "active_metacells",
                          "active_cells", "cells_classified"))
        print(f"{s['isovalue']:>9.1f} {s['cells_classified']:>12} "
              f"{s['classified_cells_per_s']:>13.3e} "
              f"{a['classified_cells_per_s']:>13.3e}  "
              f"{'same' if identical else 'DIFFERS'}")
        if "mesh_crc" not in s or "mesh_crc" not in a:
            failures.append(f"isovalue {s['isovalue']}: mesh_crc missing "
                            f"from a query record")
        elif not identical:
            failures.append(
                f"isovalue {s['isovalue']}: extraction differs "
                f"(crc {s.get('mesh_crc')} vs {a.get('mesh_crc')}, "
                f"triangles {s['triangles']} vs {a['triangles']}, "
                f"active_cells {s['active_cells']} vs {a['active_cells']}, "
                f"classified {s['cells_classified']} vs "
                f"{a['cells_classified']})")

    s_cells, s_seconds, s_rate = classify_throughput(scalar_queries)
    a_cells, a_seconds, a_rate = classify_throughput(auto_queries)
    if isas == ["scalar"]:
        print(f"WARNING: --kernel auto resolved to scalar on this runner; "
              f"skipping the {options.min_speedup:.2f}x classify ratchet",
              file=sys.stderr)
    else:
        speedup = a_rate / s_rate if s_rate > 0.0 else 0.0
        print(f"classify throughput: {s_cells} cells / {s_seconds:.4f}s = "
              f"{s_rate:.3e}/s scalar -> {a_cells} / {a_seconds:.4f}s = "
              f"{a_rate:.3e}/s auto ({speedup:.2f}x, floor "
              f"{options.min_speedup:.2f}x)")
        if s_seconds <= EPSILON or a_seconds <= EPSILON:
            failures.append("classify_seconds is zero in a sweep — the "
                            "classification timer is not running")
        elif speedup < options.min_speedup:
            failures.append(f"classify speedup {speedup:.2f}x below the "
                            f"{options.min_speedup:.2f}x floor")

    completion_scalar = sum(q["times"]["completion_s"]
                            for q in scalar_queries)
    completion_auto = sum(q["times"]["completion_s"] for q in auto_queries)
    delta = (completion_auto - completion_scalar) / completion_scalar
    print(f"completion sum: {completion_scalar:.4f}s -> "
          f"{completion_auto:.4f}s ({delta:+.2%}, budget "
          f"+{options.max_delta:.0%})")
    if delta > options.max_delta:
        failures.append(f"measured completion regressed {delta:.2%} "
                        f"(> {options.max_delta:.0%})")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
