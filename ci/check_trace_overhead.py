#!/usr/bin/env python3
"""Trace-overhead gate for the release-bench CI job.

Compares two bench --json documents — one sweep run without --trace, one
with — and fails when the summed per-query completion time (modeled I/O +
measured compute, min-of-reps de-noised by the bench itself) differs by
more than the allowed fraction. This pins the observability layer's
"tracing is cheap, and *disabled* tracing is free" promise at the whole-
bench level; the per-site guarantee (null Tracer* == one pointer test) is
covered by the unit suite.

Usage: check_trace_overhead.py BASELINE.json TRACED.json [--max-delta 0.05]
"""

import argparse
import json
import sys


def completion_sum(path: str) -> float:
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    total = 0.0
    queries = 0
    for run in doc["runs"]:
        for query in run["queries"]:
            total += query["times"]["completion_s"]
            queries += 1
    if queries == 0:
        raise SystemExit(f"{path}: no queries in document")
    return total


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="bench --json output without --trace")
    parser.add_argument("traced", help="bench --json output with --trace")
    parser.add_argument("--max-delta", type=float, default=0.05,
                        help="largest allowed |traced-base|/base (default 5%%)")
    options = parser.parse_args()

    base = completion_sum(options.baseline)
    traced = completion_sum(options.traced)
    delta = abs(traced - base) / base
    print(f"completion sum: baseline {base:.4f}s, traced {traced:.4f}s, "
          f"delta {delta:.2%} (budget {options.max_delta:.0%})")
    if delta > options.max_delta:
        print("FAIL: tracing overhead exceeds the budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
