#!/usr/bin/env python3
"""Progressive-refinement gate for the release-bench CI job.

Reads one bench_serve --json document produced with --levels > 1 (its
"progressive" section holds the per-isovalue A/B of a progressive query
against the cold flat query) and fails unless the hierarchy delivers its
contract:

  1. First-batch latency beats full resolution: at every isovalue the
     coarsest level's surface (first_batch_ms) lands strictly before the
     flat query's time-to-first-triangle (flat_wall_ms).
  2. The refined mesh is the flat mesh: every query reaches level 0
     (finest_level_completed == 0) and its canonical mesh CRC equals the
     flat baseline's exactly.
  3. Coarse preview I/O is cheap: the coarsest level's read_ops summed
     over the sweep stay at or below --max-coarse-fraction (default 10%)
     of the flat sweep's read_ops.
  4. Refinement is monotone: triangle counts never shrink from one
     completed level to the next, and no record batch was issued after a
     cancellation was observed (batches_after_cancel == 0).

Usage: check_progressive.py SERVE.json [--max-coarse-fraction 0.10]
"""

import argparse
import json
import sys


def load(path: str):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    progressive = doc.get("progressive")
    if progressive is None:
        raise SystemExit(f"{path}: no 'progressive' section — run "
                         f"bench_serve with --levels > 1 and --json")
    queries = progressive.get("queries", [])
    if not queries:
        raise SystemExit(f"{path}: progressive section has no queries")
    return doc, progressive, queries


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("serve", help="bench_serve --json output at "
                                      "--levels > 1")
    parser.add_argument("--max-coarse-fraction", type=float, default=0.10,
                        help="largest allowed coarsest-level share of the "
                             "flat sweep's read_ops (default 0.10)")
    options = parser.parse_args()

    _, progressive, queries = load(options.serve)
    print(f"progressive gate: --levels {progressive['levels_flag']} "
          f"({progressive['stored_coarse_levels']} stored coarse levels), "
          f"{len(queries)} isovalues")

    failures = []
    coarsest_ops = 0
    flat_ops = 0
    print(f"{'isovalue':>9} {'first (ms)':>11} {'flat (ms)':>10} "
          f"{'coarse ops':>11} {'flat ops':>9}  mesh")
    for q in queries:
        iso = q["isovalue"]
        coarsest_ops += q["coarsest_read_ops"]
        flat_ops += q["flat_read_ops"]
        print(f"{iso:>9.1f} {q['first_batch_ms']:>11.2f} "
              f"{q['flat_wall_ms']:>10.2f} {q['coarsest_read_ops']:>11} "
              f"{q['flat_read_ops']:>9}  "
              f"{'same' if q['crc_match'] else 'DIFFERS'}")
        if not q["first_batch_ms"] < q["flat_wall_ms"]:
            failures.append(
                f"isovalue {iso}: first batch took {q['first_batch_ms']:.2f} "
                f"ms, not below the flat query's {q['flat_wall_ms']:.2f} ms")
        if q["finest_level_completed"] != 0:
            failures.append(f"isovalue {iso}: refinement stopped at level "
                            f"{q['finest_level_completed']}, never reached "
                            f"full resolution")
        elif not q["crc_match"]:
            failures.append(
                f"isovalue {iso}: refined mesh crc {q['mesh_crc']} differs "
                f"from the flat baseline's {q['flat_mesh_crc']}")
        if q["first_triangles"] == 0:
            failures.append(f"isovalue {iso}: the coarse preview surface "
                            f"is empty")
        if q["batches_after_cancel"] != 0:
            failures.append(f"isovalue {iso}: {q['batches_after_cancel']} "
                            f"batches issued after a stop was observed")
        levels = q["levels"]
        for prev, cur in zip(levels, levels[1:]):
            if cur["triangles"] < prev["triangles"]:
                failures.append(
                    f"isovalue {iso}: triangles shrank refining level "
                    f"{prev['level']} -> {cur['level']} "
                    f"({prev['triangles']} -> {cur['triangles']})")

    fraction = coarsest_ops / flat_ops if flat_ops else float("inf")
    print(f"coarse preview I/O: {coarsest_ops} of {flat_ops} flat read_ops "
          f"({fraction:.2%}, ceiling {options.max_coarse_fraction:.0%})")
    if flat_ops == 0:
        failures.append("flat sweep recorded zero read_ops — the baseline "
                        "did not run")
    elif fraction > options.max_coarse_fraction:
        failures.append(f"coarsest-level read_ops are {fraction:.2%} of the "
                        f"flat sweep (> {options.max_coarse_fraction:.0%})")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
