#!/usr/bin/env python3
"""Compression gate for the release-bench CI job.

Compares two bench --json documents from the same sweep, one preprocessed
with --compression none (the baseline) and one with --compression lz, and
fails unless the compressed store delivers its designed win:

  1. Extraction is bit-identical at every isovalue: triangles and active
     metacells must match exactly — the codec layer serves the same raw
     address space, so a compressed store may never change the mesh.
  2. The store actually shrank: the lz run's compressed_bytes must be
     smaller than its brick_bytes by at least --min-ratio (default 1.2x).
     The bench volume is a smooth synthetic field, so byte-shuffled deltas
     compress well; a ratio collapse means the codec regressed.
  3. Device traffic shrank with it: physical bytes read and the modeled
     I/O time are strictly lower with lz summed over the sweep — the
     stream reads compressed extents and decodes on fetch, so less data
     crosses the (modeled) disk. Per isovalue this is reported but not
     gated: mid-range bricks of the synthetic volume are noise-like, their
     chunks escape to raw, and the shifted device layout can move a seek
     boundary by a hair in either direction. The sums are deterministic —
     no tolerance.
  4. The decode work is accounted: the lz sweep reports nonzero
     decode_cpu_seconds (nothing decodes for free) while the none sweep
     reports zero.
  5. The measured completion sum does not regress beyond --max-delta
     (default 25%): decode CPU trades against I/O, and both are noisy on
     shared runners, so this is a guard rail, not the primary assertion.

Usage: check_compression.py NONE.json LZ.json [--min-ratio 1.2]
                                              [--max-delta 0.25]
"""

import argparse
import json
import sys

EPSILON = 1e-9  # float-accumulation slack on the deterministic comparisons


def load(path: str):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    queries = [q for run in doc["runs"] for q in run["queries"]]
    if not queries:
        raise SystemExit(f"{path}: no queries in document")
    return doc["setup"], doc["runs"], queries


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("none", help="bench --json output at --compression none")
    parser.add_argument("lz", help="bench --json output at --compression lz")
    parser.add_argument("--min-ratio", type=float, default=1.2,
                        help="smallest allowed raw/encoded store ratio "
                             "(default 1.2x)")
    parser.add_argument("--max-delta", type=float, default=0.25,
                        help="largest allowed measured-completion regression "
                             "(default 25%%)")
    options = parser.parse_args()

    none_setup, none_runs, none_queries = load(options.none)
    lz_setup, lz_runs, lz_queries = load(options.lz)

    failures = []
    if none_setup.get("compression") != "none":
        failures.append(f"baseline document has compression "
                        f"{none_setup.get('compression')!r}, expected 'none'")
    if lz_setup.get("compression") != "lz":
        failures.append(f"candidate document has compression "
                        f"{lz_setup.get('compression')!r}, expected 'lz'")
    if len(none_queries) != len(lz_queries):
        raise SystemExit(f"query count mismatch: {len(none_queries)} vs "
                         f"{len(lz_queries)}")

    print(f"compression gate: none -> lz, {len(none_queries)} isovalues")
    for none_run, lz_run in zip(none_runs, lz_runs):
        raw = lz_run["brick_bytes"]
        encoded = lz_run["compressed_bytes"]
        ratio = raw / encoded if encoded else 1.0
        print(f"store ({lz_run['nodes']} nodes): {raw} raw -> {encoded} "
              f"encoded ({ratio:.2f}x, floor {options.min_ratio:.2f}x)")
        if none_run["compressed_bytes"] != none_run["brick_bytes"]:
            failures.append(f"none run wrote {none_run['compressed_bytes']} "
                            f"encoded bytes != {none_run['brick_bytes']} raw "
                            f"— the none codec must be a passthrough")
        if ratio < options.min_ratio:
            failures.append(f"lz store ratio {ratio:.2f}x below the "
                            f"{options.min_ratio:.2f}x floor")

    print(f"{'isovalue':>9} {'bytes@none':>12} {'bytes@lz':>12} "
          f"{'model@none':>11} {'model@lz':>11}  mesh")
    for n, z in zip(none_queries, lz_queries):
        if n["isovalue"] != z["isovalue"]:
            raise SystemExit(f"isovalue mismatch: {n['isovalue']} vs "
                             f"{z['isovalue']} — compare like sweeps")
        mesh_same = (n["triangles"] == z["triangles"] and
                     n["active_metacells"] == z["active_metacells"])
        nb, zb = n["io"]["bytes_read"], z["io"]["bytes_read"]
        nm = n["times"]["io_model_sum_s"]
        zm = z["times"]["io_model_sum_s"]
        print(f"{n['isovalue']:>9.1f} {nb:>12} {zb:>12} "
              f"{nm:>11.6f} {zm:>11.6f}  {'same' if mesh_same else 'DIFFERS'}")
        if not mesh_same:
            failures.append(
                f"isovalue {n['isovalue']}: extraction differs "
                f"(triangles {n['triangles']} vs {z['triangles']}, "
                f"active {n['active_metacells']} vs {z['active_metacells']})")

    bytes_none = sum(q["io"]["bytes_read"] for q in none_queries)
    bytes_lz = sum(q["io"]["bytes_read"] for q in lz_queries)
    print(f"physical bytes sum: {bytes_none} -> {bytes_lz} "
          f"({(bytes_lz - bytes_none) / bytes_none:+.2%})")
    if not bytes_lz < bytes_none:
        failures.append(f"physical bytes did not shrink over the sweep: "
                        f"{bytes_none} -> {bytes_lz}")

    model_none = sum(q["times"]["io_model_sum_s"] for q in none_queries)
    model_lz = sum(q["times"]["io_model_sum_s"] for q in lz_queries)
    print(f"modeled I/O sum: {model_none:.4f}s -> {model_lz:.4f}s "
          f"({(model_lz - model_none) / model_none:+.2%})")
    if not model_lz < model_none - EPSILON:
        failures.append(f"modeled I/O did not strictly decrease over the "
                        f"sweep: {model_none:.6f} -> {model_lz:.6f}")

    none_decode = sum(q["times"]["decode_cpu_seconds"] for q in none_queries)
    lz_decode = sum(q["times"]["decode_cpu_seconds"] for q in lz_queries)
    print(f"decode cpu sum: none {none_decode:.6f}s, lz {lz_decode:.6f}s")
    if none_decode > EPSILON:
        failures.append(f"none sweep charged decode cpu ({none_decode:.6f}s) "
                        f"— the passthrough codec must not decode")
    if not lz_decode > 0.0:
        failures.append("lz sweep charged no decode cpu — decode-on-fetch "
                        "is not running")

    completion_none = sum(q["times"]["completion_s"] for q in none_queries)
    completion_lz = sum(q["times"]["completion_s"] for q in lz_queries)
    delta = (completion_lz - completion_none) / completion_none
    print(f"completion sum: {completion_none:.4f}s -> {completion_lz:.4f}s "
          f"({delta:+.2%}, budget +{options.max_delta:.0%})")
    if delta > options.max_delta:
        failures.append(f"measured completion regressed {delta:.2%} "
                        f"(> {options.max_delta:.0%})")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
