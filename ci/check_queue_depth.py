#!/usr/bin/env python3
"""Queue-depth gate for the release-bench CI job.

Compares two bench --json documents from the same sweep run at different
--queue-depth settings (the baseline at depth 1, the candidate deeper) and
fails unless the async submission queue delivers its designed win:

  1. Device traffic is identical at every isovalue (read_ops, blocks,
     bytes, seeks, skip_blocks) — the elevator on an offset-monotone
     schedule must not change what the device does, only when the host
     pays turnaround.
  2. The modeled time (io_model_sum_s + turnaround_modeled_sum_s) never
     increases at any isovalue, and strictly decreases summed over the
     sweep: a primed queue can only remove dry submissions. This part is
     fully deterministic — no tolerance.
  3. The measured completion sum does not regress beyond --max-delta
     (default 5%): completion mixes the modeled win with thread-CPU
     phases that are noisy on shared runners, so this is a guard rail,
     not the primary assertion.

Usage: check_queue_depth.py BASELINE.json DEEPER.json [--max-delta 0.05]
"""

import argparse
import json
import sys

EPSILON = 1e-9  # float-accumulation slack on the deterministic comparisons


def load_queries(path: str):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    queries = [q for run in doc["runs"] for q in run["queries"]]
    if not queries:
        raise SystemExit(f"{path}: no queries in document")
    return doc["setup"], queries


def modeled_seconds(query) -> float:
    times = query["times"]
    return times["io_model_sum_s"] + times["turnaround_modeled_sum_s"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="bench --json output at the shallower depth")
    parser.add_argument("deeper", help="bench --json output at the deeper depth")
    parser.add_argument("--max-delta", type=float, default=0.05,
                        help="largest allowed measured-completion regression "
                             "(default 5%%)")
    options = parser.parse_args()

    base_setup, base = load_queries(options.baseline)
    deep_setup, deep = load_queries(options.deeper)

    failures = []
    base_depth = base_setup.get("queue_depth", 0)
    deep_depth = deep_setup.get("queue_depth", 0)
    if deep_depth <= base_depth:
        failures.append(f"deeper document has queue_depth {deep_depth}, "
                        f"baseline {base_depth} — nothing to gate")
    if len(base) != len(deep):
        raise SystemExit(f"query count mismatch: {len(base)} vs {len(deep)}")

    print(f"queue-depth gate: depth {base_depth} -> {deep_depth}, "
          f"{len(base)} isovalues")
    print(f"{'isovalue':>9} {'modeled@'+str(base_depth):>12} "
          f"{'modeled@'+str(deep_depth):>12} {'delta':>10}  io")
    for b, d in zip(base, deep):
        if b["isovalue"] != d["isovalue"]:
            raise SystemExit(f"isovalue mismatch: {b['isovalue']} vs "
                             f"{d['isovalue']} — compare like sweeps")
        io_same = b["io"] == d["io"]
        mb, md = modeled_seconds(b), modeled_seconds(d)
        print(f"{b['isovalue']:>9.1f} {mb:>12.6f} {md:>12.6f} "
              f"{md - mb:>+10.6f}  {'same' if io_same else 'DIFFERS'}")
        if not io_same:
            failures.append(f"isovalue {b['isovalue']}: device IoStats differ "
                            f"({b['io']} vs {d['io']})")
        if md > mb + EPSILON:
            failures.append(f"isovalue {b['isovalue']}: modeled time increased "
                            f"{mb:.6f} -> {md:.6f}")

    modeled_base = sum(modeled_seconds(q) for q in base)
    modeled_deep = sum(modeled_seconds(q) for q in deep)
    print(f"modeled sum: {modeled_base:.4f}s -> {modeled_deep:.4f}s "
          f"({(modeled_deep - modeled_base) / modeled_base:+.2%})")
    if not modeled_deep < modeled_base - EPSILON:
        failures.append(f"modeled sum did not strictly decrease: "
                        f"{modeled_base:.6f} -> {modeled_deep:.6f}")

    completion_base = sum(q["times"]["completion_s"] for q in base)
    completion_deep = sum(q["times"]["completion_s"] for q in deep)
    delta = (completion_deep - completion_base) / completion_base
    print(f"completion sum: {completion_base:.4f}s -> {completion_deep:.4f}s "
          f"({delta:+.2%}, budget +{options.max_delta:.0%})")
    if delta > options.max_delta:
        failures.append(f"measured completion regressed {delta:.2%} "
                        f"(> {options.max_delta:.0%})")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
