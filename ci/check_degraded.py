#!/usr/bin/env python3
"""Degraded-serving gate for the release-bench CI job.

Compares two bench_serve --json documents over the same replicated (k >= 2)
dataset: a healthy baseline and a chaos run where one node's store died
mid-sweep (--dead-node). Fails unless brick-granular failover delivered its
designed behavior:

  1. Every query completed, and per (pass, isovalue) the triangle and
     active-metacell counts match the healthy run exactly — degraded mode
     changes where bytes are read, never what is extracted. (The bench
     itself asserts full bit-identity of the meshes; the gate re-checks the
     summary counters end to end.)
  2. The chaos run is flagged: at least one pass reports degraded=true and
     hedged reads > 0, and the healthy run reports neither.
  3. The dead node's lost traffic spreads: against the healthy baseline's
     per-node served_read_ops, no single survivor absorbs more than
     1/(n-1) + --epsilon of the total re-routed read_ops.
  4. The degraded completion sum stays within --max-delta of healthy
     (default 100% — hedges charge real retries and backoff; this bounds
     the tail, it does not expect parity).

Usage: check_degraded.py HEALTHY.json DEGRADED.json
                         [--epsilon 0.25] [--max-delta 1.0]
"""

import argparse
import json
import sys


def load(path: str):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("bench") != "serve":
        raise SystemExit(f"{path}: not a bench_serve document")
    if not doc.get("passes"):
        raise SystemExit(f"{path}: no passes in document")
    return doc


def per_node_served(doc) -> list:
    nodes = int(doc["nodes"])
    served = [0] * nodes
    for bench_pass in doc["passes"]:
        for node, ops in enumerate(bench_pass["served_read_ops"]):
            served[node] += ops
    return served


def completion_sum(doc) -> float:
    return sum(q["times"]["completion_s"]
               for bench_pass in doc["passes"]
               for q in bench_pass["queries"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("healthy", help="bench_serve --json, no dead node")
    parser.add_argument("degraded", help="bench_serve --json with --dead-node")
    parser.add_argument("--epsilon", type=float, default=0.25,
                        help="slack over the ideal 1/(n-1) re-route share "
                             "(default 0.25)")
    parser.add_argument("--max-delta", type=float, default=1.0,
                        help="largest allowed degraded completion regression "
                             "(default 100%%)")
    options = parser.parse_args()

    healthy = load(options.healthy)
    degraded = load(options.degraded)

    failures = []
    for doc, path in ((healthy, options.healthy), (degraded, options.degraded)):
        if int(doc.get("replication", 1)) < 2:
            failures.append(f"{path}: replication {doc.get('replication')} "
                            f"< 2 — nothing to gate")
    dead_node = int(degraded.get("dead_node", -1))
    if int(healthy.get("dead_node", -1)) != -1:
        failures.append(f"{options.healthy}: baseline has a dead node")
    if dead_node < 0:
        failures.append(f"{options.degraded}: no --dead-node recorded")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    # 1. Completion + extraction equivalence per (pass, isovalue).
    if len(healthy["passes"]) != len(degraded["passes"]):
        raise SystemExit("pass count mismatch — compare like sweeps")
    for index, (hp, dp) in enumerate(zip(healthy["passes"],
                                         degraded["passes"])):
        if len(hp["queries"]) != len(dp["queries"]):
            raise SystemExit(f"pass {index}: query count mismatch")
        for hq, dq in zip(hp["queries"], dp["queries"]):
            if hq["isovalue"] != dq["isovalue"]:
                raise SystemExit(f"pass {index}: isovalue mismatch "
                                 f"{hq['isovalue']} vs {dq['isovalue']}")
            for key in ("triangles", "active_metacells"):
                if hq[key] != dq[key]:
                    failures.append(
                        f"pass {index} isovalue {hq['isovalue']}: {key} "
                        f"{dq[key]} != healthy {hq[key]}")

    # 2. Flags: chaos degraded + hedged, healthy clean.
    degraded_flagged = any(p["degraded"] for p in degraded["passes"])
    hedges = sum(q["hedges"] for p in degraded["passes"]
                 for q in p["queries"])
    healthy_hedges = sum(q["hedges"] for p in healthy["passes"]
                         for q in p["queries"])
    print(f"degraded run: dead node {dead_node}, {hedges} hedges, "
          f"flagged={degraded_flagged}")
    if not degraded_flagged:
        failures.append("no pass in the chaos run reports degraded=true")
    if hedges == 0:
        failures.append("chaos run reports zero hedged reads — the dead "
                        "node never died or routing never engaged")
    if any(p["degraded"] for p in healthy["passes"]) or healthy_hedges != 0:
        failures.append("healthy baseline reports degraded/hedged serving")

    # 3. Re-route spread over the survivors.
    served_healthy = per_node_served(healthy)
    served_degraded = per_node_served(degraded)
    if len(served_healthy) != len(served_degraded):
        raise SystemExit("node count mismatch between documents")
    survivors = [n for n in range(len(served_healthy)) if n != dead_node]
    extra = {n: max(served_degraded[n] - served_healthy[n], 0)
             for n in survivors}
    rerouted = sum(extra.values())
    print(f"served read_ops healthy:  {served_healthy}")
    print(f"served read_ops degraded: {served_degraded}")
    if rerouted > 0:
        bound = 1.0 / len(survivors) + options.epsilon
        for node in survivors:
            share = extra[node] / rerouted
            print(f"  survivor {node}: +{extra[node]} re-routed "
                  f"({share:.1%} of {rerouted}, bound {bound:.1%})")
            if share > bound:
                failures.append(
                    f"survivor {node} absorbed {share:.1%} of the re-routed "
                    f"read_ops (> 1/(n-1)+eps = {bound:.1%})")
    else:
        print("  no net re-routed read_ops (death landed after the reads); "
              "spread check skipped")

    # 4. Bounded degraded tail.
    healthy_sum = completion_sum(healthy)
    degraded_sum = completion_sum(degraded)
    delta = (degraded_sum - healthy_sum) / healthy_sum
    print(f"completion sum: {healthy_sum:.4f}s -> {degraded_sum:.4f}s "
          f"({delta:+.2%}, budget +{options.max_delta:.0%})")
    if delta > options.max_delta:
        failures.append(f"degraded completion regressed {delta:.2%} "
                        f"(> {options.max_delta:.0%})")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
