#include "util/cpu_features.h"

#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define OOCISO_X86 1
#include <cpuid.h>
#endif

namespace oociso::util {
namespace {

bool env_set(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

CpuFeatures probe() {
  CpuFeatures features;
#if defined(OOCISO_X86)
#if defined(__x86_64__) || defined(_M_X64)
  features.sse2 = true;  // architectural baseline on x86-64
#else
  {
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
      features.sse2 = (edx & (1u << 26)) != 0;
    }
  }
#endif
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  const bool have_leaf1 = __get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0;
  const bool osxsave = have_leaf1 && (ecx & (1u << 27)) != 0;
  const bool avx = have_leaf1 && (ecx & (1u << 28)) != 0;
  bool avx2_bit = false;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    avx2_bit = (ebx & (1u << 5)) != 0;
  }
  bool ymm_saved = false;
  if (osxsave) {
    // xgetbv via raw encoding: <immintrin.h>'s _xgetbv needs -mxsave, and
    // this translation unit must stay baseline-compilable.
    unsigned xcr0_lo = 0, xcr0_hi = 0;
    __asm__ volatile(".byte 0x0f, 0x01, 0xd0"
                     : "=a"(xcr0_lo), "=d"(xcr0_hi)
                     : "c"(0u));
    ymm_saved = (xcr0_lo & 0x6u) == 0x6u;  // XMM + YMM state enabled
  }
  features.avx2 = avx && avx2_bit && ymm_saved;
#endif
  if (env_set("OOCISO_DISABLE_SIMD")) {
    features.sse2 = false;
    features.avx2 = false;
  }
  if (env_set("OOCISO_DISABLE_AVX2")) {
    features.avx2 = false;
  }
  return features;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = probe();
  return features;
}

}  // namespace oociso::util
