#pragma once
// Deterministic random number generation.
//
// All synthetic-data generators in this repository derive their randomness
// from these engines so that every dataset, test, and benchmark is exactly
// reproducible from a (seed, stream) pair. std::mt19937 is deliberately
// avoided: its state is large and its seeding is easy to get subtly wrong;
// splitmix64/xoshiro256** are the standard small, high-quality choices.

#include <array>
#include <cstdint>

namespace oociso::util {

/// splitmix64 — used to expand a single 64-bit seed into independent streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x2006'0426'1515'0001ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent stream: same seed + different stream id gives an
  /// uncorrelated sequence (used for per-timestep / per-node generators).
  Xoshiro256(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t sm = seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    // 128-bit multiply-shift; rejection loop removes the bias.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace oociso::util
