#pragma once
// Streaming summary statistics and load-imbalance metrics.
//
// Load balance is the central claim of the paper's parallel scheme
// (Tables 6-7): for any isovalue the per-node active-metacell and triangle
// counts should be nearly equal. `imbalance()` quantifies that as
// (max - mean) / mean, the standard HPC definition (0 == perfectly balanced).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace oociso::util {

/// Welford's online mean/variance accumulator with min/max tracking.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// (max - mean) / mean over per-node work amounts; 0 means perfect balance.
/// Returns 0 for empty input or all-zero work.
template <typename T>
[[nodiscard]] double imbalance(std::span<const T> per_node_work) {
  if (per_node_work.empty()) return 0.0;
  double sum = 0.0;
  double max = 0.0;
  for (const T& w : per_node_work) {
    const auto value = static_cast<double>(w);
    sum += value;
    max = std::max(max, value);
  }
  const double mean = sum / static_cast<double>(per_node_work.size());
  if (mean <= 0.0) return 0.0;
  return (max - mean) / mean;
}

template <typename T>
[[nodiscard]] double imbalance(const std::vector<T>& per_node_work) {
  return imbalance(std::span<const T>(per_node_work));
}

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin. Used to characterize scalar-field and span-space
/// distributions of the synthetic datasets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double x) {
    const auto bins = static_cast<double>(counts_.size());
    auto bin = static_cast<std::int64_t>((x - lo_) / (hi_ - lo_) * bins);
    bin = std::clamp<std::int64_t>(bin, 0,
                                   static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::span<const std::uint64_t> counts() const {
    return counts_;
  }
  [[nodiscard]] double bin_lo(std::size_t bin) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                     static_cast<double>(counts_.size());
  }

  /// Fraction of samples in the given bin.
  [[nodiscard]] double fraction(std::size_t bin) const {
    return total_ ? static_cast<double>(counts_.at(bin)) /
                        static_cast<double>(total_)
                  : 0.0;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace oociso::util
