#pragma once
// Minimal recursive-descent JSON parser for the repository's *own* output
// (trace files, metrics dumps, bench --json documents): the observability
// tests re-read what the writers emit and assert invariants over it. Not a
// general-purpose library — it accepts strict JSON only (no comments, no
// trailing commas), keeps numbers as double, and throws std::runtime_error
// with a byte offset on malformed input. Objects preserve nothing beyond
// key -> value (duplicate keys: last one wins), which matches every
// document this repo writes.

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace oociso::util {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue, std::less<>>;

  JsonValue() = default;
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a)
      : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit JsonValue(Object o)
      : kind_(Kind::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }

  [[nodiscard]] bool as_bool() const {
    require(Kind::kBool, "bool");
    return bool_;
  }
  [[nodiscard]] double as_number() const {
    require(Kind::kNumber, "number");
    return number_;
  }
  [[nodiscard]] const std::string& as_string() const {
    require(Kind::kString, "string");
    return string_;
  }
  [[nodiscard]] const Array& as_array() const {
    require(Kind::kArray, "array");
    return *array_;
  }
  [[nodiscard]] const Object& as_object() const {
    require(Kind::kObject, "object");
    return *object_;
  }

  /// Object member access; throws std::runtime_error when absent or when
  /// this value is not an object.
  [[nodiscard]] const JsonValue& at(std::string_view key) const {
    const Object& members = as_object();
    const auto it = members.find(key);
    if (it == members.end()) {
      throw std::runtime_error("json: missing key '" + std::string(key) + "'");
    }
    return it->second;
  }
  /// True when this is an object containing `key`.
  [[nodiscard]] bool contains(std::string_view key) const {
    return kind_ == Kind::kObject && object_->find(key) != object_->end();
  }

 private:
  void require(Kind kind, const char* what) const {
    if (kind_ != kind) {
      throw std::runtime_error(std::string("json: value is not a ") + what);
    }
  }

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // shared_ptr keeps JsonValue copyable without deep copies; parsed
  // documents are read-only in practice.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("json: " + message + " at byte " +
                             std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default: return JsonValue(parse_number());
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (the writers only ever escape
          // control characters, so surrogate pairs are not handled).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number");
    }
    try {
      return std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("number out of range");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses one JSON document; throws std::runtime_error (with a byte
/// offset) on malformed input.
[[nodiscard]] inline JsonValue parse_json(std::string_view text) {
  return detail::JsonParser(text).parse_document();
}

}  // namespace oociso::util
