#include "util/cli.h"

#include <charconv>
#include <stdexcept>

namespace oociso::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg.empty()) {
      // "--" terminates flag parsing; remainder is positional.
      for (int j = i + 1; j < argc; ++j) positional_.emplace_back(argv[j]);
      break;
    }
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_.emplace(std::string(arg.substr(0, eq)),
                     std::string(arg.substr(eq + 1)));
      continue;
    }
    // "--name value" form, unless the next token is another flag or missing,
    // in which case the flag is boolean-true.
    if (i + 1 < argc && std::string_view(argv[i + 1]).starts_with("--") == false) {
      flags_.emplace(std::string(arg), std::string(argv[i + 1]));
      ++i;
    } else {
      flags_.emplace(std::string(arg), "true");
    }
  }
}

std::string CliArgs::get(std::string_view name, std::string_view fallback) const {
  const auto it = flags_.find(name);
  return it != flags_.end() ? it->second : std::string(fallback);
}

std::int64_t CliArgs::get_int(std::string_view name, std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::int64_t value = 0;
  const auto& text = it->second;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw UsageError("flag --" + std::string(name) +
                     " expects an integer, got '" + text + "'");
  }
  return value;
}

std::int64_t CliArgs::get_int_in(std::string_view name, std::int64_t fallback,
                                 std::int64_t min_value,
                                 std::int64_t max_value) const {
  const std::int64_t value = get_int(name, fallback);
  if (value < min_value || value > max_value) {
    throw UsageError("flag --" + std::string(name) + " expects a value in [" +
                     std::to_string(min_value) + ", " +
                     std::to_string(max_value) + "], got " +
                     std::to_string(value));
  }
  return value;
}

double CliArgs::get_double(std::string_view name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const UsageError&) {
    throw;
  } catch (const std::exception&) {
    throw UsageError("flag --" + std::string(name) + " expects a number, got '" +
                     it->second + "'");
  }
}

bool CliArgs::get_bool(std::string_view name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const auto& text = it->second;
  if (text == "true" || text == "1" || text == "yes" || text == "on") return true;
  if (text == "false" || text == "0" || text == "no" || text == "off") return false;
  throw UsageError("flag --" + std::string(name) + " expects a boolean, got '" +
                   text + "'");
}

bool CliArgs::has(std::string_view name) const {
  return flags_.find(name) != flags_.end();
}

void CliArgs::require_known(
    std::initializer_list<std::string_view> known) const {
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const std::string_view candidate : known) {
      if (name == candidate) {
        found = true;
        break;
      }
    }
    if (!found) throw UsageError("unknown flag --" + name);
  }
}

}  // namespace oociso::util
