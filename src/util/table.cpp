#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace oociso::util {

Table::Table(std::vector<std::string> headers, Align default_align)
    : headers_(std::move(headers)),
      aligns_(headers_.size(), default_align) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table requires at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row has " + std::to_string(cells.size()) +
                                " cells, expected " +
                                std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

void Table::set_align(std::size_t column, Align align) {
  aligns_.at(column) = align;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  if (!caption_.empty()) out << caption_ << '\n';

  auto emit_cell = [&](const std::string& text, std::size_t c) {
    const auto pad = widths[c] - text.size();
    if (aligns_[c] == Align::kRight) out << std::string(pad, ' ') << text;
    else out << text << std::string(pad, ' ');
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-');
      out << (c + 1 < widths.size() ? "+" : "");
    }
    out << '\n';
  };

  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << ' ';
    emit_cell(headers_[c], c);
    out << (c + 1 < headers_.size() ? " |" : " ");
  }
  out << '\n';
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
      continue;
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ';
      emit_cell(row[c], c);
      out << (c + 1 < row.size() ? " |" : " ");
    }
    out << '\n';
  }
  return out.str();
}

std::string Table::render_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << escape(headers_[c]) << (c + 1 < headers_.size() ? "," : "");
  }
  out << '\n';
  for (const auto& row : rows_) {
    if (row.empty()) continue;
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << escape(row[c]) << (c + 1 < row.size() ? "," : "");
    }
    out << '\n';
  }
  return out.str();
}

std::string fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string human_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B",   "KiB", "MiB",
                                           "GiB", "TiB", "PiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return std::to_string(bytes) + " B";
  return fixed(value, value < 10 ? 2 : 1) + " " + kUnits[unit];
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string result;
  result.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) result += ',';
    result += *it;
    ++count;
  }
  std::reverse(result.begin(), result.end());
  return result;
}

std::string human_seconds(double seconds) {
  if (seconds < 0.0) return "-" + human_seconds(-seconds);
  if (seconds < 1e-3) return fixed(seconds * 1e6, 1) + " us";
  if (seconds < 1.0) return fixed(seconds * 1e3, 1) + " ms";
  if (seconds < 120.0) return fixed(seconds, 2) + " s";
  return fixed(seconds / 60.0, 1) + " min";
}

}  // namespace oociso::util
