#pragma once
// Plain-text table formatter used by the benchmark harnesses to print the
// paper's tables in the same row/column layout the paper reports.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace oociso::util {

/// Column alignment within a table cell.
enum class Align { kLeft, kRight };

/// Builds and renders a fixed-column text table.
///
/// Usage:
///   Table t({"isovalue", "AMC", "triangles", "MTri/s"});
///   t.add_row({"70", "123456", "12.3M", "3.9"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 Align default_align = Align::kRight);

  /// Sets a caption rendered above the table (e.g. "Table 2: ...").
  void set_caption(std::string caption) { caption_ = std::move(caption); }

  /// Adds a data row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator row.
  void add_separator();

  /// Overrides alignment for one column.
  void set_align(std::size_t column, Align align);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

  /// Renders the table with a header rule and column padding.
  [[nodiscard]] std::string render() const;

  /// Renders as comma-separated values (headers first), for plotting.
  [[nodiscard]] std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
  std::vector<Align> aligns_;
  std::string caption_;
};

/// Formats with fixed decimals, e.g. fixed(3.14159, 2) == "3.14".
[[nodiscard]] std::string fixed(double value, int decimals);

/// Formats a byte count with binary units, e.g. "3.83 GiB", "6.2 KiB".
[[nodiscard]] std::string human_bytes(std::uint64_t bytes);

/// Formats a count with thousands separators, e.g. "5,592,802".
[[nodiscard]] std::string with_commas(std::uint64_t value);

/// Formats seconds adaptively ("412 ms", "3.21 s", "31.5 min").
[[nodiscard]] std::string human_seconds(double seconds);

}  // namespace oociso::util
