#pragma once
// Runtime CPU-feature probe for the SIMD kernel dispatch layer.
//
// The probe runs once (cached in a function-local static) and answers the
// only questions the extraction kernels ask: can this machine execute SSE2
// and AVX2 code? On x86-64 SSE2 is architectural baseline; AVX2 requires
// the cpuid leaf-7 feature bit AND an OS that saves the ymm state
// (OSXSAVE + XCR0 ymm bits), because a kernel that context-switches away
// the upper halves would corrupt results silently.
//
// Two environment variables gate the probe for testing the fallback paths
// deterministically on capable hardware (read once, at first probe):
//
//   OOCISO_DISABLE_SIMD=1   report sse2=false, avx2=false (scalar only)
//   OOCISO_DISABLE_AVX2=1   report avx2=false (sse2 kept)

namespace oociso::util {

struct CpuFeatures {
  bool sse2 = false;
  bool avx2 = false;
};

/// Probes once, caches forever. Thread-safe (C++ static init).
[[nodiscard]] const CpuFeatures& cpu_features();

}  // namespace oociso::util
