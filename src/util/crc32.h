#pragma once
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding every
// brick chunk and the bundle header against silent corruption.
//
// Implemented table-driven and incrementally: crc32_update() can be fed a
// stream of spans (the brick builder checksums each stripe buffer as it is
// written; the retrieval path re-checksums each chunk as it is read), and
// the one-shot crc32() wraps init/update/final for whole buffers. CRC32
// detects all single-bit and all burst errors up to 32 bits — exactly the
// flipped-bit / torn-transfer faults the fault model injects.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace oociso::util {

namespace detail {

consteval std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Starting state for an incremental CRC (the standard ~0 preset).
[[nodiscard]] constexpr std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

/// Folds `data` into a running CRC state.
[[nodiscard]] inline std::uint32_t crc32_update(
    std::uint32_t state, std::span<const std::byte> data) {
  for (const std::byte b : data) {
    state = (state >> 8) ^
            detail::kCrc32Table[(state ^ static_cast<std::uint32_t>(b)) & 0xFF];
  }
  return state;
}

/// Final xor; the value to store or compare.
[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a buffer.
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::byte> data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace oociso::util
