#pragma once
// RAII temporary directory, used by tests and benches for "local disk"
// backing files. Removed recursively on destruction.

#include <filesystem>
#include <string>

namespace oociso::util {

class TempDir {
 public:
  /// Creates a fresh directory under the system temp path with the given
  /// prefix; throws std::filesystem::filesystem_error on failure.
  explicit TempDir(const std::string& prefix = "oociso");

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) {
    other.path_.clear();
  }
  TempDir& operator=(TempDir&&) = delete;

  ~TempDir();

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  /// Convenience: path to a file inside the directory.
  [[nodiscard]] std::filesystem::path file(const std::string& name) const {
    return path_ / name;
  }

 private:
  std::filesystem::path path_;
};

}  // namespace oociso::util
