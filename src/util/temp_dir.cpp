#include "util/temp_dir.h"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <system_error>

namespace oociso::util {
namespace {

std::uint64_t next_unique_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TempDir::TempDir(const std::string& prefix) {
  const auto base = std::filesystem::temp_directory_path();
  // PID + process-wide counter keeps concurrent tests from colliding.
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto candidate = base / (prefix + "-" + std::to_string(::getpid()) + "-" +
                             std::to_string(next_unique_id()));
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec) && !ec) {
      path_ = std::move(candidate);
      return;
    }
  }
  throw std::filesystem::filesystem_error(
      "TempDir: could not create a unique directory", base,
      std::make_error_code(std::errc::file_exists));
}

TempDir::~TempDir() {
  if (path_.empty()) return;
  std::error_code ec;  // best-effort cleanup; never throw from a destructor
  std::filesystem::remove_all(path_, ec);
}

}  // namespace oociso::util
