#pragma once
// Minimal command-line flag parser shared by the benchmark harnesses and
// example programs. Flags use --name=value or --name value syntax; every
// flag has a default so all binaries run stand-alone with no arguments.

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace oociso::util {

/// A user-facing flag mistake (unknown flag, bad value): callers print the
/// message plus their usage text and exit 2, instead of the generic
/// error-exit path a programming error takes.
class UsageError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

class CliArgs {
 public:
  /// Parses argv; throws std::invalid_argument on malformed flags.
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] std::string get(std::string_view name,
                                std::string_view fallback) const;
  /// Typed getters throw UsageError on malformed values (non-numeric text,
  /// trailing garbage, overflow), so binaries surface the usage text and
  /// exit 2 instead of dying through the generic error path.
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;
  /// get_int plus an inclusive range check; out-of-range values are a
  /// UsageError naming the accepted interval. The preferred getter for
  /// flags that feed sizes and depths (a negative --queue-depth must not
  /// reach a std::size_t conversion).
  [[nodiscard]] std::int64_t get_int_in(std::string_view name,
                                        std::int64_t fallback,
                                        std::int64_t min_value,
                                        std::int64_t max_value) const;

  [[nodiscard]] bool has(std::string_view name) const;

  /// Throws UsageError if any parsed flag is not in `known` — call it with
  /// the full flag list after dispatching on the subcommand, so a typo
  /// (`--isovlaue`) fails loudly instead of silently running defaults.
  void require_known(std::initializer_list<std::string_view> known) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace oociso::util
