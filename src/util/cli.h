#pragma once
// Minimal command-line flag parser shared by the benchmark harnesses and
// example programs. Flags use --name=value or --name value syntax; every
// flag has a default so all binaries run stand-alone with no arguments.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace oociso::util {

class CliArgs {
 public:
  /// Parses argv; throws std::invalid_argument on malformed flags.
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] std::string get(std::string_view name,
                                std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

  [[nodiscard]] bool has(std::string_view name) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace oociso::util
