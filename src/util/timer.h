#pragma once
// Wall-clock timing utilities used by the benchmark harnesses and the
// per-node time ledgers. All durations are reported in seconds as double.

#include <ctime>

#include <chrono>
#include <cstdint>

namespace oociso::util {

/// Monotonic wall-clock stopwatch.
///
/// Started on construction; `restart()` resets the origin, `seconds()`
/// reports the elapsed time without stopping.
class WallTimer {
 public:
  using clock = std::chrono::steady_clock;

  WallTimer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] std::uint64_t nanoseconds() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  clock::time_point start_;
};

/// Per-thread CPU stopwatch (CLOCK_THREAD_CPUTIME_ID).
///
/// The per-node work phases of the simulated cluster are measured with this
/// clock rather than wall time: node programs run as concurrent threads that
/// may share physical cores, and wall time would charge each node for time
/// spent descheduled. Thread CPU time measures exactly the work the node
/// itself performed, which is what the per-node ledgers (and the paper's
/// per-node tables) need.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  void restart() { start_ = now(); }

  [[nodiscard]] double seconds() const { return now() - start_; }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }

  double start_;
};

/// Accumulates elapsed time across multiple start/stop windows.
/// Useful for separating phase costs (I/O vs triangulation vs rendering)
/// inside a single query.
class PhaseTimer {
 public:
  void start() { timer_.restart(); }
  void stop() { total_ += timer_.seconds(); }

  /// Adds externally-computed (e.g. modeled) time to this phase.
  void add(double seconds) { total_ += seconds; }

  void reset() { total_ = 0.0; }
  [[nodiscard]] double seconds() const { return total_; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
};

/// RAII guard that adds the scope's duration into a PhaseTimer.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseTimer& phase) : phase_(phase) { phase_.start(); }
  ~ScopedPhase() { phase_.stop(); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& phase_;
};

}  // namespace oociso::util
