#pragma once
// Process-wide metrics primitives: named counters, gauges, and fixed-bucket
// histograms behind a registry with snapshot/export.
//
// The hot-path contract is "lock-cheap": a caller resolves a metric by name
// once (one mutex acquisition on the registry) and then updates it with
// relaxed atomics — no lock, no allocation, no string hashing per event.
// Every instrumented subsystem (block devices, the shared buffer pool, the
// retrieval stream, the query engine, the serve admission gate) caches the
// returned references at attach time, so a disabled registry costs one null
// check per site and an enabled one costs an atomic add.
//
// The registry is the reconciliation anchor for the scattered per-query
// ledgers: CacheCounters are *derived from* the pool's obs::Counters (one
// set of atomics, two views), and TimeLedger / FaultReport totals are
// mirrored into histograms and counters that tests reconcile against the
// per-query reports (see tests/obs_test.cpp and DESIGN §11).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace oociso::obs {

/// Monotone event counter. Thread-safe; relaxed atomics (counters are
/// totals, not synchronization).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level with a high-water mark (e.g. queries in flight).
class Gauge {
 public:
  /// Adds `delta` (may be negative) and returns the new level; the
  /// high-water mark tracks the largest level ever reached.
  std::int64_t add(std::int64_t delta) {
    const std::int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (now > seen &&
           !max_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
    return now;
  }
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max_value() const {
    return max_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram (cumulative-style buckets plus count and sum).
/// Bucket i counts observations <= bounds[i]; one implicit overflow bucket
/// catches the rest. Bounds are fixed at creation — observation is a binary
/// search over a small array plus two relaxed atomic adds.
class Histogram {
 public:
  /// `bounds` must be strictly ascending; empty picks the default latency
  /// scale (1 µs .. 10 s, decades).
  explicit Histogram(std::span<const double> bounds = {});

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Sum of observed values (exact within double accumulation).
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, one entry per bound plus the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every metric in a registry, for export and for
/// identity tests (`hits + misses + waits == fetches` and friends).
struct MetricsSnapshot {
  struct HistogramData {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::pair<std::int64_t, std::int64_t>>
      gauges;  ///< value, high-water mark
  std::map<std::string, HistogramData> histograms;

  /// Counter value by name; 0 when absent (absent == never incremented).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  /// Histogram sum by name; 0.0 when absent.
  [[nodiscard]] double histogram_sum(std::string_view name) const;

  /// Standalone JSON document ({"counters":{...},"gauges":{...},
  /// "histograms":{...}}).
  [[nodiscard]] std::string to_json() const;
};

/// Named metric store. resolve-once / update-lock-free; the registry owns
/// the metrics, and references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only on first creation; later lookups return the
  /// existing histogram unchanged.
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::string to_json() const { return snapshot().to_json(); }
  /// Writes to_json() to `path`; throws std::runtime_error on failure.
  void save(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace oociso::obs
