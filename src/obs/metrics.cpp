#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace oociso::obs {
namespace {

/// Default latency scale: decades from 1 µs to 10 s. Wide enough for a
/// single 4 KiB pread and for a whole degraded-mode query.
constexpr double kDefaultBounds[] = {1e-6, 1e-5, 1e-4, 1e-3,
                                     1e-2, 1e-1, 1.0,  10.0};

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string double_text(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.empty()
                  ? std::vector<double>(std::begin(kDefaultBounds),
                                        std::end(kDefaultBounds))
                  : std::vector<double>(bounds.begin(), bounds.end())) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must be ascending");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it != counters.end() ? it->second : 0;
}

double MetricsSnapshot::histogram_sum(std::string_view name) const {
  const auto it = histograms.find(std::string(name));
  return it != histograms.end() ? it->second.sum : 0.0;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ":{\"value\":" + std::to_string(value.first) +
           ",\"max\":" + std::to_string(value.second) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, data] : histograms) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ":{\"count\":" + std::to_string(data.count) +
           ",\"sum\":" + double_text(data.sum) + ",\"buckets\":[";
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"le\":";
      out += i < data.bounds.size() ? double_text(data.bounds[i])
                                    : std::string("\"inf\"");
      out += ",\"count\":" + std::to_string(data.buckets[i]) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  const std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>(bounds))
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name,
                        std::make_pair(gauge->value(), gauge->max_value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.count = histogram->count();
    data.sum = histogram->sum();
    data.bounds = histogram->bounds();
    data.buckets = histogram->bucket_counts();
    snap.histograms.emplace(name, std::move(data));
  }
  return snap;
}

void MetricsRegistry::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("MetricsRegistry: cannot write " + path);
  }
  out << to_json() << '\n';
  if (!out) {
    throw std::runtime_error("MetricsRegistry: short write to " + path);
  }
}

}  // namespace oociso::obs
