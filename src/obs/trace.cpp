#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace oociso::obs {
namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string double_text(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void append_kv(std::string& body, std::string_view key,
               std::string_view rendered_value) {
  if (!body.empty()) body += ',';
  append_escaped(body, key);
  body += ':';
  body += rendered_value;
}

}  // namespace

ArgsBuilder& ArgsBuilder::add(std::string_view key, std::uint64_t value) {
  append_kv(body_, key, std::to_string(value));
  return *this;
}

ArgsBuilder& ArgsBuilder::add(std::string_view key, double value) {
  append_kv(body_, key, double_text(value));
  return *this;
}

ArgsBuilder& ArgsBuilder::add(std::string_view key, std::string_view value) {
  std::string rendered;
  append_escaped(rendered, value);
  append_kv(body_, key, rendered);
  return *this;
}

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void Tracer::complete(std::string name, std::uint32_t pid, std::uint32_t tid,
                      std::uint64_t ts_us, std::uint64_t dur_us,
                      std::string args) {
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.pid = pid;
  event.tid = tid;
  event.args = std::move(args);
  const std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::instant(std::string name, std::uint32_t pid, std::uint32_t tid,
                     std::string args) {
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'i';
  event.ts_us = now_us();
  event.pid = pid;
  event.tid = tid;
  event.args = std::move(args);
  const std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::counter(std::string name, std::uint32_t pid, double value) {
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'C';
  event.ts_us = now_us();
  event.pid = pid;
  event.args = ArgsBuilder().add("value", value).str();
  const std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::name_process(std::uint32_t pid, std::string_view name) {
  TraceEvent event;
  event.name = "process_name";
  event.phase = 'M';
  event.pid = pid;
  event.args = ArgsBuilder().add("name", name).str();
  const std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::name_thread(std::uint32_t pid, std::uint32_t tid,
                         std::string_view name) {
  TraceEvent event;
  event.name = "thread_name";
  event.phase = 'M';
  event.pid = pid;
  event.tid = tid;
  event.args = ArgsBuilder().add("name", name).str();
  const std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

std::size_t Tracer::event_count() const {
  const std::lock_guard lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  const std::lock_guard lock(mutex_);
  return events_;
}

std::int64_t Tracer::open_spans() const {
  return open_spans_.load(std::memory_order_relaxed);
}

std::string Tracer::to_json() const {
  const std::lock_guard lock(mutex_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_escaped(out, event.name);
    out += ",\"ph\":\"";
    out += event.phase;
    out += "\",\"cat\":\"oociso\",\"ts\":" + std::to_string(event.ts_us);
    if (event.phase == 'X') {
      out += ",\"dur\":" + std::to_string(event.dur_us);
    }
    if (event.phase == 'i') out += ",\"s\":\"t\"";
    out += ",\"pid\":" + std::to_string(event.pid) +
           ",\"tid\":" + std::to_string(event.tid);
    if (!event.args.empty()) out += ",\"args\":{" + event.args + "}";
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void Tracer::write(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("Tracer: cannot write " + path.string());
  }
  out << to_json() << '\n';
  if (!out) {
    throw std::runtime_error("Tracer: short write to " + path.string());
  }
}

Span::Span(Tracer* tracer, std::string_view name, std::uint32_t pid,
           std::uint32_t tid)
    : tracer_(tracer), name_(name), pid_(pid), tid_(tid) {
  if (tracer_ == nullptr) return;
  start_us_ = tracer_->now_us();
  tracer_->open_spans_.fetch_add(1, std::memory_order_relaxed);
}

void Span::arg(std::string_view key, std::uint64_t value) {
  if (tracer_ == nullptr) return;
  append_kv(args_, key, std::to_string(value));
}

void Span::arg(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  append_kv(args_, key, double_text(value));
}

void Span::arg(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  std::string rendered;
  append_escaped(rendered, value);
  append_kv(args_, key, rendered);
}

void Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = std::exchange(tracer_, nullptr);
  const std::uint64_t end_us = tracer->now_us();
  tracer->complete(std::move(name_), pid_, tid_, start_us_,
                   end_us - start_us_, std::move(args_));
  tracer->open_spans_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace oociso::obs
