#pragma once
// Chrome trace_event tracing for the query hot path.
//
// A Tracer collects timestamped events — RAII spans ('X' complete events),
// instants, and counters — and writes them as the Chrome/Perfetto JSON
// format (chrome://tracing, https://ui.perfetto.dev), so a serve run or a
// bench sweep becomes a zoomable per-query, per-node timeline instead of a
// table of totals.
//
// Track model. Chrome renders one horizontal lane per (pid, tid) pair:
//   * pid is the *query id* — every admitted query gets its own process
//     group, so concurrent serve traffic separates visually and per-query
//     span totals can be summed mechanically (tests do exactly that);
//   * tid encodes (node, lane): each simulated cluster node contributes a
//     compute lane (triangulation, rendering) and an I/O lane (device
//     reads, scheduling), because the pipelined engines genuinely run those
//     on two threads and their spans legitimately overlap in time.
//
// Overhead. Tracing is off when every instrumented site holds a null
// Tracer* — the spans compile to a pointer test and the hot path stays
// untouched (the CI release-bench job pins this with a <5% modeled-time
// delta check). When on, each span is one mutex-guarded vector append at
// destruction; timestamps come from the steady clock and are relative to
// the tracer's construction.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace oociso::obs {

/// Lanes multiplexed into the Chrome tid per cluster node (see track()).
enum class Lane : std::uint32_t {
  kCompute = 0,    ///< decode + marching cubes + rendering (node thread)
  kIo = 1,         ///< device reads / schedule (producer thread)
  kAdmission = 2,  ///< serve admission queue wait
  kControl = 3,    ///< per-query control: compositing, plan, merge
};

/// Chrome tid for a node's lane. Lanes are interleaved per node so a trace
/// sorted by tid shows node 0 compute, node 0 io, node 1 compute, ...
[[nodiscard]] constexpr std::uint32_t track(std::size_t node, Lane lane) {
  return static_cast<std::uint32_t>(node) * 4u +
         static_cast<std::uint32_t>(lane);
}

/// One buffered trace event (Chrome trace_event fields).
struct TraceEvent {
  std::string name;
  char phase = 'X';       ///< 'X' complete, 'i' instant, 'C' counter, 'M' meta
  std::uint64_t ts_us = 0;   ///< microseconds since tracer construction
  std::uint64_t dur_us = 0;  ///< 'X' only
  std::uint32_t pid = 0;     ///< query id
  std::uint32_t tid = 0;     ///< track(node, lane)
  std::string args;          ///< pre-rendered JSON object body, may be empty
};

class Span;

/// Thread-safe trace-event buffer with Chrome JSON export.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Microseconds since construction (the ts timebase of every event).
  [[nodiscard]] std::uint64_t now_us() const;

  /// Emits a complete ('X') event with explicit timing.
  void complete(std::string name, std::uint32_t pid, std::uint32_t tid,
                std::uint64_t ts_us, std::uint64_t dur_us,
                std::string args = {});
  /// Emits an instant ('i') event at the current time.
  void instant(std::string name, std::uint32_t pid, std::uint32_t tid,
               std::string args = {});
  /// Emits a counter ('C') sample at the current time.
  void counter(std::string name, std::uint32_t pid, double value);
  /// Names a pid's process group ("query 3 iso=150") in the Chrome UI.
  void name_process(std::uint32_t pid, std::string_view name);
  /// Names a (pid, tid) track ("node 2 io") in the Chrome UI.
  void name_thread(std::uint32_t pid, std::uint32_t tid,
                   std::string_view name);

  [[nodiscard]] std::size_t event_count() const;
  /// Copy of the buffered events (tests introspect these directly).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Live RAII spans not yet emitted; 0 once every span has closed — the
  /// begin/end-balance invariant the obs tests pin.
  [[nodiscard]] std::int64_t open_spans() const;

  /// The full Chrome JSON document:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`; throws std::runtime_error on failure.
  void write(const std::filesystem::path& path) const;

 private:
  friend class Span;
  const std::chrono::steady_clock::time_point origin_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::atomic<std::int64_t> open_spans_{0};
};

/// RAII span: emits one 'X' event covering construction → destruction (or
/// end()). Null-tracer spans are no-ops, which is how tracing stays free
/// when disabled. Args attached via arg() land in the event's "args" map.
class Span {
 public:
  Span(Tracer* tracer, std::string_view name, std::uint32_t pid,
       std::uint32_t tid);
  ~Span() { end(); }

  Span(Span&& other) noexcept
      : tracer_(std::exchange(other.tracer_, nullptr)),
        name_(std::move(other.name_)),
        pid_(other.pid_),
        tid_(other.tid_),
        start_us_(other.start_us_),
        args_(std::move(other.args_)) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span& operator=(Span&&) = delete;

  /// Attaches "key": value to the span's args (active spans only).
  void arg(std::string_view key, std::uint64_t value);
  void arg(std::string_view key, double value);
  void arg(std::string_view key, std::string_view value);

  /// Emits the event now; further arg()/end() calls are no-ops.
  void end();

 private:
  Tracer* tracer_ = nullptr;
  std::string name_;
  std::uint32_t pid_ = 0;
  std::uint32_t tid_ = 0;
  std::uint64_t start_us_ = 0;
  std::string args_;
};

/// Renders `"key":<value>` fragments for TraceEvent::args / Span::arg.
/// Exposed so instrumentation sites can pre-build args for instants.
class ArgsBuilder {
 public:
  ArgsBuilder& add(std::string_view key, std::uint64_t value);
  ArgsBuilder& add(std::string_view key, double value);
  ArgsBuilder& add(std::string_view key, std::string_view value);
  /// The accumulated object body (no braces), movable into TraceEvent.
  [[nodiscard]] std::string str() && { return std::move(body_); }
  [[nodiscard]] const std::string& str() const& { return body_; }

 private:
  std::string body_;
};

}  // namespace oociso::obs
