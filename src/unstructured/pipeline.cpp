#include "unstructured/pipeline.h"

#include <optional>
#include <utility>

#include "index/retrieval_stream.h"
#include "parallel/pipeline.h"
#include "render/camera.h"
#include "render/rasterizer.h"
#include "util/timer.h"

namespace oociso::unstructured {

TetPreprocessResult preprocess_tets(const TetMesh& mesh,
                                    parallel::Cluster& cluster,
                                    std::uint32_t tets_per_cluster) {
  const TetClusterSource source(mesh, tets_per_cluster);
  const auto infos = source.scan();
  auto devices = cluster.disk_pointers();
  index::CompactTreeBuilder::Result built =
      index::CompactTreeBuilder::build(infos, source, devices);

  return TetPreprocessResult{
      .trees = std::move(built.trees),
      .tets_per_cluster = tets_per_cluster,
      .total_clusters = source.total_clusters(),
      .kept_clusters = infos.size(),
      .bytes_written = built.bytes_written,
  };
}

TetQueryReport query_tets(parallel::Cluster& cluster,
                          const TetPreprocessResult& prep,
                          core::ValueKey isovalue,
                          const TetQueryOptions& options) {
  if (prep.trees.size() != cluster.size()) {
    throw std::invalid_argument(
        "query_tets: preprocess node count differs from cluster");
  }
  const std::size_t p = cluster.size();
  TetQueryReport report;
  report.isovalue = isovalue;
  report.kernel_isa = extract::kernel::resolve(options.kernel.isa);
  const extract::kernel::ClassifyRowFn classify =
      extract::kernel::detail::classify_fn(report.kernel_isa);
  report.nodes.resize(p);
  report.times.per_node.resize(p);

  // The generator meshes the unit cube; frame it.
  const render::Camera camera = render::Camera::framing_volume(
      1.0f, 1.0f, 1.0f, options.image_size, options.image_size);

  std::vector<extract::TriangleSoup> soups(p);
  std::vector<render::Framebuffer> frames;
  frames.reserve(p);
  for (std::size_t i = 0; i < p; ++i) {
    frames.emplace_back(options.image_size, options.image_size);
  }

  cluster.run([&](std::size_t node) {
    TetNodeReport& node_report = report.nodes[node];
    parallel::TimeLedger& ledger = report.times.per_node[node];
    io::BlockDevice& disk = cluster.disk(node);
    const index::CompactIntervalTree& tree = prep.trees[node];

    // Same split as the structured engine: the stream times device reads
    // with a wall clock on the producer side; this thread only decodes and
    // runs marching tets, timed with the thread-CPU clock.
    const io::IoStats io_before = disk.stats();
    index::QueryPlan plan = tree.plan(isovalue);
    // Pre-size from the plan: roughly one triangle per planned tet.
    soups[node].reserve(static_cast<std::size_t>(plan.total_records() *
                                                 prep.tets_per_cluster));
    index::RetrievalStream stream(
        std::move(plan), tree.scalar_kind(), tree.record_size(), disk, {},
        index::BrickDirectory{tree.bricks(), tree.chunk_crcs()});

    std::vector<double> io_batches;
    std::vector<double> cpu_batches;
    io_batches.reserve(stream.schedule().items.size() + 8);
    cpu_batches.reserve(stream.schedule().items.size() + 8);

    double cpu_seconds = 0.0;
    util::ThreadCpuTimer cpu_timer;
    // Batched classification scratch: the cluster's 4×N corner values
    // contiguous for one SIMD grade, a 4-bit inside-group per tet (groups
    // never straddle a word: 4 divides 64).
    std::vector<float> corner_values;
    std::vector<std::uint64_t> corner_bits;
    auto consume = [&](const index::RecordBatch& batch) {
      cpu_timer.restart();
      for (std::size_t r = 0; r < batch.record_count; ++r) {
        ++node_report.active_clusters;
        const auto tets =
            decode_cluster(batch.record(r), prep.tets_per_cluster);
        corner_values.resize(tets.size() * 4);
        for (std::size_t t = 0; t < tets.size(); ++t) {
          const auto& values = tets[t].values;
          corner_values[4 * t] = values[0];
          corner_values[4 * t + 1] = values[1];
          corner_values[4 * t + 2] = values[2];
          corner_values[4 * t + 3] = values[3];
        }
        corner_bits.resize((corner_values.size() + 63) / 64);
        if (!corner_values.empty()) {
          classify(corner_values.data(), corner_values.size(), isovalue,
                   corner_bits.data());
        }
        for (std::size_t t = 0; t < tets.size(); ++t) {
          const std::size_t bit = 4 * t;
          const unsigned mask = static_cast<unsigned>(
              (corner_bits[bit >> 6] >> (bit & 63)) & 0xFu);
          if (mask == 0 || mask == 0xFu) continue;
          node_report.triangles += triangulate_tet_masked(
              tets[t].corners, tets[t].values, mask, isovalue, soups[node]);
        }
      }
      const double batch_cpu = cpu_timer.seconds();
      cpu_seconds += batch_cpu;
      io_batches.push_back(cluster.disk_seconds(batch.io));
      cpu_batches.push_back(batch_cpu);
    };

    if (options.overlap_io_compute) {
      parallel::produce_consume<index::RecordBatch>(
          options.readahead_batches,
          [&](auto&& push) {
            while (std::optional<index::RecordBatch> batch = stream.next()) {
              if (!push(std::move(*batch))) break;
            }
          },
          consume);
    } else {
      while (std::optional<index::RecordBatch> batch = stream.next()) {
        consume(*batch);
      }
    }

    node_report.cpu_seconds = cpu_seconds;
    node_report.io_model_seconds =
        cluster.disk_seconds(disk.stats().since(io_before));
    node_report.io_wall_seconds = stream.io_wall_seconds();

    if (options.overlap_io_compute) {
      ledger.add_extraction_pipelined(io_batches, cpu_batches,
                                      options.readahead_batches);
      node_report.overlap_saved_seconds = ledger.overlap_saved();
    } else {
      ledger.add(parallel::Phase::kAmcRetrieval, node_report.io_model_seconds);
      ledger.add(parallel::Phase::kTriangulation, node_report.cpu_seconds);
    }

    if (options.render) {
      util::ThreadCpuTimer render_timer;
      render::Rasterizer rasterizer;
      rasterizer.draw(soups[node], camera, frames[node]);
      node_report.render_seconds = render_timer.seconds();
      ledger.add(parallel::Phase::kRendering, node_report.render_seconds);
    }
  });

  if (options.render) {
    compositing::CompositeResult composite = compositing::binary_swap(frames);
    const double network_seconds = cluster.network_seconds(
        composite.traffic.rounds, composite.traffic.max_node_bytes);
    for (auto& ledger : report.times.per_node) {
      ledger.add(parallel::Phase::kCompositing, network_seconds);
    }
    if (options.keep_image) report.image = std::move(composite.image);
  }

  if (options.keep_triangles) {
    extract::TriangleSoup merged;
    for (const auto& soup : soups) merged.append(soup);
    report.triangles_out = std::move(merged);
  }
  return report;
}

}  // namespace oociso::unstructured
