#pragma once
// Tet clusters: the unstructured analog of metacells.
//
// The index layer never looks inside a record — it only needs each unit's
// (vmin, vmax) interval and a fixed record size. For unstructured grids the
// unit is a *cluster* of spatially neighboring tets: tets are ordered by
// the Morton code of their centroids (so clusters are compact in space,
// like the metacells' subcubes) and chunked into fixed-size groups.
//
// Record layout (f32 scalars, fixed size):
//   u32   cluster id
//   f32   vmin of the cluster            (the Case-2 stop field)
//   tets_per_cluster x 4 vertices x (x, y, z, value) f32
// The final cluster is padded with NaN-valued degenerate tets, which can
// never produce geometry for any isovalue.

#include <cstdint>
#include <vector>

#include "metacell/source.h"
#include "unstructured/tet_mesh.h"

namespace oociso::unstructured {

/// One tet decoded from a cluster record.
struct PackedTet {
  std::array<core::Vec3, 4> corners;
  std::array<float, 4> values;
};

/// MetacellSource over a tet mesh; drives CompactTreeBuilder unchanged.
class TetClusterSource final : public metacell::MetacellSource {
 public:
  /// Clusters `mesh` (which must outlive the source). `tets_per_cluster`
  /// sizes the record; 11 tets ~ 709 bytes, in the paper's metacell range.
  TetClusterSource(const TetMesh& mesh, std::uint32_t tets_per_cluster = 11);

  [[nodiscard]] const metacell::MetacellGeometry& geometry() const override {
    return placeholder_geometry_;  // structured-only concept; see record_size
  }
  [[nodiscard]] core::ScalarKind kind() const override {
    return core::ScalarKind::kF32;
  }
  [[nodiscard]] std::vector<metacell::MetacellInfo> scan() const override;
  void encode(std::uint32_t id, std::vector<std::byte>& out) const override;
  [[nodiscard]] std::size_t record_size() const override;

  [[nodiscard]] std::uint32_t tets_per_cluster() const {
    return tets_per_cluster_;
  }
  [[nodiscard]] std::uint32_t cluster_count() const {
    return static_cast<std::uint32_t>(cluster_infos_.size());
  }

  /// Tets of one cluster (mesh indices, Morton order).
  [[nodiscard]] std::span<const std::uint32_t> cluster_tets(
      std::uint32_t id) const;

  /// Clusters before degenerate culling (ceil(tets / arity)).
  [[nodiscard]] std::uint32_t total_clusters() const {
    return cluster_count_total_;
  }

 private:
  [[nodiscard]] std::span<const std::uint32_t> cluster_tets_internal(
      std::uint32_t id) const;

  const TetMesh& mesh_;
  std::uint32_t tets_per_cluster_;
  std::vector<std::uint32_t> order_;  ///< tet indices in Morton order
  std::vector<metacell::MetacellInfo> cluster_infos_;
  std::uint32_t cluster_count_total_ = 0;
  metacell::MetacellGeometry placeholder_geometry_;
};

/// Record size for a given cluster arity.
[[nodiscard]] std::size_t cluster_record_size(std::uint32_t tets_per_cluster);

/// Decodes a cluster record; padding tets are skipped. Throws
/// std::runtime_error on size mismatch.
[[nodiscard]] std::vector<PackedTet> decode_cluster(
    std::span<const std::byte> record, std::uint32_t tets_per_cluster);

/// Morton code (10 bits per axis) of a point in the unit cube; exposed for
/// tests.
[[nodiscard]] std::uint32_t morton_code(const core::Vec3& p);

}  // namespace oociso::unstructured
