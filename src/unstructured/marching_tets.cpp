#include "unstructured/marching_tets.h"

#include <cmath>

namespace oociso::unstructured {
namespace {

bool position_less(const core::Vec3& a, const core::Vec3& b) {
  if (a.x != b.x) return a.x < b.x;
  if (a.y != b.y) return a.y < b.y;
  return a.z < b.z;
}

/// Crossing point on an edge, always interpolated from the
/// lexicographically smaller endpoint so neighboring tets that share the
/// edge produce bitwise-identical vertices (crack-free exact welding).
core::Vec3 edge_point(const core::Vec3& p1, const core::Vec3& p2, float v1,
                      float v2, float isovalue) {
  const bool swap = position_less(p2, p1);
  const core::Vec3& pa = swap ? p2 : p1;
  const core::Vec3& pb = swap ? p1 : p2;
  const float va = swap ? v2 : v1;
  const float vb = swap ? v1 : v2;
  const float denom = vb - va;
  if (std::abs(denom) < 1e-12f) return lerp(pa, pb, 0.5f);
  const float t = (isovalue - va) / denom;
  return lerp(pa, pb, t < 0.0f ? 0.0f : (t > 1.0f ? 1.0f : t));
}

}  // namespace

std::size_t triangulate_tet(const std::array<core::Vec3, 4>& corners,
                            const std::array<float, 4>& values, float isovalue,
                            extract::TriangleSoup& out) {
  unsigned inside_mask = 0;
  for (unsigned i = 0; i < 4; ++i) {
    if (values[i] < isovalue) inside_mask |= 1u << i;
  }
  return triangulate_tet_masked(corners, values, inside_mask, isovalue, out);
}

std::size_t triangulate_tet_masked(const std::array<core::Vec3, 4>& corners,
                                   const std::array<float, 4>& values,
                                   unsigned inside_mask, float isovalue,
                                   extract::TriangleSoup& out) {
  if (inside_mask == 0 || inside_mask == 0xF) return 0;

  // Partition the corner indices by side.
  std::array<unsigned, 4> inside{};
  std::array<unsigned, 4> outside{};
  unsigned inside_count = 0;
  unsigned outside_count = 0;
  for (unsigned i = 0; i < 4; ++i) {
    if (inside_mask & (1u << i)) inside[inside_count++] = i;
    else outside[outside_count++] = i;
  }

  auto cross = [&](unsigned a, unsigned b) {
    return edge_point(corners[a], corners[b], values[a], values[b], isovalue);
  };

  if (inside_count == 1 || inside_count == 3) {
    // One corner separated (the lone corner is inside for count 1, outside
    // for count 3): one triangle on its three incident edges.
    const unsigned lone = inside_count == 1 ? inside[0] : outside[0];
    const auto& others = inside_count == 1 ? outside : inside;
    out.add(cross(lone, others[0]), cross(lone, others[1]),
            cross(lone, others[2]));
    return 1;
  }

  // Two-and-two: the four crossed edges form a quad; walk it in the ring
  // order (a0c0, a0c1, a1c1, a1c0) where consecutive corners share a tet
  // vertex, and split into two triangles.
  const unsigned a0 = inside[0];
  const unsigned a1 = inside[1];
  const unsigned c0 = outside[0];
  const unsigned c1 = outside[1];
  const core::Vec3 q0 = cross(a0, c0);
  const core::Vec3 q1 = cross(a0, c1);
  const core::Vec3 q2 = cross(a1, c1);
  const core::Vec3 q3 = cross(a1, c0);
  out.add(q0, q1, q2);
  out.add(q0, q2, q3);
  return 2;
}

extract::ExtractionStats extract_tet_mesh(const TetMesh& mesh, float isovalue,
                                          extract::TriangleSoup& out) {
  extract::ExtractionStats stats;
  std::array<core::Vec3, 4> corners;
  std::array<float, 4> values;
  for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
    ++stats.cells_visited;
    const Tetrahedron& tet = mesh.tets()[t];
    for (int i = 0; i < 4; ++i) {
      const TetVertex& v = mesh.vertex(tet[static_cast<std::size_t>(i)]);
      corners[static_cast<std::size_t>(i)] = v.position;
      values[static_cast<std::size_t>(i)] = v.value;
    }
    const std::size_t added = triangulate_tet(corners, values, isovalue, out);
    if (added > 0) {
      ++stats.active_cells;
      stats.triangles += added;
    }
  }
  return stats;
}

}  // namespace oociso::unstructured
