#include "unstructured/tet_mesh.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/grid.h"
#include "data/noise.h"
#include "util/rng.h"

namespace oociso::unstructured {

TetMesh::TetMesh(std::vector<TetVertex> vertices, std::vector<Tetrahedron> tets)
    : vertices_(std::move(vertices)), tets_(std::move(tets)) {
  for (const Tetrahedron& tet : tets_) {
    for (const std::uint32_t v : tet) {
      if (v >= vertices_.size()) {
        throw std::invalid_argument("TetMesh: vertex index out of range");
      }
    }
  }
}

core::ValueInterval TetMesh::tet_interval(std::size_t tet) const {
  const Tetrahedron& t = tets_[tet];
  float lo = vertices_[t[0]].value;
  float hi = lo;
  for (int i = 1; i < 4; ++i) {
    lo = std::min(lo, vertices_[t[i]].value);
    hi = std::max(hi, vertices_[t[i]].value);
  }
  return {lo, hi};
}

core::Vec3 TetMesh::tet_centroid(std::size_t tet) const {
  const Tetrahedron& t = tets_[tet];
  core::Vec3 sum{};
  for (const std::uint32_t v : t) sum += vertices_[v].position;
  return sum / 4.0f;
}

double TetMesh::tet_volume(std::size_t tet) const {
  const Tetrahedron& t = tets_[tet];
  const core::Vec3 a = vertices_[t[1]].position - vertices_[t[0]].position;
  const core::Vec3 b = vertices_[t[2]].position - vertices_[t[0]].position;
  const core::Vec3 c = vertices_[t[3]].position - vertices_[t[0]].position;
  return static_cast<double>(a.cross(b).dot(c)) / 6.0;
}

double TetMesh::total_volume() const {
  double volume = 0.0;
  for (std::size_t i = 0; i < tets_.size(); ++i) {
    volume += std::abs(tet_volume(i));
  }
  return volume;
}

core::ValueInterval TetMesh::value_range() const {
  if (vertices_.empty()) return {0, 0};
  float lo = vertices_.front().value;
  float hi = lo;
  for (const TetVertex& v : vertices_) {
    lo = std::min(lo, v.value);
    hi = std::max(hi, v.value);
  }
  return {lo, hi};
}

namespace {

float evaluate_field(TetField field, const core::Vec3& p,
                     const data::ValueNoise& noise) {
  switch (field) {
    case TetField::kSphere: {
      const core::Vec3 center{0.5f, 0.5f, 0.5f};
      const float d = (p - center).length();
      return std::clamp(255.0f * (1.0f - d * 2.0f / std::sqrt(3.0f)), 0.0f,
                        255.0f);
    }
    case TetField::kGyroid: {
      constexpr float k = 2.0f * std::numbers::pi_v<float> * 3.0f;
      const float g = std::sin(k * p.x) * std::cos(k * p.y) +
                      std::sin(k * p.y) * std::cos(k * p.z) +
                      std::sin(k * p.z) * std::cos(k * p.x);
      return std::clamp(127.5f + g * 42.5f, 0.0f, 255.0f);
    }
    case TetField::kMixing: {
      // Two-gas mixing layer around z = 0.5 with turbulence, mirroring the
      // structured RM analog so the unstructured demo shows the same
      // span-space character (large constant regions + active interface).
      const float signed_dist = (p.z - 0.5f) / 0.15f;
      if (signed_dist <= -1.0f) return 8.0f;
      if (signed_dist >= 1.0f) return 240.0f;
      const float s = 0.5f * (signed_dist + 1.0f);
      const float ramp = s * s * (3.0f - 2.0f * s);
      const float gap = 1.0f - signed_dist * signed_dist;
      const float turb =
          gap * gap * noise.fbm(20.0f * p.x, 20.0f * p.y, 20.0f * p.z, 4);
      return std::clamp(124.0f + 116.0f * (2.0f * ramp - 1.0f) + 110.0f * turb,
                        0.0f, 255.0f);
    }
  }
  return 0.0f;
}

}  // namespace

TetMesh make_tet_mesh(const TetGridConfig& config, TetField field) {
  if (config.cells < 1) {
    throw std::invalid_argument("make_tet_mesh: need at least one cell");
  }
  const std::int32_t n = config.cells + 1;  // lattice points per axis
  const core::GridDims lattice{n, n, n};
  util::Xoshiro256 rng(config.seed, /*stream=*/3);
  const data::ValueNoise noise(config.seed ^ 0x5445544D45534831ULL);

  // Jittered lattice vertices; boundary vertices stay on the boundary so
  // the mesh tiles the unit cube exactly.
  std::vector<TetVertex> vertices;
  vertices.reserve(lattice.count());
  const float h = 1.0f / static_cast<float>(config.cells);
  for (std::int32_t z = 0; z < n; ++z) {
    for (std::int32_t y = 0; y < n; ++y) {
      for (std::int32_t x = 0; x < n; ++x) {
        auto jitter = [&](std::int32_t c) {
          if (c == 0 || c == n - 1) return 0.0f;
          return static_cast<float>(rng.uniform(-0.5, 0.5)) * config.jitter * h;
        };
        core::Vec3 p{static_cast<float>(x) * h + jitter(x),
                     static_cast<float>(y) * h + jitter(y),
                     static_cast<float>(z) * h + jitter(z)};
        vertices.push_back({p, evaluate_field(field, p, noise)});
      }
    }
  }

  // Five-tet decomposition of each cell, parity-alternated so neighboring
  // cells' diagonals agree (the standard "5-tet with flip" tiling).
  std::vector<Tetrahedron> tets;
  tets.reserve(static_cast<std::size_t>(config.cells) * config.cells *
               config.cells * 5);
  auto vid = [&](std::int32_t x, std::int32_t y, std::int32_t z) {
    return static_cast<std::uint32_t>(lattice.linear({x, y, z}));
  };
  for (std::int32_t z = 0; z < config.cells; ++z) {
    for (std::int32_t y = 0; y < config.cells; ++y) {
      for (std::int32_t x = 0; x < config.cells; ++x) {
        // Cube corners c[i] with i = bit pattern (x, y, z).
        const std::uint32_t c000 = vid(x, y, z);
        const std::uint32_t c100 = vid(x + 1, y, z);
        const std::uint32_t c010 = vid(x, y + 1, z);
        const std::uint32_t c110 = vid(x + 1, y + 1, z);
        const std::uint32_t c001 = vid(x, y, z + 1);
        const std::uint32_t c101 = vid(x + 1, y, z + 1);
        const std::uint32_t c011 = vid(x, y + 1, z + 1);
        const std::uint32_t c111 = vid(x + 1, y + 1, z + 1);
        if ((x + y + z) % 2 == 0) {
          tets.push_back({c000, c100, c010, c001});
          tets.push_back({c100, c110, c010, c111});
          tets.push_back({c100, c101, c111, c001});
          tets.push_back({c010, c011, c001, c111});
          tets.push_back({c100, c010, c001, c111});  // central tet
        } else {
          tets.push_back({c001, c101, c011, c000});
          tets.push_back({c101, c111, c011, c110});
          tets.push_back({c101, c100, c110, c000});
          tets.push_back({c011, c010, c000, c110});
          tets.push_back({c101, c011, c000, c110});  // central tet
        }
      }
    }
  }
  return TetMesh(std::move(vertices), std::move(tets));
}

}  // namespace oociso::unstructured
