#pragma once
// Unstructured tetrahedral meshes.
//
// The paper states its algorithm "can handle both structured and
// unstructured grids": the index operates on (vmin, vmax) intervals of
// *clusters* of cells and never looks inside them. This module supplies the
// unstructured substrate: a tet mesh with per-vertex scalars, plus the
// synthetic generator used by tests and the unstructured demo (a jittered
// tetrahedralization of a box, so the mesh is genuinely irregular while
// the scalar field stays analytic and verifiable).

#include <array>
#include <cstdint>
#include <vector>

#include "core/interval.h"
#include "core/vec3.h"

namespace oociso::unstructured {

struct TetVertex {
  core::Vec3 position;
  float value = 0.0f;
};

/// Four indices into the mesh's vertex array.
using Tetrahedron = std::array<std::uint32_t, 4>;

class TetMesh {
 public:
  TetMesh() = default;
  TetMesh(std::vector<TetVertex> vertices, std::vector<Tetrahedron> tets);

  [[nodiscard]] const std::vector<TetVertex>& vertices() const {
    return vertices_;
  }
  [[nodiscard]] const std::vector<Tetrahedron>& tets() const { return tets_; }
  [[nodiscard]] std::size_t tet_count() const { return tets_.size(); }

  [[nodiscard]] const TetVertex& vertex(std::uint32_t index) const {
    return vertices_[index];
  }

  /// Scalar interval of one tet.
  [[nodiscard]] core::ValueInterval tet_interval(std::size_t tet) const;

  /// Centroid of one tet (used for spatial clustering).
  [[nodiscard]] core::Vec3 tet_centroid(std::size_t tet) const;

  /// Signed volume of one tet (orientation-dependent).
  [[nodiscard]] double tet_volume(std::size_t tet) const;

  /// Total unsigned volume (a mesh checksum used by tests).
  [[nodiscard]] double total_volume() const;

  /// Scalar range over all vertices.
  [[nodiscard]] core::ValueInterval value_range() const;

 private:
  std::vector<TetVertex> vertices_;
  std::vector<Tetrahedron> tets_;
};

struct TetGridConfig {
  /// Cells per axis of the box that gets tetrahedralized (5 tets per cell).
  std::int32_t cells = 16;
  std::uint64_t seed = 42;
  /// Vertex jitter as a fraction of the cell size (0 = regular lattice).
  float jitter = 0.35f;
};

/// Field evaluated at (normalized) positions to produce vertex scalars.
enum class TetField {
  kSphere,  ///< radial distance field (analytic reference)
  kGyroid,  ///< triply periodic field
  kMixing,  ///< RM-like mixing layer (matches data::generate_rm_timestep's
            ///< character: homogeneous slabs + turbulent interface)
};

/// Deterministically tetrahedralizes a jittered box lattice: 5 tets per
/// cell, ~cells^3*5 tets, scalars in [0, 255].
[[nodiscard]] TetMesh make_tet_mesh(const TetGridConfig& config,
                                    TetField field = TetField::kSphere);

}  // namespace oociso::unstructured
