#pragma once
// Out-of-core unstructured isosurface pipeline: the same preprocess/query
// machinery as the structured case (compact interval trees, striped brick
// layout, per-node extraction, optional sort-last rendering), driven by tet
// clusters instead of metacells.

#include <optional>

#include "compositing/sort_last.h"
#include "index/compact_interval_tree.h"
#include "parallel/cluster.h"
#include "parallel/time_ledger.h"
#include "render/framebuffer.h"
#include "unstructured/cluster_source.h"
#include "unstructured/marching_tets.h"

namespace oociso::unstructured {

struct TetPreprocessResult {
  std::vector<index::CompactIntervalTree> trees;  ///< one per node
  std::uint32_t tets_per_cluster = 0;
  std::uint64_t total_clusters = 0;
  std::uint64_t kept_clusters = 0;
  std::uint64_t bytes_written = 0;

  [[nodiscard]] double culled_fraction() const {
    return total_clusters == 0
               ? 0.0
               : 1.0 - static_cast<double>(kept_clusters) /
                           static_cast<double>(total_clusters);
  }
};

/// Clusters, indexes, and stripes a tet mesh over the cluster's disks.
[[nodiscard]] TetPreprocessResult preprocess_tets(
    const TetMesh& mesh, parallel::Cluster& cluster,
    std::uint32_t tets_per_cluster = 11);

struct TetQueryOptions {
  bool render = false;
  std::int32_t image_size = 512;
  bool keep_triangles = false;
  bool keep_image = false;
  /// Pipeline each node's cluster retrieval with its marching-tets work
  /// (same producer/consumer scheme as the structured query engine).
  bool overlap_io_compute = true;
  /// Bounded-queue depth: record batches the I/O stage may read ahead of
  /// the marching-tets stage (0 clamps to 1).
  std::size_t readahead_batches = 4;
  /// Classification kernel for the batched corner-vs-isovalue compare
  /// (extract/kernel.h): each decoded cluster's 4×N corner values are
  /// graded in one SIMD pass and only mixed-sign tets reach
  /// triangulate_tet_masked. Output-identical across ISAs.
  extract::KernelOptions kernel;
};

struct TetNodeReport {
  std::uint64_t active_clusters = 0;
  std::uint64_t triangles = 0;
  double io_model_seconds = 0.0;
  double io_wall_seconds = 0.0;  ///< wall clock inside device reads
  double cpu_seconds = 0.0;      ///< decode + marching tets
  double render_seconds = 0.0;
  /// Modeled seconds the retrieval/triangulation pipeline hid on this
  /// node; 0 when the query ran serial.
  double overlap_saved_seconds = 0.0;
};

struct TetQueryReport {
  core::ValueKey isovalue = 0;
  /// Concrete classification ISA the query ran (kernel option resolved).
  extract::KernelIsa kernel_isa = extract::KernelIsa::kScalar;
  std::vector<TetNodeReport> nodes;
  parallel::ClusterTimes times;
  std::optional<extract::TriangleSoup> triangles_out;
  std::optional<render::Framebuffer> image;

  [[nodiscard]] std::uint64_t total_triangles() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes) total += node.triangles;
    return total;
  }
  [[nodiscard]] std::uint64_t total_active_clusters() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes) total += node.active_clusters;
    return total;
  }
  [[nodiscard]] double completion_seconds() const {
    return times.completion_seconds();
  }
};

/// Parallel isosurface query over a preprocessed tet dataset.
[[nodiscard]] TetQueryReport query_tets(parallel::Cluster& cluster,
                                        const TetPreprocessResult& prep,
                                        core::ValueKey isovalue,
                                        const TetQueryOptions& options = {});

}  // namespace oociso::unstructured
