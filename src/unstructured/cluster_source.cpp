#include "unstructured/cluster_source.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "io/serial.h"

namespace oociso::unstructured {
namespace {

/// Spreads the low 10 bits of x so they occupy every third bit.
constexpr std::uint32_t spread_bits(std::uint32_t x) {
  x &= 0x3FF;
  x = (x | (x << 16)) & 0x030000FF;
  x = (x | (x << 8)) & 0x0300F00F;
  x = (x | (x << 4)) & 0x030C30C3;
  x = (x | (x << 2)) & 0x09249249;
  return x;
}

}  // namespace

std::uint32_t morton_code(const core::Vec3& p) {
  auto quantize = [](float v) {
    const float clamped = v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v);
    return static_cast<std::uint32_t>(clamped * 1023.0f);
  };
  return spread_bits(quantize(p.x)) | (spread_bits(quantize(p.y)) << 1) |
         (spread_bits(quantize(p.z)) << 2);
}

std::size_t cluster_record_size(std::uint32_t tets_per_cluster) {
  return sizeof(std::uint32_t) + sizeof(float) +
         static_cast<std::size_t>(tets_per_cluster) * 4 * 4 * sizeof(float);
}

TetClusterSource::TetClusterSource(const TetMesh& mesh,
                                   std::uint32_t tets_per_cluster)
    : mesh_(mesh), tets_per_cluster_(tets_per_cluster) {
  if (tets_per_cluster == 0) {
    throw std::invalid_argument("TetClusterSource: cluster arity must be > 0");
  }
  // Morton-order the tets so clusters are spatially compact.
  order_.resize(mesh.tet_count());
  for (std::uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  std::vector<std::uint32_t> codes(mesh.tet_count());
  for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
    codes[t] = morton_code(mesh.tet_centroid(t));
  }
  std::sort(order_.begin(), order_.end(),
            [&codes](std::uint32_t a, std::uint32_t b) {
              return codes[a] != codes[b] ? codes[a] < codes[b] : a < b;
            });

  // Cluster intervals; degenerate clusters (constant field over every tet)
  // are culled exactly like constant metacells.
  const auto cluster_count = static_cast<std::uint32_t>(
      (order_.size() + tets_per_cluster - 1) / tets_per_cluster);
  cluster_count_total_ = cluster_count;
  for (std::uint32_t c = 0; c < cluster_count; ++c) {
    core::ValueKey lo = std::numeric_limits<core::ValueKey>::max();
    core::ValueKey hi = std::numeric_limits<core::ValueKey>::lowest();
    for (const std::uint32_t tet : cluster_tets_internal(c)) {
      const core::ValueInterval interval = mesh_.tet_interval(tet);
      lo = std::min(lo, interval.vmin);
      hi = std::max(hi, interval.vmax);
    }
    if (lo == hi) continue;
    cluster_infos_.push_back({c, {lo, hi}});
  }
}

std::span<const std::uint32_t> TetClusterSource::cluster_tets(
    std::uint32_t id) const {
  return cluster_tets_internal(id);
}

std::span<const std::uint32_t> TetClusterSource::cluster_tets_internal(
    std::uint32_t id) const {
  const std::size_t begin =
      static_cast<std::size_t>(id) * tets_per_cluster_;
  if (begin >= order_.size()) {
    throw std::out_of_range("TetClusterSource: cluster id out of range");
  }
  const std::size_t count =
      std::min<std::size_t>(tets_per_cluster_, order_.size() - begin);
  return {order_.data() + begin, count};
}

std::vector<metacell::MetacellInfo> TetClusterSource::scan() const {
  return cluster_infos_;
}

std::size_t TetClusterSource::record_size() const {
  return cluster_record_size(tets_per_cluster_);
}

void TetClusterSource::encode(std::uint32_t id,
                              std::vector<std::byte>& out) const {
  const auto tets = cluster_tets_internal(id);
  float vmin = std::numeric_limits<float>::max();
  for (const std::uint32_t tet : tets) {
    vmin = std::min(vmin, mesh_.tet_interval(tet).vmin);
  }

  io::ByteWriter writer(out);
  writer.put(id);
  writer.put(vmin);
  for (const std::uint32_t tet : tets) {
    for (const std::uint32_t v : mesh_.tets()[tet]) {
      const TetVertex& vertex = mesh_.vertex(v);
      writer.put(vertex.position.x);
      writer.put(vertex.position.y);
      writer.put(vertex.position.z);
      writer.put(vertex.value);
    }
  }
  // Pad the tail cluster with NaN-valued degenerate tets: NaN compares
  // false against every isovalue, so padding never emits geometry.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (std::size_t i = tets.size(); i < tets_per_cluster_; ++i) {
    for (int j = 0; j < 16; ++j) writer.put(nan);
  }
}

std::vector<PackedTet> decode_cluster(std::span<const std::byte> record,
                                      std::uint32_t tets_per_cluster) {
  if (record.size() != cluster_record_size(tets_per_cluster)) {
    throw std::runtime_error("cluster record size mismatch");
  }
  io::ByteReader reader(record);
  reader.skip(sizeof(std::uint32_t));  // id
  reader.skip(sizeof(float));          // vmin
  std::vector<PackedTet> tets;
  tets.reserve(tets_per_cluster);
  for (std::uint32_t t = 0; t < tets_per_cluster; ++t) {
    PackedTet tet;
    bool padding = false;
    for (int v = 0; v < 4; ++v) {
      tet.corners[static_cast<std::size_t>(v)].x = reader.get<float>();
      tet.corners[static_cast<std::size_t>(v)].y = reader.get<float>();
      tet.corners[static_cast<std::size_t>(v)].z = reader.get<float>();
      const float value = reader.get<float>();
      tet.values[static_cast<std::size_t>(v)] = value;
      if (std::isnan(value)) padding = true;
    }
    if (!padding) tets.push_back(tet);
  }
  return tets;
}

}  // namespace oociso::unstructured
