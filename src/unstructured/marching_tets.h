#pragma once
// Marching tetrahedra: isosurface triangulation of a single tet.
//
// A tet has 16 corner-sign configurations; the non-trivial ones produce
// either one triangle (one vertex separated) or two (two-and-two split).
// Unlike marching cubes there are no ambiguous cases, so the extracted
// surface is watertight across conforming tet faces by construction.

#include <array>
#include <cstdint>

#include "core/vec3.h"
#include "extract/marching_cubes.h"
#include "extract/mesh.h"
#include "unstructured/tet_mesh.h"

namespace oociso::unstructured {

/// Triangulates one tet given its corner positions and values; the corner
/// order matches Tetrahedron's. Returns the number of triangles added
/// (0, 1, or 2). Convention matches marching cubes: a corner is "inside"
/// when value < isovalue.
std::size_t triangulate_tet(const std::array<core::Vec3, 4>& corners,
                            const std::array<float, 4>& values, float isovalue,
                            extract::TriangleSoup& out);

/// Like triangulate_tet, but with the corner classification already done:
/// bit i of `inside_mask` is set iff values[i] < isovalue. The batched
/// unstructured pipeline classifies whole clusters with the SIMD kernel
/// (extract/kernel.h), skips tets whose 4-bit group is 0 or 0xF, and calls
/// this for the rest — output-identical to triangulate_tet because masks
/// 0/0xF emit nothing there too.
std::size_t triangulate_tet_masked(const std::array<core::Vec3, 4>& corners,
                                   const std::array<float, 4>& values,
                                   unsigned inside_mask, float isovalue,
                                   extract::TriangleSoup& out);

/// Extracts the full isosurface of a mesh (the in-core reference the
/// out-of-core unstructured pipeline is tested against).
extract::ExtractionStats extract_tet_mesh(const TetMesh& mesh, float isovalue,
                                          extract::TriangleSoup& out);

}  // namespace oociso::unstructured
