#pragma once
// Small 3-vector used by the extraction and rendering subsystems.

#include <cmath>
#include <cstddef>
#include <ostream>

namespace oociso::core {

struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3() = default;
  constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(float s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3&) const = default;

  [[nodiscard]] constexpr float dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] float length() const { return std::sqrt(dot(*this)); }
  [[nodiscard]] constexpr float length_squared() const { return dot(*this); }

  /// Returns the unit vector; the zero vector normalizes to itself.
  [[nodiscard]] Vec3 normalized() const {
    const float len = length();
    return len > 0.0f ? (*this) / len : Vec3{};
  }
};

constexpr Vec3 operator*(float s, const Vec3& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

/// Linear interpolation: a + t * (b - a).
constexpr Vec3 lerp(const Vec3& a, const Vec3& b, float t) {
  return a + (b - a) * t;
}

}  // namespace oociso::core
