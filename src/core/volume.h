#pragma once
// In-memory scalar volumes.
//
// Volume<T> is the staging representation produced by the synthetic dataset
// generators and consumed by the preprocessing stage (which converts it to
// out-of-core metacell bricks). The full RM dataset never fits in memory;
// generators therefore also expose slab-streaming APIs (see data/), and
// Volume<T> is used at bench scale and in tests.

#include <algorithm>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/grid.h"
#include "core/interval.h"

namespace oociso::core {

/// Scalar sample types supported by the on-disk metacell format.
enum class ScalarKind : std::uint8_t { kU8 = 0, kU16 = 1, kF32 = 2 };

[[nodiscard]] constexpr std::size_t scalar_size(ScalarKind kind) {
  switch (kind) {
    case ScalarKind::kU8: return 1;
    case ScalarKind::kU16: return 2;
    case ScalarKind::kF32: return 4;
  }
  return 0;  // unreachable for valid enum values
}

[[nodiscard]] constexpr const char* scalar_name(ScalarKind kind) {
  switch (kind) {
    case ScalarKind::kU8: return "u8";
    case ScalarKind::kU16: return "u16";
    case ScalarKind::kF32: return "f32";
  }
  return "?";
}

template <typename T>
concept VolumeScalar = std::same_as<T, std::uint8_t> ||
                       std::same_as<T, std::uint16_t> || std::same_as<T, float>;

template <VolumeScalar T>
[[nodiscard]] constexpr ScalarKind scalar_kind_of() {
  if constexpr (std::same_as<T, std::uint8_t>) return ScalarKind::kU8;
  if constexpr (std::same_as<T, std::uint16_t>) return ScalarKind::kU16;
  return ScalarKind::kF32;
}

/// Dense 3D scalar field with x-fastest layout.
template <VolumeScalar T>
class Volume {
 public:
  using value_type = T;

  Volume() = default;

  explicit Volume(GridDims dims, T fill = T{})
      : dims_(dims), samples_(dims.count(), fill) {
    if (dims.nx <= 0 || dims.ny <= 0 || dims.nz <= 0) {
      throw std::invalid_argument("Volume dimensions must be positive");
    }
  }

  Volume(GridDims dims, std::vector<T> samples)
      : dims_(dims), samples_(std::move(samples)) {
    if (samples_.size() != dims.count()) {
      throw std::invalid_argument("Volume sample count mismatch");
    }
  }

  [[nodiscard]] const GridDims& dims() const { return dims_; }
  [[nodiscard]] std::uint64_t sample_count() const { return dims_.count(); }
  [[nodiscard]] std::span<const T> samples() const { return samples_; }
  [[nodiscard]] std::span<T> samples() { return samples_; }

  [[nodiscard]] T at(const Coord3& c) const {
    return samples_[dims_.linear(c)];
  }
  [[nodiscard]] T& at(const Coord3& c) { return samples_[dims_.linear(c)]; }

  [[nodiscard]] T at(std::int32_t x, std::int32_t y, std::int32_t z) const {
    return at(Coord3{x, y, z});
  }
  [[nodiscard]] T& at(std::int32_t x, std::int32_t y, std::int32_t z) {
    return at(Coord3{x, y, z});
  }

  /// Clamped sampling: out-of-range coordinates are clamped to the border.
  /// Used by generators when evaluating neighborhoods near faces.
  [[nodiscard]] T at_clamped(Coord3 c) const {
    c.x = std::clamp(c.x, 0, dims_.nx - 1);
    c.y = std::clamp(c.y, 0, dims_.ny - 1);
    c.z = std::clamp(c.z, 0, dims_.nz - 1);
    return at(c);
  }

  /// Min/max over all samples, widened to the index key type.
  [[nodiscard]] ValueInterval value_range() const {
    assert(!samples_.empty());
    T lo = samples_.front();
    T hi = samples_.front();
    for (const T v : samples_) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return {static_cast<ValueKey>(lo), static_cast<ValueKey>(hi)};
  }

  /// Copies the axis-aligned box of samples [origin, origin+extent) into a
  /// new volume. The box must lie inside the grid.
  [[nodiscard]] Volume subvolume(const Coord3& origin,
                                 const GridDims& extent) const {
    assert(dims_.contains(origin));
    assert(origin.x + extent.nx <= dims_.nx);
    assert(origin.y + extent.ny <= dims_.ny);
    assert(origin.z + extent.nz <= dims_.nz);
    Volume out(extent);
    for (std::int32_t z = 0; z < extent.nz; ++z) {
      for (std::int32_t y = 0; y < extent.ny; ++y) {
        const auto* src =
            &samples_[dims_.linear({origin.x, origin.y + y, origin.z + z})];
        auto* dst = &out.samples_[extent.linear({0, y, z})];
        std::copy(src, src + extent.nx, dst);
      }
    }
    return out;
  }

 private:
  GridDims dims_{};
  std::vector<T> samples_;
};

using VolumeU8 = Volume<std::uint8_t>;
using VolumeU16 = Volume<std::uint16_t>;
using VolumeF32 = Volume<float>;

}  // namespace oociso::core
