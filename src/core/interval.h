#pragma once
// Scalar-value intervals and span-space concepts.
//
// Every metacell is summarized by the closed interval [vmin, vmax] of the
// scalar field over its samples. An isovalue query for lambda selects exactly
// the metacells whose interval *stabs* lambda: vmin <= lambda <= vmax.
// In span-space terms (Livnat/Shen/Johnson), each interval is the point
// (vmin, vmax) above the diagonal, and a query selects the quadrant
// {vmin <= lambda} x {vmax >= lambda}.

#include <algorithm>
#include <cassert>
#include <compare>
#include <ostream>

namespace oociso::core {

/// Scalar key type used by all index structures. Dataset scalars (u8, u16,
/// f32) are widened to this type when intervals are formed.
using ValueKey = float;

struct ValueInterval {
  ValueKey vmin = 0;
  ValueKey vmax = 0;

  constexpr ValueInterval() = default;
  constexpr ValueInterval(ValueKey lo, ValueKey hi) : vmin(lo), vmax(hi) {
    assert(lo <= hi);
  }

  constexpr auto operator<=>(const ValueInterval&) const = default;

  /// True when the interval contains the isovalue (closed on both ends,
  /// the convention of the interval-tree literature and of the paper).
  [[nodiscard]] constexpr bool stabs(ValueKey isovalue) const {
    return vmin <= isovalue && isovalue <= vmax;
  }

  /// True for intervals that cannot produce any isosurface geometry:
  /// all samples share one value. The paper culls these metacells during
  /// preprocessing (a ~50% saving on the RM dataset).
  [[nodiscard]] constexpr bool degenerate() const { return vmin == vmax; }

  [[nodiscard]] constexpr ValueInterval hull(const ValueInterval& o) const {
    return {std::min(vmin, o.vmin), std::max(vmax, o.vmax)};
  }
};

inline std::ostream& operator<<(std::ostream& os, const ValueInterval& iv) {
  return os << '[' << iv.vmin << ", " << iv.vmax << ']';
}

}  // namespace oociso::core
