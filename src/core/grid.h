#pragma once
// Structured-grid dimensions and index arithmetic.
//
// Conventions used throughout the repository:
//  * A grid of (nx, ny, nz) *samples* (vertices) has
//    (nx-1, ny-1, nz-1) unit *cells*.
//  * Linearization is x-fastest: index = x + nx*(y + ny*z). This is the
//    "predefined order" the paper stores metacell scalars in.

#include <cassert>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <ostream>

namespace oociso::core {

/// Integer 3D coordinate (sample, cell, or metacell coordinate).
struct Coord3 {
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::int32_t z = 0;

  constexpr auto operator<=>(const Coord3&) const = default;

  constexpr Coord3 operator+(const Coord3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
};

inline std::ostream& operator<<(std::ostream& os, const Coord3& c) {
  return os << '(' << c.x << ", " << c.y << ", " << c.z << ')';
}

/// Dimensions of a 3D lattice plus x-fastest linear index arithmetic.
struct GridDims {
  std::int32_t nx = 0;
  std::int32_t ny = 0;
  std::int32_t nz = 0;

  constexpr bool operator==(const GridDims&) const = default;

  [[nodiscard]] constexpr std::uint64_t count() const {
    return static_cast<std::uint64_t>(nx) * static_cast<std::uint64_t>(ny) *
           static_cast<std::uint64_t>(nz);
  }

  [[nodiscard]] constexpr bool contains(const Coord3& c) const {
    return c.x >= 0 && c.x < nx && c.y >= 0 && c.y < ny && c.z >= 0 && c.z < nz;
  }

  [[nodiscard]] constexpr std::uint64_t linear(const Coord3& c) const {
    assert(contains(c));
    return static_cast<std::uint64_t>(c.x) +
           static_cast<std::uint64_t>(nx) *
               (static_cast<std::uint64_t>(c.y) +
                static_cast<std::uint64_t>(ny) * static_cast<std::uint64_t>(c.z));
  }

  [[nodiscard]] constexpr Coord3 coord(std::uint64_t linear_index) const {
    assert(linear_index < count());
    const auto x = static_cast<std::int32_t>(linear_index %
                                             static_cast<std::uint64_t>(nx));
    linear_index /= static_cast<std::uint64_t>(nx);
    const auto y = static_cast<std::int32_t>(linear_index %
                                             static_cast<std::uint64_t>(ny));
    const auto z = static_cast<std::int32_t>(linear_index /
                                             static_cast<std::uint64_t>(ny));
    return {x, y, z};
  }

  /// Dimensions of the unit-cell lattice for a sample lattice of this size.
  [[nodiscard]] constexpr GridDims cell_dims() const {
    return {nx > 1 ? nx - 1 : 0, ny > 1 ? ny - 1 : 0, nz > 1 ? nz - 1 : 0};
  }

  /// Number of metacells of `cells_per_side` cells needed to tile this
  /// sample lattice (ceiling division over the cell lattice).
  [[nodiscard]] constexpr GridDims metacell_dims(
      std::int32_t cells_per_side) const {
    assert(cells_per_side > 0);
    const GridDims cells = cell_dims();
    auto ceil_div = [](std::int32_t a, std::int32_t b) {
      return (a + b - 1) / b;
    };
    return {ceil_div(cells.nx, cells_per_side), ceil_div(cells.ny, cells_per_side),
            ceil_div(cells.nz, cells_per_side)};
  }
};

inline std::ostream& operator<<(std::ostream& os, const GridDims& d) {
  return os << d.nx << 'x' << d.ny << 'x' << d.nz;
}

}  // namespace oociso::core
