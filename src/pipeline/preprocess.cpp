#include "pipeline/preprocess.h"

#include "util/timer.h"

namespace oociso::pipeline {

PreprocessResult preprocess(const metacell::MetacellSource& source,
                            parallel::Cluster& cluster,
                            const PreprocessConfig& config) {
  util::WallTimer timer;
  const metacell::MetacellGeometry& geometry = source.geometry();

  // The caller's source already fixes the metacell size; the config value
  // documents intent and is validated against it.
  if (geometry.samples_per_side() != config.samples_per_side) {
    throw std::invalid_argument(
        "preprocess: source metacell size differs from config");
  }

  std::vector<metacell::MetacellInfo> infos = source.scan();
  const std::uint64_t total = geometry.metacell_count();
  if (!config.cull_degenerate) {
    // scan() culls by default; a non-culling pass must re-scan. The
    // MetacellSource interface always culls, so this mode re-adds
    // degenerate cells conservatively by id enumeration. In practice every
    // caller uses culling (as the paper does); this branch exists for the
    // ablation that quantifies the saving.
    throw std::invalid_argument(
        "preprocess: cull_degenerate=false is handled by the ablation bench, "
        "not the pipeline");
  }

  if (config.levels < 1 || config.levels > 16) {
    throw std::invalid_argument("preprocess: levels must be in [1, 16]");
  }

  auto devices = cluster.disk_pointers();
  index::CompactTreeBuilder::Result built = index::CompactTreeBuilder::build(
      infos, source, devices, config.placement, config.compression,
      config.raw_bases, config.levels);

  PreprocessResult result{
      .trees = std::move(built.trees),
      .geometry = geometry,
      .kind = source.kind(),
      .total_metacells = total,
      .kept_metacells = infos.size(),
      .bricks = built.bricks_written,
      .bytes_written = built.bytes_written,
      .compressed_bytes_written = built.compressed_bytes_written,
      .replica_bytes_written = built.replica_bytes_written,
      .hierarchy_nodes_written = built.hierarchy_nodes_written,
      .hierarchy_bytes_written = built.hierarchy_bytes_written,
      .raw_bytes = geometry.volume_dims().count() *
                   core::scalar_size(source.kind()),
      .elapsed_seconds = timer.seconds(),
  };
  return result;
}

}  // namespace oociso::pipeline
