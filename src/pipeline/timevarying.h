#pragma once
// Time-varying extension (paper Section 5.2, evaluated in Table 8).
//
// Each time step gets its own compact interval tree; all the per-step
// trees stay in core (their total size is O(m * n log n) — 1.6 MB for the
// full 270-step RM dataset), while every step's bricks append to the same
// per-node disks. Querying (step, isovalue) selects the step's index and
// runs the standard parallel query.

#include <functional>
#include <vector>

#include "data/datasets.h"
#include "pipeline/query_engine.h"

namespace oociso::pipeline {

class TimeVaryingEngine {
 public:
  /// Produces the volume for a given time step (deterministically).
  using VolumeProvider = std::function<data::AnyVolume(int step)>;

  /// `compression` applies to every step's build. Compressed steps share
  /// one raw address space per node: each step's raw offsets start at the
  /// union raw end of the steps before it, so the per-node chunk maps of
  /// all steps merge into one disjoint map (installed on the cluster when
  /// the shared cache is enabled — cached decoded frames then stay
  /// coherent across steps).
  TimeVaryingEngine(parallel::Cluster& cluster, VolumeProvider provider,
                    std::int32_t samples_per_side = 9,
                    codec::Codec compression = codec::Codec::kRaw)
      : cluster_(cluster),
        provider_(std::move(provider)),
        samples_per_side_(samples_per_side),
        compression_(compression) {}

  /// Preprocesses steps [first, first+count) in order; each step's bricks
  /// land after the previous step's on every node disk.
  void preprocess_steps(int first, int count);

  /// Steps preprocessed so far, in preprocess order.
  [[nodiscard]] const std::vector<int>& steps() const { return step_ids_; }

  [[nodiscard]] const PreprocessResult& step_data(int step) const;

  /// Runs the parallel query against one preprocessed step.
  [[nodiscard]] QueryReport query(int step, core::ValueKey isovalue,
                                  const QueryOptions& options = {});

  /// Enables the cluster's shared per-node pools and makes query() read
  /// through them (sets use_shared_cache on every subsequent call unless
  /// the caller's options already decided). Because all steps' bricks live
  /// on the same per-node disks, frames cached while sweeping one step stay
  /// warm for the next — revisiting a step, or adjacent steps sharing
  /// isovalue bands, skips the device entirely for the overlapping blocks.
  /// No-op when the cluster cache is already enabled.
  void enable_shared_cache(std::size_t capacity_blocks);

  /// Total in-core index bytes across all steps and nodes (the quantity
  /// Section 5.2 argues stays small).
  [[nodiscard]] std::uint64_t total_index_bytes() const;

 private:
  parallel::Cluster& cluster_;
  VolumeProvider provider_;
  std::int32_t samples_per_side_;
  codec::Codec compression_ = codec::Codec::kRaw;
  bool use_shared_cache_ = false;
  std::vector<int> step_ids_;
  std::vector<PreprocessResult> step_data_;
  /// Union of every preprocessed step's per-node chunk maps (empty unless
  /// compressed); the next step's raw cursors continue from its raw ends.
  std::vector<codec::ChunkMap> union_maps_;
};

}  // namespace oociso::pipeline
