#include "pipeline/progressive.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "extract/marching_cubes.h"
#include "index/hierarchy.h"
#include "index/retrieval_stream.h"
#include "metacell/metacell.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace oociso::pipeline {
namespace {

/// Splits a coarse plan (one single-record scan per stabbed node) into
/// sub-plans of at most `cap_records` scans. Reads never span sub-plans,
/// so no batch can exceed cap_records * record_size bytes — the per-node
/// slice of the memory budget.
std::vector<index::QueryPlan> chop_plan(index::QueryPlan plan,
                                        std::size_t cap_records) {
  std::vector<index::QueryPlan> out;
  if (plan.scans.size() <= cap_records) {
    out.push_back(std::move(plan));
    return out;
  }
  for (std::size_t begin = 0; begin < plan.scans.size();
       begin += cap_records) {
    const std::size_t end =
        std::min(plan.scans.size(), begin + cap_records);
    index::QueryPlan part;
    part.scans.assign(
        plan.scans.begin() + static_cast<std::ptrdiff_t>(begin),
        plan.scans.begin() + static_cast<std::ptrdiff_t>(end));
    part.nodes_visited = begin == 0 ? plan.nodes_visited : 0;
    part.isovalue = plan.isovalue;
    part.crc_chunk_records = plan.crc_chunk_records;
    part.level = plan.level;
    out.push_back(std::move(part));
  }
  return out;
}

/// Maps a coarse-lattice mesh back into fine-lattice coordinates. Coarse
/// sample i sits at fine position min(i * 2^level, n - 1) (hierarchy.h),
/// so the uniform 2^level scale is clamped per axis: the border cells of a
/// ceil-sized coarse lattice are narrower in fine space.
void scale_to_fine(extract::TriangleSoup& soup, std::int32_t level,
                   const core::GridDims& fine) {
  const float scale = static_cast<float>(std::uint64_t{1} << level);
  const auto limit = [](std::int32_t n) {
    return static_cast<float>(n > 0 ? n - 1 : 0);
  };
  const float mx = limit(fine.nx);
  const float my = limit(fine.ny);
  const float mz = limit(fine.nz);
  for (extract::Triangle& tri : soup.triangles()) {
    for (core::Vec3* v : {&tri.a, &tri.b, &tri.c}) {
      v->x = std::min(v->x * scale, mx);
      v->y = std::min(v->y * scale, my);
      v->z = std::min(v->z * scale, mz);
    }
  }
}

}  // namespace

ProgressiveReport ProgressiveEngine::run(core::ValueKey isovalue,
                                         const QueryOptions& options) {
  util::WallTimer timer;
  ProgressiveReport report;
  report.isovalue = isovalue;

  const auto coarsest = static_cast<std::int32_t>(data_.hierarchy_levels());
  const std::int32_t floor_level =
      std::clamp(options.max_level, std::int32_t{0}, coarsest);
  const std::size_t p = cluster_.size();

  // Stop state shared with the node programs. The flags are latched by
  // should_stop() and folded into the report once the run settles; the
  // report itself is never written from a node thread.
  std::atomic<bool> stop_requested{false};
  std::atomic<bool> deadline_hit{false};
  std::atomic<bool> cancel_hit{false};
  const double deadline_seconds = options.deadline_ms / 1000.0;
  const auto should_stop = [&]() -> bool {
    if (stop_requested.load(std::memory_order_relaxed)) return true;
    bool stop = false;
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      cancel_hit.store(true, std::memory_order_relaxed);
      stop = true;
    }
    if (options.deadline_ms > 0.0 && timer.seconds() >= deadline_seconds) {
      deadline_hit.store(true, std::memory_order_relaxed);
      stop = true;
    }
    if (stop) stop_requested.store(true, std::memory_order_relaxed);
    return stop;
  };

  // Budget accounting: bytes of refinement batches alive across the node
  // programs, and the tripwire counting fetches issued after a stop was
  // observed (zero by construction; the hierarchy tests pin it).
  std::atomic<std::uint64_t> live_bytes{0};
  std::atomic<std::uint64_t> peak_bytes{0};
  std::atomic<std::uint64_t> after_cancel{0};
  bool any_aborted = false;

  for (std::int32_t level = coarsest; level >= floor_level; --level) {
    const bool mandatory = level == coarsest;
    if (!mandatory && should_stop()) {
      any_aborted = true;
      break;
    }
    util::WallTimer level_timer;
    obs::Span span(options.tracer, "progressive.level", options.query_id,
                   obs::track(0, obs::Lane::kControl));
    span.arg("level", static_cast<std::uint64_t>(level));

    if (level == 0) {
      // Final refinement: the ordinary flat query, which reproduces the
      // non-hierarchical mesh bit-identically. The hash is forced on so
      // the identity is checkable from every progressive report.
      QueryOptions flat = options;
      flat.compute_mesh_crc = true;
      QueryEngine engine(cluster_, data_);
      QueryReport full = engine.run(isovalue, flat);

      LevelReport done;
      done.level = 0;
      done.active_metacells = full.total_active_metacells();
      done.triangles = full.total_triangles();
      for (const NodeReport& node : full.nodes) {
        done.io += node.io;
        done.io_model_seconds += node.io_model_seconds;
        done.extract_seconds +=
            node.triangulation_seconds + node.decode_cpu_seconds;
      }
      done.nodes = full.nodes;
      done.elapsed_ms = timer.seconds() * 1000.0;
      done.mesh_crc = full.mesh_crc.value_or(0);
      span.arg("triangles", done.triangles);

      report.mesh_crc = full.mesh_crc;
      report.mesh.clear();
      if (full.triangles_out.has_value()) report.mesh = *full.triangles_out;
      report.full = std::move(full);
      report.levels.push_back(std::move(done));
      report.finest_level_completed = 0;
      if (options.metrics != nullptr) {
        options.metrics->counter("progressive.levels").add();
        options.metrics->histogram("progressive.level_seconds")
            .observe(level_timer.seconds());
      }
      break;  // level 0 is always the last level
    }

    struct Stripe {
      extract::TriangleSoup soup;
      NodeReport report;
    };
    std::vector<Stripe> stripes(p);
    std::atomic<bool> aborted{false};

    std::vector<std::exception_ptr> errors =
        cluster_.run_collect([&](std::size_t node) {
          const index::CompactIntervalTree& tree = data_.trees[node];
          if (tree.record_size() == 0) return;
          index::QueryPlan plan = tree.plan_level(isovalue, level);
          Stripe& out = stripes[node];
          out.report.faults.executed_by = static_cast<std::int32_t>(node);
          if (plan.scans.empty()) return;

          std::vector<index::QueryPlan> parts;
          if (options.memory_budget_bytes > 0) {
            const std::uint64_t cap_bytes = std::max<std::uint64_t>(
                options.memory_budget_bytes / p, tree.record_size());
            parts = chop_plan(
                std::move(plan),
                static_cast<std::size_t>(std::max<std::uint64_t>(
                    1, cap_bytes / tree.record_size())));
          } else {
            parts.push_back(std::move(plan));
          }

          // Coarse records live past the chunked/replicated regions, so
          // they are read through a private raw handle — never through
          // the shared pools or a chunk-decoding wrapper.
          std::unique_ptr<io::BlockDevice> handle =
              cluster_.open_replica_view(node);
          index::RetrievalOptions ropts = options.retrieval;
          ropts.tracer = options.tracer;
          ropts.metrics = options.metrics;
          ropts.trace_pid = options.query_id;
          ropts.trace_tid = obs::track(node, obs::Lane::kIo);
          // Refinement batches are few; the synchronous path keeps the
          // budget accounting exact (every byte alive is in one batch).
          ropts.queue_depth = 0;
          // Under a budget, gap coalescing would grow a read past the
          // sub-plan's record bytes; adjacent-only merging cannot.
          if (options.memory_budget_bytes > 0) ropts.coalesce_gap_bytes = 0;

          const metacell::MetacellGeometry geometry =
              index::hierarchy_level_geometry(data_.geometry, level);
          metacell::DecodedMetacell cell;
          util::ThreadCpuTimer cpu;

          for (index::QueryPlan& part : parts) {
            index::RetrievalStream stream(std::move(part), tree.scalar_kind(),
                                          tree.record_size(), *handle, ropts);
            while (true) {
              if (!mandatory && should_stop()) {
                aborted.store(true, std::memory_order_relaxed);
                break;
              }
              if (!mandatory &&
                  stop_requested.load(std::memory_order_relaxed)) {
                after_cancel.fetch_add(1, std::memory_order_relaxed);
              }
              std::optional<index::RecordBatch> batch = stream.next();
              if (!batch.has_value()) break;

              const auto bytes =
                  static_cast<std::uint64_t>(batch->data.size());
              const std::uint64_t live =
                  live_bytes.fetch_add(bytes, std::memory_order_relaxed) +
                  bytes;
              std::uint64_t peak = peak_bytes.load(std::memory_order_relaxed);
              while (live > peak &&
                     !peak_bytes.compare_exchange_weak(
                         peak, live, std::memory_order_relaxed)) {
              }
              if (options.metrics != nullptr) {
                options.metrics->counter("progressive.batches").add();
              }

              cpu.restart();
              for (std::size_t i = 0; i < batch->record_count; ++i) {
                metacell::decode_metacell(batch->record(i),
                                          tree.scalar_kind(), geometry, cell);
                const extract::ExtractionStats stats =
                    extract::extract_metacell(cell, isovalue, out.soup,
                                              options.kernel);
                out.report.cells_classified += stats.cells_visited;
                out.report.active_cells += stats.active_cells;
                out.report.triangles += stats.triangles;
                out.report.vertex_cache_hits += stats.vertex_cache_hits;
                out.report.classify_seconds += stats.classify_seconds;
              }
              out.report.triangulation_seconds += cpu.seconds();
              out.report.active_metacells += batch->record_count;
              out.report.records_fetched += batch->records_fetched;
              out.report.io += batch->io;
              live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
            }
            out.report.io_wall_seconds += stream.io_wall_seconds();
            if (aborted.load(std::memory_order_relaxed)) break;
          }
          out.report.io_model_seconds = cluster_.disk_seconds(out.report.io);
          scale_to_fine(out.soup, level, data_.geometry.volume_dims());
        });
    for (std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    if (aborted.load(std::memory_order_relaxed)) {
      // The stop condition fired mid-level: the partial level is
      // discarded and the previous complete surface stands.
      any_aborted = true;
      break;
    }

    LevelReport done;
    done.level = level;
    std::vector<extract::TriangleSoup> soups;
    soups.reserve(p);
    for (Stripe& stripe : stripes) {
      done.active_metacells += stripe.report.active_metacells;
      done.triangles += stripe.report.triangles;
      done.io += stripe.report.io;
      done.io_model_seconds += stripe.report.io_model_seconds;
      done.extract_seconds += stripe.report.triangulation_seconds;
      done.nodes.push_back(std::move(stripe.report));
      soups.push_back(std::move(stripe.soup));
    }
    done.mesh_crc = extract::canonical_mesh_crc(soups);
    done.elapsed_ms = timer.seconds() * 1000.0;
    span.arg("triangles", done.triangles);
    span.arg("read_ops", done.io.read_ops);

    report.mesh_crc = done.mesh_crc;
    report.mesh.clear();
    for (const extract::TriangleSoup& soup : soups) report.mesh.append(soup);
    report.levels.push_back(std::move(done));
    report.finest_level_completed = level;
    if (options.metrics != nullptr) {
      options.metrics->counter("progressive.levels").add();
      options.metrics->histogram("progressive.level_seconds")
          .observe(level_timer.seconds());
    }
  }

  report.deadline_expired = deadline_hit.load(std::memory_order_relaxed);
  report.cancelled = cancel_hit.load(std::memory_order_relaxed);
  report.batches_after_cancel = after_cancel.load(std::memory_order_relaxed);
  report.peak_batch_bytes = peak_bytes.load(std::memory_order_relaxed);
  if (any_aborted && options.metrics != nullptr) {
    options.metrics->counter("progressive.cancelled_refinements").add();
  }
  return report;
}

}  // namespace oociso::pipeline
