#pragma once
// Persistence of preprocessing results ("preprocess once, query forever").
//
// The paper's preprocessing of one RM time step took ~30 minutes; nobody
// re-runs that per session. A *bundle* is the durable form of a
// PreprocessResult: a manifest file holding the dataset geometry and every
// node's serialized compact interval tree, stored next to the node brick
// files the preprocessing wrote. Reopening a file-backed cluster with
// `ClusterConfig::open_existing` and loading the bundle restores a fully
// queryable state without touching the volume data again.
//
// Bundle file layout ("OOCB" v2, little-endian):
//   u32 magic, u32 version, u32 payload CRC32, u64 payload byte count
//   payload:
//     u8  scalar kind, i32 samples_per_side, i32 nx, ny, nz (volume dims)
//     u64 total_metacells, u64 kept_metacells, u64 bricks, u64 bytes_written
//     u32 node_count, then per node: u32 byte length + CompactIntervalTree
//     serialization (see compact_interval_tree.h).
// The header CRC + length let the loader reject truncated or bit-rotted
// manifests before trusting any field; per-section lengths are validated
// against the remaining bytes and malformed input is reported with the
// file byte offset of the bad section.

#include <filesystem>

#include "pipeline/preprocess.h"

namespace oociso::pipeline {

/// Writes `<dir>/index.oocb`; throws std::runtime_error on I/O failure.
void save_bundle(const PreprocessResult& result,
                 const std::filesystem::path& dir);

/// Loads a bundle saved by save_bundle. The returned result references the
/// same brick offsets the preprocessing wrote, so the cluster opened over
/// the same storage directory (with open_existing) can query immediately.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] PreprocessResult load_bundle(const std::filesystem::path& dir);

}  // namespace oociso::pipeline
