#pragma once
// Parallel isosurface query (paper Section 5.1 + the measurement
// methodology of Section 7).
//
// For a given isovalue, every node — concurrently and with no communication:
//   1. walks its local compact interval tree and reads its stripe of the
//      active metacells from its local disk   (AMC retrieval),
//   2. runs marching cubes over them           (triangulation),
//   3. rasterizes its triangles locally        (rendering);
// then the p framebuffers are z-composited (sort-last) into the display
// image — the only communication in the whole query.
//
// Timing: AMC retrieval is priced by the cluster's disk model from the
// exact block I/O the query performed (its host wall time is additionally
// measured with a monotonic clock around the device reads, inside
// RetrievalStream); triangulation and rendering are measured CPU time on
// the node's own thread; compositing is priced by the interconnect model
// from the schedule's traffic plus measured merge CPU.
//
// Overlap: by default each node runs retrieval and triangulation as a
// two-stage pipeline — a producer thread pulls record batches from the
// node's RetrievalStream through a small bounded queue while the node's
// own thread decodes and triangulates them. The node's extraction span is
// then max(io, cpu) + fill instead of io + cpu (fill = the first batch's
// modeled I/O, which nothing can hide), and the cluster completion time is
// the max over nodes of that span plus the barrier rendering/compositing
// phases. With `overlap_io_compute = false` the engine reproduces the
// strict BSP accounting the paper's formulas use.

#include <cstdint>
#include <optional>
#include <vector>

#include "compositing/sort_last.h"
#include "extract/mesh.h"
#include "pipeline/preprocess.h"
#include "parallel/time_ledger.h"
#include "render/framebuffer.h"

namespace oociso::pipeline {

enum class CompositeSchedule { kBinarySwap, kDirectSend };

struct QueryOptions {
  bool render = true;
  std::int32_t image_width = 512;
  std::int32_t image_height = 512;
  CompositeSchedule schedule = CompositeSchedule::kBinarySwap;
  bool keep_triangles = false;  ///< merge per-node soups into the report
  bool keep_image = false;      ///< keep the composited framebuffer
  /// Pipeline each node's retrieval with its triangulation (prefetch the
  /// next record batch while marching cubes runs on the current one).
  bool overlap_io_compute = true;
  /// Bounded-queue depth of the per-node pipeline, in batches. Bounds
  /// prefetch memory; 0 is clamped to 1 (fully synchronous hand-off).
  std::size_t pipeline_depth = 4;
};

struct NodeReport {
  std::uint64_t active_metacells = 0;
  std::uint64_t records_fetched = 0;  ///< incl. Case-2 overshoot
  std::uint64_t triangles = 0;
  io::IoStats io;                    ///< this query's block I/O on the node
  double io_model_seconds = 0.0;     ///< disk-model price of `io`
  double io_wall_seconds = 0.0;      ///< wall clock inside device reads
  double triangulation_seconds = 0.0;
  double rendering_seconds = 0.0;
  /// Modeled seconds the retrieval/triangulation pipeline hid on this node
  /// (io + cpu − (max(io, cpu) + fill)); 0 when the query ran serial.
  double overlap_saved_seconds = 0.0;
  /// Modeled I/O of the first batch — the pipeline fill the compute stage
  /// had to wait for.
  double pipeline_fill_seconds = 0.0;
};

struct QueryReport {
  core::ValueKey isovalue = 0;
  std::vector<NodeReport> nodes;
  parallel::ClusterTimes times;
  compositing::TrafficStats composite_traffic;
  double composite_model_seconds = 0.0;

  std::optional<extract::TriangleSoup> triangles_out;
  std::optional<render::Framebuffer> image;

  [[nodiscard]] std::uint64_t total_active_metacells() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes) total += node.active_metacells;
    return total;
  }
  [[nodiscard]] std::uint64_t total_triangles() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes) total += node.triangles;
    return total;
  }
  /// Cluster completion time: the extraction window (pipelined per-node
  /// span, or per-phase BSP maxima when run serial) plus rendering and
  /// compositing.
  [[nodiscard]] double completion_seconds() const {
    return times.completion_seconds();
  }
  /// The paper's headline metric, millions of triangles per second.
  [[nodiscard]] double mtri_per_second() const {
    const double seconds = completion_seconds();
    return seconds > 0.0
               ? static_cast<double>(total_triangles()) / seconds / 1e6
               : 0.0;
  }
};

/// Runs isovalue queries against a preprocessed, striped dataset.
class QueryEngine {
 public:
  /// `result` must outlive the engine; `cluster` provides disks and models.
  QueryEngine(parallel::Cluster& cluster, const PreprocessResult& result);

  [[nodiscard]] QueryReport run(core::ValueKey isovalue,
                                const QueryOptions& options = {});

 private:
  parallel::Cluster& cluster_;
  const PreprocessResult& data_;
};

}  // namespace oociso::pipeline
