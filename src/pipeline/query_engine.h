#pragma once
// Parallel isosurface query (paper Section 5.1 + the measurement
// methodology of Section 7).
//
// For a given isovalue, every node — concurrently and with no communication:
//   1. walks its local compact interval tree and reads its stripe of the
//      active metacells from its local disk   (AMC retrieval),
//   2. runs marching cubes over them           (triangulation),
//   3. rasterizes its triangles locally        (rendering);
// then the p framebuffers are z-composited (sort-last) into the display
// image — the only communication in the whole query.
//
// Timing: AMC retrieval is priced by the cluster's disk model from the
// exact block I/O the query performed (its host wall time is additionally
// measured with a monotonic clock around the device reads, inside
// RetrievalStream); triangulation and rendering are measured CPU time on
// the node's own thread; compositing is priced by the interconnect model
// from the schedule's traffic plus measured merge CPU.
//
// Overlap: by default each node runs retrieval and triangulation as a
// two-stage pipeline — a producer thread pulls record batches from the
// node's RetrievalStream through a small bounded queue while the node's
// own thread decodes and triangulates them. The node's extraction span is
// then max(io, cpu) + fill instead of io + cpu (fill = the first batch's
// modeled I/O, which nothing can hide), and the cluster completion time is
// the max over nodes of that span plus the barrier rendering/compositing
// phases. With `overlap_io_compute = false` the engine reproduces the
// strict BSP accounting the paper's formulas use.

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "compositing/sort_last.h"
#include "extract/kernel.h"
#include "extract/mesh.h"
#include "index/retrieval_stream.h"
#include "io/fault_injection.h"
#include "pipeline/preprocess.h"
#include "parallel/time_ledger.h"
#include "render/framebuffer.h"

namespace oociso::pipeline {

enum class CompositeSchedule { kBinarySwap, kDirectSend };

struct QueryOptions {
  bool render = true;
  std::int32_t image_width = 512;
  std::int32_t image_height = 512;
  CompositeSchedule schedule = CompositeSchedule::kBinarySwap;
  bool keep_triangles = false;  ///< merge per-node soups into the report
  bool keep_image = false;      ///< keep the composited framebuffer
  /// Pipeline each node's retrieval with its triangulation (prefetch the
  /// next record batch while marching cubes runs on the current one).
  bool overlap_io_compute = true;
  /// Bounded-queue depth of the per-node pipeline: how many record batches
  /// the I/O stage may read ahead of triangulation. Bounds prefetch memory;
  /// 0 is clamped to 1 (fully synchronous hand-off). Deeper readahead hides
  /// more I/O jitter, and the ledger charges it faithfully from the
  /// per-batch times (TimeLedger::add_extraction_pipelined).
  std::size_t readahead_batches = 4;

  // ---- extraction kernel --------------------------------------------------
  /// Which marching-cubes classification kernel every node runs (auto =
  /// the widest ISA the host supports; see extract/kernel.h). Resolved
  /// once up front, so an explicitly requested unavailable ISA fails the
  /// query loudly (std::runtime_error) instead of per stripe. The mesh is
  /// bit-identical across ISAs; only classify throughput changes.
  extract::KernelOptions kernel;
  /// Compute the canonical content hash of the extracted mesh
  /// (extract::canonical_mesh_crc over the per-node soups) into
  /// QueryReport::mesh_crc — works with or without keep_triangles. Off by
  /// default: sorting every triangle costs more than extracting them.
  bool compute_mesh_crc = false;

  // ---- fault tolerance ----------------------------------------------------
  /// Wrap every node's disk in a FaultInjectingBlockDevice for this query.
  /// Node i derives its schedule seed as `seed + 0x9E3779B97F4A7C15 * i` so
  /// the nodes see independent fault sequences; read ordinals restart at 0
  /// each run, making the schedule a pure function of the options.
  std::optional<io::FaultConfig> inject_faults;
  /// Nodes whose disks fail every read this query (a dead node program):
  /// they exhaust the retry budget and, with `failover`, a healthy peer
  /// takes over their stripe.
  std::vector<std::size_t> dead_nodes;
  /// Retry policy and checksum verification applied to every node's
  /// retrieval stream.
  index::RetrievalOptions retrieval;
  /// Re-execute a failed node's stripe on a healthy peer against a fresh
  /// read-only handle of the node's brick store (see Cluster::open_readonly)
  /// instead of failing the whole query. The mesh stays bit-identical; the
  /// report is flagged degraded. With `false`, the first node error is
  /// rethrown after all nodes settle.
  bool failover = true;

  // ---- replica routing ----------------------------------------------------
  /// Route each node's reads across its placement groups' replica holders
  /// when the index was built with replication k > 1 (no effect otherwise):
  /// healthy holders share the load, and a read that exhausts its
  /// per-holder budget fails over to the next replica — brick-granular,
  /// charged as a hedge, without abandoning the stripe. Meshes stay
  /// bit-identical to the primary-only run under any routing or failure
  /// pattern. With `false` a replicated index is read primary-only, exactly
  /// like an unreplicated one.
  bool route_replicas = true;
  /// Shared per-node health tracker (optional; see placement/health.h).
  /// Tripped holders are skipped by routing up front and probed for
  /// recovery, so one query's dead node is the next query's avoided node.
  /// The serve layer passes its own tracker; one-shot runs may leave null.
  placement::NodeHealthTracker* health = nullptr;

  // ---- concurrent serving -------------------------------------------------
  /// Read every node's stripe through the cluster's shared per-node pool
  /// (Cluster::enable_shared_cache) instead of the raw disk: warm frames
  /// cost no device I/O and concurrent queries single-flight their
  /// overlapping reads. Results stay bit-identical to the uncached path —
  /// only NodeReport.io (now the physical miss traffic) and the modeled
  /// retrieval charge change. Requires the cluster cache to be enabled
  /// (std::logic_error otherwise) and excludes per-query `inject_faults`
  /// (std::invalid_argument — inject at the cluster level instead, where
  /// the fault stream is coherent across the queries sharing frames).
  /// `dead_nodes` still works: a dead node's reads bypass the pool through
  /// its fail-all injector, and the failover peer re-executes the stripe
  /// through the dead node's pool.
  bool use_shared_cache = false;

  // ---- progressive refinement ---------------------------------------------
  // Consumed by pipeline::ProgressiveEngine (progressive.h) and the serve
  // layer's query_progressive; QueryEngine::run ignores them — a flat query
  // has no levels to bound.
  /// Wall-clock deadline in milliseconds from the start of the progressive
  /// run. 0 = none. The coarsest level always completes (the "some surface"
  /// guarantee); once the deadline passes, no further refinement level is
  /// started and no further batch is issued within a level.
  double deadline_ms = 0.0;
  /// Bound on refinement batch bytes concurrently in flight across the
  /// cluster's node programs. 0 = none. Coarse-level plans are chopped so a
  /// node's batch never exceeds budget/p bytes, and batch coalescing stops
  /// bridging gaps (see DESIGN §16 for the exact scope of the bound).
  std::uint64_t memory_budget_bytes = 0;
  /// Stop refining once this level completes (0 = refine to full
  /// resolution, which reproduces the flat mesh bit-identically; 2 = stop
  /// at coarse level 2). Clamped to the coarsest stored level.
  std::int32_t max_level = 0;
  /// External cancellation flag polled between levels and between batches
  /// (null = none). Like the deadline, it never interrupts the coarsest
  /// level.
  std::atomic<bool>* cancel = nullptr;

  // ---- observability ------------------------------------------------------
  /// Trace sink (null = off). Every span of this query carries pid =
  /// `query_id` and tid = obs::track(node, lane): retrieval/scheduling on
  /// the node's I/O lane, triangulation and rendering on its compute lane,
  /// compositing on the control lane. The "node.extract" span's args carry
  /// the per-node report totals (read_ops, bytes, cache blocks, modeled
  /// I/O), which is what lets a test reconcile the trace against the
  /// QueryReport mechanically.
  obs::Tracer* tracer = nullptr;
  /// Metrics sink (null = off): `mc.*` kernel totals, `query.*` phase
  /// histograms (one observation per node per query), `faults.*` injected /
  /// failover counters — all reconciled against the report by tests.
  obs::MetricsRegistry* metrics = nullptr;
  /// Chrome pid for this query's spans; serve assigns a fresh id per
  /// admitted query so concurrent traffic separates into process groups.
  std::uint32_t query_id = 0;
};

/// Per-node fault-handling outcome for one query. All-zero (with
/// executed_by == the node itself) on a clean run.
struct FaultReport {
  /// Faults the node's retrieval stream saw and absorbed (or, for the last
  /// error of an exhausted retry budget, propagated).
  index::RetrievalFaults retrieval;
  // What the node's injector actually did — zero without inject_faults.
  std::uint64_t injected_read_failures = 0;
  std::uint64_t injected_corrupted_reads = 0;
  std::uint64_t injected_stalls = 0;
  double stall_modeled_seconds = 0.0;  ///< modeled latency spikes absorbed
  /// Times this node's stripe had to be re-executed by a peer.
  std::uint32_t failovers = 0;
  /// Node whose program finally produced this stripe's mesh (== the node
  /// itself unless it failed over); -1 when the stripe was never produced.
  std::int32_t executed_by = -1;
  /// Message of the error that killed the node's own program, if any.
  std::string error;
};

struct NodeReport {
  std::uint64_t active_metacells = 0;
  std::uint64_t records_fetched = 0;  ///< incl. Case-2 overshoot
  std::uint64_t triangles = 0;
  /// Marching-cubes kernel counters for this stripe: every cell the
  /// classify pass graded, the cells that produced triangles, and the
  /// shared-edge interpolations served from the rolling vertex caches.
  std::uint64_t cells_classified = 0;
  std::uint64_t active_cells = 0;
  std::uint64_t vertex_cache_hits = 0;
  /// Thread-CPU seconds in the kernel's plane-staging + classify phase (a
  /// subset of triangulation_seconds) — the denominator of the
  /// classified-cells/s throughput the SIMD dispatch is gated on.
  double classify_seconds = 0.0;
  io::IoStats io;                    ///< this query's block I/O on the node
  double io_model_seconds = 0.0;     ///< disk-model price of `io`
  double io_wall_seconds = 0.0;      ///< wall clock inside device reads
  double triangulation_seconds = 0.0;
  double rendering_seconds = 0.0;
  /// Thread-CPU seconds this stripe spent decoding compressed chunks
  /// (codec/decoding_device.h); 0 for an uncompressed index. Charged to the
  /// I/O side of the extraction window — decode happens on the fetch path
  /// (producer thread, async completion, or shared-pool claim), never on
  /// the triangulation thread.
  double decode_cpu_seconds = 0.0;
  /// Modeled seconds the retrieval/triangulation pipeline hid on this node
  /// (io + cpu − (max(io, cpu) + fill)); 0 when the query ran serial.
  double overlap_saved_seconds = 0.0;
  /// Modeled I/O of the first batch — the pipeline fill the compute stage
  /// had to wait for.
  double pipeline_fill_seconds = 0.0;
  /// Modeled host turnaround charged by the async submission queue (see
  /// RetrievalOptions::queue_depth); folded into the extraction window like
  /// backoff, 0 when the query ran the synchronous path.
  double turnaround_modeled_seconds = 0.0;
  /// Shared-pool accounting for this node's stripe (zeros unless the query
  /// ran with use_shared_cache); `io` above is then the physical miss
  /// traffic, and hit_blocks were served without touching the device.
  io::CacheReadStats cache;
  /// Per-holder serving counters for THIS stripe's reads (index = serving
  /// node; empty unless the query routed across replicas). The sum of the
  /// entries' `io` equals `io` above; failures are exhausted-holder (hedge)
  /// events charged to the holder that exhausted.
  std::vector<index::RouteCounters> routed;
  FaultReport faults;
};

struct QueryReport {
  core::ValueKey isovalue = 0;
  /// The concrete classification ISA every stripe of this query ran
  /// (QueryOptions::kernel resolved — never kAuto).
  extract::KernelIsa kernel_isa = extract::KernelIsa::kScalar;
  /// Canonical mesh hash, present when QueryOptions::compute_mesh_crc was
  /// set — the cross-ISA identity gate's anchor.
  std::optional<std::uint32_t> mesh_crc;
  /// True when the query did not run entirely on first-choice resources:
  /// a node program failed and its stripe was produced by a peer (whole
  /// stripe takeover), or a read exhausted one holder and was hedged onto a
  /// replica (brick-granular failover). The mesh is complete and
  /// bit-identical to a clean run either way; only timing and routing
  /// reflect the degradation. Healthy load-balance routing alone never sets
  /// this.
  bool degraded = false;
  std::vector<NodeReport> nodes;
  parallel::ClusterTimes times;
  compositing::TrafficStats composite_traffic;
  double composite_model_seconds = 0.0;

  std::optional<extract::TriangleSoup> triangles_out;
  std::optional<render::Framebuffer> image;

  [[nodiscard]] std::uint64_t total_active_metacells() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes) total += node.active_metacells;
    return total;
  }
  [[nodiscard]] std::uint64_t total_triangles() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes) total += node.triangles;
    return total;
  }
  [[nodiscard]] std::uint64_t total_cells_classified() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes) total += node.cells_classified;
    return total;
  }
  [[nodiscard]] std::uint64_t total_active_cells() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes) total += node.active_cells;
    return total;
  }
  [[nodiscard]] std::uint64_t total_vertex_cache_hits() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes) total += node.vertex_cache_hits;
    return total;
  }
  [[nodiscard]] double total_classify_seconds() const {
    double total = 0.0;
    for (const auto& node : nodes) total += node.classify_seconds;
    return total;
  }
  /// Cells graded per classify-CPU second — the SIMD dispatch's headline
  /// metric (0 when the classify phase was too fast to register).
  [[nodiscard]] double classified_cells_per_second() const {
    const double seconds = total_classify_seconds();
    return seconds > 0.0
               ? static_cast<double>(total_cells_classified()) / seconds
               : 0.0;
  }
  /// Cluster-wide fault summary (retrieval counters summed over nodes;
  /// failovers summed over stripes).
  [[nodiscard]] index::RetrievalFaults total_retrieval_faults() const {
    index::RetrievalFaults total;
    for (const auto& node : nodes) total.merge(node.faults.retrieval);
    return total;
  }
  [[nodiscard]] std::uint32_t total_failovers() const {
    std::uint32_t total = 0;
    for (const auto& node : nodes) total += node.faults.failovers;
    return total;
  }
  /// Cluster-wide decode CPU (0 for an uncompressed index).
  [[nodiscard]] double total_decode_cpu_seconds() const {
    double total = 0.0;
    for (const auto& node : nodes) total += node.decode_cpu_seconds;
    return total;
  }
  /// Device I/O served BY `node` across every stripe of this query —
  /// routing-aware: a routed stripe's reads are credited to the holders
  /// that actually served them, an unrouted stripe's to its own store
  /// (takeover re-executions read the dead node's store, so they stay
  /// charged to that store). Equals nodes[node].io for unrouted queries.
  [[nodiscard]] io::IoStats served_io(std::size_t node) const {
    io::IoStats total;
    for (std::size_t s = 0; s < nodes.size(); ++s) {
      if (!nodes[s].routed.empty()) {
        total += nodes[s].routed.at(node).io;
      } else if (s == node) {
        total += nodes[s].io;
      }
    }
    return total;
  }

  /// Cluster-wide shared-cache summary (all zeros for uncached queries).
  [[nodiscard]] io::CacheReadStats total_cache() const {
    io::CacheReadStats total;
    for (const auto& node : nodes) total.merge(node.cache);
    return total;
  }
  /// Cluster completion time: the extraction window (pipelined per-node
  /// span, or per-phase BSP maxima when run serial) plus rendering and
  /// compositing.
  [[nodiscard]] double completion_seconds() const {
    return times.completion_seconds();
  }
  /// The paper's headline metric, millions of triangles per second.
  [[nodiscard]] double mtri_per_second() const {
    const double seconds = completion_seconds();
    return seconds > 0.0
               ? static_cast<double>(total_triangles()) / seconds / 1e6
               : 0.0;
  }
};

/// Runs isovalue queries against a preprocessed, striped dataset.
class QueryEngine {
 public:
  /// `result` must outlive the engine; `cluster` provides disks and models.
  QueryEngine(parallel::Cluster& cluster, const PreprocessResult& result);

  [[nodiscard]] QueryReport run(core::ValueKey isovalue,
                                const QueryOptions& options = {});

 private:
  /// Node `node`'s raw↔device chunk map, or nullptr for an uncompressed
  /// index — raw-path programs wrap their device handles in a private
  /// codec::ChunkDecodingDevice over it (the shared-cache path decodes
  /// inside the transport's pool stack instead).
  [[nodiscard]] const codec::ChunkMap* chunk_map_for(std::size_t node) const {
    if (chunk_maps_.empty() || chunk_maps_[node].empty()) return nullptr;
    return &chunk_maps_[node];
  }

  parallel::Cluster& cluster_;
  const PreprocessResult& data_;
  /// Per-node chunk maps built from the trees at construction (empty for an
  /// uncompressed index); include the rebased replica extents, so routed
  /// reads against any holder decode through the same map family.
  std::vector<codec::ChunkMap> chunk_maps_;
};

}  // namespace oociso::pipeline
