#pragma once
// Fully out-of-core preprocessing (paper Section 7: "we scan the data once
// and create the metacells"; a full RM time step is 7.5 GB against 8 GB of
// RAM, so the volume is never resident).
//
// Two phases, both bounded-memory:
//   A. *Scan*: the raw volume file is streamed in z-slabs of
//      samples_per_side rows (one metacell layer plus its one-sample
//      overlap). Each slab yields the layer's metacell intervals, and each
//      non-degenerate metacell's record is appended to a scratch store in
//      id order. One strictly sequential pass over the input; memory =
//      one slab.
//   B. *Arrange*: the compact-interval-tree shape is built from the
//      collected intervals (tiny, in core) and the brick layout is written
//      by re-reading records from the scratch store in brick order through
//      a BufferPool of `memory_budget_bytes` — the external-permutation
//      step whose cost the paper likens to an external sort.
//
// The result is bit-identical in layout to pipeline::preprocess() on the
// same data, so everything downstream (QueryEngine, bundles) is unchanged.

#include <filesystem>

#include "pipeline/preprocess.h"

namespace oociso::pipeline {

struct OocPreprocessConfig {
  std::int32_t samples_per_side = 9;
  /// BufferPool capacity for phase B's scratch reads.
  std::uint64_t memory_budget_bytes = 64ull << 20;
};

struct OocPreprocessResult {
  PreprocessResult result;
  io::IoStats scan_io;      ///< phase-A raw-volume reads (sequential)
  io::IoStats scratch_io;   ///< scratch store traffic, both phases
  double scan_seconds = 0.0;
  double arrange_seconds = 0.0;
};

/// Preprocesses an OOCV volume file (see data/raw_io.h) that is assumed not
/// to fit in memory. `scratch_dir` receives the intermediate id-order
/// record store (deleted on success). Throws std::runtime_error on
/// malformed input.
[[nodiscard]] OocPreprocessResult preprocess_out_of_core(
    const std::filesystem::path& volume_file, parallel::Cluster& cluster,
    const std::filesystem::path& scratch_dir,
    const OocPreprocessConfig& config = {});

}  // namespace oociso::pipeline
