#include "pipeline/timevarying.h"

#include <algorithm>
#include <stdexcept>

#include "metacell/source.h"

namespace oociso::pipeline {

void TimeVaryingEngine::preprocess_steps(int first, int count) {
  for (int step = first; step < first + count; ++step) {
    if (std::find(step_ids_.begin(), step_ids_.end(), step) !=
        step_ids_.end()) {
      throw std::invalid_argument("time step already preprocessed");
    }
    const auto source = metacell::make_source(provider_(step),
                                              samples_per_side_);
    PreprocessConfig config;
    config.samples_per_side = samples_per_side_;
    step_data_.push_back(preprocess(*source, cluster_, config));
    step_ids_.push_back(step);
  }
}

const PreprocessResult& TimeVaryingEngine::step_data(int step) const {
  for (std::size_t i = 0; i < step_ids_.size(); ++i) {
    if (step_ids_[i] == step) return step_data_[i];
  }
  throw std::out_of_range("time step not preprocessed");
}

QueryReport TimeVaryingEngine::query(int step, core::ValueKey isovalue,
                                     const QueryOptions& options) {
  QueryEngine engine(cluster_, step_data(step));
  if (use_shared_cache_ && !options.use_shared_cache) {
    QueryOptions cached = options;
    cached.use_shared_cache = true;
    return engine.run(isovalue, cached);
  }
  return engine.run(isovalue, options);
}

void TimeVaryingEngine::enable_shared_cache(std::size_t capacity_blocks) {
  if (cluster_.cache(0) == nullptr) {
    cluster_.enable_shared_cache(capacity_blocks);
  }
  use_shared_cache_ = true;
}

std::uint64_t TimeVaryingEngine::total_index_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& data : step_data_) bytes += data.index_bytes();
  return bytes;
}

}  // namespace oociso::pipeline
