#include "pipeline/timevarying.h"

#include <algorithm>
#include <stdexcept>

#include "metacell/source.h"

namespace oociso::pipeline {

void TimeVaryingEngine::preprocess_steps(int first, int count) {
  const bool compressed = compression_ != codec::Codec::kRaw;
  if (compressed && cluster_.cache(0) != nullptr) {
    // The pools decode through the chunk maps installed when the cache came
    // up; bricks appended afterwards would be invisible to that map.
    throw std::logic_error(
        "TimeVaryingEngine: preprocess all compressed steps before enabling "
        "the shared cache");
  }
  for (int step = first; step < first + count; ++step) {
    if (std::find(step_ids_.begin(), step_ids_.end(), step) !=
        step_ids_.end()) {
      throw std::invalid_argument("time step already preprocessed");
    }
    const auto source = metacell::make_source(provider_(step),
                                              samples_per_side_);
    PreprocessConfig config;
    config.samples_per_side = samples_per_side_;
    config.compression = compression_;
    if (compressed && !union_maps_.empty()) {
      // Continue each node's raw address space past every earlier step so
      // the per-step maps stay disjoint and merge into one union map.
      config.raw_bases.resize(cluster_.size());
      for (std::size_t d = 0; d < cluster_.size(); ++d) {
        config.raw_bases[d] = union_maps_[d].raw_end();
      }
    }
    step_data_.push_back(preprocess(*source, cluster_, config));
    step_ids_.push_back(step);
    if (compressed) {
      if (union_maps_.empty()) union_maps_.resize(cluster_.size());
      index::append_chunk_maps(union_maps_, step_data_.back().trees);
    }
  }
}

const PreprocessResult& TimeVaryingEngine::step_data(int step) const {
  for (std::size_t i = 0; i < step_ids_.size(); ++i) {
    if (step_ids_[i] == step) return step_data_[i];
  }
  throw std::out_of_range("time step not preprocessed");
}

QueryReport TimeVaryingEngine::query(int step, core::ValueKey isovalue,
                                     const QueryOptions& options) {
  QueryEngine engine(cluster_, step_data(step));
  if (use_shared_cache_ && !options.use_shared_cache) {
    QueryOptions cached = options;
    cached.use_shared_cache = true;
    return engine.run(isovalue, cached);
  }
  return engine.run(isovalue, options);
}

void TimeVaryingEngine::enable_shared_cache(std::size_t capacity_blocks) {
  if (cluster_.cache(0) == nullptr) {
    // Compressed steps: pools must decode through the union of every
    // step's chunk maps, so warm frames stay valid across step sweeps.
    if (!union_maps_.empty()) cluster_.set_chunk_maps(union_maps_);
    cluster_.enable_shared_cache(capacity_blocks);
  }
  use_shared_cache_ = true;
}

std::uint64_t TimeVaryingEngine::total_index_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& data : step_data_) bytes += data.index_bytes();
  return bytes;
}

}  // namespace oociso::pipeline
