#pragma once
// Preprocessing stage (paper Section 4 + 7): volume -> culled metacells ->
// compact-interval-tree brick layout striped across the cluster's local
// disks. One pass over the data; the paper reports ~30 minutes per RM time
// step on its hardware, and ~50% of the raw size culled as constant
// metacells.

#include <cstdint>
#include <vector>

#include "index/compact_interval_tree.h"
#include "metacell/source.h"
#include "parallel/cluster.h"

namespace oociso::pipeline {

struct PreprocessConfig {
  std::int32_t samples_per_side = 9;  ///< paper's metacell size for RM
  bool cull_degenerate = true;
  /// Brick replication across node stores (placement/replica_map.h).
  /// `placement.node_count` is overwritten with the cluster size; with
  /// `placement.replication == 1` (default) the layout is bit-identical to
  /// an unreplicated build. k > 1 appends each placement group's bytes to
  /// its k-1 rendezvous-chosen replica stores after the primary pass, so
  /// primary offsets never shift.
  placement::PlacementConfig placement{};
  /// Per-chunk lossless compression of the brick payload (codec/codec.h).
  /// kRaw (default) keeps the on-disk bytes bit-identical to an
  /// uncompressed build; kLz writes index-format v4 with byte-shuffle + LZ
  /// chunks and raw-space addressing, decoded on fetch at query time.
  codec::Codec compression = codec::Codec::kRaw;
  /// Per-device starting raw offsets for a compressed build that appends
  /// after earlier compressed data (time-varying steps): raw address spaces
  /// of consecutive steps must stay disjoint even though the device cursor
  /// (compressed bytes) trails the raw cursor. Empty = start at each
  /// device's current size (fresh store). Ignored for kRaw.
  std::vector<std::uint64_t> raw_bases;
  /// Total resolution levels including the full-resolution one
  /// (index/hierarchy.h). 1 (default) builds the flat index, byte-identical
  /// to every earlier version; N > 1 appends N-1 coarse mip levels and
  /// serializes the trees as v5 for progressive refinement.
  std::int32_t levels = 1;
};

struct PreprocessResult {
  /// Per-node compact interval trees (tree i indexes node i's stripe).
  std::vector<index::CompactIntervalTree> trees;
  metacell::MetacellGeometry geometry;
  core::ScalarKind kind = core::ScalarKind::kU8;

  std::uint64_t total_metacells = 0;  ///< before culling
  std::uint64_t kept_metacells = 0;   ///< after culling
  std::uint64_t bricks = 0;           ///< global (pre-striping) bricks
  std::uint64_t bytes_written = 0;    ///< raw payload across all node disks
  /// Physical device bytes of the primary payload (== bytes_written for an
  /// uncompressed build; smaller under compression).
  std::uint64_t compressed_bytes_written = 0;
  std::uint64_t replica_bytes_written = 0;  ///< replica copies (k > 1 only)
  /// Hierarchy pass (levels > 1 only): coarse nodes and their device bytes.
  std::uint64_t hierarchy_nodes_written = 0;
  std::uint64_t hierarchy_bytes_written = 0;
  std::uint64_t raw_bytes = 0;        ///< size of the raw scalar volume
  double elapsed_seconds = 0.0;

  /// Fraction of metacells culled (paper: ~0.5 for RM).
  [[nodiscard]] double culled_fraction() const {
    return total_metacells == 0
               ? 0.0
               : 1.0 - static_cast<double>(kept_metacells) /
                           static_cast<double>(total_metacells);
  }

  /// In-core index bytes summed over the nodes.
  [[nodiscard]] std::uint64_t index_bytes() const {
    std::uint64_t bytes = 0;
    for (const auto& tree : trees) bytes += tree.size_bytes();
    return bytes;
  }

  /// Stored coarse hierarchy levels (0 for a flat build). Every tree of a
  /// build carries the same level list.
  [[nodiscard]] std::size_t hierarchy_levels() const {
    return trees.empty() ? 0 : trees.front().hierarchy_levels();
  }
};

/// Scans, culls, bricks, and stripes `source` onto the cluster's disks.
[[nodiscard]] PreprocessResult preprocess(
    const metacell::MetacellSource& source, parallel::Cluster& cluster,
    const PreprocessConfig& config = {});

}  // namespace oociso::pipeline
