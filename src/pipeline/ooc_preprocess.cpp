#include "pipeline/ooc_preprocess.h"

#include <algorithm>
#include <cstring>

#include "io/buffer_pool.h"
#include "io/file_block_device.h"
#include "io/serial.h"
#include "util/timer.h"

namespace oociso::pipeline {
namespace {

struct OocvHeader {
  core::ScalarKind kind;
  core::GridDims dims;
  std::uint64_t payload_offset;
};

/// Parses the OOCV header through the device (see data/raw_io.h layout).
OocvHeader parse_header(io::BlockDevice& device) {
  std::array<std::byte, 24> raw{};
  if (device.size() < raw.size()) {
    throw std::runtime_error("ooc preprocess: volume file too small");
  }
  device.read(0, raw);
  io::ByteReader reader(raw);
  if (reader.get<std::uint32_t>() != 0x56434F4F) {  // "OOCV" little-endian
    throw std::runtime_error("ooc preprocess: bad OOCV magic");
  }
  if (reader.get<std::uint32_t>() != 1) {
    throw std::runtime_error("ooc preprocess: unsupported OOCV version");
  }
  OocvHeader header{};
  header.kind = static_cast<core::ScalarKind>(reader.get<std::uint8_t>());
  reader.skip(3);
  header.dims.nx = reader.get<std::int32_t>();
  header.dims.ny = reader.get<std::int32_t>();
  header.dims.nz = reader.get<std::int32_t>();
  header.payload_offset = raw.size();
  if (header.dims.nx <= 0 || header.dims.ny <= 0 || header.dims.nz <= 0) {
    throw std::runtime_error("ooc preprocess: bad dimensions");
  }
  return header;
}

/// One z-slab of raw samples plus typed min/max/copy helpers.
class Slab {
 public:
  Slab(const OocvHeader& header, std::int32_t rows)
      : header_(header),
        scalar_(core::scalar_size(header.kind)),
        rows_(rows),
        bytes_(static_cast<std::size_t>(header.dims.nx) *
               static_cast<std::size_t>(header.dims.ny) *
               static_cast<std::size_t>(rows) * scalar_) {
    data_.resize(bytes_);
  }

  /// Loads sample rows [z0, z0+count) from the device (count <= rows()).
  void load(io::BlockDevice& device, std::int32_t z0, std::int32_t count) {
    z0_ = z0;
    loaded_rows_ = count;
    const std::uint64_t row_bytes = static_cast<std::uint64_t>(header_.dims.nx) *
                                    static_cast<std::uint64_t>(header_.dims.ny) *
                                    scalar_;
    device.read(header_.payload_offset +
                    static_cast<std::uint64_t>(z0) * row_bytes,
                std::span(data_.data(),
                          static_cast<std::size_t>(
                              static_cast<std::uint64_t>(count) * row_bytes)));
  }

  /// Raw pointer to sample (x, y, z) with z clamped into the loaded rows
  /// (border padding, exactly as metacell::encode_metacell clamps).
  [[nodiscard]] const std::byte* sample_ptr(std::int32_t x, std::int32_t y,
                                            std::int32_t z) const {
    const std::int32_t local_z =
        std::clamp(z - z0_, 0, loaded_rows_ - 1);
    const std::size_t index =
        (static_cast<std::size_t>(local_z) *
             static_cast<std::size_t>(header_.dims.ny) +
         static_cast<std::size_t>(y)) *
            static_cast<std::size_t>(header_.dims.nx) +
        static_cast<std::size_t>(x);
    return data_.data() + index * scalar_;
  }

  [[nodiscard]] std::size_t scalar() const { return scalar_; }

 private:
  OocvHeader header_;
  std::size_t scalar_;
  std::int32_t rows_;
  std::size_t bytes_;
  std::vector<std::byte> data_;
  std::int32_t z0_ = 0;
  std::int32_t loaded_rows_ = 0;
};

/// Widens a raw scalar to the comparison key.
core::ValueKey key_of(const std::byte* p, core::ScalarKind kind) {
  switch (kind) {
    case core::ScalarKind::kU8: {
      std::uint8_t v;
      std::memcpy(&v, p, 1);
      return static_cast<core::ValueKey>(v);
    }
    case core::ScalarKind::kU16: {
      std::uint16_t v;
      std::memcpy(&v, p, 2);
      return static_cast<core::ValueKey>(v);
    }
    case core::ScalarKind::kF32: {
      float v;
      std::memcpy(&v, p, 4);
      return v;
    }
  }
  throw std::runtime_error("bad scalar kind");
}

/// Phase-B metacell source: records live in the id-order scratch store.
class ScratchRecordSource final : public metacell::MetacellSource {
 public:
  ScratchRecordSource(metacell::MetacellGeometry geometry,
                      core::ScalarKind kind,
                      std::vector<metacell::MetacellInfo> infos,
                      io::BufferPool& scratch)
      : geometry_(std::move(geometry)),
        kind_(kind),
        infos_(std::move(infos)),
        scratch_(scratch) {
    ids_.reserve(infos_.size());
    for (const auto& info : infos_) ids_.push_back(info.id);  // id-ascending
  }

  [[nodiscard]] const metacell::MetacellGeometry& geometry() const override {
    return geometry_;
  }
  [[nodiscard]] core::ScalarKind kind() const override { return kind_; }
  [[nodiscard]] std::vector<metacell::MetacellInfo> scan() const override {
    return infos_;
  }
  void encode(std::uint32_t id, std::vector<std::byte>& out) const override {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it == ids_.end() || *it != id) {
      throw std::logic_error("scratch source: unknown metacell id");
    }
    const auto slot = static_cast<std::uint64_t>(it - ids_.begin());
    const std::size_t record = record_size();
    const std::size_t old_size = out.size();
    out.resize(old_size + record);
    scratch_.read(slot * record, std::span(out.data() + old_size, record));
  }

 private:
  metacell::MetacellGeometry geometry_;
  core::ScalarKind kind_;
  std::vector<metacell::MetacellInfo> infos_;
  std::vector<std::uint32_t> ids_;
  io::BufferPool& scratch_;
};

}  // namespace

OocPreprocessResult preprocess_out_of_core(
    const std::filesystem::path& volume_file, parallel::Cluster& cluster,
    const std::filesystem::path& scratch_dir,
    const OocPreprocessConfig& config) {
  io::FileBlockDevice volume(volume_file, io::FileBlockDevice::Mode::kReadOnly);
  const OocvHeader header = parse_header(volume);
  const metacell::MetacellGeometry geometry(header.dims,
                                            config.samples_per_side);
  const std::int32_t k = config.samples_per_side;
  const core::GridDims mdims = geometry.metacell_dims();
  const std::size_t scalar = core::scalar_size(header.kind);
  const std::size_t record_size = metacell::record_size(header.kind, k);

  std::filesystem::create_directories(scratch_dir);
  const auto scratch_path = scratch_dir / "records.scratch";
  io::FileBlockDevice scratch(scratch_path, io::FileBlockDevice::Mode::kCreate);

  OocPreprocessResult ooc;
  util::WallTimer scan_timer;

  // ---- Phase A: sequential slab scan -------------------------------------
  std::vector<metacell::MetacellInfo> infos;
  Slab slab(header, k);
  std::vector<std::byte> record_buffer;
  record_buffer.reserve(record_size * static_cast<std::size_t>(mdims.nx));

  for (std::int32_t mz = 0; mz < mdims.nz; ++mz) {
    const std::int32_t z0 = mz * (k - 1);
    const std::int32_t rows = std::min(k, header.dims.nz - z0);
    slab.load(volume, z0, rows);

    for (std::int32_t my = 0; my < mdims.ny; ++my) {
      record_buffer.clear();
      for (std::int32_t mx = 0; mx < mdims.nx; ++mx) {
        const std::uint32_t id = geometry.id({mx, my, mz});
        const core::Coord3 origin = geometry.sample_origin(id);

        // min/max over the k^3 (clamped) samples.
        core::ValueKey lo = 0;
        core::ValueKey hi = 0;
        bool first = true;
        for (std::int32_t z = 0; z < k; ++z) {
          const std::int32_t sz = std::min(origin.z + z, header.dims.nz - 1);
          for (std::int32_t y = 0; y < k; ++y) {
            const std::int32_t sy = std::min(origin.y + y, header.dims.ny - 1);
            for (std::int32_t x = 0; x < k; ++x) {
              const std::int32_t sx =
                  std::min(origin.x + x, header.dims.nx - 1);
              const core::ValueKey v =
                  key_of(slab.sample_ptr(sx, sy, sz), header.kind);
              if (first) {
                lo = hi = v;
                first = false;
              } else {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
              }
            }
          }
        }
        if (lo == hi) continue;  // degenerate: culled, never stored

        infos.push_back({id, {lo, hi}});
        // Serialize the record straight from the slab: id, vmin, samples.
        io::ByteWriter writer(record_buffer);
        writer.put(id);
        // vmin in native width:
        switch (header.kind) {
          case core::ScalarKind::kU8:
            writer.put(static_cast<std::uint8_t>(lo));
            break;
          case core::ScalarKind::kU16:
            writer.put(static_cast<std::uint16_t>(lo));
            break;
          case core::ScalarKind::kF32:
            writer.put(lo);
            break;
        }
        for (std::int32_t z = 0; z < k; ++z) {
          const std::int32_t sz = std::min(origin.z + z, header.dims.nz - 1);
          for (std::int32_t y = 0; y < k; ++y) {
            const std::int32_t sy = std::min(origin.y + y, header.dims.ny - 1);
            for (std::int32_t x = 0; x < k; ++x) {
              const std::int32_t sx =
                  std::min(origin.x + x, header.dims.nx - 1);
              writer.put_bytes({slab.sample_ptr(sx, sy, sz), scalar});
            }
          }
        }
      }
      if (!record_buffer.empty()) scratch.append(record_buffer);
    }
  }
  scratch.flush();
  ooc.scan_seconds = scan_timer.seconds();
  ooc.scan_io = volume.stats();

  // ---- Phase B: arrange into bricks through a bounded cache --------------
  util::WallTimer arrange_timer;
  {
    const std::size_t pool_blocks = std::max<std::uint64_t>(
        16, config.memory_budget_bytes / scratch.block_size());
    io::BufferPool pool(scratch, static_cast<std::size_t>(pool_blocks));
    ScratchRecordSource source(geometry, header.kind, std::move(infos), pool);

    PreprocessConfig inner;
    inner.samples_per_side = k;
    ooc.result = preprocess(source, cluster, inner);
  }
  ooc.arrange_seconds = arrange_timer.seconds();
  ooc.scratch_io = scratch.stats();

  // The scratch store is an intermediate; remove it on success.
  std::error_code ec;
  std::filesystem::remove(scratch_path, ec);
  return ooc;
}

}  // namespace oociso::pipeline
