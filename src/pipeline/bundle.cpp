#include "pipeline/bundle.h"

#include <fstream>

#include "io/serial.h"

namespace oociso::pipeline {
namespace {

constexpr std::uint32_t kBundleMagic = 0x4F4F4342;  // "OOCB"
constexpr std::uint32_t kBundleVersion = 1;

std::filesystem::path bundle_path(const std::filesystem::path& dir) {
  return dir / "index.oocb";
}

}  // namespace

void save_bundle(const PreprocessResult& result,
                 const std::filesystem::path& dir) {
  std::vector<std::byte> bytes;
  io::ByteWriter writer(bytes);
  writer.put(kBundleMagic);
  writer.put(kBundleVersion);
  writer.put(static_cast<std::uint8_t>(result.kind));
  writer.put(result.geometry.samples_per_side());
  const core::GridDims dims = result.geometry.volume_dims();
  writer.put(dims.nx);
  writer.put(dims.ny);
  writer.put(dims.nz);
  writer.put(result.total_metacells);
  writer.put(result.kept_metacells);
  writer.put(result.bricks);
  writer.put(result.bytes_written);
  writer.put(static_cast<std::uint32_t>(result.trees.size()));
  for (const auto& tree : result.trees) {
    const std::vector<std::byte> tree_bytes = tree.to_bytes();
    writer.put(static_cast<std::uint32_t>(tree_bytes.size()));
    writer.put_bytes(tree_bytes);
  }

  std::ofstream out(bundle_path(dir), std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("save_bundle: cannot open " +
                             bundle_path(dir).string());
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error("save_bundle: write failed in " + dir.string());
  }
}

PreprocessResult load_bundle(const std::filesystem::path& dir) {
  std::ifstream in(bundle_path(dir), std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_bundle: cannot open " +
                             bundle_path(dir).string());
  }
  const std::string raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const auto bytes = std::as_bytes(std::span(raw.data(), raw.size()));
  io::ByteReader reader(bytes);

  if (reader.get<std::uint32_t>() != kBundleMagic) {
    throw std::runtime_error("load_bundle: bad magic");
  }
  if (reader.get<std::uint32_t>() != kBundleVersion) {
    throw std::runtime_error("load_bundle: unsupported version");
  }
  const auto kind = static_cast<core::ScalarKind>(reader.get<std::uint8_t>());
  const auto samples_per_side = reader.get<std::int32_t>();
  core::GridDims dims;
  dims.nx = reader.get<std::int32_t>();
  dims.ny = reader.get<std::int32_t>();
  dims.nz = reader.get<std::int32_t>();

  PreprocessResult result{
      .trees = {},
      .geometry = metacell::MetacellGeometry(dims, samples_per_side),
      .kind = kind,
      .total_metacells = reader.get<std::uint64_t>(),
      .kept_metacells = reader.get<std::uint64_t>(),
      .bricks = reader.get<std::uint64_t>(),
      .bytes_written = reader.get<std::uint64_t>(),
      .raw_bytes = dims.count() * core::scalar_size(kind),
      .elapsed_seconds = 0.0,
  };
  const auto node_count = reader.get<std::uint32_t>();
  result.trees.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    const auto length = reader.get<std::uint32_t>();
    result.trees.push_back(
        index::CompactIntervalTree::from_bytes(reader.get_bytes(length)));
  }
  if (reader.remaining() != 0) {
    throw std::runtime_error("load_bundle: trailing bytes");
  }
  return result;
}

}  // namespace oociso::pipeline
