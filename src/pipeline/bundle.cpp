#include "pipeline/bundle.h"

#include <fstream>
#include <string>

#include "io/serial.h"
#include "util/crc32.h"

namespace oociso::pipeline {
namespace {

constexpr std::uint32_t kBundleMagic = 0x4F4F4342;  // "OOCB"
// v2: header carries the payload length and a CRC32 over the payload, so a
// truncated or bit-rotted manifest is rejected before any field is trusted.
constexpr std::uint32_t kBundleVersion = 2;

std::filesystem::path bundle_path(const std::filesystem::path& dir) {
  return dir / "index.oocb";
}

[[noreturn]] void malformed(const std::string& what, std::size_t offset) {
  throw std::runtime_error("load_bundle: " + what + " (at byte offset " +
                           std::to_string(offset) + ")");
}

}  // namespace

void save_bundle(const PreprocessResult& result,
                 const std::filesystem::path& dir) {
  // Serialize the payload first; the header then carries its length and
  // CRC32 so readers can validate the whole manifest up front.
  std::vector<std::byte> payload;
  io::ByteWriter writer(payload);
  writer.put(static_cast<std::uint8_t>(result.kind));
  writer.put(result.geometry.samples_per_side());
  const core::GridDims dims = result.geometry.volume_dims();
  writer.put(dims.nx);
  writer.put(dims.ny);
  writer.put(dims.nz);
  writer.put(result.total_metacells);
  writer.put(result.kept_metacells);
  writer.put(result.bricks);
  writer.put(result.bytes_written);
  writer.put(static_cast<std::uint32_t>(result.trees.size()));
  for (const auto& tree : result.trees) {
    const std::vector<std::byte> tree_bytes = tree.to_bytes();
    writer.put(static_cast<std::uint32_t>(tree_bytes.size()));
    writer.put_bytes(tree_bytes);
  }

  std::vector<std::byte> bytes;
  io::ByteWriter header(bytes);
  header.put(kBundleMagic);
  header.put(kBundleVersion);
  header.put(util::crc32(std::span<const std::byte>(payload)));
  header.put(static_cast<std::uint64_t>(payload.size()));
  header.put_bytes(payload);

  std::ofstream out(bundle_path(dir), std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("save_bundle: cannot open " +
                             bundle_path(dir).string());
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error("save_bundle: write failed in " + dir.string());
  }
}

PreprocessResult load_bundle(const std::filesystem::path& dir) {
  std::ifstream in(bundle_path(dir), std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_bundle: cannot open " +
                             bundle_path(dir).string());
  }
  const std::string raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const auto bytes = std::as_bytes(std::span(raw.data(), raw.size()));
  io::ByteReader header(bytes);

  if (bytes.size() < 2 * sizeof(std::uint32_t)) {
    malformed("file shorter than the fixed header", bytes.size());
  }
  if (header.get<std::uint32_t>() != kBundleMagic) {
    malformed("bad magic", 0);
  }
  const auto version = header.get<std::uint32_t>();
  if (version != kBundleVersion) {
    malformed("unsupported version " + std::to_string(version),
              sizeof(std::uint32_t));
  }
  const auto expected_crc = header.get<std::uint32_t>();
  const auto payload_bytes = header.get<std::uint64_t>();
  if (payload_bytes != header.remaining()) {
    malformed("header claims " + std::to_string(payload_bytes) +
                  " payload bytes but " + std::to_string(header.remaining()) +
                  " follow",
              header.position());
  }
  const auto payload = header.get_bytes(header.remaining());
  if (util::crc32(payload) != expected_crc) {
    malformed("payload checksum mismatch", 2 * sizeof(std::uint32_t));
  }

  // Reported offsets below are file-absolute: payload position + header.
  const std::size_t payload_start = header.position() - payload.size();
  io::ByteReader reader(payload);
  const auto kind = static_cast<core::ScalarKind>(reader.get<std::uint8_t>());
  const auto samples_per_side = reader.get<std::int32_t>();
  core::GridDims dims;
  dims.nx = reader.get<std::int32_t>();
  dims.ny = reader.get<std::int32_t>();
  dims.nz = reader.get<std::int32_t>();

  PreprocessResult result{
      .trees = {},
      .geometry = metacell::MetacellGeometry(dims, samples_per_side),
      .kind = kind,
      .total_metacells = reader.get<std::uint64_t>(),
      .kept_metacells = reader.get<std::uint64_t>(),
      .bricks = reader.get<std::uint64_t>(),
      .bytes_written = reader.get<std::uint64_t>(),
      .raw_bytes = dims.count() * core::scalar_size(kind),
      .elapsed_seconds = 0.0,
  };
  const auto node_count = reader.get<std::uint32_t>();
  result.trees.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    const std::size_t section_at = payload_start + reader.position();
    const auto length = reader.get<std::uint32_t>();
    if (length > reader.remaining()) {
      malformed("node " + std::to_string(i) + " tree section claims " +
                    std::to_string(length) + " bytes but only " +
                    std::to_string(reader.remaining()) + " remain",
                section_at);
    }
    try {
      result.trees.push_back(
          index::CompactIntervalTree::from_bytes(reader.get_bytes(length)));
    } catch (const std::exception& error) {
      malformed("node " + std::to_string(i) +
                    " tree failed to deserialize: " + error.what(),
                section_at);
    }
  }
  if (reader.remaining() != 0) {
    malformed("trailing bytes after last tree",
              payload_start + reader.position());
  }
  return result;
}

}  // namespace oociso::pipeline
