#include "pipeline/query_engine.h"

#include <optional>
#include <stdexcept>
#include <utility>

#include "extract/marching_cubes.h"
#include "index/retrieval_stream.h"
#include "parallel/pipeline.h"
#include "render/camera.h"
#include "render/rasterizer.h"
#include "util/timer.h"

namespace oociso::pipeline {

QueryEngine::QueryEngine(parallel::Cluster& cluster,
                         const PreprocessResult& result)
    : cluster_(cluster), data_(result) {
  if (result.trees.size() != cluster.size()) {
    throw std::invalid_argument(
        "QueryEngine: preprocess result node count differs from cluster");
  }
}

QueryReport QueryEngine::run(core::ValueKey isovalue,
                             const QueryOptions& options) {
  const std::size_t p = cluster_.size();
  QueryReport report;
  report.isovalue = isovalue;
  report.nodes.resize(p);
  report.times.per_node.resize(p);

  const core::GridDims& dims = data_.geometry.volume_dims();
  const render::Camera camera = render::Camera::framing_volume(
      static_cast<float>(dims.nx), static_cast<float>(dims.ny),
      static_cast<float>(dims.nz), options.image_width, options.image_height);

  std::vector<extract::TriangleSoup> soups(p);
  std::vector<render::Framebuffer> frames;
  frames.reserve(p);
  for (std::size_t i = 0; i < p; ++i) {
    frames.emplace_back(options.image_width, options.image_height);
  }

  // ---- per-node phase: AMC retrieval, triangulation, rendering ----------
  cluster_.run([&](std::size_t node) {
    NodeReport& node_report = report.nodes[node];
    parallel::TimeLedger& ledger = report.times.per_node[node];
    io::BlockDevice& disk = cluster_.disk(node);
    const index::CompactIntervalTree& tree = data_.trees[node];

    // The stream performs every device read and times it with a monotonic
    // wall clock; this thread only ever decodes and triangulates, timed
    // with a thread-CPU clock (which keeps concurrent node threads from
    // charging each other for descheduled time — and, unlike the old
    // interleaved re-marking, never has a blocking read inside its window).
    const io::IoStats io_before = disk.stats();
    index::RetrievalStream stream = index::open_stream(tree, isovalue, disk);

    double cpu_seconds = 0.0;
    util::ThreadCpuTimer cpu_timer;
    auto consume = [&](const index::RecordBatch& batch) {
      cpu_timer.restart();
      for (std::size_t r = 0; r < batch.record_count; ++r) {
        const metacell::DecodedMetacell cell = metacell::decode_metacell(
            batch.record(r), data_.kind, data_.geometry);
        const extract::ExtractionStats cell_stats =
            extract::extract_metacell(cell, isovalue, soups[node]);
        node_report.triangles += cell_stats.triangles;
      }
      cpu_seconds += cpu_timer.seconds();
    };

    // Only the producer side touches `stream` (and through it the node's
    // disk) while the pipeline runs; it is joined before the stats below
    // are read. The fill is captured on the producer side for the same
    // reason and read only after the join.
    io::IoStats fill_io;
    if (options.overlap_io_compute) {
      bool first_batch = true;
      parallel::produce_consume<index::RecordBatch>(
          options.pipeline_depth,
          [&](auto&& push) {
            while (std::optional<index::RecordBatch> batch = stream.next()) {
              if (first_batch) {
                fill_io = batch->io;
                first_batch = false;
              }
              if (!push(std::move(*batch))) break;
            }
          },
          consume);
    } else {
      while (std::optional<index::RecordBatch> batch = stream.next()) {
        consume(*batch);
      }
    }

    const index::QueryStats& stats = stream.stats();
    node_report.active_metacells = stats.active_metacells;
    node_report.records_fetched = stats.records_fetched;
    node_report.io = disk.stats().since(io_before);
    node_report.io_model_seconds = cluster_.disk_seconds(node_report.io);
    node_report.io_wall_seconds = stream.io_wall_seconds();
    node_report.triangulation_seconds = cpu_seconds;

    if (options.overlap_io_compute) {
      node_report.pipeline_fill_seconds = cluster_.disk_seconds(fill_io);
      ledger.add_extraction_overlapped(node_report.io_model_seconds,
                                       cpu_seconds,
                                       node_report.pipeline_fill_seconds);
      node_report.overlap_saved_seconds = ledger.overlap_saved();
    } else {
      ledger.add(parallel::Phase::kAmcRetrieval, node_report.io_model_seconds);
      ledger.add(parallel::Phase::kTriangulation, cpu_seconds);
    }

    if (options.render) {
      util::ThreadCpuTimer render_timer;
      render::Rasterizer rasterizer;
      rasterizer.draw(soups[node], camera, frames[node]);
      node_report.rendering_seconds = render_timer.seconds();
      ledger.add(parallel::Phase::kRendering, node_report.rendering_seconds);
    }
  });

  // ---- compositing (the only communication) ------------------------------
  if (options.render) {
    util::WallTimer merge_timer;
    compositing::CompositeResult composite =
        options.schedule == CompositeSchedule::kBinarySwap
            ? compositing::binary_swap(frames)
            : compositing::direct_send(frames);
    const double merge_cpu = merge_timer.seconds();

    report.composite_traffic = composite.traffic;
    report.composite_model_seconds =
        cluster_.network_seconds(composite.traffic.rounds,
                                 composite.traffic.max_node_bytes) +
        merge_cpu / static_cast<double>(p);
    // The phase cost is shared: charge it once (max over nodes is what
    // completion_seconds uses, and all nodes participate symmetrically).
    for (auto& ledger : report.times.per_node) {
      ledger.add(parallel::Phase::kCompositing,
                 report.composite_model_seconds);
    }
    if (options.keep_image) report.image = std::move(composite.image);
  }

  if (options.keep_triangles) {
    extract::TriangleSoup merged;
    std::size_t total = 0;
    for (const auto& soup : soups) total += soup.size();
    merged.reserve(total);
    for (const auto& soup : soups) merged.append(soup);
    report.triangles_out = std::move(merged);
  }
  return report;
}

}  // namespace oociso::pipeline
