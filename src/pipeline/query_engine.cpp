#include "pipeline/query_engine.h"

#include <stdexcept>

#include "extract/marching_cubes.h"
#include "render/camera.h"
#include "render/rasterizer.h"
#include "util/timer.h"

namespace oociso::pipeline {

QueryEngine::QueryEngine(parallel::Cluster& cluster,
                         const PreprocessResult& result)
    : cluster_(cluster), data_(result) {
  if (result.trees.size() != cluster.size()) {
    throw std::invalid_argument(
        "QueryEngine: preprocess result node count differs from cluster");
  }
}

QueryReport QueryEngine::run(core::ValueKey isovalue,
                             const QueryOptions& options) {
  const std::size_t p = cluster_.size();
  QueryReport report;
  report.isovalue = isovalue;
  report.nodes.resize(p);
  report.times.per_node.resize(p);

  const core::GridDims& dims = data_.geometry.volume_dims();
  const render::Camera camera = render::Camera::framing_volume(
      static_cast<float>(dims.nx), static_cast<float>(dims.ny),
      static_cast<float>(dims.nz), options.image_width, options.image_height);

  std::vector<extract::TriangleSoup> soups(p);
  std::vector<render::Framebuffer> frames;
  frames.reserve(p);
  for (std::size_t i = 0; i < p; ++i) {
    frames.emplace_back(options.image_width, options.image_height);
  }

  // ---- per-node phase: AMC retrieval, triangulation, rendering ----------
  cluster_.run([&](std::size_t node) {
    NodeReport& node_report = report.nodes[node];
    parallel::TimeLedger& ledger = report.times.per_node[node];
    io::BlockDevice& disk = cluster_.disk(node);
    const index::CompactIntervalTree& tree = data_.trees[node];

    // Retrieval and triangulation are interleaved per metacell (the paper
    // streams metacells through marching cubes); the two phases are timed
    // separately around the I/O call and the decode+triangulate work.
    // Thread-CPU clocks keep concurrent node threads from charging each
    // other for descheduled time (see util::ThreadCpuTimer).
    const io::IoStats io_before = disk.stats();
    double io_wall = 0.0;
    double cpu_wall = 0.0;
    util::ThreadCpuTimer stopwatch;

    const index::QueryPlan plan = tree.plan(isovalue);
    stopwatch.restart();
    double last_mark = 0.0;
    const index::QueryStats stats = tree.execute(
        plan, disk, [&](std::span<const std::byte> record) {
          // execute() calls back between reads: time since the last mark is
          // I/O + decode; split by re-marking around the CPU work.
          const double at_callback = stopwatch.seconds();
          io_wall += at_callback - last_mark;
          const metacell::DecodedMetacell cell =
              metacell::decode_metacell(record, data_.kind, data_.geometry);
          const extract::ExtractionStats cell_stats =
              extract::extract_metacell(cell, isovalue, soups[node]);
          node_report.triangles += cell_stats.triangles;
          last_mark = stopwatch.seconds();
          cpu_wall += last_mark - at_callback;
        });
    io_wall += stopwatch.seconds() - last_mark;

    node_report.active_metacells = stats.active_metacells;
    node_report.records_fetched = stats.records_fetched;
    node_report.io = disk.stats().since(io_before);
    node_report.io_model_seconds = cluster_.disk_seconds(node_report.io);
    node_report.io_wall_seconds = io_wall;
    node_report.triangulation_seconds = cpu_wall;

    ledger.add(parallel::Phase::kAmcRetrieval, node_report.io_model_seconds);
    ledger.add(parallel::Phase::kTriangulation, cpu_wall);

    if (options.render) {
      util::ThreadCpuTimer render_timer;
      render::Rasterizer rasterizer;
      rasterizer.draw(soups[node], camera, frames[node]);
      node_report.rendering_seconds = render_timer.seconds();
      ledger.add(parallel::Phase::kRendering, node_report.rendering_seconds);
    }
  });

  // ---- compositing (the only communication) ------------------------------
  if (options.render) {
    util::WallTimer merge_timer;
    compositing::CompositeResult composite =
        options.schedule == CompositeSchedule::kBinarySwap
            ? compositing::binary_swap(frames)
            : compositing::direct_send(frames);
    const double merge_cpu = merge_timer.seconds();

    report.composite_traffic = composite.traffic;
    report.composite_model_seconds =
        cluster_.network_seconds(composite.traffic.rounds,
                                 composite.traffic.max_node_bytes) +
        merge_cpu / static_cast<double>(p);
    // The phase cost is shared: charge it once (max over nodes is what
    // completion_seconds uses, and all nodes participate symmetrically).
    for (auto& ledger : report.times.per_node) {
      ledger.add(parallel::Phase::kCompositing,
                 report.composite_model_seconds);
    }
    if (options.keep_image) report.image = std::move(composite.image);
  }

  if (options.keep_triangles) {
    extract::TriangleSoup merged;
    std::size_t total = 0;
    for (const auto& soup : soups) total += soup.size();
    merged.reserve(total);
    for (const auto& soup : soups) merged.append(soup);
    report.triangles_out = std::move(merged);
  }
  return report;
}

}  // namespace oociso::pipeline
