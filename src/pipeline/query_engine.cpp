#include "pipeline/query_engine.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "codec/decoding_device.h"
#include "extract/marching_cubes.h"
#include "index/retrieval_stream.h"
#include "parallel/pipeline.h"
#include "render/camera.h"
#include "render/rasterizer.h"
#include "util/timer.h"

namespace oociso::pipeline {

QueryEngine::QueryEngine(parallel::Cluster& cluster,
                         const PreprocessResult& result)
    : cluster_(cluster), data_(result) {
  if (result.trees.size() != cluster.size()) {
    throw std::invalid_argument(
        "QueryEngine: preprocess result node count differs from cluster");
  }
  bool compressed = false;
  for (const auto& tree : result.trees) compressed |= tree.compressed();
  if (compressed) chunk_maps_ = index::build_chunk_maps(result.trees);
}

QueryReport QueryEngine::run(core::ValueKey isovalue,
                             const QueryOptions& options) {
  const std::size_t p = cluster_.size();
  if (options.use_shared_cache) {
    if (options.inject_faults.has_value()) {
      throw std::invalid_argument(
          "QueryEngine: per-query inject_faults cannot compose with the "
          "shared cache — a cached frame outlives the query, so per-query "
          "fault schedules would race on shared bytes. Inject at the "
          "cluster level via Cluster::enable_shared_cache instead.");
    }
    if (cluster_.cache(0) == nullptr) {
      throw std::logic_error(
          "QueryEngine: use_shared_cache requires "
          "Cluster::enable_shared_cache to have been called");
    }
  }
  QueryReport report;
  report.isovalue = isovalue;
  // Resolve the classification kernel once, up front: an explicitly
  // requested ISA the host cannot run fails the query here, loudly,
  // instead of surfacing per stripe (or worse, per failover re-execution).
  report.kernel_isa = extract::kernel::resolve(options.kernel.isa);
  const extract::KernelOptions resolved_kernel{report.kernel_isa};
  report.nodes.resize(p);
  report.times.per_node.resize(p);

  const core::GridDims& dims = data_.geometry.volume_dims();
  const render::Camera camera = render::Camera::framing_volume(
      static_cast<float>(dims.nx), static_cast<float>(dims.ny),
      static_cast<float>(dims.nz), options.image_width, options.image_height);

  std::vector<extract::TriangleSoup> soups(p);
  std::vector<render::Framebuffer> frames;
  frames.reserve(p);
  for (std::size_t i = 0; i < p; ++i) {
    frames.emplace_back(options.image_width, options.image_height);
  }

  // Per-query fault injectors: created fresh each run so read ordinals
  // restart at 0 and the schedule depends only on the options.
  std::vector<std::unique_ptr<io::FaultInjectingBlockDevice>> injectors(p);
  if (options.inject_faults.has_value() || !options.dead_nodes.empty()) {
    for (std::size_t i = 0; i < p; ++i) {
      const bool dead =
          std::find(options.dead_nodes.begin(), options.dead_nodes.end(), i) !=
          options.dead_nodes.end();
      // Under the shared cache only dead nodes get a per-query injector
      // (fail-all reads bypassing the pool); healthy nodes must read
      // through the pool, whose cluster-level injector — if any — carries
      // the fault stream.
      if (options.use_shared_cache && !dead) continue;
      io::FaultConfig config =
          options.inject_faults.value_or(io::FaultConfig{});
      // Golden-ratio stride decorrelates the per-node schedules while
      // keeping them derivable from the single user-facing seed.
      config.seed += 0x9E3779B97F4A7C15ULL * i;
      if (dead) config.fail_all_reads = true;
      injectors[i] = std::make_unique<io::FaultInjectingBlockDevice>(
          cluster_.disk(i), std::move(config));
    }
  }

  // Replica routing is available when the index was built replicated (all
  // stripes share the build's factor) and the caller did not opt out; each
  // node program then reaches every peer store through a private handle
  // (raw path) or the peer's shared pool (serve path).
  const bool route = options.route_replicas && !data_.trees.empty() &&
                     data_.trees[0].replica_directory().active();
  const auto is_dead = [&](std::size_t node) {
    return std::find(options.dead_nodes.begin(), options.dead_nodes.end(),
                     node) != options.dead_nodes.end();
  };

  // Extraction of one node's stripe against `device`, charging `ledger`.
  // Runs on the node's own program normally, and again on a healthy peer
  // (serially, against a read-only reopen of the store) after a failure —
  // which is why the accumulated mesh state is reset on entry and the
  // FaultReport counters are merged rather than overwritten. `route_this`
  // turns on replica routing for the stream (node programs only; the
  // takeover path reads the store directly).
  auto extract_stripe = [&](std::size_t node, io::BlockDevice& device,
                            const io::FaultInjectingBlockDevice* injector,
                            io::SharedBufferPool* cache,
                            parallel::TimeLedger& ledger, bool overlap,
                            bool route_this) {
    NodeReport& node_report = report.nodes[node];
    const index::CompactIntervalTree& tree = data_.trees[node];
    soups[node].clear();
    node_report.triangles = 0;
    // Kernel counters restart with the mesh: a failover re-execution
    // replaces the stripe's output, so its stats replace too.
    node_report.cells_classified = 0;
    node_report.active_cells = 0;
    node_report.vertex_cache_hits = 0;
    node_report.classify_seconds = 0.0;
    // The whole stripe on the node's compute lane; its args carry the
    // per-node report totals so traces reconcile against QueryReport.
    obs::Span extract_span(options.tracer, "node.extract", options.query_id,
                           obs::track(node, obs::Lane::kCompute));
    const double stalls_before =
        injector ? injector->injected().stall_modeled_seconds : 0.0;

    // The stream performs every device read and times it with a monotonic
    // wall clock; this thread only ever decodes and triangulates, timed
    // with a thread-CPU clock (which keeps concurrent node threads from
    // charging each other for descheduled time — and, unlike the old
    // interleaved re-marking, never has a blocking read inside its window).
    // A pooled device is shared across concurrent queries, so its IoStats
    // cannot be snapshotted per stripe; the stream attributes the physical
    // miss I/O per batch instead (RecordBatch::cache.device_io).
    const io::IoStats io_before =
        cache != nullptr ? io::IoStats{} : device.stats();
    index::QueryPlan plan = tree.plan(isovalue);
    // Pre-size the node's soup from the plan: ~2 triangles per crossed
    // cell, and on turbulent data the surface folds through up to ~3 cell
    // layers of an active metacell, so budget 6 per side^2. An estimate —
    // reserve, not resize — but kernel_property_test pins that the paper
    // sweep on the golden dataset never outgrows it, so the append loop
    // pays no regrowth.
    const auto side =
        static_cast<std::uint64_t>(data_.geometry.cells_per_side());
    soups[node].reserve(
        static_cast<std::size_t>(plan.total_records() * 6 * side * side));
    index::RetrievalOptions retrieval = options.retrieval;
    retrieval.tracer = options.tracer;
    retrieval.metrics = options.metrics;
    retrieval.trace_pid = options.query_id;
    retrieval.trace_tid = obs::track(node, obs::Lane::kIo);

    // Replica routing targets: how THIS program reaches each node's store.
    // Raw path: a private handle per peer (BlockDevice accounting is not
    // thread-safe, so handles are never shared across programs), wrapped in
    // this program's own fault injector when the query injects faults or
    // the peer is dead — the store's failure mode must look the same from
    // every program. Serve path: the peer's shared pool (thread-safe, and
    // the cluster-level injector beneath it carries one coherent fault
    // stream for all programs); a dead peer's store is unreachable.
    index::ReplicaRouting routing;
    std::vector<std::unique_ptr<io::BlockDevice>> replica_handles;
    std::vector<std::unique_ptr<io::FaultInjectingBlockDevice>>
        replica_injectors;
    std::vector<std::unique_ptr<codec::ChunkDecodingDevice>> replica_decoders;
    if (route_this) {
      routing.primary = node;
      routing.health = options.health;
      routing.targets.resize(p);
      routing.targets[node] = index::ReplicaRouting::Target{&device, cache};
      for (std::size_t j = 0; j < p; ++j) {
        if (j == node) continue;
        if (options.use_shared_cache) {
          if (is_dead(j)) continue;  // unreachable
          routing.targets[j] =
              index::ReplicaRouting::Target{nullptr, cluster_.cache(j)};
          continue;
        }
        replica_handles.push_back(cluster_.open_replica_view(j));
        io::BlockDevice* handle = replica_handles.back().get();
        if (options.inject_faults.has_value() || is_dead(j)) {
          io::FaultConfig config =
              options.inject_faults.value_or(io::FaultConfig{});
          config.seed += 0x9E3779B97F4A7C15ULL * j;
          if (is_dead(j)) config.fail_all_reads = true;
          replica_injectors.push_back(
              std::make_unique<io::FaultInjectingBlockDevice>(
                  *handle, std::move(config)));
          handle = replica_injectors.back().get();
        }
        // Decoder outermost, like the primary path: faults perturb the
        // physical encoded reads; a corrupted chunk fails decode and reroutes
        // exactly like a checksum fault.
        if (const codec::ChunkMap* map = chunk_map_for(j)) {
          replica_decoders.push_back(
              std::make_unique<codec::ChunkDecodingDevice>(*handle, *map));
          handle = replica_decoders.back().get();
        }
        routing.targets[j] = index::ReplicaRouting::Target{handle, nullptr};
      }
    }

    index::BrickDirectory directory{tree.bricks(), tree.chunk_crcs()};
    if (route_this) directory.replicas = tree.replica_directory();
    // Compressed-extent awareness for the scheduler: gap budgeting between
    // runs is priced in device (compressed) bytes, not raw bytes.
    directory.chunk_map = chunk_map_for(node);
    index::RetrievalStream stream(std::move(plan), tree.scalar_kind(),
                                  tree.record_size(), device, retrieval,
                                  directory, cache, std::move(routing));

    // Per-batch modeled I/O and measured CPU, in arrival order, for the
    // ledger's bounded-queue charge below.
    std::vector<double> io_batches;
    std::vector<double> cpu_batches;
    io_batches.reserve(stream.schedule().items.size() + 8);
    cpu_batches.reserve(stream.schedule().items.size() + 8);

    double cpu_seconds = 0.0;
    std::uint64_t mc_cells_visited = 0;
    std::uint64_t mc_active_cells = 0;
    std::uint64_t mc_vertex_cache_hits = 0;
    double mc_classify_seconds = 0.0;
    std::uint64_t mc_batches = 0;
    util::ThreadCpuTimer cpu_timer;
    metacell::DecodedMetacell cell;  // scratch reused across records
    auto consume = [&](const index::RecordBatch& batch) {
      obs::Span mc_span(options.tracer, "mc.batch", options.query_id,
                        obs::track(node, obs::Lane::kCompute));
      std::uint64_t batch_triangles = 0;
      cpu_timer.restart();
      for (std::size_t r = 0; r < batch.record_count; ++r) {
        metacell::decode_metacell(batch.record(r), data_.kind, data_.geometry,
                                  cell);
        const extract::ExtractionStats cell_stats = extract::extract_metacell(
            cell, isovalue, soups[node], resolved_kernel);
        node_report.triangles += cell_stats.triangles;
        batch_triangles += cell_stats.triangles;
        mc_cells_visited += cell_stats.cells_visited;
        mc_active_cells += cell_stats.active_cells;
        mc_vertex_cache_hits += cell_stats.vertex_cache_hits;
        mc_classify_seconds += cell_stats.classify_seconds;
      }
      const double batch_cpu = cpu_timer.seconds();
      cpu_seconds += batch_cpu;
      ++mc_batches;
      // Host turnaround and chunk decode ride on the batch like the disk
      // price: decode happens on the fetch path before the batch is handed
      // over, so it widens the I/O side of the window, never the compute
      // side. At queue depth 1 every batch carries its turnaround, deeper
      // queues hide all but the dry submissions — which is exactly what the
      // pipelined window charges.
      io_batches.push_back(cluster_.disk_seconds(batch.io) +
                           batch.turnaround_modeled_seconds +
                           batch.decode_seconds);
      cpu_batches.push_back(batch_cpu);
      mc_span.arg("records", static_cast<std::uint64_t>(batch.record_count));
      mc_span.arg("triangles", batch_triangles);
    };

    // Only the producer side touches `stream` (and through it the node's
    // disk) while the pipeline runs; it is joined before the stats below
    // are read. The fill is captured on the producer side for the same
    // reason and read only after the join.
    io::IoStats fill_io;
    try {
      if (overlap) {
        bool first_batch = true;
        parallel::produce_consume<index::RecordBatch>(
            options.readahead_batches,
            [&](auto&& push) {
              while (std::optional<index::RecordBatch> batch = stream.next()) {
                if (first_batch) {
                  fill_io = batch->io;
                  first_batch = false;
                }
                if (!push(std::move(*batch))) break;
              }
            },
            consume);
      } else {
        while (std::optional<index::RecordBatch> batch = stream.next()) {
          consume(*batch);
        }
      }
    } catch (...) {
      // Keep what the stream absorbed before the fatal error — the report
      // should show the retries that led up to the exhaustion.
      node_report.faults.retrieval.merge(stream.faults());
      node_report.cache.merge(stream.cache_stats());
      throw;
    }
    node_report.faults.retrieval.merge(stream.faults());
    node_report.cache.merge(stream.cache_stats());

    const index::QueryStats& stats = stream.stats();
    node_report.active_metacells = stats.active_metacells;
    node_report.records_fetched = stats.records_fetched;
    if (stream.routing_active()) {
      // Routed reads are served by whichever holder won each read; the
      // per-holder counters carry the attribution and their sum is the
      // stripe's total device I/O.
      node_report.routed = stream.routed();
      io::IoStats total;
      for (const auto& holder : node_report.routed) total += holder.io;
      node_report.io = total;
    } else {
      node_report.io = cache != nullptr ? stream.cache_stats().device_io
                                        : device.stats().since(io_before);
    }
    node_report.io_model_seconds = cluster_.disk_seconds(node_report.io);
    node_report.io_wall_seconds = stream.io_wall_seconds();
    node_report.triangulation_seconds = cpu_seconds;
    node_report.cells_classified = mc_cells_visited;
    node_report.active_cells = mc_active_cells;
    node_report.vertex_cache_hits = mc_vertex_cache_hits;
    node_report.classify_seconds = mc_classify_seconds;
    node_report.turnaround_modeled_seconds +=
        stream.turnaround_modeled_seconds();
    node_report.decode_cpu_seconds += stream.decode_cpu_seconds();

    // Backoff and stall penalties are modeled I/O-side delay: they widen
    // this execution's retrieval charge (and with it the pipelined window),
    // but io_model_seconds above stays the pure disk price of the blocks.
    const double stall_seconds =
        injector ? injector->injected().stall_modeled_seconds - stalls_before
                 : 0.0;
    const double extra_io =
        stream.faults().backoff_modeled_seconds + stall_seconds;
    if (overlap) {
      node_report.pipeline_fill_seconds = cluster_.disk_seconds(fill_io);
      // Charge the window the bounded queue actually admits: per-batch
      // times through a queue of readahead_batches slots, rather than the
      // max(io, cpu) + fill ideal (which a depth-1 queue cannot reach).
      ledger.add_extraction_pipelined(io_batches, cpu_batches,
                                      options.readahead_batches, extra_io);
      node_report.overlap_saved_seconds = ledger.overlap_saved();
    } else {
      // Serial (non-overlapped) accounting: turnaround and decode extend
      // the retrieval phase directly; the pipelined path above already
      // carries both inside the per-batch io times.
      ledger.add(parallel::Phase::kAmcRetrieval,
                 node_report.io_model_seconds + extra_io +
                     stream.turnaround_modeled_seconds() +
                     stream.decode_cpu_seconds());
      ledger.add(parallel::Phase::kTriangulation, cpu_seconds);
    }

    if (options.metrics != nullptr) {
      options.metrics->counter("mc.cells_visited").add(mc_cells_visited);
      options.metrics->counter("mc.active_cells").add(mc_active_cells);
      options.metrics->counter("mc.vertex_cache_hits")
          .add(mc_vertex_cache_hits);
      options.metrics->counter("mc.triangles").add(node_report.triangles);
      options.metrics->counter("mc.batches").add(mc_batches);
    }
    // Trace↔report reconciliation anchor: these args are the NodeReport
    // values, summed per pid by the obs tests and the serve stress test.
    extract_span.arg("active_metacells", node_report.active_metacells);
    extract_span.arg("records_fetched", node_report.records_fetched);
    extract_span.arg("triangles", node_report.triangles);
    extract_span.arg("read_ops", node_report.io.read_ops);
    extract_span.arg("bytes_read", node_report.io.bytes_read);
    extract_span.arg("io_model_seconds", node_report.io_model_seconds);
    extract_span.arg("io_wall_seconds", node_report.io_wall_seconds);
    extract_span.arg("decode_cpu_seconds", node_report.decode_cpu_seconds);
    extract_span.arg("cache_hit_blocks", node_report.cache.hit_blocks);
    extract_span.arg("cache_miss_blocks", node_report.cache.miss_blocks);
    extract_span.arg("cache_wait_blocks", node_report.cache.wait_blocks);
  };

  auto render_stripe = [&](std::size_t node, parallel::TimeLedger& ledger) {
    if (!options.render) return;
    NodeReport& node_report = report.nodes[node];
    obs::Span span(options.tracer, "node.render", options.query_id,
                   obs::track(node, obs::Lane::kCompute));
    frames[node] = render::Framebuffer(options.image_width,
                                       options.image_height);
    util::ThreadCpuTimer render_timer;
    render::Rasterizer rasterizer;
    rasterizer.draw(soups[node], camera, frames[node]);
    node_report.rendering_seconds = render_timer.seconds();
    span.arg("triangles", node_report.triangles);
    ledger.add(parallel::Phase::kRendering, node_report.rendering_seconds);
  };

  // ---- per-node phase: AMC retrieval, triangulation, rendering ----------
  const std::vector<std::exception_ptr> node_errors =
      cluster_.run_collect([&](std::size_t node) {
        io::BlockDevice* device =
            injectors[node] ? injectors[node].get() : &cluster_.disk(node);
        // Dead nodes keep their fail-all injector even under the shared
        // cache — their reads must not pollute (or be rescued by) the pool.
        io::SharedBufferPool* const cache =
            options.use_shared_cache && !injectors[node] ? cluster_.cache(node)
                                                         : nullptr;
        // Raw path against a compressed store: this program's private
        // decoder, outermost over the injector, so reads address raw bytes
        // while faults hit the physical encoded reads. The shared-cache
        // path decodes inside the transport's pool stack instead.
        std::unique_ptr<codec::ChunkDecodingDevice> decoder;
        if (cache == nullptr) {
          if (const codec::ChunkMap* map = chunk_map_for(node)) {
            decoder =
                std::make_unique<codec::ChunkDecodingDevice>(*device, *map);
            device = decoder.get();
          }
        }
        extract_stripe(node, *device, injectors[node].get(), cache,
                       report.times.per_node[node], options.overlap_io_compute,
                       route);
        report.nodes[node].faults.executed_by =
            static_cast<std::int32_t>(node);
        render_stripe(node, report.times.per_node[node]);
      });

  // ---- failover: healthy peers take over dead nodes' stripes ------------
  for (std::size_t node = 0; node < p; ++node) {
    if (!node_errors[node]) continue;
    if (!options.failover) std::rethrow_exception(node_errors[node]);
    try {
      std::rethrow_exception(node_errors[node]);
    } catch (const std::exception& error) {
      report.nodes[node].faults.error = error.what();
    } catch (...) {
      report.nodes[node].faults.error = "unknown error";
    }
    // Nearest healthy successor takes over; with every node dead there is
    // nobody left to degrade onto, so the first failure propagates.
    std::size_t peer = p;
    for (std::size_t step = 1; step < p; ++step) {
      const std::size_t candidate = (node + step) % p;
      if (!node_errors[candidate]) {
        peer = candidate;
        break;
      }
    }
    if (peer == p) std::rethrow_exception(node_errors[node]);

    // The peer re-runs the stripe serially — bypassing the dead node's
    // fault injector. The takeover work (and its rendering) is charged to
    // the peer's ledger: it happens after the peer's own stripe, which is
    // exactly what degrades completion time. Under the shared cache the
    // peer reads through the dead node's pool (the thread-safe path to its
    // store, and any frames cached before the node died are still good);
    // otherwise it opens a fresh read-only handle of the store.
    if (options.use_shared_cache) {
      extract_stripe(node, cluster_.disk(node), nullptr, cluster_.cache(node),
                     report.times.per_node[peer], /*overlap=*/false,
                     /*route_this=*/false);
    } else {
      const std::unique_ptr<io::BlockDevice> store =
          cluster_.open_readonly(node);
      io::BlockDevice* dev = store.get();
      std::unique_ptr<codec::ChunkDecodingDevice> decoder;
      if (const codec::ChunkMap* map = chunk_map_for(node)) {
        decoder = std::make_unique<codec::ChunkDecodingDevice>(*dev, *map);
        dev = decoder.get();
      }
      extract_stripe(node, *dev, nullptr, nullptr, report.times.per_node[peer],
                     /*overlap=*/false, /*route_this=*/false);
    }
    render_stripe(node, report.times.per_node[peer]);
    NodeReport& node_report = report.nodes[node];
    ++node_report.faults.failovers;
    node_report.faults.executed_by = static_cast<std::int32_t>(peer);
    report.degraded = true;
  }

  // Brick-granular failover degrades the query just like a whole-stripe
  // takeover: a hedge means some holder was exhausted mid-run. Healthy
  // load-balance routing (rerouted_reads without hedges) does not.
  for (const NodeReport& node_report : report.nodes) {
    if (node_report.faults.retrieval.hedged_reads > 0) report.degraded = true;
  }

  // What each injector actually did, for cross-checking the detection
  // counters above (a verified stream must have caught every corruption).
  for (std::size_t node = 0; node < p; ++node) {
    if (!injectors[node]) continue;
    const io::InjectedFaults& injected = injectors[node]->injected();
    FaultReport& faults = report.nodes[node].faults;
    faults.injected_read_failures = injected.read_failures;
    faults.injected_corrupted_reads = injected.corrupted_reads;
    faults.injected_stalls = injected.stalls;
    faults.stall_modeled_seconds = injected.stall_modeled_seconds;
  }

  // ---- compositing (the only communication) ------------------------------
  if (options.render) {
    obs::Span composite_span(options.tracer, "composite", options.query_id,
                             obs::track(0, obs::Lane::kControl));
    util::WallTimer merge_timer;
    compositing::CompositeResult composite =
        options.schedule == CompositeSchedule::kBinarySwap
            ? compositing::binary_swap(frames, options.tracer,
                                       options.query_id)
            : compositing::direct_send(frames, options.tracer,
                                       options.query_id);
    const double merge_cpu = merge_timer.seconds();

    report.composite_traffic = composite.traffic;
    report.composite_model_seconds =
        cluster_.network_seconds(composite.traffic.rounds,
                                 composite.traffic.max_node_bytes) +
        merge_cpu / static_cast<double>(p);
    composite_span.arg("rounds",
                       static_cast<std::uint64_t>(composite.traffic.rounds));
    composite_span.arg("bytes_total", composite.traffic.bytes_total);
    composite_span.arg("model_seconds", report.composite_model_seconds);
    // The phase cost is shared: charge it once (max over nodes is what
    // completion_seconds uses, and all nodes participate symmetrically).
    for (auto& ledger : report.times.per_node) {
      ledger.add(parallel::Phase::kCompositing,
                 report.composite_model_seconds);
    }
    if (options.keep_image) report.image = std::move(composite.image);
  }

  if (options.compute_mesh_crc) {
    // Hash across the per-node soups directly — order-independent by
    // construction, so it equals the hash of any merged ordering.
    report.mesh_crc = extract::canonical_mesh_crc(
        std::span<const extract::TriangleSoup>(soups));
  }
  if (options.keep_triangles) {
    extract::TriangleSoup merged;
    std::size_t total = 0;
    for (const auto& soup : soups) total += soup.size();
    merged.reserve(total);
    for (const auto& soup : soups) merged.append(soup);
    report.triangles_out = std::move(merged);
  }

  // Mirror the report's ledger/fault totals into the registry, so the
  // scattered per-query structs and the exported metrics are two views of
  // the same run (tests reconcile histogram sums against reports).
  if (options.metrics != nullptr) {
    auto& m = *options.metrics;
    m.counter("query.count").add();
    m.counter("query.triangles").add(report.total_triangles());
    m.counter("query.active_metacells").add(report.total_active_metacells());
    auto& io_h = m.histogram("query.io_model_seconds");
    auto& tri_h = m.histogram("query.triangulation_seconds");
    auto& ren_h = m.histogram("query.rendering_seconds");
    for (const NodeReport& node_report : report.nodes) {
      io_h.observe(node_report.io_model_seconds);
      tri_h.observe(node_report.triangulation_seconds);
      ren_h.observe(node_report.rendering_seconds);
    }
    if (report.total_decode_cpu_seconds() > 0.0) {
      m.histogram("query.decode_cpu_seconds")
          .observe(report.total_decode_cpu_seconds());
    }
    m.histogram("query.composite_model_seconds")
        .observe(report.composite_model_seconds);
    m.histogram("query.completion_seconds").observe(report.completion_seconds());
    std::uint64_t injected_failures = 0;
    std::uint64_t injected_corruptions = 0;
    std::uint64_t injected_stalls = 0;
    for (const NodeReport& node_report : report.nodes) {
      injected_failures += node_report.faults.injected_read_failures;
      injected_corruptions += node_report.faults.injected_corrupted_reads;
      injected_stalls += node_report.faults.injected_stalls;
    }
    if (injected_failures > 0) {
      m.counter("faults.injected_read_failures").add(injected_failures);
    }
    if (injected_corruptions > 0) {
      m.counter("faults.injected_corrupted_reads").add(injected_corruptions);
    }
    if (injected_stalls > 0) {
      m.counter("faults.injected_stalls").add(injected_stalls);
    }
    if (report.total_failovers() > 0) {
      m.counter("faults.failovers").add(report.total_failovers());
    }
  }
  return report;
}

}  // namespace oociso::pipeline
