#pragma once
// Progressive multi-resolution isosurface serving (index/hierarchy.h).
//
// A flat query (query_engine.h) answers "the surface" in one pass; a
// progressive query answers "the best surface available *now*" and keeps
// refining. The engine walks the stored mip levels coarsest-first: each
// coarse level stabs its per-node entry table, reads only the stabbed
// downsampled bricks (a few percent of the full sweep's I/O), and
// triangulates them into a complete — conservative — surface whose
// vertices are mapped back into fine-lattice coordinates. The final
// refinement step is the ordinary flat query, so a run that reaches level
// 0 reproduces the non-hierarchical mesh bit-identically.
//
// Deadline / budget semantics (DESIGN §16):
//   * The coarsest level ALWAYS completes — a deadline-bounded query is
//     guaranteed some surface, never an empty frame.
//   * `QueryOptions::deadline_ms` and `::cancel` gate further refinement:
//     both are checked before each level is started and before each record
//     batch is issued inside a level; a partially refined level is
//     discarded (the previous level's complete surface stands).
//   * `QueryOptions::memory_budget_bytes` bounds the refinement batch
//     bytes concurrently in flight: each node's coarse plan is chopped
//     into sub-plans of at most budget/p record bytes and gap coalescing
//     is disabled, so peak_batch_bytes never exceeds the budget.
//   * `QueryOptions::max_level` floors the refinement (2 = stop after
//     coarse level 2); 0 refines all the way to the flat mesh.
//
// Monotonicity: every coarse interval is the exact hull of its kept
// children, so the set of fine metacells covered by level l's active nodes
// contains level l-1's active set — refinement only ever adds detail.

#include <cstdint>
#include <optional>
#include <vector>

#include "extract/mesh.h"
#include "pipeline/query_engine.h"

namespace oociso::pipeline {

/// Outcome of one completed refinement level.
struct LevelReport {
  std::int32_t level = 0;  ///< 0 = full resolution (the flat query)
  /// Per-node extraction counters. For level 0 these are the flat query's
  /// NodeReports; for coarse levels the I/O fields cover the entry-table
  /// brick reads and the fault/routing fields stay zero (coarse records
  /// are single-copy and read through private raw handles).
  std::vector<NodeReport> nodes;
  std::uint64_t active_metacells = 0;  ///< stabbed nodes at this level
  std::uint64_t triangles = 0;
  io::IoStats io;                  ///< block I/O summed over the nodes
  double io_model_seconds = 0.0;   ///< disk-model price of `io`
  double extract_seconds = 0.0;    ///< decode + marching-cubes CPU, summed
  /// Wall-clock milliseconds from run start to this level's completion —
  /// the progressive latency curve (first entry = time-to-first-surface).
  double elapsed_ms = 0.0;
  /// Canonical content hash of this level's mesh (always computed: coarse
  /// meshes are small, and level 0 forces compute_mesh_crc). Equal to the
  /// flat query's hash when level == 0.
  std::uint32_t mesh_crc = 0;
};

/// Everything a progressive run produced, coarsest level first.
struct ProgressiveReport {
  core::ValueKey isovalue = 0;
  /// Completed levels in refinement order (coarsest first). Never empty:
  /// the coarsest level is exempt from deadline/cancel.
  std::vector<LevelReport> levels;
  /// The finest level that ran to completion (0 = the flat mesh; -1 only
  /// for an index with no stored data at all).
  std::int32_t finest_level_completed = -1;
  bool deadline_expired = false;  ///< refinement stopped by the deadline
  bool cancelled = false;         ///< refinement stopped by the cancel flag
  /// Record batches issued after the stop condition had been observed.
  /// Zero by construction — the engine checks before every issue — and
  /// pinned by the hierarchy tests as a regression tripwire.
  std::uint64_t batches_after_cancel = 0;
  /// High-water mark of refinement batch bytes concurrently in flight
  /// (coarse levels only; the flat level accounts through its own report).
  /// <= QueryOptions::memory_budget_bytes when a budget was set.
  std::uint64_t peak_batch_bytes = 0;
  /// The flat query's full report, present when refinement reached level 0.
  std::optional<QueryReport> full;
  /// Triangles of the finest completed level, in fine-lattice coordinates.
  /// Coarse meshes are always kept; the level-0 mesh is kept only when
  /// QueryOptions::keep_triangles was set (matching the flat engine).
  extract::TriangleSoup mesh;
  /// Canonical hash of the finest completed level's mesh.
  std::optional<std::uint32_t> mesh_crc;

  /// Block reads spent on coarse levels, summed over every preview level.
  /// Reporting only — the <= 10% progressive I/O gate
  /// (ci/check_progressive.py) compares the *coarsest* level's read_ops
  /// alone (`levels.front().io.read_ops`) against the flat sweep's.
  [[nodiscard]] std::uint64_t coarse_read_ops() const {
    std::uint64_t total = 0;
    for (const LevelReport& level : levels) {
      if (level.level > 0) total += level.io.read_ops;
    }
    return total;
  }
  [[nodiscard]] std::uint64_t total_triangles() const {
    return levels.empty() ? 0 : levels.back().triangles;
  }
};

/// Runs deadline/budget-bounded progressive queries against a preprocessed
/// dataset. Safe to use concurrently from several threads the same way
/// QueryEngine is: each run() builds its own per-node state.
class ProgressiveEngine {
 public:
  /// `result` must outlive the engine; `cluster` provides disks and models.
  ProgressiveEngine(parallel::Cluster& cluster, const PreprocessResult& result)
      : cluster_(cluster), data_(result) {}

  /// Refines coarsest -> max_level under the options' deadline/budget (see
  /// header comment). An index built with --levels 1 has no coarse levels
  /// and degenerates to the flat query.
  [[nodiscard]] ProgressiveReport run(core::ValueKey isovalue,
                                      const QueryOptions& options = {});

 private:
  parallel::Cluster& cluster_;
  const PreprocessResult& data_;
};

}  // namespace oociso::pipeline
