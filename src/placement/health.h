#pragma once
// Per-node health tracking for replica-aware routing.
//
// Consecutive read failures against one node's store trip it; a tripped node
// is skipped by the replica router for subsequent reads/queries, except that
// every probe_interval-th consultation lets one read through as a recovery
// probe. A successful probe restores the node to healthy (the probation ->
// healthy transition), so a node that comes back is rediscovered without any
// operator action. The tracker is shared across concurrent queries inside
// QueryServer, so all state is guarded by one mutex; transitions depend only
// on the sequence of report/admit calls, never on wall time, which keeps
// chaos tests deterministic under a fixed schedule.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace oociso::obs {
class MetricsRegistry;
}  // namespace oociso::obs

namespace oociso::placement {

struct HealthConfig {
  /// Consecutive failures that trip a node.
  std::uint32_t trip_threshold = 3;
  /// Every Nth admit() consultation of a tripped node is allowed through as
  /// a recovery probe (the node is in probation for that read).
  std::uint32_t probe_interval = 8;

  void validate() const;
};

class NodeHealthTracker {
 public:
  enum class State : std::uint8_t { kHealthy = 0, kTripped = 1 };

  NodeHealthTracker(std::size_t node_count, HealthConfig config = {});

  std::size_t node_count() const { return nodes_.size(); }
  const HealthConfig& config() const { return config_; }

  /// A read against `node` succeeded: clear its failure streak, and if it was
  /// tripped (i.e. this was a recovery probe) restore it to healthy.
  void report_success(std::size_t node);

  /// A read against `node` exhausted its retry budget.
  void report_failure(std::size_t node);

  /// Should the router consider `node` right now? Healthy -> always true.
  /// Tripped -> false, except every probe_interval-th consultation returns
  /// true (recovery probe). Counting consultations rather than time keeps
  /// the policy deterministic.
  bool admit(std::size_t node);

  State state(std::size_t node) const;
  std::uint64_t trips(std::size_t node) const;
  /// Number of currently tripped nodes (exported as a gauge).
  std::size_t tripped_count() const;

  /// Export per-tracker gauges: placement.nodes_tripped, and a monotone
  /// placement.trips counter.
  void attach_metrics(obs::MetricsRegistry& registry);

 private:
  struct NodeState {
    State state = State::kHealthy;
    std::uint32_t consecutive_failures = 0;
    /// admit() consultations since the node tripped (drives probing).
    std::uint64_t consultations = 0;
    std::uint64_t trips = 0;
  };

  void publish_locked();

  HealthConfig config_;
  mutable std::mutex mutex_;
  std::vector<NodeState> nodes_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace oociso::placement
