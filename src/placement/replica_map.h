#pragma once
// K-way replicated brick placement via rendezvous hashing.
//
// The placement unit is a *placement group*: a run of consecutive bricks of
// one stripe tree. Bricks of a tree are appended to their node device in
// offset order during the build, so a group covers one contiguous byte range
// on the primary device and can be copied verbatim to replica stores. Each
// group's replica holders are chosen by rendezvous (highest-random-weight)
// hashing over (seed, stripe, group, node): every participant can recompute
// the same holder set from the placement config alone, no directory service
// required, and adding a node reshuffles only ~1/n of the groups.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oociso::placement {

/// Deterministic inputs of the placement function. Two builds with the same
/// config place every group identically.
struct PlacementConfig {
  std::size_t node_count = 1;
  /// Total copies per group including the primary. 1 = no replication.
  std::size_t replication = 1;
  /// Bricks per placement group (run-coalescing never crosses a group
  /// boundary when replication is active, so larger groups coalesce better
  /// but spread a dead node's load over fewer peers).
  std::size_t group_bricks = 16;
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;

  void validate() const;
};

/// Pure placement function: answers "which nodes hold group g of stripe s".
class ReplicaMap {
 public:
  explicit ReplicaMap(PlacementConfig config);

  const PlacementConfig& config() const { return config_; }

  /// Rendezvous score of `node` for (stripe, group); higher wins. Pure.
  std::uint64_t score(std::size_t stripe, std::size_t group,
                      std::size_t node) const;

  /// All holders of (stripe, group) in rank order: the primary (always the
  /// stripe owner — primary layout is placement-independent) followed by the
  /// replication-1 highest-scoring other nodes.
  std::vector<std::size_t> holders(std::size_t stripe,
                                   std::size_t group) const;

  /// The replica holders only (holders() without the leading primary).
  std::vector<std::size_t> replicas(std::size_t stripe,
                                    std::size_t group) const;

 private:
  PlacementConfig config_;
};

}  // namespace oociso::placement
