#include "placement/health.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace oociso::placement {

void HealthConfig::validate() const {
  if (trip_threshold == 0) {
    throw std::invalid_argument("health: trip_threshold must be >= 1");
  }
  if (probe_interval == 0) {
    throw std::invalid_argument("health: probe_interval must be >= 1");
  }
}

NodeHealthTracker::NodeHealthTracker(std::size_t node_count,
                                     HealthConfig config)
    : config_(config), nodes_(node_count) {
  if (node_count == 0) {
    throw std::invalid_argument("health: node_count must be >= 1");
  }
  config_.validate();
}

void NodeHealthTracker::report_success(std::size_t node) {
  const std::lock_guard<std::mutex> lock(mutex_);
  NodeState& n = nodes_.at(node);
  n.consecutive_failures = 0;
  if (n.state == State::kTripped) {
    // A recovery probe succeeded: the node is back.
    n.state = State::kHealthy;
    n.consultations = 0;
    publish_locked();
  }
}

void NodeHealthTracker::report_failure(std::size_t node) {
  const std::lock_guard<std::mutex> lock(mutex_);
  NodeState& n = nodes_.at(node);
  ++n.consecutive_failures;
  if (n.state == State::kHealthy &&
      n.consecutive_failures >= config_.trip_threshold) {
    n.state = State::kTripped;
    n.consultations = 0;
    ++n.trips;
    if (metrics_ != nullptr) metrics_->counter("placement.trips").add();
    publish_locked();
  }
}

bool NodeHealthTracker::admit(std::size_t node) {
  const std::lock_guard<std::mutex> lock(mutex_);
  NodeState& n = nodes_.at(node);
  if (n.state == State::kHealthy) return true;
  // Tripped: deny, but let every probe_interval-th consultation through so
  // a recovered node is eventually rediscovered.
  ++n.consultations;
  return n.consultations % config_.probe_interval == 0;
}

NodeHealthTracker::State NodeHealthTracker::state(std::size_t node) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return nodes_.at(node).state;
}

std::uint64_t NodeHealthTracker::trips(std::size_t node) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return nodes_.at(node).trips;
}

std::size_t NodeHealthTracker::tripped_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t tripped = 0;
  for (const NodeState& n : nodes_) {
    if (n.state == State::kTripped) ++tripped;
  }
  return tripped;
}

void NodeHealthTracker::attach_metrics(obs::MetricsRegistry& registry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = &registry;
  publish_locked();
}

void NodeHealthTracker::publish_locked() {
  if (metrics_ == nullptr) return;
  std::int64_t tripped = 0;
  for (const NodeState& n : nodes_) {
    if (n.state == State::kTripped) ++tripped;
  }
  metrics_->gauge("placement.nodes_tripped").set(tripped);
}

}  // namespace oociso::placement
