#include "placement/replica_map.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace oociso::placement {

void PlacementConfig::validate() const {
  if (node_count == 0) {
    throw std::invalid_argument("placement: node_count must be >= 1");
  }
  if (replication == 0) {
    throw std::invalid_argument("placement: replication must be >= 1");
  }
  if (replication > node_count) {
    throw std::invalid_argument(
        "placement: replication " + std::to_string(replication) +
        " exceeds node count " + std::to_string(node_count));
  }
  if (group_bricks == 0) {
    throw std::invalid_argument("placement: group_bricks must be >= 1");
  }
}

ReplicaMap::ReplicaMap(PlacementConfig config) : config_(config) {
  config_.validate();
}

std::uint64_t ReplicaMap::score(std::size_t stripe, std::size_t group,
                                std::size_t node) const {
  // Mix the coordinates through chained splitmix64 rounds; the result is a
  // high-quality 64-bit weight, and the whole function is a closed form so
  // any process (builder, scheduler, test) recomputes it identically.
  std::uint64_t state = config_.seed;
  state ^= 0x5354'5249'5045'0000ULL + static_cast<std::uint64_t>(stripe);
  std::uint64_t weight = util::splitmix64(state);
  state ^= 0x4752'4F55'5000'0000ULL + static_cast<std::uint64_t>(group);
  weight ^= util::splitmix64(state);
  state ^= 0x4E4F'4445'0000'0000ULL + static_cast<std::uint64_t>(node);
  weight ^= util::splitmix64(state);
  return weight;
}

std::vector<std::size_t> ReplicaMap::holders(std::size_t stripe,
                                             std::size_t group) const {
  std::vector<std::size_t> result;
  result.reserve(config_.replication);
  result.push_back(stripe % config_.node_count);
  if (config_.replication <= 1) return result;

  // Rank every other node by rendezvous score, highest first; ties (never in
  // practice with 64-bit scores, but determinism must not hinge on that)
  // break toward the lower node id.
  std::vector<std::pair<std::uint64_t, std::size_t>> ranked;
  ranked.reserve(config_.node_count - 1);
  for (std::size_t node = 0; node < config_.node_count; ++node) {
    if (node == result.front()) continue;
    ranked.emplace_back(score(stripe, group, node), node);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  const std::size_t extra = config_.replication - 1;
  for (std::size_t i = 0; i < extra && i < ranked.size(); ++i) {
    result.push_back(ranked[i].second);
  }
  return result;
}

std::vector<std::size_t> ReplicaMap::replicas(std::size_t stripe,
                                              std::size_t group) const {
  std::vector<std::size_t> all = holders(stripe, group);
  all.erase(all.begin());
  return all;
}

}  // namespace oociso::placement
