#pragma once
// Runtime-dispatched SIMD classification kernel for marching cubes.
//
// The incremental extractor (marching_cubes.cpp) splits each cell row into
// two phases: CLASSIFY every sample against the isovalue into a per-row
// inside-bitmask, then TRIANGULATE only the cells the bitmask proves
// active. Classification is the data-parallel phase — a pure elementwise
// compare over contiguous floats — so it is the part that vectorizes. This
// header is the dispatch seam: one function-pointer signature, three
// implementations (scalar / SSE2 / AVX2), and a probe-once `dispatch()`
// that picks the widest ISA the CPU + OS support.
//
// All three implementations produce byte-identical bitmasks (x86 ordered
// `<` compares agree with scalar `<` on every input including NaN/±inf),
// and the triangulation phase is shared, so the extracted mesh is
// bit-identical across ISAs by construction. The differential fuzz suite
// (tests/kernel_fuzz_test.cpp) holds that line.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace oociso::extract {

/// Which classification implementation to run. kAuto defers to
/// kernel::dispatch() (widest available); the explicit values force one
/// implementation and fail loudly (kernel::resolve throws) when the host
/// cannot execute it.
enum class KernelIsa : std::uint8_t { kAuto, kScalar, kSse2, kAvx2 };

/// Per-query kernel knobs, threaded from the CLI / bench / ServeOptions
/// down to extract_volume / extract_metacell.
struct KernelOptions {
  KernelIsa isa = KernelIsa::kAuto;
};

namespace kernel {

/// Writes the inside-bitmask for one sample row: bit i of `bits` is set
/// iff row[i] < isovalue. `bits` must hold (count + 63) / 64 words; every
/// word is fully (re)written, with the bits past `count` in the last word
/// zeroed.
using ClassifyRowFn = void (*)(const float* row, std::size_t count,
                               float isovalue, std::uint64_t* bits);

/// Stable lowercase name ("auto", "scalar", "sse2", "avx2").
[[nodiscard]] std::string_view isa_name(KernelIsa isa);

/// Parses a name from isa_name's set; throws std::invalid_argument on
/// anything else.
[[nodiscard]] KernelIsa parse_isa(std::string_view name);

/// True when this host can execute the ISA (kAuto and kScalar always can).
[[nodiscard]] bool available(KernelIsa isa);

/// The widest available concrete ISA (never kAuto); probed once, cached.
[[nodiscard]] KernelIsa dispatch();

/// kAuto -> dispatch(); explicit ISAs are validated against available()
/// and returned, throwing std::runtime_error when the host lacks them.
[[nodiscard]] KernelIsa resolve(KernelIsa isa);

/// Every concrete ISA this host can run, scalar first — the per-ISA loop
/// for golden and differential tests.
[[nodiscard]] std::vector<KernelIsa> dispatchable_isas();

namespace detail {

/// The classification primitive for a *resolved* (concrete, available)
/// ISA. Passing kAuto or an unavailable ISA throws std::runtime_error.
[[nodiscard]] ClassifyRowFn classify_fn(KernelIsa resolved);

// Per-ISA entry points (each in its own translation unit so AVX2 codegen
// stays quarantined behind per-file -mavx2). classify_row_sse2/avx2 fall
// back to the scalar body when built for a target without the intrinsics.
void classify_row_scalar(const float* row, std::size_t count, float isovalue,
                         std::uint64_t* bits);
void classify_row_sse2(const float* row, std::size_t count, float isovalue,
                       std::uint64_t* bits);
void classify_row_avx2(const float* row, std::size_t count, float isovalue,
                       std::uint64_t* bits);

}  // namespace detail
}  // namespace kernel
}  // namespace oociso::extract
