// SSE2 classification: 4 floats per compare, movemask packs the lane
// results straight into the bitmask word. CMPLTPS is an ordered compare —
// false when either operand is NaN — exactly like scalar `<`, so the mask
// is bit-identical to classify_row_scalar on every input.

#include "extract/kernel.h"

#if defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define OOCISO_HAVE_SSE2 1
#endif

namespace oociso::extract::kernel::detail {

#if defined(OOCISO_HAVE_SSE2)

void classify_row_sse2(const float* row, std::size_t count, float isovalue,
                       std::uint64_t* bits) {
  const __m128 viso = _mm_set1_ps(isovalue);
  const std::size_t words = (count + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t base = w * 64;
    const std::size_t in_word = count - base < 64 ? count - base : 64;
    std::uint64_t word = 0;
    std::size_t i = 0;
    for (; i + 4 <= in_word; i += 4) {
      const __m128 values = _mm_loadu_ps(row + base + i);
      const int lanes = _mm_movemask_ps(_mm_cmplt_ps(values, viso));
      word |= static_cast<std::uint64_t>(static_cast<unsigned>(lanes)) << i;
    }
    for (; i < in_word; ++i) {
      word |= static_cast<std::uint64_t>(row[base + i] < isovalue) << i;
    }
    bits[w] = word;
  }
}

#else

void classify_row_sse2(const float* row, std::size_t count, float isovalue,
                       std::uint64_t* bits) {
  classify_row_scalar(row, count, isovalue, bits);
}

#endif

}  // namespace oociso::extract::kernel::detail
