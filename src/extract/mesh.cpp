#include "extract/mesh.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/crc32.h"

namespace oociso::extract {

double TriangleSoup::total_area() const {
  double area = 0.0;
  for (const Triangle& tri : triangles_) area += tri.area();
  return area;
}

bool TriangleSoup::bounds(core::Vec3& lo, core::Vec3& hi) const {
  if (triangles_.empty()) return false;
  lo = hi = triangles_.front().a;
  auto grow = [&](const core::Vec3& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  };
  for (const Triangle& tri : triangles_) {
    grow(tri.a);
    grow(tri.b);
    grow(tri.c);
  }
  return true;
}

std::uint32_t canonical_mesh_crc(const TriangleSoup& soup) {
  return canonical_mesh_crc(std::span<const TriangleSoup>(&soup, 1));
}

std::uint32_t canonical_mesh_crc(std::span<const TriangleSoup> soups) {
  using Quantized = std::array<std::int64_t, 9>;
  std::size_t total = 0;
  for (const TriangleSoup& soup : soups) total += soup.size();
  std::vector<Quantized> rows;
  rows.reserve(total);
  for (const TriangleSoup& soup : soups) {
    for (const Triangle& triangle : soup.triangles()) {
      const core::Vec3* vertices[3] = {&triangle.a, &triangle.b, &triangle.c};
      Quantized row;
      std::size_t at = 0;
      for (const core::Vec3* v : vertices) {
        row[at++] = std::llround(static_cast<double>(v->x) * 4096.0);
        row[at++] = std::llround(static_cast<double>(v->y) * 4096.0);
        row[at++] = std::llround(static_cast<double>(v->z) * 4096.0);
      }
      rows.push_back(row);
    }
  }
  std::sort(rows.begin(), rows.end());
  std::uint32_t state = util::crc32_init();
  for (const Quantized& row : rows) {
    std::array<std::byte, sizeof(Quantized)> bytes;
    std::memcpy(bytes.data(), row.data(), sizeof(Quantized));
    state = util::crc32_update(state, bytes);
  }
  return util::crc32_final(state);
}

void write_obj(const TriangleSoup& soup, const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_obj: cannot open " + path.string());
  out << "# oociso isosurface, " << soup.size() << " triangles\n";
  for (const Triangle& tri : soup.triangles()) {
    for (const core::Vec3& p : {tri.a, tri.b, tri.c}) {
      out << "v " << p.x << ' ' << p.y << ' ' << p.z << '\n';
    }
  }
  for (std::size_t i = 0; i < soup.size(); ++i) {
    const std::size_t base = 3 * i + 1;
    out << "f " << base << ' ' << base + 1 << ' ' << base + 2 << '\n';
  }
  if (!out) throw std::runtime_error("write_obj: write failed " + path.string());
}

}  // namespace oociso::extract
