#include "extract/indexed_mesh.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace oociso::extract {
namespace {

/// Exact-bits position key (welding relies on bitwise-identical crossings).
struct PositionKey {
  std::uint32_t x;
  std::uint32_t y;
  std::uint32_t z;
  bool operator==(const PositionKey&) const = default;
};

struct PositionKeyHash {
  std::size_t operator()(const PositionKey& key) const {
    std::uint64_t h = key.x;
    h = h * 0x9E3779B97F4A7C15ULL ^ key.y;
    h = h * 0x9E3779B97F4A7C15ULL ^ key.z;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

PositionKey key_of(const core::Vec3& p) {
  PositionKey key{};
  std::memcpy(&key.x, &p.x, 4);
  std::memcpy(&key.y, &p.y, 4);
  std::memcpy(&key.z, &p.z, 4);
  // Normalize -0.0f to +0.0f so both weld together.
  if (key.x == 0x80000000u) key.x = 0;
  if (key.y == 0x80000000u) key.y = 0;
  if (key.z == 0x80000000u) key.z = 0;
  return key;
}

/// Union-find over vertex ids.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t count) : parent_(count) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::uint32_t> parent_;
};

/// Canonical undirected edge.
std::pair<std::uint32_t, std::uint32_t> edge_key(std::uint32_t a,
                                                 std::uint32_t b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

}  // namespace

IndexedMesh IndexedMesh::weld(const TriangleSoup& soup) {
  IndexedMesh mesh;
  std::unordered_map<PositionKey, std::uint32_t, PositionKeyHash> lookup;
  lookup.reserve(soup.size() * 2);

  auto intern = [&](const core::Vec3& p) {
    const auto [it, inserted] = lookup.try_emplace(
        key_of(p), static_cast<std::uint32_t>(mesh.positions_.size()));
    if (inserted) mesh.positions_.push_back(p);
    return it->second;
  };

  mesh.triangles_.reserve(soup.size());
  for (const Triangle& tri : soup.triangles()) {
    const std::uint32_t a = intern(tri.a);
    const std::uint32_t b = intern(tri.b);
    const std::uint32_t c = intern(tri.c);
    if (a == b || b == c || a == c) continue;  // degenerate after welding
    if (tri.area() < 1e-12f) continue;
    mesh.triangles_.push_back({a, b, c});
  }
  return mesh;
}

const std::vector<core::Vec3>& IndexedMesh::vertex_normals() const {
  if (normals_.size() == positions_.size()) return normals_;
  normals_.assign(positions_.size(), core::Vec3{});
  for (const IndexedTriangle& tri : triangles_) {
    const core::Vec3 n =  // area-weighted: the raw cross product
        (positions_[tri.b] - positions_[tri.a])
            .cross(positions_[tri.c] - positions_[tri.a]);
    normals_[tri.a] += n;
    normals_[tri.b] += n;
    normals_[tri.c] += n;
  }
  for (core::Vec3& n : normals_) n = n.normalized();
  return normals_;
}

std::size_t IndexedMesh::connected_components() const {
  if (positions_.empty()) return 0;
  DisjointSet sets(positions_.size());
  std::vector<bool> used(positions_.size(), false);
  for (const IndexedTriangle& tri : triangles_) {
    sets.unite(tri.a, tri.b);
    sets.unite(tri.b, tri.c);
    used[tri.a] = used[tri.b] = used[tri.c] = true;
  }
  std::size_t components = 0;
  for (std::uint32_t v = 0; v < positions_.size(); ++v) {
    if (used[v] && sets.find(v) == v) ++components;
  }
  return components;
}

std::size_t IndexedMesh::edge_count() const {
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> edges;
  for (const IndexedTriangle& tri : triangles_) {
    ++edges[edge_key(tri.a, tri.b)];
    ++edges[edge_key(tri.b, tri.c)];
    ++edges[edge_key(tri.c, tri.a)];
  }
  return edges.size();
}

std::int64_t IndexedMesh::euler_characteristic() const {
  return static_cast<std::int64_t>(vertex_count()) -
         static_cast<std::int64_t>(edge_count()) +
         static_cast<std::int64_t>(triangle_count());
}

bool IndexedMesh::is_closed() const {
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> edges;
  for (const IndexedTriangle& tri : triangles_) {
    ++edges[edge_key(tri.a, tri.b)];
    ++edges[edge_key(tri.b, tri.c)];
    ++edges[edge_key(tri.c, tri.a)];
  }
  return std::all_of(edges.begin(), edges.end(),
                     [](const auto& entry) { return entry.second == 2; });
}

double IndexedMesh::total_area() const {
  double area = 0.0;
  for (const IndexedTriangle& tri : triangles_) {
    area += 0.5 * (positions_[tri.b] - positions_[tri.a])
                      .cross(positions_[tri.c] - positions_[tri.a])
                      .length();
  }
  return area;
}

void IndexedMesh::write_obj(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("IndexedMesh: cannot open " + path.string());
  }
  out << "# oociso indexed isosurface: " << vertex_count() << " vertices, "
      << triangle_count() << " triangles\n";
  for (const core::Vec3& p : positions_) {
    out << "v " << p.x << ' ' << p.y << ' ' << p.z << '\n';
  }
  for (const core::Vec3& n : vertex_normals()) {
    out << "vn " << n.x << ' ' << n.y << ' ' << n.z << '\n';
  }
  for (const IndexedTriangle& tri : triangles_) {
    out << "f " << tri.a + 1 << "//" << tri.a + 1 << ' ' << tri.b + 1 << "//"
        << tri.b + 1 << ' ' << tri.c + 1 << "//" << tri.c + 1 << '\n';
  }
  if (!out) {
    throw std::runtime_error("IndexedMesh: write failed " + path.string());
  }
}

}  // namespace oociso::extract
