#pragma once
// Indexed (welded) meshes: post-processing of extracted triangle soups.
//
// Extraction emits independent triangles (three vertices each) because
// that is what streams to the renderer with zero coordination. Downstream
// consumers usually want shared-vertex connectivity: smaller files, smooth
// per-vertex normals, and topology queries. IndexedMesh provides that:
// soup vertices are welded by exact position (marching cubes/tetrahedra
// compute each shared edge crossing identically in both incident cells, so
// exact welding reconstructs the true connectivity), normals are
// area-weighted vertex averages, and connected components come from a
// union-find over the welded triangles.

#include <cstdint>
#include <filesystem>
#include <vector>

#include "core/vec3.h"
#include "extract/mesh.h"

namespace oociso::extract {

class IndexedMesh {
 public:
  struct IndexedTriangle {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;
  };

  IndexedMesh() = default;

  /// Welds a soup into an indexed mesh. Degenerate triangles (repeated
  /// welded vertices or ~zero area) are dropped.
  static IndexedMesh weld(const TriangleSoup& soup);

  [[nodiscard]] const std::vector<core::Vec3>& positions() const {
    return positions_;
  }
  [[nodiscard]] const std::vector<IndexedTriangle>& triangles() const {
    return triangles_;
  }
  [[nodiscard]] std::size_t vertex_count() const { return positions_.size(); }
  [[nodiscard]] std::size_t triangle_count() const {
    return triangles_.size();
  }

  /// Area-weighted per-vertex normals (unit length; zero for isolated
  /// vertices). Computed lazily and cached.
  [[nodiscard]] const std::vector<core::Vec3>& vertex_normals() const;

  /// Number of edge-connected surface components.
  [[nodiscard]] std::size_t connected_components() const;

  /// Number of distinct undirected edges.
  [[nodiscard]] std::size_t edge_count() const;

  /// Euler characteristic V - E + F (2 per closed genus-0 component; 0 for
  /// a torus). Meaningful for closed, manifold surfaces.
  [[nodiscard]] std::int64_t euler_characteristic() const;

  /// True when every edge is shared by exactly two triangles.
  [[nodiscard]] bool is_closed() const;

  [[nodiscard]] double total_area() const;

  /// OBJ with shared vertices and per-vertex normals.
  void write_obj(const std::filesystem::path& path) const;

 private:
  std::vector<core::Vec3> positions_;
  std::vector<IndexedTriangle> triangles_;
  mutable std::vector<core::Vec3> normals_;  // lazy cache
};

}  // namespace oociso::extract
