// Portable scalar classification: the reference every SIMD variant must
// match bit for bit, and the dispatch target on non-x86 hosts.

#include "extract/kernel.h"

namespace oociso::extract::kernel::detail {

void classify_row_scalar(const float* row, std::size_t count, float isovalue,
                         std::uint64_t* bits) {
  const std::size_t words = (count + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) bits[w] = 0;
  for (std::size_t i = 0; i < count; ++i) {
    bits[i >> 6] |=
        static_cast<std::uint64_t>(row[i] < isovalue) << (i & 63);
  }
}

}  // namespace oociso::extract::kernel::detail
