#include "extract/kernel.h"

#include <string>

#include "util/cpu_features.h"

namespace oociso::extract::kernel {

std::string_view isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAuto:
      return "auto";
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kSse2:
      return "sse2";
    case KernelIsa::kAvx2:
      return "avx2";
  }
  return "auto";
}

KernelIsa parse_isa(std::string_view name) {
  if (name == "auto") return KernelIsa::kAuto;
  if (name == "scalar") return KernelIsa::kScalar;
  if (name == "sse2") return KernelIsa::kSse2;
  if (name == "avx2") return KernelIsa::kAvx2;
  throw std::invalid_argument("unknown kernel ISA '" + std::string(name) +
                              "' (auto|scalar|sse2|avx2)");
}

bool available(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAuto:
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kSse2:
      return util::cpu_features().sse2;
    case KernelIsa::kAvx2:
      return util::cpu_features().avx2;
  }
  return false;
}

KernelIsa dispatch() {
  static const KernelIsa best = [] {
    const util::CpuFeatures& cpu = util::cpu_features();
    if (cpu.avx2) return KernelIsa::kAvx2;
    if (cpu.sse2) return KernelIsa::kSse2;
    return KernelIsa::kScalar;
  }();
  return best;
}

KernelIsa resolve(KernelIsa isa) {
  if (isa == KernelIsa::kAuto) return dispatch();
  if (!available(isa)) {
    throw std::runtime_error("kernel ISA '" + std::string(isa_name(isa)) +
                             "' is not supported by this CPU "
                             "(use --kernel auto)");
  }
  return isa;
}

std::vector<KernelIsa> dispatchable_isas() {
  std::vector<KernelIsa> isas{KernelIsa::kScalar};
  if (available(KernelIsa::kSse2)) isas.push_back(KernelIsa::kSse2);
  if (available(KernelIsa::kAvx2)) isas.push_back(KernelIsa::kAvx2);
  return isas;
}

namespace detail {

ClassifyRowFn classify_fn(KernelIsa resolved) {
  switch (resolved) {
    case KernelIsa::kScalar:
      return &classify_row_scalar;
    case KernelIsa::kSse2:
      if (available(KernelIsa::kSse2)) return &classify_row_sse2;
      break;
    case KernelIsa::kAvx2:
      if (available(KernelIsa::kAvx2)) return &classify_row_avx2;
      break;
    case KernelIsa::kAuto:
      break;
  }
  throw std::runtime_error("classify_fn: ISA '" +
                           std::string(isa_name(resolved)) +
                           "' is not resolved/available on this host");
}

}  // namespace detail
}  // namespace oociso::extract::kernel
