#pragma once
// Marching-cubes triangulation (Lorensen & Cline 1987).
//
// The paper's pipeline brings one *active metacell* into memory at a time
// and runs marching cubes over its unit cells; extract_metacell() is that
// step. extract_volume() runs the same kernel over a whole in-memory volume
// and serves as the in-core reference the out-of-core pipeline is tested
// against (the two must produce identical triangle multisets).
//
// Vertex-inside convention: a corner is "inside" when value < isovalue.
// Surface vertices are placed by linear interpolation along cell edges.
// All emitted coordinates are in *sample-lattice* units of the full volume
// (one cell == one unit), so per-metacell outputs compose seamlessly.
//
// The incremental kernel runs in two phases per slab: a SIMD-dispatchable
// CLASSIFY pass (every sample row compared against the isovalue into an
// inside-bitmask; see extract/kernel.h) and a TRIANGULATE pass over only
// the cells the bitmasks prove mixed-sign. Output is bit-identical across
// scalar/SSE2/AVX2 because the compare semantics agree exactly (including
// NaN/±inf) and triangulation order is unchanged.

#include <array>
#include <cstdint>

#include "core/vec3.h"
#include "core/volume.h"
#include "extract/kernel.h"
#include "extract/mesh.h"
#include "metacell/metacell.h"

namespace oociso::extract {

/// Triangulates one unit cell. `values[i]` and `corners[i]` follow the
/// corner numbering in mc_tables.h. Returns the number of triangles added.
std::size_t triangulate_cell(const std::array<float, 8>& values,
                             const std::array<core::Vec3, 8>& corners,
                             float isovalue, TriangleSoup& out);

/// Statistics of one extraction pass.
struct MarchingCubesStats {
  std::uint64_t cells_visited = 0;  ///< every cell classified by the pass
  std::uint64_t active_cells = 0;   ///< cells that produced >= 1 triangle
  std::uint64_t triangles = 0;
  /// Shared-edge interpolations served from the rolling vertex caches
  /// instead of recomputed (incremental kernel only; percell reports 0).
  std::uint64_t vertex_cache_hits = 0;
  /// Thread-CPU seconds spent staging sample planes + classifying rows —
  /// the phase the SIMD dispatch accelerates. A timing, not a counter:
  /// stats-equality checks compare the four counters above only.
  double classify_seconds = 0.0;
};
/// Historical name, kept so existing call sites and tests read naturally.
using ExtractionStats = MarchingCubesStats;

/// Runs marching cubes over the valid cells of a decoded metacell.
///
/// Incremental kernel: samples are staged into a rolling two-plane buffer
/// (each sample fetched once instead of up to 8×), each sample row is
/// classified into an inside-bitmask by the kernel selected through
/// `kernel_options` (auto = widest ISA the host supports), and only cells
/// whose 8-corner mask is mixed are triangulated. Edge crossings are
/// memoized in per-plane caches (each crossing interpolated exactly once
/// and reused by the up-to-4 incident cells). Interpolation stays the
/// canonical lexicographic edge_vertex and cells are emitted in ascending
/// (z, y, x) order, so the triangle sequence is bit-identical to the
/// per-cell reference kernel below for every ISA.
ExtractionStats extract_metacell(const metacell::DecodedMetacell& cell,
                                 float isovalue, TriangleSoup& out,
                                 const KernelOptions& kernel_options = {});

/// In-core reference: marching cubes over every cell of a volume
/// (incremental kernel, identical output to the per-cell variant).
template <core::VolumeScalar T>
ExtractionStats extract_volume(const core::Volume<T>& volume, float isovalue,
                               TriangleSoup& out,
                               const KernelOptions& kernel_options = {});

/// Per-cell reference kernel: triangulate_cell on every cell, fetching all
/// 8 corners each time. Kept as the ground truth the incremental kernel is
/// tested against (bit-identical triangles) and as the bench_micro
/// baseline; not used by the query pipelines.
ExtractionStats extract_metacell_percell(const metacell::DecodedMetacell& cell,
                                         float isovalue, TriangleSoup& out);

/// Per-cell reference over a whole volume (see extract_metacell_percell).
template <core::VolumeScalar T>
ExtractionStats extract_volume_percell(const core::Volume<T>& volume,
                                       float isovalue, TriangleSoup& out);

}  // namespace oociso::extract
