#pragma once
// Marching-cubes triangulation (Lorensen & Cline 1987).
//
// The paper's pipeline brings one *active metacell* into memory at a time
// and runs marching cubes over its unit cells; extract_metacell() is that
// step. extract_volume() runs the same kernel over a whole in-memory volume
// and serves as the in-core reference the out-of-core pipeline is tested
// against (the two must produce identical triangle multisets).
//
// Vertex-inside convention: a corner is "inside" when value < isovalue.
// Surface vertices are placed by linear interpolation along cell edges.
// All emitted coordinates are in *sample-lattice* units of the full volume
// (one cell == one unit), so per-metacell outputs compose seamlessly.

#include <array>
#include <cstdint>

#include "core/vec3.h"
#include "core/volume.h"
#include "extract/mesh.h"
#include "metacell/metacell.h"

namespace oociso::extract {

/// Triangulates one unit cell. `values[i]` and `corners[i]` follow the
/// corner numbering in mc_tables.h. Returns the number of triangles added.
std::size_t triangulate_cell(const std::array<float, 8>& values,
                             const std::array<core::Vec3, 8>& corners,
                             float isovalue, TriangleSoup& out);

/// Statistics of one extraction pass.
struct ExtractionStats {
  std::uint64_t cells_visited = 0;
  std::uint64_t active_cells = 0;  ///< cells that produced >= 1 triangle
  std::uint64_t triangles = 0;
};

/// Runs marching cubes over the valid cells of a decoded metacell.
ExtractionStats extract_metacell(const metacell::DecodedMetacell& cell,
                                 float isovalue, TriangleSoup& out);

/// In-core reference: marching cubes over every cell of a volume.
template <core::VolumeScalar T>
ExtractionStats extract_volume(const core::Volume<T>& volume, float isovalue,
                               TriangleSoup& out);

}  // namespace oociso::extract
