#include "extract/marching_cubes.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "extract/mc_tables.h"
#include "util/timer.h"

namespace oociso::extract {
namespace {

/// Lexicographic position order; used to canonicalize interpolation
/// direction so the two cells sharing an edge compute the SAME crossing,
/// bit for bit (otherwise rounding opens hairline cracks that break exact
/// vertex welding).
bool position_less(const core::Vec3& a, const core::Vec3& b) {
  if (a.x != b.x) return a.x < b.x;
  if (a.y != b.y) return a.y < b.y;
  return a.z < b.z;
}

/// Interpolated surface point on the edge between two corners, always
/// evaluated from the lexicographically smaller endpoint. When both
/// endpoint values coincide (possible only when both equal the isovalue),
/// the midpoint is used.
core::Vec3 edge_vertex(const core::Vec3& p1, const core::Vec3& p2, float v1,
                       float v2, float isovalue) {
  const bool swap = position_less(p2, p1);
  const core::Vec3& pa = swap ? p2 : p1;
  const core::Vec3& pb = swap ? p1 : p2;
  const float va = swap ? v2 : v1;
  const float vb = swap ? v1 : v2;
  const float denom = vb - va;
  if (std::abs(denom) < 1e-12f) return lerp(pa, pb, 0.5f);
  const float t = (isovalue - va) / denom;
  return lerp(pa, pb, t < 0.0f ? 0.0f : (t > 1.0f ? 1.0f : t));
}

}  // namespace

std::size_t triangulate_cell(const std::array<float, 8>& values,
                             const std::array<core::Vec3, 8>& corners,
                             float isovalue, TriangleSoup& out) {
  unsigned cube_index = 0;
  for (unsigned i = 0; i < 8; ++i) {
    if (values[i] < isovalue) cube_index |= 1u << i;
  }
  const std::uint16_t edges = kEdgeTable[cube_index];
  if (edges == 0) return 0;

  std::array<core::Vec3, 12> edge_points;
  for (unsigned e = 0; e < 12; ++e) {
    if (edges & (1u << e)) {
      const auto a = static_cast<unsigned>(kEdgeCorners[e][0]);
      const auto b = static_cast<unsigned>(kEdgeCorners[e][1]);
      edge_points[e] =
          edge_vertex(corners[a], corners[b], values[a], values[b], isovalue);
    }
  }

  std::size_t count = 0;
  const auto& tris = kTriTable[cube_index];
  for (std::size_t i = 0; tris[i] != -1; i += 3) {
    out.add(edge_points[static_cast<std::size_t>(tris[i])],
            edge_points[static_cast<std::size_t>(tris[i + 1])],
            edge_points[static_cast<std::size_t>(tris[i + 2])]);
    ++count;
  }
  return count;
}

namespace {

/// Reusable buffers of the incremental kernel. Thread-local so concurrent
/// extraction stripes neither share state nor reallocate per metacell —
/// resize() below is a no-op once a thread has processed its first cell of
/// a given size.
struct IncrementalScratch {
  std::array<std::vector<float>, 2> planes;  ///< sample planes z and z+1
  /// Per-plane inside-bitmasks: sy rows of sample_words 64-bit words each,
  /// bit x of row y set iff plane[y * sx + x] < isovalue. Filled by the
  /// dispatched classify kernel right after the plane is staged.
  std::array<std::vector<std::uint64_t>, 2> row_bits;
  // Edge-crossing caches: x/y edges live in a sample plane (two rolling
  // copies, the top one becoming the bottom one on slab advance), z edges
  // connect the two planes (cleared every slab).
  std::array<std::vector<core::Vec3>, 2> x_points;
  std::array<std::vector<std::uint8_t>, 2> x_valid;
  std::array<std::vector<core::Vec3>, 2> y_points;
  std::array<std::vector<std::uint8_t>, 2> y_valid;
  std::vector<core::Vec3> z_points;
  std::vector<std::uint8_t> z_valid;
};

/// Incremental cell loop: `value(x, y, z)` samples local coordinates once
/// per sample into a rolling two-plane buffer; each staged row is
/// classified by `classify` into an inside-bitmask; the per-cell-row
/// active mask (any corner inside AND NOT all corners inside) compacts the
/// triangulation loop to mixed-sign cells only. Every edge crossing is
/// interpolated exactly once, then reused by all incident cells. `origin`
/// offsets emitted geometry into full-volume sample space.
///
/// Bit-identity argument: a cell's cube_index is 0 or 255 exactly when its
/// active-mask bit is clear, and kEdgeTable[0] == kEdgeTable[255] == 0, so
/// skipped cells are precisely the cells the old per-cell classify loop
/// `continue`d on. Active cells are walked in ascending x (countr_zero
/// order) inside ascending (z, y), the cube_index is rebuilt from the same
/// mask bits the compare produced, and the crossing computation is the
/// same canonical edge_vertex as triangulate_cell — so the emitted
/// triangle sequence is bit-identical to the per-cell reference for every
/// classify implementation.
template <typename ValueFn>
MarchingCubesStats run_cells(const core::GridDims& cells,
                             const core::Coord3& origin, ValueFn&& value,
                             float isovalue, TriangleSoup& out,
                             kernel::ClassifyRowFn classify) {
  MarchingCubesStats stats;
  const std::int32_t nx = cells.nx;
  const std::int32_t ny = cells.ny;
  const std::int32_t nz = cells.nz;
  if (nx <= 0 || ny <= 0 || nz <= 0) return stats;

  const std::size_t sx = static_cast<std::size_t>(nx) + 1;  // samples per row
  const std::size_t sy = static_cast<std::size_t>(ny) + 1;  // rows per plane
  const std::size_t plane_samples = sx * sy;
  const std::size_t x_edges = static_cast<std::size_t>(nx) * sy;
  const std::size_t y_edges = sx * static_cast<std::size_t>(ny);
  // Bitmask geometry: sample rows hold sx = nx + 1 bits, so when nx is a
  // multiple of 64 the shifted (corner x+1) masks spill into one more word
  // than the cell-count masks use — sample_words is the allocation and the
  // shift bound, cell_words the iteration bound.
  const std::size_t sample_words = (sx + 63) / 64;
  const std::size_t cell_words = (static_cast<std::size_t>(nx) + 63) / 64;

  static thread_local IncrementalScratch scratch;
  for (int p = 0; p < 2; ++p) {
    scratch.planes[p].resize(plane_samples);
    scratch.row_bits[p].resize(sy * sample_words);
    scratch.x_points[p].resize(x_edges);
    scratch.y_points[p].resize(y_edges);
    scratch.x_valid[p].resize(x_edges);
    scratch.y_valid[p].resize(y_edges);
  }
  scratch.z_points.resize(plane_samples);

  const auto fill_plane = [&](std::vector<float>& plane, std::int32_t z) {
    std::size_t i = 0;
    for (std::int32_t y = 0; y <= ny; ++y) {
      for (std::int32_t x = 0; x <= nx; ++x) {
        plane[i++] = value(x, y, z);
      }
    }
  };
  const auto classify_plane = [&](int p) {
    const float* plane = scratch.planes[p].data();
    std::uint64_t* bits = scratch.row_bits[p].data();
    for (std::size_t row = 0; row < sy; ++row) {
      classify(plane + row * sx, sx, isovalue, bits + row * sample_words);
    }
  };

  util::ThreadCpuTimer classify_timer;
  int bot = 0;
  classify_timer.restart();
  fill_plane(scratch.planes[bot], 0);
  classify_plane(bot);
  stats.classify_seconds += classify_timer.seconds();
  std::fill(scratch.x_valid[bot].begin(), scratch.x_valid[bot].end(),
            std::uint8_t{0});
  std::fill(scratch.y_valid[bot].begin(), scratch.y_valid[bot].end(),
            std::uint8_t{0});

  for (std::int32_t z = 0; z < nz; ++z) {
    const int top = 1 - bot;
    classify_timer.restart();
    fill_plane(scratch.planes[top], z + 1);
    classify_plane(top);
    stats.classify_seconds += classify_timer.seconds();
    std::fill(scratch.x_valid[top].begin(), scratch.x_valid[top].end(),
              std::uint8_t{0});
    std::fill(scratch.y_valid[top].begin(), scratch.y_valid[top].end(),
              std::uint8_t{0});
    scratch.z_valid.assign(plane_samples, 0);
    const float* bplane = scratch.planes[bot].data();
    const float* tplane = scratch.planes[top].data();
    stats.cells_visited +=
        static_cast<std::uint64_t>(nx) * static_cast<std::uint64_t>(ny);

    for (std::int32_t y = 0; y < ny; ++y) {
      // The 8 cube corners of cell row y live on 4 sample-row bitmasks:
      // bottom/top plane rows y (corners 0/1 and 4/5) and y+1 (3/2, 7/6).
      const std::size_t yrow = static_cast<std::size_t>(y) * sample_words;
      const std::uint64_t* b0 = scratch.row_bits[bot].data() + yrow;
      const std::uint64_t* b1 = b0 + sample_words;
      const std::uint64_t* t0 = scratch.row_bits[top].data() + yrow;
      const std::uint64_t* t1 = t0 + sample_words;
      const auto shifted = [&](const std::uint64_t* mask, std::size_t w) {
        std::uint64_t word = mask[w] >> 1;
        if (w + 1 < sample_words) word |= mask[w + 1] << 63;
        return word;
      };
      const auto bit_at = [](const std::uint64_t* mask, std::size_t i) {
        return static_cast<unsigned>((mask[i >> 6] >> (i & 63)) & 1u);
      };
      for (std::size_t w = 0; w < cell_words; ++w) {
        // Compaction: a cell is worth triangulating iff its corner signs
        // are mixed. Word-parallel over 64 cells: AND of the 8 corner
        // masks == all-inside, OR == any-inside.
        const std::uint64_t sb0 = shifted(b0, w);
        const std::uint64_t sb1 = shifted(b1, w);
        const std::uint64_t st0 = shifted(t0, w);
        const std::uint64_t st1 = shifted(t1, w);
        const std::uint64_t all_in =
            b0[w] & sb0 & b1[w] & sb1 & t0[w] & st0 & t1[w] & st1;
        const std::uint64_t any_in =
            b0[w] | sb0 | b1[w] | sb1 | t0[w] | st0 | t1[w] | st1;
        std::uint64_t active = any_in & ~all_in;
        const std::size_t base = w * 64;
        const std::size_t cells_in_word =
            static_cast<std::size_t>(nx) - base < 64
                ? static_cast<std::size_t>(nx) - base
                : 64;
        if (cells_in_word < 64) {
          active &= (std::uint64_t{1} << cells_in_word) - 1;
        }
        while (active != 0) {
          const std::size_t xs =
              base + static_cast<std::size_t>(std::countr_zero(active));
          active &= active - 1;
          const std::int32_t x = static_cast<std::int32_t>(xs);
          const std::size_t p00 = xs + sx * static_cast<std::size_t>(y);
          const std::array<float, 8> values = {
              bplane[p00],      bplane[p00 + 1], bplane[p00 + 1 + sx],
              bplane[p00 + sx], tplane[p00],     tplane[p00 + 1],
              tplane[p00 + 1 + sx], tplane[p00 + sx]};
          // Rebuild the cube index from the classify masks — the same bits
          // the compare wrote, in the corner numbering of mc_tables.h.
          const unsigned cube_index =
              (bit_at(b0, xs) << 0) | (bit_at(b0, xs + 1) << 1) |
              (bit_at(b1, xs + 1) << 2) | (bit_at(b1, xs) << 3) |
              (bit_at(t0, xs) << 4) | (bit_at(t0, xs + 1) << 5) |
              (bit_at(t1, xs + 1) << 6) | (bit_at(t1, xs) << 7);
          const std::uint16_t edges = kEdgeTable[cube_index];
          if (edges == 0) continue;

          std::array<core::Vec3, 8> corners;
          for (unsigned i = 0; i < 8; ++i) {
            const auto& offset = kCornerOffsets[i];
            corners[i] = {static_cast<float>(origin.x + x + offset[0]),
                          static_cast<float>(origin.y + y + offset[1]),
                          static_cast<float>(origin.z + z + offset[2])};
          }

          std::array<core::Vec3, 12> edge_points;
          const auto fetch = [&](unsigned e, std::vector<core::Vec3>& points,
                                 std::vector<std::uint8_t>& valid,
                                 std::size_t index) {
            if (!valid[index]) {
              const auto a = static_cast<unsigned>(kEdgeCorners[e][0]);
              const auto b = static_cast<unsigned>(kEdgeCorners[e][1]);
              points[index] = edge_vertex(corners[a], corners[b], values[a],
                                          values[b], isovalue);
              valid[index] = 1;
            } else {
              ++stats.vertex_cache_hits;
            }
            edge_points[e] = points[index];
          };
          // Cache slots by edge orientation: x edges index (x, y) row-major
          // with nx per row, y edges (x, y) with sx per row, z edges share
          // the sample-plane indexing.
          const std::size_t xi0 =
              xs + static_cast<std::size_t>(nx) * static_cast<std::size_t>(y);
          const std::size_t xi1 = xi0 + static_cast<std::size_t>(nx);
          const std::size_t yi0 = p00;
          if (edges & (1u << 0)) {
            fetch(0, scratch.x_points[bot], scratch.x_valid[bot], xi0);
          }
          if (edges & (1u << 1)) {
            fetch(1, scratch.y_points[bot], scratch.y_valid[bot], yi0 + 1);
          }
          if (edges & (1u << 2)) {
            fetch(2, scratch.x_points[bot], scratch.x_valid[bot], xi1);
          }
          if (edges & (1u << 3)) {
            fetch(3, scratch.y_points[bot], scratch.y_valid[bot], yi0);
          }
          if (edges & (1u << 4)) {
            fetch(4, scratch.x_points[top], scratch.x_valid[top], xi0);
          }
          if (edges & (1u << 5)) {
            fetch(5, scratch.y_points[top], scratch.y_valid[top], yi0 + 1);
          }
          if (edges & (1u << 6)) {
            fetch(6, scratch.x_points[top], scratch.x_valid[top], xi1);
          }
          if (edges & (1u << 7)) {
            fetch(7, scratch.y_points[top], scratch.y_valid[top], yi0);
          }
          if (edges & (1u << 8)) {
            fetch(8, scratch.z_points, scratch.z_valid, p00);
          }
          if (edges & (1u << 9)) {
            fetch(9, scratch.z_points, scratch.z_valid, p00 + 1);
          }
          if (edges & (1u << 10)) {
            fetch(10, scratch.z_points, scratch.z_valid, p00 + 1 + sx);
          }
          if (edges & (1u << 11)) {
            fetch(11, scratch.z_points, scratch.z_valid, p00 + sx);
          }

          std::size_t added = 0;
          const auto& tris = kTriTable[cube_index];
          for (std::size_t i = 0; tris[i] != -1; i += 3) {
            out.add(edge_points[static_cast<std::size_t>(tris[i])],
                    edge_points[static_cast<std::size_t>(tris[i + 1])],
                    edge_points[static_cast<std::size_t>(tris[i + 2])]);
            ++added;
          }
          if (added > 0) {
            ++stats.active_cells;
            stats.triangles += added;
          }
        }
      }
    }
    bot = top;
  }
  return stats;
}

/// Per-cell reference loop: every corner fetched per cell, every crossing
/// interpolated per cell. Ground truth for the bit-identical equivalence
/// tests and the bench_micro baseline.
template <typename ValueFn>
MarchingCubesStats run_cells_percell(const core::GridDims& cells,
                                     const core::Coord3& origin,
                                     ValueFn&& value, float isovalue,
                                     TriangleSoup& out) {
  MarchingCubesStats stats;
  std::array<float, 8> values;
  std::array<core::Vec3, 8> corners;
  for (std::int32_t z = 0; z < cells.nz; ++z) {
    for (std::int32_t y = 0; y < cells.ny; ++y) {
      for (std::int32_t x = 0; x < cells.nx; ++x) {
        ++stats.cells_visited;
        for (unsigned i = 0; i < 8; ++i) {
          const auto& offset = kCornerOffsets[i];
          const std::int32_t cx = x + offset[0];
          const std::int32_t cy = y + offset[1];
          const std::int32_t cz = z + offset[2];
          values[i] = value(cx, cy, cz);
          corners[i] = {static_cast<float>(origin.x + cx),
                        static_cast<float>(origin.y + cy),
                        static_cast<float>(origin.z + cz)};
        }
        const std::size_t added =
            triangulate_cell(values, corners, isovalue, out);
        if (added > 0) {
          ++stats.active_cells;
          stats.triangles += added;
        }
      }
    }
  }
  return stats;
}

kernel::ClassifyRowFn resolve_classify(const KernelOptions& kernel_options) {
  return kernel::detail::classify_fn(kernel::resolve(kernel_options.isa));
}

}  // namespace

ExtractionStats extract_metacell(const metacell::DecodedMetacell& cell,
                                 float isovalue, TriangleSoup& out,
                                 const KernelOptions& kernel_options) {
  return run_cells(
      cell.valid_cells, cell.sample_origin,
      [&cell](std::int32_t x, std::int32_t y, std::int32_t z) {
        return cell.sample(x, y, z);
      },
      isovalue, out, resolve_classify(kernel_options));
}

template <core::VolumeScalar T>
ExtractionStats extract_volume(const core::Volume<T>& volume, float isovalue,
                               TriangleSoup& out,
                               const KernelOptions& kernel_options) {
  return run_cells(
      volume.dims().cell_dims(), core::Coord3{0, 0, 0},
      [&volume](std::int32_t x, std::int32_t y, std::int32_t z) {
        return static_cast<float>(volume.at(x, y, z));
      },
      isovalue, out, resolve_classify(kernel_options));
}

ExtractionStats extract_metacell_percell(const metacell::DecodedMetacell& cell,
                                         float isovalue, TriangleSoup& out) {
  return run_cells_percell(
      cell.valid_cells, cell.sample_origin,
      [&cell](std::int32_t x, std::int32_t y, std::int32_t z) {
        return cell.sample(x, y, z);
      },
      isovalue, out);
}

template <core::VolumeScalar T>
ExtractionStats extract_volume_percell(const core::Volume<T>& volume,
                                       float isovalue, TriangleSoup& out) {
  return run_cells_percell(
      volume.dims().cell_dims(), core::Coord3{0, 0, 0},
      [&volume](std::int32_t x, std::int32_t y, std::int32_t z) {
        return static_cast<float>(volume.at(x, y, z));
      },
      isovalue, out);
}

template ExtractionStats extract_volume<std::uint8_t>(
    const core::Volume<std::uint8_t>&, float, TriangleSoup&,
    const KernelOptions&);
template ExtractionStats extract_volume<std::uint16_t>(
    const core::Volume<std::uint16_t>&, float, TriangleSoup&,
    const KernelOptions&);
template ExtractionStats extract_volume<float>(const core::Volume<float>&,
                                               float, TriangleSoup&,
                                               const KernelOptions&);
template ExtractionStats extract_volume_percell<std::uint8_t>(
    const core::Volume<std::uint8_t>&, float, TriangleSoup&);
template ExtractionStats extract_volume_percell<std::uint16_t>(
    const core::Volume<std::uint16_t>&, float, TriangleSoup&);
template ExtractionStats extract_volume_percell<float>(
    const core::Volume<float>&, float, TriangleSoup&);

}  // namespace oociso::extract
