#include "extract/marching_cubes.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "extract/mc_tables.h"

namespace oociso::extract {
namespace {

/// Lexicographic position order; used to canonicalize interpolation
/// direction so the two cells sharing an edge compute the SAME crossing,
/// bit for bit (otherwise rounding opens hairline cracks that break exact
/// vertex welding).
bool position_less(const core::Vec3& a, const core::Vec3& b) {
  if (a.x != b.x) return a.x < b.x;
  if (a.y != b.y) return a.y < b.y;
  return a.z < b.z;
}

/// Interpolated surface point on the edge between two corners, always
/// evaluated from the lexicographically smaller endpoint. When both
/// endpoint values coincide (possible only when both equal the isovalue),
/// the midpoint is used.
core::Vec3 edge_vertex(const core::Vec3& p1, const core::Vec3& p2, float v1,
                       float v2, float isovalue) {
  const bool swap = position_less(p2, p1);
  const core::Vec3& pa = swap ? p2 : p1;
  const core::Vec3& pb = swap ? p1 : p2;
  const float va = swap ? v2 : v1;
  const float vb = swap ? v1 : v2;
  const float denom = vb - va;
  if (std::abs(denom) < 1e-12f) return lerp(pa, pb, 0.5f);
  const float t = (isovalue - va) / denom;
  return lerp(pa, pb, t < 0.0f ? 0.0f : (t > 1.0f ? 1.0f : t));
}

}  // namespace

std::size_t triangulate_cell(const std::array<float, 8>& values,
                             const std::array<core::Vec3, 8>& corners,
                             float isovalue, TriangleSoup& out) {
  unsigned cube_index = 0;
  for (unsigned i = 0; i < 8; ++i) {
    if (values[i] < isovalue) cube_index |= 1u << i;
  }
  const std::uint16_t edges = kEdgeTable[cube_index];
  if (edges == 0) return 0;

  std::array<core::Vec3, 12> edge_points;
  for (unsigned e = 0; e < 12; ++e) {
    if (edges & (1u << e)) {
      const auto a = static_cast<unsigned>(kEdgeCorners[e][0]);
      const auto b = static_cast<unsigned>(kEdgeCorners[e][1]);
      edge_points[e] =
          edge_vertex(corners[a], corners[b], values[a], values[b], isovalue);
    }
  }

  std::size_t count = 0;
  const auto& tris = kTriTable[cube_index];
  for (std::size_t i = 0; tris[i] != -1; i += 3) {
    out.add(edge_points[static_cast<std::size_t>(tris[i])],
            edge_points[static_cast<std::size_t>(tris[i + 1])],
            edge_points[static_cast<std::size_t>(tris[i + 2])]);
    ++count;
  }
  return count;
}

namespace {

/// Reusable buffers of the incremental kernel. Thread-local so concurrent
/// extraction stripes neither share state nor reallocate per metacell —
/// resize() below is a no-op once a thread has processed its first cell of
/// a given size.
struct IncrementalScratch {
  std::array<std::vector<float>, 2> planes;  ///< sample planes z and z+1
  // Edge-crossing caches: x/y edges live in a sample plane (two rolling
  // copies, the top one becoming the bottom one on slab advance), z edges
  // connect the two planes (cleared every slab).
  std::array<std::vector<core::Vec3>, 2> x_points;
  std::array<std::vector<std::uint8_t>, 2> x_valid;
  std::array<std::vector<core::Vec3>, 2> y_points;
  std::array<std::vector<std::uint8_t>, 2> y_valid;
  std::vector<core::Vec3> z_points;
  std::vector<std::uint8_t> z_valid;
};

/// Incremental cell loop: `value(x, y, z)` samples local coordinates once
/// per sample into a rolling two-plane buffer, and every edge crossing is
/// interpolated exactly once, then reused by all incident cells. `origin`
/// offsets emitted geometry into full-volume sample space. The crossing
/// computation is the same canonical edge_vertex as triangulate_cell, and
/// triangles are emitted in the same cell/table order, so the output is
/// bit-identical to running triangulate_cell per cell.
template <typename ValueFn>
ExtractionStats run_cells(const core::GridDims& cells, const core::Coord3& origin,
                          ValueFn&& value, float isovalue, TriangleSoup& out) {
  ExtractionStats stats;
  const std::int32_t nx = cells.nx;
  const std::int32_t ny = cells.ny;
  const std::int32_t nz = cells.nz;
  if (nx <= 0 || ny <= 0 || nz <= 0) return stats;

  const std::size_t sx = static_cast<std::size_t>(nx) + 1;  // samples per row
  const std::size_t sy = static_cast<std::size_t>(ny) + 1;  // rows per plane
  const std::size_t plane_samples = sx * sy;
  const std::size_t x_edges = static_cast<std::size_t>(nx) * sy;
  const std::size_t y_edges = sx * static_cast<std::size_t>(ny);

  static thread_local IncrementalScratch scratch;
  for (int p = 0; p < 2; ++p) {
    scratch.planes[p].resize(plane_samples);
    scratch.x_points[p].resize(x_edges);
    scratch.y_points[p].resize(y_edges);
    scratch.x_valid[p].resize(x_edges);
    scratch.y_valid[p].resize(y_edges);
  }
  scratch.z_points.resize(plane_samples);

  const auto fill_plane = [&](std::vector<float>& plane, std::int32_t z) {
    std::size_t i = 0;
    for (std::int32_t y = 0; y <= ny; ++y) {
      for (std::int32_t x = 0; x <= nx; ++x) {
        plane[i++] = value(x, y, z);
      }
    }
  };

  int bot = 0;
  fill_plane(scratch.planes[bot], 0);
  std::fill(scratch.x_valid[bot].begin(), scratch.x_valid[bot].end(),
            std::uint8_t{0});
  std::fill(scratch.y_valid[bot].begin(), scratch.y_valid[bot].end(),
            std::uint8_t{0});

  for (std::int32_t z = 0; z < nz; ++z) {
    const int top = 1 - bot;
    fill_plane(scratch.planes[top], z + 1);
    std::fill(scratch.x_valid[top].begin(), scratch.x_valid[top].end(),
              std::uint8_t{0});
    std::fill(scratch.y_valid[top].begin(), scratch.y_valid[top].end(),
              std::uint8_t{0});
    scratch.z_valid.assign(plane_samples, 0);
    const float* bplane = scratch.planes[bot].data();
    const float* tplane = scratch.planes[top].data();

    for (std::int32_t y = 0; y < ny; ++y) {
      for (std::int32_t x = 0; x < nx; ++x) {
        ++stats.cells_visited;
        const std::size_t p00 =
            static_cast<std::size_t>(x) + sx * static_cast<std::size_t>(y);
        const std::array<float, 8> values = {
            bplane[p00],      bplane[p00 + 1], bplane[p00 + 1 + sx],
            bplane[p00 + sx], tplane[p00],     tplane[p00 + 1],
            tplane[p00 + 1 + sx], tplane[p00 + sx]};
        unsigned cube_index = 0;
        for (unsigned i = 0; i < 8; ++i) {
          if (values[i] < isovalue) cube_index |= 1u << i;
        }
        const std::uint16_t edges = kEdgeTable[cube_index];
        if (edges == 0) continue;

        std::array<core::Vec3, 8> corners;
        for (unsigned i = 0; i < 8; ++i) {
          const auto& offset = kCornerOffsets[i];
          corners[i] = {static_cast<float>(origin.x + x + offset[0]),
                        static_cast<float>(origin.y + y + offset[1]),
                        static_cast<float>(origin.z + z + offset[2])};
        }

        std::array<core::Vec3, 12> edge_points;
        const auto fetch = [&](unsigned e, std::vector<core::Vec3>& points,
                               std::vector<std::uint8_t>& valid,
                               std::size_t index) {
          if (!valid[index]) {
            const auto a = static_cast<unsigned>(kEdgeCorners[e][0]);
            const auto b = static_cast<unsigned>(kEdgeCorners[e][1]);
            points[index] = edge_vertex(corners[a], corners[b], values[a],
                                        values[b], isovalue);
            valid[index] = 1;
          }
          edge_points[e] = points[index];
        };
        // Cache slots by edge orientation: x edges index (x, y) row-major
        // with nx per row, y edges (x, y) with sx per row, z edges share
        // the sample-plane indexing.
        const std::size_t xi0 =
            static_cast<std::size_t>(x) +
            static_cast<std::size_t>(nx) * static_cast<std::size_t>(y);
        const std::size_t xi1 = xi0 + static_cast<std::size_t>(nx);
        const std::size_t yi0 = p00;
        if (edges & (1u << 0)) {
          fetch(0, scratch.x_points[bot], scratch.x_valid[bot], xi0);
        }
        if (edges & (1u << 1)) {
          fetch(1, scratch.y_points[bot], scratch.y_valid[bot], yi0 + 1);
        }
        if (edges & (1u << 2)) {
          fetch(2, scratch.x_points[bot], scratch.x_valid[bot], xi1);
        }
        if (edges & (1u << 3)) {
          fetch(3, scratch.y_points[bot], scratch.y_valid[bot], yi0);
        }
        if (edges & (1u << 4)) {
          fetch(4, scratch.x_points[top], scratch.x_valid[top], xi0);
        }
        if (edges & (1u << 5)) {
          fetch(5, scratch.y_points[top], scratch.y_valid[top], yi0 + 1);
        }
        if (edges & (1u << 6)) {
          fetch(6, scratch.x_points[top], scratch.x_valid[top], xi1);
        }
        if (edges & (1u << 7)) {
          fetch(7, scratch.y_points[top], scratch.y_valid[top], yi0);
        }
        if (edges & (1u << 8)) {
          fetch(8, scratch.z_points, scratch.z_valid, p00);
        }
        if (edges & (1u << 9)) {
          fetch(9, scratch.z_points, scratch.z_valid, p00 + 1);
        }
        if (edges & (1u << 10)) {
          fetch(10, scratch.z_points, scratch.z_valid, p00 + 1 + sx);
        }
        if (edges & (1u << 11)) {
          fetch(11, scratch.z_points, scratch.z_valid, p00 + sx);
        }

        std::size_t added = 0;
        const auto& tris = kTriTable[cube_index];
        for (std::size_t i = 0; tris[i] != -1; i += 3) {
          out.add(edge_points[static_cast<std::size_t>(tris[i])],
                  edge_points[static_cast<std::size_t>(tris[i + 1])],
                  edge_points[static_cast<std::size_t>(tris[i + 2])]);
          ++added;
        }
        if (added > 0) {
          ++stats.active_cells;
          stats.triangles += added;
        }
      }
    }
    bot = top;
  }
  return stats;
}

/// Per-cell reference loop: every corner fetched per cell, every crossing
/// interpolated per cell. Ground truth for the bit-identical equivalence
/// tests and the bench_micro baseline.
template <typename ValueFn>
ExtractionStats run_cells_percell(const core::GridDims& cells,
                                  const core::Coord3& origin, ValueFn&& value,
                                  float isovalue, TriangleSoup& out) {
  ExtractionStats stats;
  std::array<float, 8> values;
  std::array<core::Vec3, 8> corners;
  for (std::int32_t z = 0; z < cells.nz; ++z) {
    for (std::int32_t y = 0; y < cells.ny; ++y) {
      for (std::int32_t x = 0; x < cells.nx; ++x) {
        ++stats.cells_visited;
        for (unsigned i = 0; i < 8; ++i) {
          const auto& offset = kCornerOffsets[i];
          const std::int32_t cx = x + offset[0];
          const std::int32_t cy = y + offset[1];
          const std::int32_t cz = z + offset[2];
          values[i] = value(cx, cy, cz);
          corners[i] = {static_cast<float>(origin.x + cx),
                        static_cast<float>(origin.y + cy),
                        static_cast<float>(origin.z + cz)};
        }
        const std::size_t added =
            triangulate_cell(values, corners, isovalue, out);
        if (added > 0) {
          ++stats.active_cells;
          stats.triangles += added;
        }
      }
    }
  }
  return stats;
}

}  // namespace

ExtractionStats extract_metacell(const metacell::DecodedMetacell& cell,
                                 float isovalue, TriangleSoup& out) {
  return run_cells(
      cell.valid_cells, cell.sample_origin,
      [&cell](std::int32_t x, std::int32_t y, std::int32_t z) {
        return cell.sample(x, y, z);
      },
      isovalue, out);
}

template <core::VolumeScalar T>
ExtractionStats extract_volume(const core::Volume<T>& volume, float isovalue,
                               TriangleSoup& out) {
  return run_cells(
      volume.dims().cell_dims(), core::Coord3{0, 0, 0},
      [&volume](std::int32_t x, std::int32_t y, std::int32_t z) {
        return static_cast<float>(volume.at(x, y, z));
      },
      isovalue, out);
}

ExtractionStats extract_metacell_percell(const metacell::DecodedMetacell& cell,
                                         float isovalue, TriangleSoup& out) {
  return run_cells_percell(
      cell.valid_cells, cell.sample_origin,
      [&cell](std::int32_t x, std::int32_t y, std::int32_t z) {
        return cell.sample(x, y, z);
      },
      isovalue, out);
}

template <core::VolumeScalar T>
ExtractionStats extract_volume_percell(const core::Volume<T>& volume,
                                       float isovalue, TriangleSoup& out) {
  return run_cells_percell(
      volume.dims().cell_dims(), core::Coord3{0, 0, 0},
      [&volume](std::int32_t x, std::int32_t y, std::int32_t z) {
        return static_cast<float>(volume.at(x, y, z));
      },
      isovalue, out);
}

template ExtractionStats extract_volume<std::uint8_t>(
    const core::Volume<std::uint8_t>&, float, TriangleSoup&);
template ExtractionStats extract_volume<std::uint16_t>(
    const core::Volume<std::uint16_t>&, float, TriangleSoup&);
template ExtractionStats extract_volume<float>(const core::Volume<float>&,
                                               float, TriangleSoup&);
template ExtractionStats extract_volume_percell<std::uint8_t>(
    const core::Volume<std::uint8_t>&, float, TriangleSoup&);
template ExtractionStats extract_volume_percell<std::uint16_t>(
    const core::Volume<std::uint16_t>&, float, TriangleSoup&);
template ExtractionStats extract_volume_percell<float>(
    const core::Volume<float>&, float, TriangleSoup&);

}  // namespace oociso::extract
