#include "extract/marching_cubes.h"

#include <cmath>

#include "extract/mc_tables.h"

namespace oociso::extract {
namespace {

/// Lexicographic position order; used to canonicalize interpolation
/// direction so the two cells sharing an edge compute the SAME crossing,
/// bit for bit (otherwise rounding opens hairline cracks that break exact
/// vertex welding).
bool position_less(const core::Vec3& a, const core::Vec3& b) {
  if (a.x != b.x) return a.x < b.x;
  if (a.y != b.y) return a.y < b.y;
  return a.z < b.z;
}

/// Interpolated surface point on the edge between two corners, always
/// evaluated from the lexicographically smaller endpoint. When both
/// endpoint values coincide (possible only when both equal the isovalue),
/// the midpoint is used.
core::Vec3 edge_vertex(const core::Vec3& p1, const core::Vec3& p2, float v1,
                       float v2, float isovalue) {
  const bool swap = position_less(p2, p1);
  const core::Vec3& pa = swap ? p2 : p1;
  const core::Vec3& pb = swap ? p1 : p2;
  const float va = swap ? v2 : v1;
  const float vb = swap ? v1 : v2;
  const float denom = vb - va;
  if (std::abs(denom) < 1e-12f) return lerp(pa, pb, 0.5f);
  const float t = (isovalue - va) / denom;
  return lerp(pa, pb, t < 0.0f ? 0.0f : (t > 1.0f ? 1.0f : t));
}

}  // namespace

std::size_t triangulate_cell(const std::array<float, 8>& values,
                             const std::array<core::Vec3, 8>& corners,
                             float isovalue, TriangleSoup& out) {
  unsigned cube_index = 0;
  for (unsigned i = 0; i < 8; ++i) {
    if (values[i] < isovalue) cube_index |= 1u << i;
  }
  const std::uint16_t edges = kEdgeTable[cube_index];
  if (edges == 0) return 0;

  std::array<core::Vec3, 12> edge_points;
  for (unsigned e = 0; e < 12; ++e) {
    if (edges & (1u << e)) {
      const auto a = static_cast<unsigned>(kEdgeCorners[e][0]);
      const auto b = static_cast<unsigned>(kEdgeCorners[e][1]);
      edge_points[e] =
          edge_vertex(corners[a], corners[b], values[a], values[b], isovalue);
    }
  }

  std::size_t count = 0;
  const auto& tris = kTriTable[cube_index];
  for (std::size_t i = 0; tris[i] != -1; i += 3) {
    out.add(edge_points[static_cast<std::size_t>(tris[i])],
            edge_points[static_cast<std::size_t>(tris[i + 1])],
            edge_points[static_cast<std::size_t>(tris[i + 2])]);
    ++count;
  }
  return count;
}

namespace {

/// Shared cell loop: `value(x, y, z)` samples local coordinates, `origin`
/// offsets emitted geometry into full-volume sample space.
template <typename ValueFn>
ExtractionStats run_cells(const core::GridDims& cells, const core::Coord3& origin,
                          ValueFn&& value, float isovalue, TriangleSoup& out) {
  ExtractionStats stats;
  std::array<float, 8> values;
  std::array<core::Vec3, 8> corners;
  for (std::int32_t z = 0; z < cells.nz; ++z) {
    for (std::int32_t y = 0; y < cells.ny; ++y) {
      for (std::int32_t x = 0; x < cells.nx; ++x) {
        ++stats.cells_visited;
        for (unsigned i = 0; i < 8; ++i) {
          const auto& offset = kCornerOffsets[i];
          const std::int32_t cx = x + offset[0];
          const std::int32_t cy = y + offset[1];
          const std::int32_t cz = z + offset[2];
          values[i] = value(cx, cy, cz);
          corners[i] = {static_cast<float>(origin.x + cx),
                        static_cast<float>(origin.y + cy),
                        static_cast<float>(origin.z + cz)};
        }
        const std::size_t added =
            triangulate_cell(values, corners, isovalue, out);
        if (added > 0) {
          ++stats.active_cells;
          stats.triangles += added;
        }
      }
    }
  }
  return stats;
}

}  // namespace

ExtractionStats extract_metacell(const metacell::DecodedMetacell& cell,
                                 float isovalue, TriangleSoup& out) {
  return run_cells(
      cell.valid_cells, cell.sample_origin,
      [&cell](std::int32_t x, std::int32_t y, std::int32_t z) {
        return cell.sample(x, y, z);
      },
      isovalue, out);
}

template <core::VolumeScalar T>
ExtractionStats extract_volume(const core::Volume<T>& volume, float isovalue,
                               TriangleSoup& out) {
  return run_cells(
      volume.dims().cell_dims(), core::Coord3{0, 0, 0},
      [&volume](std::int32_t x, std::int32_t y, std::int32_t z) {
        return static_cast<float>(volume.at(x, y, z));
      },
      isovalue, out);
}

template ExtractionStats extract_volume<std::uint8_t>(
    const core::Volume<std::uint8_t>&, float, TriangleSoup&);
template ExtractionStats extract_volume<std::uint16_t>(
    const core::Volume<std::uint16_t>&, float, TriangleSoup&);
template ExtractionStats extract_volume<float>(const core::Volume<float>&,
                                               float, TriangleSoup&);

}  // namespace oociso::extract
