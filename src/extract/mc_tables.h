#pragma once
// Marching-cubes lookup tables (Lorensen & Cline 1987, tables as published
// by Paul Bourke, "Polygonising a scalar field").
//
// Corner numbering (unit cube, x right / y back / z up):
//     v0=(0,0,0) v1=(1,0,0) v2=(1,1,0) v3=(0,1,0)
//     v4=(0,0,1) v5=(1,0,1) v6=(1,1,1) v7=(0,1,1)
// Edge numbering:
//     e0=v0v1 e1=v1v2 e2=v2v3  e3=v3v0
//     e4=v4v5 e5=v5v6 e6=v6v7  e7=v7v4
//     e8=v0v4 e9=v1v5 e10=v2v6 e11=v3v7
//
// kEdgeTable[c] has bit e set iff edge e is crossed for corner-sign
// configuration c (bit i of c set iff value[corner i] < isovalue).
// kTriTable[c] lists up to 5 triangles as edge-index triples, -1 terminated.

#include <array>
#include <cstdint>

namespace oociso::extract {

inline constexpr std::array<std::array<std::int8_t, 2>, 12> kEdgeCorners = {{
    {{0, 1}}, {{1, 2}}, {{2, 3}}, {{3, 0}},
    {{4, 5}}, {{5, 6}}, {{6, 7}}, {{7, 4}},
    {{0, 4}}, {{1, 5}}, {{2, 6}}, {{3, 7}},
}};

/// Unit-cube corner offsets in the numbering above.
inline constexpr std::array<std::array<std::int8_t, 3>, 8> kCornerOffsets = {{
    {{0, 0, 0}}, {{1, 0, 0}}, {{1, 1, 0}}, {{0, 1, 0}},
    {{0, 0, 1}}, {{1, 0, 1}}, {{1, 1, 1}}, {{0, 1, 1}},
}};

extern const std::array<std::uint16_t, 256> kEdgeTable;
extern const std::array<std::array<std::int8_t, 16>, 256> kTriTable;

}  // namespace oociso::extract
