#pragma once
// Triangle geometry produced by isosurface extraction.
//
// Extraction emits a triangle *soup* (three independent vertices per
// triangle): the paper streams triangles straight to the GPU without
// building shared-vertex connectivity, and the soup representation keeps
// per-node extraction embarrassingly parallel.

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "core/vec3.h"

namespace oociso::extract {

struct Triangle {
  core::Vec3 a;
  core::Vec3 b;
  core::Vec3 c;

  /// Geometric (unnormalized) normal; zero for degenerate triangles.
  [[nodiscard]] core::Vec3 raw_normal() const {
    return (b - a).cross(c - a);
  }
  [[nodiscard]] float area() const { return 0.5f * raw_normal().length(); }
};

class TriangleSoup {
 public:
  void add(const Triangle& triangle) { triangles_.push_back(triangle); }
  void add(const core::Vec3& a, const core::Vec3& b, const core::Vec3& c) {
    triangles_.push_back({a, b, c});
  }

  void append(const TriangleSoup& other) {
    triangles_.insert(triangles_.end(), other.triangles_.begin(),
                      other.triangles_.end());
  }

  void clear() { triangles_.clear(); }
  void reserve(std::size_t count) { triangles_.reserve(count); }

  [[nodiscard]] std::size_t size() const { return triangles_.size(); }
  [[nodiscard]] bool empty() const { return triangles_.empty(); }
  [[nodiscard]] const std::vector<Triangle>& triangles() const {
    return triangles_;
  }
  [[nodiscard]] std::vector<Triangle>& triangles() { return triangles_; }

  /// Total surface area (useful as an isovalue-independent mesh checksum).
  [[nodiscard]] double total_area() const;

  /// Axis-aligned bounds; returns false (and leaves outputs untouched) for
  /// an empty soup.
  bool bounds(core::Vec3& lo, core::Vec3& hi) const;

 private:
  std::vector<Triangle> triangles_;
};

/// Canonical content hash of a triangle soup: every coordinate quantized
/// to 1/4096 of a lattice unit, triangles sorted, CRC32 over the byte
/// stream. Partitioning and emission order cannot affect it, and the
/// quantization absorbs last-ulp differences between optimization levels
/// while still catching any real geometry change — the golden-mesh tests
/// and the cross-ISA kernel CI gate both pin these values.
[[nodiscard]] std::uint32_t canonical_mesh_crc(const TriangleSoup& soup);

/// Same hash over the union of several soups (e.g. the per-node outputs of
/// a distributed query) without materializing the merged soup.
[[nodiscard]] std::uint32_t canonical_mesh_crc(
    std::span<const TriangleSoup> soups);

/// Writes Wavefront OBJ (positions only); throws std::runtime_error on I/O
/// failure. Intended for examples and debugging, not bulk output.
void write_obj(const TriangleSoup& soup, const std::filesystem::path& path);

}  // namespace oociso::extract
