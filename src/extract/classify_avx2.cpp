// AVX2 classification: 8 floats per compare. This file alone is built
// with -mavx2 (see CMakeLists.txt) and is only ever *called* after the
// runtime probe confirms CPU + OS support, so the rest of the binary
// stays baseline x86-64. _CMP_LT_OQ is the ordered-quiet `<` — false on
// NaN, matching scalar.

#include "extract/kernel.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace oociso::extract::kernel::detail {

#if defined(__AVX2__)

void classify_row_avx2(const float* row, std::size_t count, float isovalue,
                       std::uint64_t* bits) {
  const __m256 viso = _mm256_set1_ps(isovalue);
  const std::size_t words = (count + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t base = w * 64;
    const std::size_t in_word = count - base < 64 ? count - base : 64;
    std::uint64_t word = 0;
    std::size_t i = 0;
    for (; i + 8 <= in_word; i += 8) {
      const __m256 values = _mm256_loadu_ps(row + base + i);
      const int lanes =
          _mm256_movemask_ps(_mm256_cmp_ps(values, viso, _CMP_LT_OQ));
      word |= static_cast<std::uint64_t>(static_cast<unsigned>(lanes)) << i;
    }
    for (; i < in_word; ++i) {
      word |= static_cast<std::uint64_t>(row[base + i] < isovalue) << i;
    }
    bits[w] = word;
  }
}

#else

void classify_row_avx2(const float* row, std::size_t count, float isovalue,
                       std::uint64_t* bits) {
  classify_row_sse2(row, count, isovalue, bits);
}

#endif

}  // namespace oociso::extract::kernel::detail
