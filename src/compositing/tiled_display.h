#pragma once
// Tiled display wall (paper Section 6): four cluster nodes drive four
// projectors; Chromium routes each rendered frame's regions to the display
// node owning that tile, where fragments from all render nodes are
// z-composited and shown.
//
// composite_to_tiles() reproduces that routing: every render node's
// framebuffer is cut along the tile layout, each region is "sent" to its
// display node (traffic accounted per node), and each tile z-merges the p
// incoming regions. assemble() stitches the tiles back into one image,
// which tests verify equals the plain sort-last composite pixel for pixel.

#include <cstdint>
#include <vector>

#include "compositing/sort_last.h"
#include "render/framebuffer.h"

namespace oociso::compositing {

/// Rows x columns tile grid over a W x H display (the paper's wall is
/// effectively a 2x2 or 1x4 arrangement of projectors).
struct TileLayout {
  std::int32_t rows = 2;
  std::int32_t cols = 2;

  [[nodiscard]] std::int32_t tile_count() const { return rows * cols; }

  /// Pixel bounds of one tile on a W x H display; the last row/column
  /// absorbs any remainder.
  struct Rect {
    std::int32_t x0 = 0;
    std::int32_t y0 = 0;
    std::int32_t x1 = 0;  ///< exclusive
    std::int32_t y1 = 0;  ///< exclusive

    [[nodiscard]] std::int32_t width() const { return x1 - x0; }
    [[nodiscard]] std::int32_t height() const { return y1 - y0; }
    [[nodiscard]] std::uint64_t pixels() const {
      return static_cast<std::uint64_t>(width()) *
             static_cast<std::uint64_t>(height());
    }
  };

  [[nodiscard]] Rect tile_rect(std::int32_t tile, std::int32_t width,
                               std::int32_t height) const;
};

struct TiledDisplayResult {
  TileLayout layout;
  std::vector<render::Framebuffer> tiles;  ///< row-major, composited
  TrafficStats traffic;
};

/// Routes and z-composites p render-node framebuffers onto the tile grid.
/// All inputs must share dimensions; throws std::invalid_argument otherwise
/// or when a tile would be empty.
[[nodiscard]] TiledDisplayResult composite_to_tiles(
    const std::vector<render::Framebuffer>& locals, TileLayout layout);

/// Stitches the tiles back into a single framebuffer (for verification and
/// offline output; a real wall displays the tiles directly).
[[nodiscard]] render::Framebuffer assemble(const TiledDisplayResult& tiled,
                                           std::int32_t width,
                                           std::int32_t height);

}  // namespace oociso::compositing
