#include "compositing/tiled_display.h"

#include <algorithm>
#include <stdexcept>

namespace oociso::compositing {

TileLayout::Rect TileLayout::tile_rect(std::int32_t tile, std::int32_t width,
                                       std::int32_t height) const {
  const std::int32_t row = tile / cols;
  const std::int32_t col = tile % cols;
  const std::int32_t tile_w = width / cols;
  const std::int32_t tile_h = height / rows;
  Rect rect;
  rect.x0 = col * tile_w;
  rect.y0 = row * tile_h;
  rect.x1 = col + 1 == cols ? width : rect.x0 + tile_w;
  rect.y1 = row + 1 == rows ? height : rect.y0 + tile_h;
  return rect;
}

TiledDisplayResult composite_to_tiles(
    const std::vector<render::Framebuffer>& locals, TileLayout layout) {
  if (locals.empty()) {
    throw std::invalid_argument("tiled composite: no framebuffers");
  }
  if (layout.rows < 1 || layout.cols < 1) {
    throw std::invalid_argument("tiled composite: bad layout");
  }
  const std::int32_t width = locals.front().width();
  const std::int32_t height = locals.front().height();
  for (const auto& fb : locals) {
    if (fb.width() != width || fb.height() != height) {
      throw std::invalid_argument("tiled composite: size mismatch");
    }
  }
  if (width < layout.cols || height < layout.rows) {
    throw std::invalid_argument("tiled composite: tiles would be empty");
  }

  TiledDisplayResult result;
  result.layout = layout;
  const std::uint64_t bpp = render::Framebuffer::bytes_per_pixel();
  std::vector<std::uint64_t> node_bytes(locals.size() + // render nodes...
                                            static_cast<std::size_t>(
                                                layout.tile_count()),
                                        0);  // ...then display nodes

  for (std::int32_t tile = 0; tile < layout.tile_count(); ++tile) {
    const TileLayout::Rect rect = layout.tile_rect(tile, width, height);
    render::Framebuffer composited(rect.width(), rect.height());

    for (std::size_t node = 0; node < locals.size(); ++node) {
      const render::Framebuffer& source = locals[node];
      // "Send" the region: render node pays the bytes out, display node in.
      const std::uint64_t bytes = rect.pixels() * bpp;
      result.traffic.bytes_total += bytes;
      ++result.traffic.messages;
      node_bytes[node] += bytes;
      node_bytes[locals.size() + static_cast<std::size_t>(tile)] += bytes;

      // Z-merge the incoming region into the tile.
      for (std::int32_t y = rect.y0; y < rect.y1; ++y) {
        for (std::int32_t x = rect.x0; x < rect.x1; ++x) {
          composited.plot(x - rect.x0, y - rect.y0, source.depth_at(x, y),
                          source.color_at(x, y));
        }
      }
    }
    result.tiles.push_back(std::move(composited));
  }

  // One routing round: all regions ship concurrently.
  result.traffic.rounds = 1;
  for (const std::uint64_t bytes : node_bytes) {
    result.traffic.max_node_bytes =
        std::max(result.traffic.max_node_bytes, bytes);
  }
  return result;
}

render::Framebuffer assemble(const TiledDisplayResult& tiled,
                             std::int32_t width, std::int32_t height) {
  render::Framebuffer display(width, height);
  for (std::int32_t tile = 0; tile < tiled.layout.tile_count(); ++tile) {
    const TileLayout::Rect rect = tiled.layout.tile_rect(tile, width, height);
    const render::Framebuffer& source =
        tiled.tiles[static_cast<std::size_t>(tile)];
    if (source.width() != rect.width() || source.height() != rect.height()) {
      throw std::invalid_argument("assemble: tile size mismatch");
    }
    for (std::int32_t y = 0; y < rect.height(); ++y) {
      for (std::int32_t x = 0; x < rect.width(); ++x) {
        display.plot(rect.x0 + x, rect.y0 + y, source.depth_at(x, y),
                     source.color_at(x, y));
      }
    }
  }
  return display;
}

}  // namespace oociso::compositing
