#pragma once
// Sort-last compositing (Molnar et al. 1994), the paper's final phase: each
// node renders its own triangles, then the p framebuffers are merged by
// depth into a single image.
//
// Two schedules are provided:
//   * direct_send — every node ships its full framebuffer to the display
//     node, which performs p-1 z-merges. Simple; the display node receives
//     (p-1) * W * H * bytes_per_pixel.
//   * binary_swap — in log2(p) rounds, pairs of nodes exchange complementary
//     halves of their current region and merge, so afterwards each node owns
//     a fully composited 1/p of the image; a final gather assembles the
//     display image. Per-node traffic is ~W*H*bpp regardless of p, which is
//     why it is the standard at scale.
//
// Both return identical images (a property the tests assert) together with
// traffic counters that the cluster's interconnect model prices. The
// paper's observation — compositing traffic is orders of magnitude below
// triangle data — is reproduced in the Table 2-5 benches from exactly these
// counters.

#include <cstdint>
#include <vector>

#include "obs/trace.h"
#include "render/framebuffer.h"

namespace oociso::compositing {

struct TrafficStats {
  std::uint64_t bytes_total = 0;     ///< summed over all links
  std::uint64_t messages = 0;
  std::uint32_t rounds = 0;          ///< sequential communication rounds
  std::uint64_t max_node_bytes = 0;  ///< heaviest node's sent+received bytes
};

struct CompositeResult {
  render::Framebuffer image;
  TrafficStats traffic;
};

/// All buffers must share dimensions; `locals` must be non-empty.
/// `tracer`, when given, gets one span per communication round on
/// (pid, obs::track(0, Lane::kControl)) carrying the round's byte volume.
[[nodiscard]] CompositeResult direct_send(
    const std::vector<render::Framebuffer>& locals,
    obs::Tracer* tracer = nullptr, std::uint32_t pid = 0);

/// Works for any p >= 1 (non-powers of two are folded into the nearest
/// power of two in a pre-round). Round spans as in direct_send.
[[nodiscard]] CompositeResult binary_swap(
    const std::vector<render::Framebuffer>& locals,
    obs::Tracer* tracer = nullptr, std::uint32_t pid = 0);

}  // namespace oociso::compositing
