#include "compositing/sort_last.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace oociso::compositing {
namespace {

using render::Framebuffer;

void check_same_dims(const std::vector<Framebuffer>& locals) {
  if (locals.empty()) {
    throw std::invalid_argument("compositing: no framebuffers");
  }
  for (const Framebuffer& fb : locals) {
    if (fb.width() != locals.front().width() ||
        fb.height() != locals.front().height()) {
      throw std::invalid_argument("compositing: framebuffer size mismatch");
    }
  }
}

/// Z-merges pixels [begin, end) of `src` into `dst`.
void merge_range(Framebuffer& dst, const Framebuffer& src, std::size_t begin,
                 std::size_t end) {
  auto dst_depth = dst.depths();
  auto dst_color = dst.colors();
  const auto src_depth = src.depths();
  const auto src_color = src.colors();
  for (std::size_t i = begin; i < end; ++i) {
    if (src_depth[i] < dst_depth[i]) {
      dst_depth[i] = src_depth[i];
      dst_color[i] = src_color[i];
    }
  }
}

/// Copies pixels [begin, end) of `src` into `dst` (gather step).
void copy_range(Framebuffer& dst, const Framebuffer& src, std::size_t begin,
                std::size_t end) {
  auto dst_depth = dst.depths();
  auto dst_color = dst.colors();
  const auto src_depth = src.depths();
  const auto src_color = src.colors();
  for (std::size_t i = begin; i < end; ++i) {
    dst_depth[i] = src_depth[i];
    dst_color[i] = src_color[i];
  }
}

}  // namespace

CompositeResult direct_send(const std::vector<Framebuffer>& locals,
                            obs::Tracer* tracer, std::uint32_t pid) {
  check_same_dims(locals);
  CompositeResult result{locals.front(), {}};
  const std::uint64_t buffer_bytes =
      locals.front().pixel_count() * Framebuffer::bytes_per_pixel();

  obs::Span span(tracer, "composite.direct_send", pid,
                 obs::track(0, obs::Lane::kControl));
  for (std::size_t i = 1; i < locals.size(); ++i) {
    merge_range(result.image, locals[i], 0, locals[i].pixel_count());
    result.traffic.bytes_total += buffer_bytes;
    ++result.traffic.messages;
  }
  span.arg("bytes", result.traffic.bytes_total);
  // All sends can overlap, but the display node must receive them all:
  // its received volume is the critical path.
  result.traffic.rounds = locals.size() > 1 ? 1 : 0;
  result.traffic.max_node_bytes = result.traffic.bytes_total;
  return result;
}

CompositeResult binary_swap(const std::vector<Framebuffer>& locals,
                            obs::Tracer* tracer, std::uint32_t pid) {
  check_same_dims(locals);
  const std::uint32_t tid = obs::track(0, obs::Lane::kControl);
  const std::size_t p = locals.size();
  const std::size_t pixels = locals.front().pixel_count();
  const std::uint64_t bpp = Framebuffer::bytes_per_pixel();

  std::vector<Framebuffer> work = locals;  // per-node working buffers
  std::vector<std::uint64_t> node_bytes(p, 0);
  TrafficStats traffic;

  // Fold non-power-of-two extras into the low nodes first.
  const std::size_t p2 = std::bit_floor(p);
  if (p2 < p) {
    obs::Span span(tracer, "composite.fold", pid, tid);
    for (std::size_t i = p2; i < p; ++i) {
      merge_range(work[i - p2], work[i], 0, pixels);
      const std::uint64_t bytes = pixels * bpp;
      traffic.bytes_total += bytes;
      node_bytes[i] += bytes;
      node_bytes[i - p2] += bytes;
      ++traffic.messages;
    }
    ++traffic.rounds;
  }

  // Binary swap over nodes [0, p2): each stage halves every node's region.
  std::vector<std::size_t> begin(p2, 0);
  std::vector<std::size_t> end(p2, pixels);
  for (std::size_t h = 1; h < p2; h <<= 1) {
    ++traffic.rounds;
    obs::Span span(tracer, "composite.swap_round", pid, tid);
    span.arg("h", static_cast<std::uint64_t>(h));
    for (std::size_t i = 0; i < p2; ++i) {
      const std::size_t partner = i ^ h;
      if (partner < i) continue;  // handle each pair once
      // Split the (identical) region of the pair; the lower node keeps the
      // lower half, the higher node the upper half; each sends the half it
      // gives up and merges the half it keeps.
      const std::size_t mid = begin[i] + (end[i] - begin[i]) / 2;
      merge_range(work[i], work[partner], begin[i], mid);      // i receives
      merge_range(work[partner], work[i], mid, end[i]);        // partner receives
      const std::uint64_t half_bytes =
          static_cast<std::uint64_t>(end[i] - mid) * bpp;
      const std::uint64_t other_half =
          static_cast<std::uint64_t>(mid - begin[i]) * bpp;
      traffic.bytes_total += half_bytes + other_half;
      traffic.messages += 2;
      node_bytes[i] += half_bytes + other_half;
      node_bytes[partner] += half_bytes + other_half;
      end[i] = mid;
      begin[partner] = mid;
      // (work[partner]'s copy of [begin_i, mid) is now stale, but that range
      // is no longer in partner's region, so it is never read again.)
    }
  }

  // Gather the owned regions onto node 0 for display.
  CompositeResult result{std::move(work[0]), {}};
  if (p2 > 1) ++traffic.rounds;
  obs::Span gather_span(tracer, "composite.gather", pid, tid);
  for (std::size_t i = 1; i < p2; ++i) {
    copy_range(result.image, work[i], begin[i], end[i]);
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(end[i] - begin[i]) * bpp;
    traffic.bytes_total += bytes;
    node_bytes[i] += bytes;
    node_bytes[0] += bytes;
    ++traffic.messages;
  }

  traffic.max_node_bytes =
      *std::max_element(node_bytes.begin(), node_bytes.end());
  result.traffic = traffic;
  return result;
}

}  // namespace oociso::compositing
