#pragma once
// Standard (in-core) binary interval tree — the baseline the paper compares
// index sizes against in Table 1.
//
// Each node stores the median endpoint value and TWO sorted secondary lists
// of the intervals containing it: one by increasing vmin and one by
// decreasing vmax (Cignoni et al. 1996 / Edelsbrunner). Every interval
// therefore appears twice, and each appearance carries the interval plus
// the metacell's disk pointer (out-of-core retrieval needs the location;
// this is what BBIO-style deployments store per entry). The structure is
// Omega(N) in the number of intervals N, versus the compact tree's
// O(n log n) entries in the number of distinct endpoints n — and the
// compact tree amortizes one disk pointer over a whole brick, which is
// why it stays smaller even in the N ~ n regime of Table 1.

#include <cstdint>
#include <vector>

#include "core/interval.h"
#include "metacell/metacell.h"

namespace oociso::index {

class IntervalTree {
 public:
  /// Entry of a secondary list: the interval, the metacell id, and the
  /// metacell's disk location (id-order store layout).
  struct ListEntry {
    core::ValueInterval interval;
    std::uint32_t id = 0;
    std::uint64_t offset = 0;  ///< disk pointer of the metacell record
  };

  struct Node {
    core::ValueKey split = 0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::vector<ListEntry> by_vmin;  ///< increasing vmin
    std::vector<ListEntry> by_vmax;  ///< decreasing vmax
  };

  IntervalTree() = default;
  /// `record_size` synthesizes each entry's disk pointer assuming the
  /// id-order store layout used alongside this baseline.
  explicit IntervalTree(const std::vector<metacell::MetacellInfo>& infos,
                        std::size_t record_size = 734);

  /// All metacell ids whose interval stabs the isovalue (unsorted).
  [[nodiscard]] std::vector<std::uint32_t> query(
      core::ValueKey isovalue) const;

  /// Entries examined by the last query (the classic output-sensitivity
  /// measure: equals the answer size plus one overshoot per visited node).
  [[nodiscard]] std::uint64_t last_entries_examined() const {
    return last_entries_examined_;
  }

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] std::size_t interval_count() const { return interval_count_; }

  /// Total secondary-list entries (2N: each interval appears in two lists).
  [[nodiscard]] std::size_t entry_count() const;

  /// In-core footprint in bytes.
  [[nodiscard]] std::size_t size_bytes() const;

  [[nodiscard]] std::size_t height() const;

 private:
  std::int32_t build(std::size_t lo, std::size_t hi,
                     std::vector<metacell::MetacellInfo> items,
                     const std::vector<core::ValueKey>& endpoints);

  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t interval_count_ = 0;
  std::size_t record_size_ = 734;
  mutable std::uint64_t last_entries_examined_ = 0;
};

}  // namespace oociso::index
