#include "index/compact_interval_tree.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "codec/codec.h"
#include "codec/decoding_device.h"
#include "index/retrieval_stream.h"
#include "io/io_error.h"
#include "io/serial.h"
#include "util/crc32.h"

namespace oociso::index {
namespace {

constexpr std::uint32_t kIndexMagic = 0x4F434954;  // "OCIT"
// v2: BrickEntry gained crc_begin and the serialization carries the
// per-chunk CRC32 array guarding the brick payload (see DESIGN.md §8).
// v3: appends the replica-placement section (replication factor + per-group
// replica table, DESIGN.md §13). An unreplicated tree still serializes as
// v2 so k=1 index bytes stay bit-identical to pre-replication builds, and
// from_bytes accepts both.
// v4: per-chunk compression (DESIGN.md §14) — build codec id, the device
// offset of the first encoded chunk, per-chunk encoded sizes and codec
// ids aligned with the CRC array, and replica targets carrying both raw
// and device bases. Only a tree actually built with compression writes
// v4; `--compression none` keeps producing v2/v3 byte for byte.
// v5: multi-resolution hierarchy (DESIGN.md §16) — the codec/device_base
// fields and the replication section become unconditional (codec may be
// kRaw now), and the per-level coarse entry tables follow as the final
// section, guarded by their own CRC32 trailer. Only a tree built with
// --levels > 1 writes v5; `--levels 1` keeps producing v2/v3/v4 byte for
// byte.
constexpr std::uint32_t kIndexVersionV2 = 2;
constexpr std::uint32_t kIndexVersionV3 = 3;
constexpr std::uint32_t kIndexVersionV4 = 4;
constexpr std::uint32_t kIndexVersionV5 = 5;

/// Serialized size of one hierarchy entry (id, vmin, vmax, offset, crc).
constexpr std::size_t kHierarchyEntryBytes = 24;
/// Sanity bound on stored coarse levels: level l halves each axis, so even
/// a 2^32-sample axis is exhausted long before 32 levels.
constexpr std::uint32_t kMaxHierarchyLevels = 32;

/// Chunks a brick of `count` records splits into for checksumming.
constexpr std::uint32_t chunk_count(std::uint32_t count,
                                    std::uint32_t chunk_records) {
  return chunk_records == 0 ? 0 : (count + chunk_records - 1) / chunk_records;
}

/// Walks a compressed tree's primary chunks in write order, calling
/// `emit(chunk_index, extent)` for each. Bricks were appended in write
/// order, so summing encoded sizes while walking the brick vector
/// reproduces every chunk's device offset from device_base().
template <typename Emit>
void for_each_primary_chunk(const CompactIntervalTree& tree, Emit&& emit) {
  const std::uint32_t chunk_records = tree.crc_chunk_records();
  std::uint64_t device_cursor = tree.device_base();
  for (const BrickEntry& brick : tree.bricks()) {
    std::uint64_t raw = brick.offset;
    const std::uint32_t chunks = chunk_count(brick.count, chunk_records);
    for (std::uint32_t c = 0; c < chunks; ++c) {
      const std::uint32_t records =
          std::min(chunk_records, brick.count - c * chunk_records);
      codec::ChunkExtent extent;
      extent.raw_offset = raw;
      extent.raw_size =
          static_cast<std::uint32_t>(records * tree.record_size());
      extent.device_offset = device_cursor;
      extent.comp_size = tree.chunk_comp_sizes()[brick.crc_begin + c];
      extent.codec =
          static_cast<codec::Codec>(tree.chunk_codecs()[brick.crc_begin + c]);
      emit(static_cast<std::size_t>(brick.crc_begin) + c, extent);
      raw += extent.raw_size;
      device_cursor += extent.comp_size;
    }
  }
}

}  // namespace

std::size_t ReplicaDirectory::group_of(std::uint64_t offset) const {
  // Groups are disjoint and sorted by begin; find the last group starting
  // at or before `offset` and check it actually covers the offset.
  const auto it = std::upper_bound(
      groups.begin(), groups.end(), offset,
      [](std::uint64_t value, const ReplicaGroup& group) {
        return value < group.begin;
      });
  if (it == groups.begin()) return groups.size();
  const std::size_t index = static_cast<std::size_t>(it - groups.begin()) - 1;
  return offset < groups[index].end ? index : groups.size();
}

// ---------------------------------------------------------------------------
// Query planning
// ---------------------------------------------------------------------------

QueryPlan CompactIntervalTree::plan(core::ValueKey isovalue) const {
  QueryPlan plan;
  plan.isovalue = isovalue;
  plan.crc_chunk_records = crc_chunk_records_;
  // Scans view the tree's checksum array; the tree outlives its plans.
  const auto scan_of = [&](const BrickEntry& brick, bool full) {
    BrickScan scan{brick.offset, brick.count, full};
    if (crc_chunk_records_ > 0) {
      scan.chunk_crcs = std::span(chunk_crcs_)
                            .subspan(brick.crc_begin,
                                     chunk_count(brick.count,
                                                 crc_chunk_records_));
    }
    return scan;
  };
  std::int32_t current = root_;
  while (current >= 0) {
    const CompactNode& node = nodes_[static_cast<std::size_t>(current)];
    ++plan.nodes_visited;
    if (isovalue > node.split) {
      // Case 1: bricks are ordered by decreasing vmax; take the sequential
      // run with vmax >= isovalue and read each fully.
      for (std::uint32_t b = node.brick_begin; b < node.brick_end; ++b) {
        const BrickEntry& brick = bricks_[b];
        if (brick.vmax < isovalue) break;
        plan.scans.push_back(scan_of(brick, true));
      }
      current = node.right;
    } else if (isovalue < node.split) {
      // Case 2: every brick here has vmax >= split > isovalue; scan the
      // vmin-sorted prefix of each brick that can contain active metacells.
      for (std::uint32_t b = node.brick_begin; b < node.brick_end; ++b) {
        const BrickEntry& brick = bricks_[b];
        if (brick.min_vmin > isovalue) continue;  // no active cells: no I/O
        plan.scans.push_back(scan_of(brick, false));
      }
      current = node.left;
    } else {
      // isovalue == split: every metacell owned by this node is active, and
      // no interval below this node can contain the isovalue.
      for (std::uint32_t b = node.brick_begin; b < node.brick_end; ++b) {
        plan.scans.push_back(scan_of(bricks_[b], true));
      }
      break;
    }
  }
  return plan;
}

QueryPlan CompactIntervalTree::plan_level(core::ValueKey isovalue,
                                          std::int32_t level) const {
  if (level <= 0) return plan(isovalue);
  const auto index = static_cast<std::size_t>(level - 1);
  if (index >= hierarchy_.size()) {
    throw std::out_of_range("compact tree: no hierarchy level " +
                            std::to_string(level));
  }
  QueryPlan plan;
  plan.isovalue = isovalue;
  plan.level = level;
  plan.crc_chunk_records = 1;  // each coarse record is its own CRC chunk
  const HierarchyLevel& coarse = hierarchy_[index];
  plan.nodes_visited = static_cast<std::uint32_t>(coarse.entries.size());
  for (const HierarchyEntry& entry : coarse.entries) {
    if (!entry.interval.stabs(isovalue)) continue;
    // Entries were appended in id order, so per-device offsets ascend and
    // adjacent active records still coalesce into bulk reads downstream.
    BrickScan scan{entry.offset, 1, /*full=*/true};
    scan.level = level;
    scan.chunk_crcs = std::span<const std::uint32_t>(&entry.crc, 1);
    plan.scans.push_back(scan);
  }
  return plan;
}

QueryStats execute_plan(
    const QueryPlan& plan, core::ScalarKind kind, std::size_t record_size,
    io::BlockDevice& device,
    const std::function<void(std::span<const std::byte>)>& callback) {
  if (record_size == 0 && !plan.scans.empty()) {
    throw std::logic_error("execute_plan: empty index queried");
  }
  RetrievalStream stream(plan, kind, record_size, device);
  while (std::optional<RecordBatch> batch = stream.next()) {
    for (std::size_t r = 0; r < batch->record_count; ++r) {
      callback(batch->record(r));
    }
  }
  return stream.stats();
}

QueryStats CompactIntervalTree::execute(
    const QueryPlan& plan, io::BlockDevice& device,
    const std::function<void(std::span<const std::byte>)>& callback) const {
  // Unlike the free execute_plan, the tree can hand the scheduler its brick
  // directory, so coalesced reads may bridge gaps between planned bricks
  // with full checksum cover.
  if (compressed()) {
    // `device` holds this tree's encoded chunks; present the raw address
    // space the plan speaks, and let the scheduler budget coalescing gaps
    // in device (encoded) bytes.
    codec::ChunkMap map(record_size_);
    for_each_primary_chunk(
        *this,
        [&](std::size_t, const codec::ChunkExtent& extent) { map.add(extent); });
    map.finalize();
    codec::ChunkDecodingDevice decoded(device, map);
    RetrievalStream stream(plan, kind_, record_size_, decoded, {},
                           BrickDirectory{bricks_, chunk_crcs_, {}, &map});
    while (std::optional<RecordBatch> batch = stream.next()) {
      for (std::size_t r = 0; r < batch->record_count; ++r) {
        callback(batch->record(r));
      }
    }
    return stream.stats();
  }
  RetrievalStream stream(plan, kind_, record_size_, device, {},
                         BrickDirectory{bricks_, chunk_crcs_});
  while (std::optional<RecordBatch> batch = stream.next()) {
    for (std::size_t r = 0; r < batch->record_count; ++r) {
      callback(batch->record(r));
    }
  }
  return stream.stats();
}

QueryStats CompactIntervalTree::query(
    core::ValueKey isovalue, io::BlockDevice& device,
    const std::function<void(std::span<const std::byte>)>& callback) const {
  return execute(plan(isovalue), device, callback);
}

std::size_t CompactIntervalTree::hierarchy_section_bytes() const {
  if (hierarchy_.empty()) return 0;
  std::size_t bytes = 4;  // level count
  for (const HierarchyLevel& level : hierarchy_) {
    bytes += 4 + 4 + level.entries.size() * kHierarchyEntryBytes;
  }
  return bytes + 4;  // CRC32 trailer
}

std::uint64_t CompactIntervalTree::raw_payload_bytes() const {
  std::uint64_t bytes = 0;
  for (const BrickEntry& brick : bricks_) {
    bytes += static_cast<std::uint64_t>(brick.count) * record_size_;
  }
  return bytes;
}

std::uint64_t CompactIntervalTree::compressed_payload_bytes() const {
  if (!compressed()) return raw_payload_bytes();
  std::uint64_t bytes = 0;
  for (const std::uint32_t comp_size : chunk_comp_sizes_) bytes += comp_size;
  return bytes;
}

// ---------------------------------------------------------------------------
// Chunk maps (v4 raw↔device translation)
// ---------------------------------------------------------------------------

void append_chunk_maps(std::vector<codec::ChunkMap>& maps,
                       std::span<const CompactIntervalTree> trees) {
  if (maps.size() < trees.size()) maps.resize(trees.size());
  for (std::size_t d = 0; d < trees.size(); ++d) {
    const CompactIntervalTree& tree = trees[d];
    if (!tree.compressed()) continue;
    const std::size_t record_size = tree.record_size();
    const std::uint32_t chunk_records = tree.crc_chunk_records();
    const std::vector<std::uint32_t>& comp_sizes = tree.chunk_comp_sizes();
    const std::vector<std::uint8_t>& chunk_codecs = tree.chunk_codecs();
    if (comp_sizes.size() != tree.chunk_crcs().size() ||
        chunk_codecs.size() != comp_sizes.size() || chunk_records == 0) {
      throw std::runtime_error("chunk maps: inconsistent compression columns");
    }
    maps[d].set_record_size(record_size);
    std::vector<codec::ChunkExtent> by_chunk(comp_sizes.size());
    for_each_primary_chunk(
        tree, [&](std::size_t chunk, const codec::ChunkExtent& extent) {
          by_chunk[chunk] = extent;
          maps[d].add(extent);
        });
    // Replica runs: each group's chunks land on the holder verbatim, so its
    // extents are the primary ones rebased onto (target.base,
    // target.device_base). Groups are consecutive brick runs; walk bricks
    // with a cursor.
    std::size_t brick_index = 0;
    const std::vector<BrickEntry>& bricks = tree.bricks();
    for (const ReplicaGroup& group : tree.replica_groups()) {
      while (brick_index < bricks.size() &&
             bricks[brick_index].offset < group.begin) {
        ++brick_index;
      }
      std::size_t first_chunk = comp_sizes.size();
      std::size_t last_chunk = 0;
      for (std::size_t b = brick_index;
           b < bricks.size() && bricks[b].offset < group.end; ++b) {
        const std::size_t begin_chunk = bricks[b].crc_begin;
        const std::size_t end_chunk =
            begin_chunk + chunk_count(bricks[b].count, chunk_records);
        first_chunk = std::min(first_chunk, begin_chunk);
        last_chunk = std::max(last_chunk, end_chunk);
      }
      if (first_chunk >= last_chunk) continue;
      const std::uint64_t group_device_begin =
          by_chunk[first_chunk].device_offset;
      for (const ReplicaTarget& target : group.targets) {
        if (target.node >= maps.size()) maps.resize(target.node + 1);
        maps[target.node].set_record_size(record_size);
        for (std::size_t c = first_chunk; c < last_chunk; ++c) {
          codec::ChunkExtent extent = by_chunk[c];
          extent.raw_offset = target.base + (extent.raw_offset - group.begin);
          extent.device_offset =
              target.device_base + (extent.device_offset - group_device_begin);
          maps[target.node].add(extent);
        }
      }
    }
  }
  for (codec::ChunkMap& map : maps) {
    if (!map.empty()) map.finalize();
  }
}

std::vector<codec::ChunkMap> build_chunk_maps(
    std::span<const CompactIntervalTree> trees) {
  std::vector<codec::ChunkMap> maps(trees.size());
  append_chunk_maps(maps, trees);
  return maps;
}

std::size_t CompactIntervalTree::height() const {
  // Iterative depth computation over the explicit child links.
  if (root_ < 0) return 0;
  std::size_t max_depth = 0;
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{root_, 1}};
  while (!stack.empty()) {
    const auto [node_index, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const CompactNode& node = nodes_[static_cast<std::size_t>(node_index)];
    if (node.left >= 0) stack.emplace_back(node.left, depth + 1);
    if (node.right >= 0) stack.emplace_back(node.right, depth + 1);
  }
  return max_depth;
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

std::vector<std::byte> CompactIntervalTree::to_bytes() const {
  // An unreplicated, uncompressed tree writes the v2 layout byte for byte;
  // only a tree that carries replica tables needs (and pays for) v3, only a
  // compressed tree needs v4, and only a hierarchical tree needs v5.
  const bool replicated = replication_ > 1;
  const bool is_compressed = compressed();
  const bool hierarchical = !hierarchy_.empty();
  std::vector<std::byte> out;
  io::ByteWriter writer(out);
  writer.put(kIndexMagic);
  writer.put(hierarchical
                 ? kIndexVersionV5
                 : (is_compressed
                        ? kIndexVersionV4
                        : (replicated ? kIndexVersionV3 : kIndexVersionV2)));
  writer.put(static_cast<std::uint8_t>(kind_));
  writer.put(static_cast<std::uint32_t>(record_size_));
  writer.put(total_metacells_);
  writer.put(root_);
  writer.put(crc_chunk_records_);
  writer.put(static_cast<std::uint32_t>(nodes_.size()));
  writer.put(static_cast<std::uint32_t>(bricks_.size()));
  writer.put(static_cast<std::uint32_t>(chunk_crcs_.size()));
  for (const CompactNode& node : nodes_) writer.put(node);
  for (const BrickEntry& brick : bricks_) writer.put(brick);
  for (const std::uint32_t crc : chunk_crcs_) writer.put(crc);
  if (is_compressed || hierarchical) {
    // v5 writes codec and device_base even for kRaw so the layout does not
    // fork on the codec; the per-chunk columns exist only when compressed.
    writer.put(static_cast<std::uint8_t>(codec_));
    writer.put(device_base_);
    if (is_compressed) {
      for (const std::uint32_t comp_size : chunk_comp_sizes_) {
        writer.put(comp_size);
      }
      for (const std::uint8_t chunk_codec : chunk_codecs_) {
        writer.put(chunk_codec);
      }
    }
  }
  if (replicated || is_compressed || hierarchical) {
    // v4/v5 write the replication section unconditionally (count may be 0)
    // so the reader never has to guess whether it is present.
    writer.put(static_cast<std::uint32_t>(replication_));
    writer.put(static_cast<std::uint32_t>(replica_groups_.size()));
    for (const ReplicaGroup& group : replica_groups_) {
      writer.put(group.begin);
      writer.put(group.end);
      writer.put(static_cast<std::uint32_t>(group.targets.size()));
      for (const ReplicaTarget& target : group.targets) {
        writer.put(target.node);
        writer.put(target.base);
        if (is_compressed || hierarchical) writer.put(target.device_base);
      }
    }
  }
  if (hierarchical) {
    // Hierarchy section, strictly last so every earlier section — and any
    // offset arithmetic over it — is untouched by the pyramid. The CRC32
    // trailer covers the whole section: the reader turns any damage here
    // into a retriable IoError instead of serving a wrong coarse surface.
    const std::size_t section_start = out.size();
    writer.put(static_cast<std::uint32_t>(hierarchy_.size()));
    for (const HierarchyLevel& level : hierarchy_) {
      writer.put(level.level);
      writer.put(static_cast<std::uint32_t>(level.entries.size()));
      for (const HierarchyEntry& entry : level.entries) {
        writer.put(entry.id);
        writer.put(entry.interval.vmin);
        writer.put(entry.interval.vmax);
        writer.put(entry.offset);
        writer.put(entry.crc);
      }
    }
    writer.put(util::crc32(std::span(out).subspan(section_start)));
  }
  return out;
}

CompactIntervalTree CompactIntervalTree::from_bytes(
    std::span<const std::byte> data) {
  io::ByteReader reader(data);
  if (reader.get<std::uint32_t>() != kIndexMagic) {
    throw std::runtime_error("compact tree: bad magic");
  }
  const auto version = reader.get<std::uint32_t>();
  if (version != kIndexVersionV2 && version != kIndexVersionV3 &&
      version != kIndexVersionV4 && version != kIndexVersionV5) {
    throw std::runtime_error("compact tree: unsupported version");
  }
  CompactIntervalTree tree;
  tree.kind_ = static_cast<core::ScalarKind>(reader.get<std::uint8_t>());
  tree.record_size_ = reader.get<std::uint32_t>();
  tree.total_metacells_ = reader.get<std::uint64_t>();
  tree.root_ = reader.get<std::int32_t>();
  tree.crc_chunk_records_ = reader.get<std::uint32_t>();
  const auto node_count = reader.get<std::uint32_t>();
  const auto brick_count = reader.get<std::uint32_t>();
  const auto crc_count = reader.get<std::uint32_t>();
  tree.nodes_.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    tree.nodes_.push_back(reader.get<CompactNode>());
  }
  tree.bricks_.reserve(brick_count);
  for (std::uint32_t i = 0; i < brick_count; ++i) {
    tree.bricks_.push_back(reader.get<BrickEntry>());
  }
  tree.chunk_crcs_.reserve(crc_count);
  for (std::uint32_t i = 0; i < crc_count; ++i) {
    tree.chunk_crcs_.push_back(reader.get<std::uint32_t>());
  }
  const bool v5 = version == kIndexVersionV5;
  const bool has_codec_section = version >= kIndexVersionV4;
  if (has_codec_section) {
    tree.codec_ = static_cast<codec::Codec>(reader.get<std::uint8_t>());
    if (tree.codec_ == codec::Codec::kRaw && !v5) {
      throw std::runtime_error("compact tree: v4 index without a codec");
    }
    tree.device_base_ = reader.get<std::uint64_t>();
    if (tree.codec_ != codec::Codec::kRaw) {
      tree.chunk_comp_sizes_.reserve(crc_count);
      for (std::uint32_t i = 0; i < crc_count; ++i) {
        const auto comp_size = reader.get<std::uint32_t>();
        if (comp_size == 0) {
          throw std::runtime_error("compact tree: zero-sized encoded chunk");
        }
        tree.chunk_comp_sizes_.push_back(comp_size);
      }
      tree.chunk_codecs_.reserve(crc_count);
      for (std::uint32_t i = 0; i < crc_count; ++i) {
        const auto chunk_codec = reader.get<std::uint8_t>();
        if (chunk_codec > static_cast<std::uint8_t>(codec::Codec::kLz)) {
          throw std::runtime_error("compact tree: unknown chunk codec id");
        }
        tree.chunk_codecs_.push_back(chunk_codec);
      }
    }
  }
  if (version >= kIndexVersionV3) {
    tree.replication_ = reader.get<std::uint32_t>();
    if (version == kIndexVersionV3 && tree.replication_ < 2) {
      throw std::runtime_error("compact tree: v3 index with replication < 2");
    }
    if (tree.replication_ < 1) {
      throw std::runtime_error("compact tree: replication < 1");
    }
    const auto group_count = reader.get<std::uint32_t>();
    tree.replica_groups_.reserve(group_count);
    std::uint64_t previous_end = 0;
    for (std::uint32_t g = 0; g < group_count; ++g) {
      ReplicaGroup group;
      group.begin = reader.get<std::uint64_t>();
      group.end = reader.get<std::uint64_t>();
      if (group.end <= group.begin || group.begin < previous_end) {
        throw std::runtime_error(
            "compact tree: replica groups not disjoint/ascending");
      }
      previous_end = group.end;
      const auto target_count = reader.get<std::uint32_t>();
      if (target_count + 1 != tree.replication_) {
        throw std::runtime_error(
            "compact tree: replica group target count mismatch");
      }
      group.targets.reserve(target_count);
      for (std::uint32_t t = 0; t < target_count; ++t) {
        ReplicaTarget target;
        target.node = reader.get<std::uint32_t>();
        target.base = reader.get<std::uint64_t>();
        target.device_base =
            has_codec_section ? reader.get<std::uint64_t>() : target.base;
        group.targets.push_back(target);
      }
      tree.replica_groups_.push_back(std::move(group));
    }
  }
  if (v5) {
    // The hierarchy section carries its own CRC32 trailer; any damage —
    // truncation, bit flip, structural nonsense — surfaces as a *retriable*
    // IoError so callers can refetch the index instead of crashing or
    // silently serving a wrong coarse surface.
    const std::size_t section_start = reader.position();
    try {
      const auto level_count = reader.get<std::uint32_t>();
      if (level_count == 0 || level_count > kMaxHierarchyLevels) {
        throw std::runtime_error("bad level count");
      }
      tree.hierarchy_.reserve(level_count);
      for (std::uint32_t l = 0; l < level_count; ++l) {
        HierarchyLevel level;
        level.level = reader.get<std::int32_t>();
        if (level.level != static_cast<std::int32_t>(l) + 1) {
          throw std::runtime_error("levels out of order");
        }
        const auto entry_count = reader.get<std::uint32_t>();
        if (static_cast<std::uint64_t>(entry_count) * kHierarchyEntryBytes >
            reader.remaining()) {
          throw std::runtime_error("entry table truncated");
        }
        level.entries.reserve(entry_count);
        for (std::uint32_t e = 0; e < entry_count; ++e) {
          HierarchyEntry entry;
          entry.id = reader.get<std::uint32_t>();
          const float vmin = reader.get<float>();
          const float vmax = reader.get<float>();
          if (!(vmin <= vmax)) {
            throw std::runtime_error("inverted entry interval");
          }
          entry.interval = core::ValueInterval(vmin, vmax);
          entry.offset = reader.get<std::uint64_t>();
          entry.crc = reader.get<std::uint32_t>();
          level.entries.push_back(entry);
        }
        tree.hierarchy_.push_back(std::move(level));
      }
      const std::size_t section_end = reader.position();
      const auto expected = reader.get<std::uint32_t>();
      const std::uint32_t actual =
          util::crc32(data.subspan(section_start, section_end - section_start));
      if (expected != actual) {
        throw std::runtime_error("section checksum mismatch");
      }
    } catch (const std::exception& error) {
      throw io::IoError(
          io::IoError::Kind::kCorruption, /*retriable=*/true,
          std::string("compact tree: hierarchy section corrupt: ") +
              error.what());
    }
  }
  // Checksum bookkeeping must be self-consistent or verification would
  // index out of bounds.
  for (const BrickEntry& brick : tree.bricks_) {
    const std::uint64_t end =
        static_cast<std::uint64_t>(brick.crc_begin) +
        chunk_count(brick.count, tree.crc_chunk_records_);
    if (tree.crc_chunk_records_ > 0 && end > tree.chunk_crcs_.size()) {
      throw std::runtime_error("compact tree: brick checksum range out of "
                               "bounds");
    }
  }
  if (reader.remaining() != 0) {
    throw std::runtime_error("compact tree: trailing bytes");
  }
  return tree;
}

// ---------------------------------------------------------------------------
// Building
// ---------------------------------------------------------------------------

namespace {

using metacell::MetacellInfo;

/// Shared (device-independent) shape of the tree plus, per node, the list
/// of bricks as ranges into the node's sorted metacell array.
struct ShapeNode {
  core::ValueKey split = 0;
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::vector<MetacellInfo> metacells;  // sorted by (vmax desc, vmin asc, id)
  // Brick boundaries: metacells[brick_start[i] .. brick_start[i+1]) share
  // one vmax. brick_start.back() == metacells.size().
  std::vector<std::uint32_t> brick_start;
};

class ShapeBuilder {
 public:
  explicit ShapeBuilder(std::vector<core::ValueKey> endpoints)
      : endpoints_(std::move(endpoints)) {}

  std::int32_t build(std::size_t lo, std::size_t hi,
                     std::vector<MetacellInfo> items) {
    if (items.empty()) return -1;
    const std::size_t mid = lo + (hi - lo) / 2;
    const core::ValueKey split = endpoints_[mid];

    std::vector<MetacellInfo> left_items;
    std::vector<MetacellInfo> right_items;
    ShapeNode node;
    node.split = split;
    for (const MetacellInfo& info : items) {
      if (info.interval.vmax < split) {
        left_items.push_back(info);
      } else if (info.interval.vmin > split) {
        right_items.push_back(info);
      } else {
        node.metacells.push_back(info);
      }
    }
    items.clear();
    items.shrink_to_fit();

    // Bricks: group by vmax in decreasing order; inside a brick, increasing
    // vmin (ties broken by id for determinism).
    std::sort(node.metacells.begin(), node.metacells.end(),
              [](const MetacellInfo& a, const MetacellInfo& b) {
                if (a.interval.vmax != b.interval.vmax) {
                  return a.interval.vmax > b.interval.vmax;
                }
                if (a.interval.vmin != b.interval.vmin) {
                  return a.interval.vmin < b.interval.vmin;
                }
                return a.id < b.id;
              });
    node.brick_start.push_back(0);
    for (std::uint32_t i = 1; i < node.metacells.size(); ++i) {
      if (node.metacells[i].interval.vmax !=
          node.metacells[i - 1].interval.vmax) {
        node.brick_start.push_back(i);
      }
    }
    node.brick_start.push_back(
        static_cast<std::uint32_t>(node.metacells.size()));

    const auto index = static_cast<std::int32_t>(shape_.size());
    shape_.push_back(std::move(node));
    // (mid == lo means no endpoints remain on the left, and similarly right.)
    const std::int32_t left =
        mid > lo ? build(lo, mid - 1, std::move(left_items)) : -1;
    const std::int32_t right =
        mid < hi ? build(mid + 1, hi, std::move(right_items)) : -1;
    shape_[static_cast<std::size_t>(index)].left = left;
    shape_[static_cast<std::size_t>(index)].right = right;
    return index;
  }

  std::vector<ShapeNode>& shape() { return shape_; }

 private:
  std::vector<core::ValueKey> endpoints_;
  std::vector<ShapeNode> shape_;
};

}  // namespace

CompactTreeBuilder::Result CompactTreeBuilder::build(
    const std::vector<metacell::MetacellInfo>& infos,
    const metacell::MetacellSource& source,
    std::span<io::BlockDevice* const> devices,
    const placement::PlacementConfig& placement, codec::Codec compression,
    std::span<const std::uint64_t> raw_bases, std::int32_t levels) {
  if (devices.empty()) {
    throw std::invalid_argument("CompactTreeBuilder: no devices");
  }
  for (io::BlockDevice* device : devices) {
    if (device == nullptr) {
      throw std::invalid_argument("CompactTreeBuilder: null device");
    }
  }
  const std::size_t p = devices.size();
  const std::size_t record_size = source.record_size();
  const bool compress = compression != codec::Codec::kRaw;
  if (!raw_bases.empty() && raw_bases.size() != p) {
    throw std::invalid_argument(
        "CompactTreeBuilder: raw_bases must cover every device");
  }
  // The caller parameterizes replication/grouping/seed; the node count is
  // always the device list (validate catches replication > p).
  placement::PlacementConfig placement_config = placement;
  placement_config.node_count = p;
  placement_config.validate();

  // Distinct endpoint values (the paper's n).
  std::vector<core::ValueKey> endpoints;
  endpoints.reserve(infos.size() * 2);
  for (const auto& info : infos) {
    endpoints.push_back(info.interval.vmin);
    endpoints.push_back(info.interval.vmax);
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());

  Result result;
  result.trees.resize(p);
  for (std::size_t d = 0; d < p; ++d) {
    CompactIntervalTree& tree = result.trees[d];
    tree.kind_ = source.kind();
    tree.record_size_ = record_size;
    tree.replication_ = placement_config.replication;
    tree.codec_ = compression;
    // Encoded bytes (if any) start where the device currently ends; brick
    // offsets stay in *raw* space regardless of codec.
    tree.device_base_ = devices[d]->size();
    // Checksum chunk = one device block's worth of records, which is also
    // the retrieval gallop's base read unit — every batch read covers whole
    // chunks, so each transfer is verified before any record is consumed.
    tree.crc_chunk_records_ =
        record_size == 0
            ? 0
            : static_cast<std::uint32_t>(std::max<std::uint64_t>(
                  1, devices[d]->block_size() / record_size));
  }
  if (infos.empty()) return result;

  ShapeBuilder shape_builder(endpoints);
  const std::int32_t root =
      shape_builder.build(0, endpoints.size() - 1, infos);
  std::vector<ShapeNode>& shape = shape_builder.shape();

  // Write bricks device by device... no: brick by brick, striping records
  // round-robin. Records for one brick-stripe are encoded into a single
  // buffer and appended with one call, so preprocessing I/O is sequential
  // bulk writes on every disk.
  std::vector<std::vector<std::byte>> stripe_buffers(p);
  // `next_offset` is the *raw* cursor: uncompressed it is also the write
  // position; compressed it only numbers brick offsets while the separate
  // device cursor tracks where encoded bytes land. Appending compressed
  // data to stores that already hold compressed bytes requires the caller
  // to supply the raw ends (`raw_bases`) — the device size no longer
  // equals the raw end there.
  std::vector<std::uint64_t> next_offset(p);
  std::vector<std::uint64_t> device_cursor(p);
  std::vector<std::byte> encoded_stripe;
  std::vector<std::byte> chunk_scratch;
  for (std::size_t d = 0; d < p; ++d) {
    device_cursor[d] = devices[d]->size();
    next_offset[d] = (compress && !raw_bases.empty()) ? raw_bases[d]
                                                      : device_cursor[d];
  }
  // The round-robin cursor continues across bricks rather than restarting
  // at disk 0: with many metacells per brick this is the paper's striping,
  // and with small bricks it removes the systematic bias that restarting
  // would give the low-numbered disks (each brick still splits per-disk
  // within one metacell of even).
  std::size_t stripe_cursor = 0;

  for (auto& tree : result.trees) {
    tree.nodes_.resize(shape.size());
    tree.root_ = root;
  }

  for (std::size_t s = 0; s < shape.size(); ++s) {
    const ShapeNode& shape_node = shape[s];
    for (std::size_t d = 0; d < p; ++d) {
      CompactNode& node = result.trees[d].nodes_[s];
      node.split = shape_node.split;
      node.left = shape_node.left;
      node.right = shape_node.right;
      node.brick_begin =
          static_cast<std::uint32_t>(result.trees[d].bricks_.size());
    }

    for (std::size_t b = 0; b + 1 < shape_node.brick_start.size(); ++b) {
      const std::uint32_t begin = shape_node.brick_start[b];
      const std::uint32_t end = shape_node.brick_start[b + 1];
      if (begin == end) continue;
      ++result.bricks_written;

      for (auto& buffer : stripe_buffers) buffer.clear();
      std::vector<std::uint32_t> stripe_counts(p, 0);
      std::vector<core::ValueKey> stripe_min_vmin(p, 0);

      for (std::uint32_t i = begin; i < end; ++i) {
        const MetacellInfo& info = shape_node.metacells[i];
        const std::size_t d = (stripe_cursor + (i - begin)) % p;
        if (stripe_counts[d] == 0) stripe_min_vmin[d] = info.interval.vmin;
        source.encode(info.id, stripe_buffers[d]);
        ++stripe_counts[d];
        ++result.metacells_written;
      }
      stripe_cursor = (stripe_cursor + (end - begin)) % p;

      const core::ValueKey brick_vmax =
          shape_node.metacells[begin].interval.vmax;
      for (std::size_t d = 0; d < p; ++d) {
        if (stripe_counts[d] == 0) continue;  // empty stripe: no entry at all
        if (!compress) devices[d]->write(next_offset[d], stripe_buffers[d]);
        CompactIntervalTree& tree = result.trees[d];
        BrickEntry entry{brick_vmax, stripe_min_vmin[d], next_offset[d],
                         stripe_counts[d]};
        // Checksum the stripe chunk by chunk from the write buffer — the
        // CRCs cover exactly the *raw* bytes, so post-decode verification
        // under any codec checks against the same values.
        entry.crc_begin = static_cast<std::uint32_t>(tree.chunk_crcs_.size());
        const std::uint32_t chunk_records = tree.crc_chunk_records_;
        if (compress) encoded_stripe.clear();
        for (std::uint32_t r = 0; r < stripe_counts[d]; r += chunk_records) {
          const std::size_t chunk_bytes =
              static_cast<std::size_t>(
                  std::min(chunk_records, stripe_counts[d] - r)) *
              record_size;
          const auto raw_chunk =
              std::span(stripe_buffers[d])
                  .subspan(static_cast<std::size_t>(r) * record_size,
                           chunk_bytes);
          tree.chunk_crcs_.push_back(util::crc32(raw_chunk));
          if (compress) {
            const codec::Codec used =
                codec::encode_chunk(raw_chunk, record_size, chunk_scratch);
            tree.chunk_comp_sizes_.push_back(
                static_cast<std::uint32_t>(chunk_scratch.size()));
            tree.chunk_codecs_.push_back(static_cast<std::uint8_t>(used));
            encoded_stripe.insert(encoded_stripe.end(), chunk_scratch.begin(),
                                  chunk_scratch.end());
          }
        }
        if (compress) {
          // One bulk write of the whole encoded stripe keeps preprocessing
          // I/O sequential, same as the uncompressed path.
          devices[d]->write(device_cursor[d], encoded_stripe);
          device_cursor[d] += encoded_stripe.size();
          result.compressed_bytes_written += encoded_stripe.size();
        } else {
          result.compressed_bytes_written += stripe_buffers[d].size();
        }
        tree.bricks_.push_back(entry);
        tree.total_metacells_ += stripe_counts[d];
        next_offset[d] += stripe_buffers[d].size();
        result.bytes_written += stripe_buffers[d].size();
      }
    }

    for (std::size_t d = 0; d < p; ++d) {
      result.trees[d].nodes_[s].brick_end =
          static_cast<std::uint32_t>(result.trees[d].bricks_.size());
    }
  }

  // Replication pass. Runs strictly after every primary byte is on its
  // device, so primary offsets (and therefore every tree's bricks/CRCs and
  // all k=1 behavior) are placement-independent. Each stripe's bricks are
  // dense and offset-sorted (the write loop above appends them), so a group
  // of consecutive entries is one contiguous byte range that can be read
  // back and appended verbatim to its rendezvous-chosen holder devices.
  if (placement_config.replication > 1 && record_size > 0) {
    const placement::ReplicaMap map(placement_config);
    const std::size_t group_bricks = placement_config.group_bricks;
    // Compressed: replica copies are the verbatim encoded bytes, so reads
    // and appends happen in device space while each target's raw base comes
    // from a per-destination raw cursor that continues past the primaries.
    std::vector<std::uint64_t> replica_raw_cursor(next_offset.begin(),
                                                  next_offset.end());
    std::vector<std::vector<std::uint64_t>> device_prefix(p);
    if (compress) {
      for (std::size_t d = 0; d < p; ++d) {
        const std::vector<std::uint32_t>& comp_sizes =
            result.trees[d].chunk_comp_sizes_;
        device_prefix[d].resize(comp_sizes.size() + 1);
        device_prefix[d][0] = result.trees[d].device_base_;
        for (std::size_t c = 0; c < comp_sizes.size(); ++c) {
          device_prefix[d][c + 1] = device_prefix[d][c] + comp_sizes[c];
        }
      }
    }
    for (std::size_t d = 0; d < p; ++d) {
      CompactIntervalTree& tree = result.trees[d];
      const std::vector<BrickEntry>& bricks = tree.bricks_;
      std::vector<std::byte> buffer;
      for (std::size_t first = 0; first < bricks.size();
           first += group_bricks) {
        const std::size_t last =
            std::min(first + group_bricks, bricks.size()) - 1;
        ReplicaGroup group;
        group.begin = bricks[first].offset;
        group.end = bricks[last].offset +
                    static_cast<std::uint64_t>(bricks[last].count) *
                        record_size;
        std::uint64_t read_begin = group.begin;
        std::uint64_t read_end = group.end;
        if (compress) {
          const std::size_t chunk_begin = bricks[first].crc_begin;
          const std::size_t chunk_end =
              bricks[last].crc_begin +
              chunk_count(bricks[last].count, tree.crc_chunk_records_);
          read_begin = device_prefix[d][chunk_begin];
          read_end = device_prefix[d][chunk_end];
        }
        buffer.resize(read_end - read_begin);
        devices[d]->read(read_begin, buffer);
        const std::size_t g = first / group_bricks;
        for (const std::size_t node : map.replicas(d, g)) {
          const std::uint64_t base = devices[node]->append(buffer);
          ReplicaTarget target;
          target.node = static_cast<std::uint32_t>(node);
          if (compress) {
            target.base = replica_raw_cursor[node];
            target.device_base = base;
            replica_raw_cursor[node] += group.end - group.begin;
          } else {
            target.base = base;
            target.device_base = base;
          }
          group.targets.push_back(target);
          result.replica_bytes_written += buffer.size();
        }
        tree.replica_groups_.push_back(std::move(group));
      }
    }
  }

  // Hierarchy pass (v5). Runs strictly after every primary and replica byte
  // is on its device, so `--levels 1` (no pass at all) leaves device bytes
  // and serialized trees identical to a flat build, and a hierarchical
  // build's flat sections are byte-identical to its flat twin.
  if (levels > 1 && record_size > 0) {
    HierarchyBuildResult hierarchy =
        build_hierarchy(infos, source, devices, levels);
    for (std::size_t d = 0; d < p; ++d) {
      result.trees[d].hierarchy_ = std::move(hierarchy.per_device[d]);
    }
    result.hierarchy_nodes_written = hierarchy.nodes_written;
    result.hierarchy_bytes_written = hierarchy.bytes_written;
  }

  for (io::BlockDevice* device : devices) device->flush();
  return result;
}

}  // namespace oociso::index
