#include "index/plan_scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace oociso::index {
namespace {

/// Number of CRC chunks a brick of `count` records splits into.
std::uint64_t chunk_count(std::uint64_t count, std::size_t chunk_records) {
  return chunk_records == 0 ? 0 : (count + chunk_records - 1) / chunk_records;
}

/// A run member before packing: a whole planned scan or a whole gap brick.
struct RunPiece {
  std::int32_t scan_index = -1;
  std::uint64_t offset = 0;
  std::uint32_t record_count = 0;
  std::span<const std::uint32_t> chunk_crcs{};
};

/// Packs one densely-tiled run of pieces into reads of whole per-brick
/// chunks, splitting whenever the next chunk would push a non-empty read
/// past `max_read_records`.
class ReadPacker {
 public:
  ReadPacker(const ScheduleParams& params, ScheduledPlan& out)
      : params_(params), out_(out) {}

  void pack_run(std::span<const RunPiece> run) {
    for (const RunPiece& piece : run) {
      std::uint32_t done = 0;
      while (done < piece.record_count) {
        const auto chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(params_.chunk_records,
                                    piece.record_count - done));
        if (read_.record_count > 0 &&
            read_.record_count + chunk > params_.max_read_records) {
          flush();
        }
        if (read_.slices.empty()) {
          read_.offset = piece.offset +
                         static_cast<std::uint64_t>(done) * params_.record_size;
        }
        append_chunk(piece, done, chunk);
        done += chunk;
      }
    }
    flush();
  }

 private:
  void append_chunk(const RunPiece& piece, std::uint32_t first,
                    std::uint32_t count) {
    if (!read_.slices.empty()) {
      ReadSlice& last = read_.slices.back();
      if (last.scan_index == piece.scan_index &&
          last.chunk_crcs.data() == piece.chunk_crcs.data() &&
          last.first_record + last.record_count == first) {
        last.record_count += count;
        read_.record_count += count;
        return;
      }
    }
    ReadSlice slice;
    slice.scan_index = piece.scan_index;
    slice.first_record = first;
    slice.record_count = count;
    slice.brick_records = piece.record_count;
    slice.chunk_crcs = piece.chunk_crcs;
    read_.slices.push_back(slice);
    read_.record_count += count;
  }

  void flush() {
    if (read_.slices.empty()) return;
    ScheduledItem item;
    item.read = std::move(read_);
    out_.items.push_back(std::move(item));
    ++out_.sequential_reads;
    read_ = ScheduledRead{};
  }

  const ScheduleParams& params_;
  ScheduledPlan& out_;
  ScheduledRead read_;
};

/// Sorted view of the directory for gap resolution.
class GapResolver {
 public:
  GapResolver(const BrickDirectory& directory, const ScheduleParams& params)
      : directory_(directory), params_(params) {
    order_.reserve(directory.bricks.size());
    for (std::size_t i = 0; i < directory.bricks.size(); ++i) {
      order_.push_back(static_cast<std::uint32_t>(i));
    }
    std::sort(order_.begin(), order_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return directory.bricks[a].offset < directory.bricks[b].offset;
              });
  }

  /// Tiles [offset, offset + bytes) with whole directory bricks. Returns
  /// false (leaving `out` untouched) when the region is not exactly covered.
  bool resolve(std::uint64_t offset, std::uint64_t bytes,
               std::vector<RunPiece>& out) const {
    const std::size_t before = out.size();
    auto it = std::lower_bound(
        order_.begin(), order_.end(), offset,
        [&](std::uint32_t i, std::uint64_t value) {
          return directory_.bricks[i].offset < value;
        });
    std::uint64_t cursor = offset;
    const std::uint64_t end = offset + bytes;
    while (cursor < end) {
      if (it == order_.end() || directory_.bricks[*it].offset != cursor) {
        out.resize(before);
        return false;
      }
      const BrickEntry& brick = directory_.bricks[*it];
      RunPiece piece;
      piece.scan_index = -1;
      piece.offset = brick.offset;
      piece.record_count = brick.count;
      const std::uint64_t chunks =
          chunk_count(brick.count, params_.chunk_records);
      if (brick.crc_begin + chunks > directory_.chunk_crcs.size()) {
        out.resize(before);
        return false;
      }
      piece.chunk_crcs = directory_.chunk_crcs.subspan(
          brick.crc_begin, static_cast<std::size_t>(chunks));
      out.push_back(piece);
      cursor += static_cast<std::uint64_t>(brick.count) * params_.record_size;
      ++it;
    }
    return cursor == end;
  }

 private:
  const BrickDirectory& directory_;
  const ScheduleParams& params_;
  std::vector<std::uint32_t> order_;
};

RunPiece piece_of_scan(const QueryPlan& plan, std::size_t scan_index) {
  const BrickScan& scan = plan.scans[scan_index];
  RunPiece piece;
  piece.scan_index = static_cast<std::int32_t>(scan_index);
  piece.offset = scan.offset;
  piece.record_count = scan.metacell_count;
  piece.chunk_crcs = scan.chunk_crcs;
  return piece;
}

}  // namespace

ScheduledPlan schedule_plan(const QueryPlan& plan,
                            const ScheduleParams& params,
                            const BrickDirectory& directory) {
  ScheduledPlan out;
  if (plan.scans.empty()) return out;
  if (params.record_size == 0 || params.chunk_records == 0 ||
      params.max_read_records < params.chunk_records) {
    throw std::logic_error("schedule_plan: bad packing parameters");
  }

  // Plans are single-level, so every emitted read inherits the plan's
  // hierarchy level — the tag refinement dispatch orders batches by.
  const auto tag_levels = [&out, &plan] {
    for (ScheduledItem& item : out.items) item.read.level = plan.level;
  };

  if (!params.coalesce) {
    // Legacy order: one brick at a time, exactly as planned.
    ReadPacker packer(params, out);
    for (std::size_t s = 0; s < plan.scans.size(); ++s) {
      if (plan.scans[s].full) {
        const RunPiece piece = piece_of_scan(plan, s);
        packer.pack_run({&piece, 1});
      } else {
        ScheduledItem item;
        item.prefix_scan = static_cast<std::int32_t>(s);
        out.items.push_back(std::move(item));
      }
    }
    tag_levels();
    return out;
  }

  std::vector<std::size_t> fulls;
  std::vector<std::size_t> prefixes;
  for (std::size_t s = 0; s < plan.scans.size(); ++s) {
    (plan.scans[s].full ? fulls : prefixes).push_back(s);
  }
  const auto by_offset = [&](std::size_t a, std::size_t b) {
    return plan.scans[a].offset != plan.scans[b].offset
               ? plan.scans[a].offset < plan.scans[b].offset
               : a < b;
  };
  std::sort(fulls.begin(), fulls.end(), by_offset);
  std::sort(prefixes.begin(), prefixes.end(), by_offset);

  const GapResolver resolver(directory, params);
  ReadPacker packer(params, out);
  std::vector<RunPiece> run;
  std::uint64_t run_end = 0;
  std::size_t run_scans = 0;
  const auto flush_run = [&] {
    if (run.empty()) return;
    if (run_scans > 1) out.coalesced_scans += run_scans;
    packer.pack_run(run);
    run.clear();
    run_scans = 0;
  };

  std::size_t next_prefix = 0;
  const auto emit_prefixes_before = [&](std::uint64_t offset) {
    // Keep the schedule monotone on disk: a Case-2 brick sitting before the
    // next full brick is galloped in place (flushing the run) rather than
    // deferred to a backward-seeking second pass.
    while (next_prefix < prefixes.size() &&
           plan.scans[prefixes[next_prefix]].offset < offset) {
      flush_run();
      ScheduledItem item;
      item.prefix_scan = static_cast<std::int32_t>(prefixes[next_prefix]);
      out.items.push_back(std::move(item));
      ++next_prefix;
    }
  };

  for (const std::size_t s : fulls) {
    const BrickScan& scan = plan.scans[s];
    emit_prefixes_before(scan.offset);
    if (!run.empty()) {
      bool joined = false;
      // Replicated layouts route whole reads to alternate holders, so a
      // run must never straddle a placement-group boundary: the bytes on
      // either side may live on different replica sets.
      const bool same_group =
          !directory.replicas.active() ||
          directory.replicas.group_of(run_end - 1) ==
              directory.replicas.group_of(scan.offset);
      if (same_group && scan.offset >= run_end) {
        const std::uint64_t gap = scan.offset - run_end;
        // Under a compressed store the bytes a bridged gap actually moves
        // off the platter are the *encoded* ones; budget those instead of
        // the raw gap (which still governs record tiling below).
        const std::uint64_t budget_gap =
            directory.chunk_map != nullptr
                ? directory.chunk_map->device_position(scan.offset) -
                      directory.chunk_map->device_position(run_end)
                : gap;
        if (gap == 0) {
          joined = true;
        } else if (budget_gap <= params.max_gap_bytes &&
                   gap % params.record_size == 0) {
          // Bridge the gap with the unplanned bricks occupying it; when
          // verification needs CRC cover and the directory cannot supply
          // it, fall through and break the run instead.
          const std::size_t before = run.size();
          if (resolver.resolve(run_end, gap, run)) {
            out.bridged_gap_bytes += gap;
            joined = true;
          } else if (!params.require_crc_cover) {
            run.resize(before);
            RunPiece filler;
            filler.scan_index = -1;
            filler.offset = run_end;
            filler.record_count =
                static_cast<std::uint32_t>(gap / params.record_size);
            run.push_back(filler);
            out.bridged_gap_bytes += gap;
            joined = true;
          }
        }
      }
      if (!joined) flush_run();
    }
    run.push_back(piece_of_scan(plan, s));
    ++run_scans;
    run_end = scan.offset +
              static_cast<std::uint64_t>(scan.metacell_count) *
                  params.record_size;
  }
  flush_run();

  while (next_prefix < prefixes.size()) {
    ScheduledItem item;
    item.prefix_scan = static_cast<std::int32_t>(prefixes[next_prefix]);
    out.items.push_back(std::move(item));
    ++next_prefix;
  }
  tag_levels();
  return out;
}

}  // namespace oociso::index
