#pragma once
// ISSUE-style span-space lattice (Shen, Hansen, Livnat, Johnson 1996) —
// the classic in-core span-space search baseline the paper builds on.
//
// Span space is partitioned into an L x L lattice of buckets over the value
// range; interval (vmin, vmax) lands in bucket (col(vmin), row(vmax)). For
// isovalue lambda in bucket q: buckets with col < q and row > q are wholly
// active (reported without per-interval tests); the boundary column q and
// boundary row q must be examined interval by interval.

#include <cstdint>
#include <vector>

#include "core/interval.h"
#include "metacell/metacell.h"

namespace oociso::index {

class SpanSpaceLattice {
 public:
  struct QueryCounters {
    std::uint64_t reported = 0;   ///< active intervals returned
    std::uint64_t examined = 0;   ///< intervals individually tested
    std::uint64_t buckets_touched = 0;
  };

  /// `resolution` is L; the value range is taken from the data.
  SpanSpaceLattice(const std::vector<metacell::MetacellInfo>& infos,
                   std::uint32_t resolution = 64);

  [[nodiscard]] std::vector<std::uint32_t> query(core::ValueKey isovalue,
                                                 QueryCounters* counters =
                                                     nullptr) const;

  [[nodiscard]] std::size_t interval_count() const { return interval_count_; }
  [[nodiscard]] std::uint32_t resolution() const { return resolution_; }
  [[nodiscard]] std::size_t size_bytes() const;

 private:
  [[nodiscard]] std::uint32_t bucket_of(core::ValueKey value) const;
  [[nodiscard]] const std::vector<metacell::MetacellInfo>& bucket(
      std::uint32_t col, std::uint32_t row) const {
    return buckets_[static_cast<std::size_t>(row) * resolution_ + col];
  }

  std::uint32_t resolution_;
  core::ValueKey lo_ = 0;
  core::ValueKey hi_ = 1;
  std::size_t interval_count_ = 0;
  std::vector<std::vector<metacell::MetacellInfo>> buckets_;
};

}  // namespace oociso::index
