#include "index/bbio_tree.h"

#include <algorithm>
#include <stdexcept>

namespace oociso::index {
namespace {

std::span<const std::byte> as_bytes(const std::vector<BbioTree::ListEntry>& v) {
  return {reinterpret_cast<const std::byte*>(v.data()),
          v.size() * sizeof(BbioTree::ListEntry)};
}

}  // namespace

BbioTree::BbioTree(const std::vector<metacell::MetacellInfo>& infos,
                   io::BlockDevice& index_device) {
  interval_count_ = infos.size();
  if (infos.empty()) return;

  std::vector<core::ValueKey> endpoints;
  endpoints.reserve(infos.size() * 2);
  for (const auto& info : infos) {
    endpoints.push_back(info.interval.vmin);
    endpoints.push_back(info.interval.vmax);
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());

  root_ = build(0, endpoints.size() - 1, infos, endpoints, index_device);
  index_device.flush();
}

std::int32_t BbioTree::build(std::size_t lo, std::size_t hi,
                             std::vector<metacell::MetacellInfo> items,
                             const std::vector<core::ValueKey>& endpoints,
                             io::BlockDevice& index_device) {
  if (items.empty()) return -1;
  const std::size_t mid = lo + (hi - lo) / 2;
  const core::ValueKey split = endpoints[mid];

  std::vector<metacell::MetacellInfo> left_items;
  std::vector<metacell::MetacellInfo> right_items;
  std::vector<ListEntry> by_vmin;
  std::vector<ListEntry> by_vmax;
  for (const auto& info : items) {
    if (info.interval.vmax < split) {
      left_items.push_back(info);
    } else if (info.interval.vmin > split) {
      right_items.push_back(info);
    } else {
      by_vmin.push_back({info.interval.vmin, info.id});
      by_vmax.push_back({info.interval.vmax, info.id});
    }
  }
  items.clear();
  items.shrink_to_fit();

  std::sort(by_vmin.begin(), by_vmin.end(),
            [](const ListEntry& a, const ListEntry& b) {
              return a.key != b.key ? a.key < b.key : a.id < b.id;
            });
  std::sort(by_vmax.begin(), by_vmax.end(),
            [](const ListEntry& a, const ListEntry& b) {
              return a.key != b.key ? a.key > b.key : a.id < b.id;
            });

  Node node;
  node.split = split;
  node.count = static_cast<std::uint32_t>(by_vmin.size());
  node.vmin_list_offset = index_device.append(as_bytes(by_vmin));
  node.vmax_list_offset = index_device.append(as_bytes(by_vmax));
  on_disk_bytes_ += 2 * by_vmin.size() * sizeof(ListEntry);

  const auto index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node);
  const std::int32_t left =
      mid > lo ? build(lo, mid - 1, std::move(left_items), endpoints,
                       index_device)
               : -1;
  const std::int32_t right =
      mid < hi ? build(mid + 1, hi, std::move(right_items), endpoints,
                       index_device)
               : -1;
  nodes_[static_cast<std::size_t>(index)].left = left;
  nodes_[static_cast<std::size_t>(index)].right = right;
  return index;
}

std::vector<std::uint32_t> BbioTree::query(core::ValueKey isovalue,
                                           io::BlockDevice& index_device,
                                           QueryStats* stats) const {
  std::vector<std::uint32_t> ids;
  QueryStats local;
  // Entries are fetched from the device in batches of a few blocks, exactly
  // like a block-paged list traversal.
  const std::size_t batch =
      std::max<std::size_t>(1, index_device.block_size() / sizeof(ListEntry));
  std::vector<ListEntry> buffer(batch);

  auto scan_list = [&](std::uint64_t offset, std::uint32_t count,
                       auto&& qualifies) {
    std::uint32_t done = 0;
    while (done < count) {
      const auto want = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          batch, count - done));
      index_device.read(offset + done * sizeof(ListEntry),
                        {reinterpret_cast<std::byte*>(buffer.data()),
                         want * sizeof(ListEntry)});
      for (std::uint32_t i = 0; i < want; ++i) {
        ++local.index_entries_read;
        if (!qualifies(buffer[i].key)) return;
        ids.push_back(buffer[i].id);
      }
      done += want;
    }
  };

  std::int32_t current = root_;
  while (current >= 0) {
    const Node& node = nodes_[static_cast<std::size_t>(current)];
    if (isovalue < node.split) {
      scan_list(node.vmin_list_offset, node.count,
                [isovalue](core::ValueKey key) { return key <= isovalue; });
      current = node.left;
    } else if (isovalue > node.split) {
      scan_list(node.vmax_list_offset, node.count,
                [isovalue](core::ValueKey key) { return key >= isovalue; });
      current = node.right;
    } else {
      scan_list(node.vmin_list_offset, node.count,
                [](core::ValueKey) { return true; });
      break;
    }
  }
  local.active_metacells = ids.size();
  if (stats != nullptr) *stats = local;
  return ids;
}

// ---------------------------------------------------------------------------
// IdOrderStore
// ---------------------------------------------------------------------------

IdOrderStore::IdOrderStore(const std::vector<metacell::MetacellInfo>& infos,
                           const metacell::MetacellSource& source,
                           io::BlockDevice& device)
    : record_size_(source.record_size()), base_offset_(device.size()) {
  ids_.reserve(infos.size());
  for (const auto& info : infos) ids_.push_back(info.id);
  std::sort(ids_.begin(), ids_.end());

  std::vector<std::byte> buffer;
  constexpr std::size_t kFlushBytes = 1 << 20;
  for (const std::uint32_t id : ids_) {
    source.encode(id, buffer);
    if (buffer.size() >= kFlushBytes) {
      device.append(buffer);
      buffer.clear();
    }
  }
  if (!buffer.empty()) device.append(buffer);
  device.flush();
}

std::size_t IdOrderStore::slot_of(std::uint32_t id) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) {
    throw std::out_of_range("IdOrderStore: unknown metacell id");
  }
  return static_cast<std::size_t>(it - ids_.begin());
}

void IdOrderStore::read(
    std::vector<std::uint32_t> ids, io::BlockDevice& device,
    const std::function<void(std::span<const std::byte>)>& callback) const {
  // Sorting gives the store its best case: monotone (though still gappy)
  // offsets instead of random ones.
  std::sort(ids.begin(), ids.end());
  std::vector<std::byte> record(record_size_);
  for (const std::uint32_t id : ids) {
    const std::uint64_t offset =
        base_offset_ + slot_of(id) * record_size_;
    device.read(offset, record);
    callback(record);
  }
}

}  // namespace oociso::index
