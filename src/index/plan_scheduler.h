#pragma once
// Plan-aware I/O scheduling for QueryPlan brick scans.
//
// The tree's planner emits scans in root-to-leaf order, which is value
// order, not disk order: executing them directly costs one read (and often
// one seek) per brick even when the bricks sit millimeters apart on the
// platter. The scheduler turns a plan into the cheapest read sequence the
// device model admits:
//
//   * Case-1 (full-brick) scans are sorted by device offset and runs whose
//     byte gaps fit a readahead-sized window are *coalesced* into single
//     large reads — one BlockDevice::read covering several bricks, so
//     IoStats::read_ops and seeks drop to one per run instead of one per
//     brick. The bytes bridged inside a gap are whole *unplanned* bricks
//     (the brick layout is densely packed); they are read, verified when
//     checksums demand it, and discarded — never surfaced as records.
//   * Case-2 (galloping prefix) scans cannot be pre-sized — their extent
//     depends on record contents — so they are left as prefix items,
//     merged into the sweep at their disk position so the whole schedule
//     stays offset-monotone (one forward pass, no second-pass seeks).
//
// Checksums. Reads are packed from whole per-brick CRC chunks: a read
// starts and splits only on chunk boundaries of the brick it lands in, so
// every transferred byte is coverable by the plan's (or the directory's)
// CRC32s and the stream can verify a transfer before consuming any of it.
// When verification is required and a gap cannot be exactly tiled by
// directory bricks, the run is broken at that gap instead of bridging it —
// coalescing never widens the undetected-corruption surface.
//
// With `coalesce = false` the scheduler reproduces the legacy per-brick
// execution exactly (plan order, one brick per read sequence), which is
// the A/B baseline the equivalence tests and the seek/read_op measurements
// compare against.

#include <cstdint>
#include <span>
#include <vector>

#include "index/compact_interval_tree.h"

namespace oociso::index {

/// In-core brick directory of the index the plan was walked from. Lets the
/// scheduler resolve the bytes *between* two planned bricks into the
/// unplanned bricks occupying them (the layout is densely packed), so a
/// bridged gap stays CRC-verifiable. Both spans view the owning tree and
/// must outlive the schedule.
struct BrickDirectory {
  std::span<const BrickEntry> bricks{};
  std::span<const std::uint32_t> chunk_crcs{};
  /// Replica placement view of the owning tree. When active, the scheduler
  /// never coalesces across a placement-group boundary — every emitted read
  /// then lies inside one group and can be served whole by any of that
  /// group's holders (see RetrievalStream routing). Inactive (the default)
  /// leaves schedules bit-identical to the unreplicated layout.
  ReplicaDirectory replicas{};
  /// Raw↔device translation of a compressed (v4) store. When set, the
  /// coalescing gap budget is measured in *device* (encoded) bytes — what
  /// a bridged gap actually costs on the platter — while everything else
  /// (offsets, slices, CRC tiling) stays in raw space. Null for
  /// uncompressed stores, where raw and device bytes coincide. Must be
  /// finalized and outlive the schedule.
  const codec::ChunkMap* chunk_map = nullptr;
};

struct ScheduleParams {
  std::size_t record_size = 0;
  /// Records per checksummed chunk — the atomic packing unit. Reads begin
  /// and split only on per-brick multiples of this.
  std::size_t chunk_records = 1;
  /// Cap on records per sequential read (coalesced or not); always at
  /// least one chunk.
  std::size_t max_read_records = 1;
  /// Largest byte gap a coalesced read may bridge. 0 restricts coalescing
  /// to exactly adjacent bricks.
  std::uint64_t max_gap_bytes = 0;
  /// Sort full scans by offset and merge near-contiguous runs. When false
  /// the plan executes brick by brick in plan order (legacy behavior).
  bool coalesce = true;
  /// Gap bytes must be CRC-coverable via the directory (set when the plan
  /// carries checksums and the stream verifies them); a gap that cannot be
  /// tiled by directory bricks breaks the run instead of being bridged.
  bool require_crc_cover = false;
};

/// One contiguous piece of a scheduled read: a (part of a) planned brick
/// scan, or a whole unplanned gap brick that is verified and discarded.
struct ReadSlice {
  std::int32_t scan_index = -1;    ///< into plan.scans; -1 = gap filler
  std::uint64_t first_record = 0;  ///< within the owning brick (chunk-aligned)
  std::uint32_t record_count = 0;
  std::uint32_t brick_records = 0;  ///< owning brick's total (ragged chunks)
  /// The owning brick's chunk CRC32s; empty when unknown (then the slice
  /// cannot be verified — the scheduler only emits that for unchecksummed
  /// plans or with require_crc_cover off).
  std::span<const std::uint32_t> chunk_crcs{};
};

/// One BlockDevice::read: `record_count * record_size` bytes at `offset`,
/// densely tiled by `slices` in offset order.
struct ScheduledRead {
  std::uint64_t offset = 0;
  std::uint64_t record_count = 0;
  std::vector<ReadSlice> slices;
  /// Hierarchy level of the plan the read came from (plans are
  /// single-level), so downstream dispatch can order refinement batches
  /// coarse-first. 0 = full resolution.
  std::int32_t level = 0;
};

/// Either a pre-packed sequential read or a Case-2 prefix scan left to the
/// stream's galloping executor.
struct ScheduledItem {
  std::int32_t prefix_scan = -1;  ///< plan scan index; -1 means `read`
  ScheduledRead read;

  [[nodiscard]] bool is_prefix() const { return prefix_scan >= 0; }
};

struct ScheduledPlan {
  std::vector<ScheduledItem> items;
  // Scheduling outcome counters (diagnostics; not part of QueryStats).
  std::uint64_t sequential_reads = 0;  ///< pre-packed reads emitted
  std::uint64_t coalesced_scans = 0;   ///< full scans sharing a read with another
  std::uint64_t bridged_gap_bytes = 0; ///< gap bytes read only to be discarded
};

/// Schedules `plan` for execution. `params.record_size` must be non-zero
/// when the plan has scans. The returned slices view `directory.chunk_crcs`
/// and the plan's own scan CRC spans; the index structures must outlive
/// the schedule.
[[nodiscard]] ScheduledPlan schedule_plan(const QueryPlan& plan,
                                          const ScheduleParams& params,
                                          const BrickDirectory& directory = {});

}  // namespace oociso::index
