#include "index/external_tree.h"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>

#include "io/serial.h"

namespace oociso::index {
namespace {

constexpr std::uint32_t kNoBlock = 0xFFFFFFFF;

struct Ref {
  std::uint32_t block = kNoBlock;
  std::uint16_t slot = 0;
};

/// Deserialized node of one index block.
struct ParsedNode {
  core::ValueKey split = 0;
  Ref left;
  Ref right;
  std::vector<BrickEntry> bricks;
};

/// Serialized node size: split + 2 child refs + brick count + bricks.
std::size_t node_bytes(std::size_t brick_count) {
  return sizeof(float) + 2 * (sizeof(std::uint32_t) + sizeof(std::uint16_t)) +
         sizeof(std::uint32_t) + brick_count * sizeof(BrickEntry);
}

std::vector<ParsedNode> parse_block(std::span<const std::byte> bytes) {
  io::ByteReader reader(bytes);
  const auto count = reader.get<std::uint32_t>();
  std::vector<ParsedNode> nodes;
  nodes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ParsedNode node;
    node.split = reader.get<float>();
    node.left.block = reader.get<std::uint32_t>();
    node.left.slot = reader.get<std::uint16_t>();
    node.right.block = reader.get<std::uint32_t>();
    node.right.slot = reader.get<std::uint16_t>();
    const auto brick_count = reader.get<std::uint32_t>();
    node.bricks.reserve(brick_count);
    for (std::uint32_t b = 0; b < brick_count; ++b) {
      node.bricks.push_back(reader.get<BrickEntry>());
    }
    nodes.push_back(std::move(node));
  }
  return nodes;
}

}  // namespace

// ---------------------------------------------------------------------------
// Build
// ---------------------------------------------------------------------------

ExternalCompactTree ExternalCompactTree::build(const CompactIntervalTree& tree,
                                               io::BlockDevice& device,
                                               std::uint32_t block_bytes) {
  if (block_bytes < 64) {
    throw std::invalid_argument("ExternalCompactTree: block too small");
  }
  ExternalCompactTree external;
  external.block_bytes_ = block_bytes;
  external.kind_ = tree.scalar_kind();
  external.record_size_ = tree.record_size();
  external.base_offset_ = device.size();
  if (tree.root() < 0) return external;
  external.empty_ = false;

  const auto& nodes = tree.nodes();
  const auto& bricks = tree.bricks();
  auto brick_count_of = [&](std::int32_t n) {
    const CompactNode& node = nodes[static_cast<std::size_t>(n)];
    return static_cast<std::size_t>(node.brick_end - node.brick_begin);
  };

  // Phase 1: greedy BFS packing of tree nodes into blocks.
  struct BlockPlan {
    std::vector<std::int32_t> members;  // tree-node ids, slot == index
  };
  std::vector<BlockPlan> blocks;
  std::map<std::int32_t, Ref> placement;  // tree node -> (block, slot)
  std::uint32_t max_depth = 0;

  // Iterative recursion over (subtree root, block depth).
  std::vector<std::pair<std::int32_t, std::uint32_t>> pending{{tree.root(), 1}};
  while (!pending.empty()) {
    const auto [subtree_root, depth] = pending.back();
    pending.pop_back();
    max_depth = std::max(max_depth, depth);

    const auto block_id = static_cast<std::uint32_t>(blocks.size());
    blocks.emplace_back();
    BlockPlan& block = blocks.back();
    std::size_t used = sizeof(std::uint32_t);  // node-count header

    std::deque<std::int32_t> frontier{subtree_root};
    while (!frontier.empty()) {
      const std::int32_t n = frontier.front();
      const std::size_t cost = node_bytes(brick_count_of(n));
      // The block takes the node if it fits, or if the block is still empty
      // (an oversized node gets a block of its own, padded up).
      if (used + cost > block_bytes && !block.members.empty()) break;
      if (block.members.size() >= 0xFFFF) break;  // slot index is 16-bit
      frontier.pop_front();
      placement[n] = Ref{block_id,
                         static_cast<std::uint16_t>(block.members.size())};
      block.members.push_back(n);
      used += cost;
      const CompactNode& node = nodes[static_cast<std::size_t>(n)];
      if (node.left >= 0) frontier.push_back(node.left);
      if (node.right >= 0) frontier.push_back(node.right);
    }
    // Whatever remains in the frontier roots its own block one level down
    // (children are only enqueued when their parent is placed, so every
    // leftover node's parent lives in this block).
    for (const std::int32_t overflow : frontier) {
      pending.emplace_back(overflow, depth + 1);
    }
  }

  // Phase 2: serialize blocks (padded to a block_bytes multiple) and append.
  std::vector<std::byte> buffer;
  std::uint64_t written = 0;
  for (const BlockPlan& block : blocks) {
    buffer.clear();
    io::ByteWriter writer(buffer);
    writer.put(static_cast<std::uint32_t>(block.members.size()));
    for (const std::int32_t n : block.members) {
      const CompactNode& node = nodes[static_cast<std::size_t>(n)];
      writer.put(node.split);
      const Ref left =
          node.left >= 0 ? placement.at(node.left) : Ref{kNoBlock, 0};
      const Ref right =
          node.right >= 0 ? placement.at(node.right) : Ref{kNoBlock, 0};
      writer.put(left.block);
      writer.put(left.slot);
      writer.put(right.block);
      writer.put(right.slot);
      writer.put(node.brick_end - node.brick_begin);
      for (std::uint32_t b = node.brick_begin; b < node.brick_end; ++b) {
        writer.put(bricks[b]);
      }
    }
    // Pad to the block size (oversized nodes round up to a multiple).
    const std::size_t padded =
        (buffer.size() + block_bytes - 1) / block_bytes * block_bytes;
    buffer.resize(padded);
    device.write(external.base_offset_ + written, buffer);
    external.block_offsets_.push_back(external.base_offset_ + written);
    written += padded;
  }
  device.flush();

  external.root_block_ = 0;
  external.stats_.blocks = static_cast<std::uint32_t>(blocks.size());
  external.stats_.bytes_written = written;
  external.stats_.max_block_depth = max_depth;
  return external;
}

// ---------------------------------------------------------------------------
// Query walk
// ---------------------------------------------------------------------------

template <typename ReadFn>
QueryPlan ExternalCompactTree::walk(core::ValueKey isovalue,
                                    ReadFn&& read_block,
                                    std::uint64_t* blocks_read) const {
  QueryPlan plan;
  plan.isovalue = isovalue;
  std::uint64_t fetches = 0;
  if (empty_) {
    if (blocks_read != nullptr) *blocks_read = 0;
    return plan;
  }

  std::uint32_t current_block = root_block_;
  std::vector<ParsedNode> nodes = read_block(current_block);
  ++fetches;
  std::uint16_t slot = 0;

  for (;;) {
    const ParsedNode& node = nodes[slot];
    ++plan.nodes_visited;
    Ref next;
    if (isovalue > node.split) {
      for (const BrickEntry& brick : node.bricks) {
        if (brick.vmax < isovalue) break;
        plan.scans.push_back(BrickScan{brick.offset, brick.count, true});
      }
      next = node.right;
    } else if (isovalue < node.split) {
      for (const BrickEntry& brick : node.bricks) {
        if (brick.min_vmin > isovalue) continue;
        plan.scans.push_back(BrickScan{brick.offset, brick.count, false});
      }
      next = node.left;
    } else {
      for (const BrickEntry& brick : node.bricks) {
        plan.scans.push_back(BrickScan{brick.offset, brick.count, true});
      }
      break;
    }
    if (next.block == kNoBlock) break;
    if (next.block != current_block) {
      current_block = next.block;
      nodes = read_block(current_block);
      ++fetches;
    }
    slot = next.slot;
  }
  if (blocks_read != nullptr) *blocks_read = fetches;
  return plan;
}

QueryPlan ExternalCompactTree::plan(core::ValueKey isovalue,
                                    io::BlockDevice& device,
                                    std::uint64_t* blocks_read) const {
  std::vector<std::byte> buffer(block_bytes_);
  return walk(
      isovalue,
      [&](std::uint32_t block) {
        const std::uint64_t offset = block_offsets_.at(block);
        const std::uint64_t end = block + 1 < block_offsets_.size()
                                      ? block_offsets_[block + 1]
                                      : base_offset_ + stats_.bytes_written;
        buffer.resize(static_cast<std::size_t>(end - offset));
        device.read(offset, buffer);
        return parse_block(buffer);
      },
      blocks_read);
}

RetrievalStream ExternalCompactTree::open_stream(
    core::ValueKey isovalue, io::BlockDevice& index_device,
    io::BlockDevice& brick_device, std::uint64_t* blocks_read) const {
  return RetrievalStream(plan(isovalue, index_device, blocks_read), kind_,
                         record_size_, brick_device);
}

RetrievalStream ExternalCompactTree::open_stream(
    core::ValueKey isovalue, io::BufferPool& index_pool,
    io::BlockDevice& brick_device, std::uint64_t* blocks_read) const {
  return RetrievalStream(plan(isovalue, index_pool, blocks_read), kind_,
                         record_size_, brick_device);
}

QueryPlan ExternalCompactTree::plan(core::ValueKey isovalue,
                                    io::BufferPool& pool,
                                    std::uint64_t* blocks_read) const {
  std::vector<std::byte> buffer(block_bytes_);
  return walk(
      isovalue,
      [&](std::uint32_t block) {
        const std::uint64_t offset = block_offsets_.at(block);
        const std::uint64_t end = block + 1 < block_offsets_.size()
                                      ? block_offsets_[block + 1]
                                      : base_offset_ + stats_.bytes_written;
        buffer.resize(static_cast<std::size_t>(end - offset));
        pool.read(offset, buffer);
        return parse_block(buffer);
      },
      blocks_read);
}

}  // namespace oociso::index
