#include "index/interval_tree.h"

#include <algorithm>

namespace oociso::index {

IntervalTree::IntervalTree(const std::vector<metacell::MetacellInfo>& infos,
                           std::size_t record_size) {
  record_size_ = record_size;
  interval_count_ = infos.size();
  if (infos.empty()) return;

  std::vector<core::ValueKey> endpoints;
  endpoints.reserve(infos.size() * 2);
  for (const auto& info : infos) {
    endpoints.push_back(info.interval.vmin);
    endpoints.push_back(info.interval.vmax);
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());

  root_ = build(0, endpoints.size() - 1, infos, endpoints);
}

std::int32_t IntervalTree::build(std::size_t lo, std::size_t hi,
                                 std::vector<metacell::MetacellInfo> items,
                                 const std::vector<core::ValueKey>& endpoints) {
  if (items.empty()) return -1;
  const std::size_t mid = lo + (hi - lo) / 2;
  const core::ValueKey split = endpoints[mid];

  Node node;
  node.split = split;
  std::vector<metacell::MetacellInfo> left_items;
  std::vector<metacell::MetacellInfo> right_items;
  for (const auto& info : items) {
    if (info.interval.vmax < split) {
      left_items.push_back(info);
    } else if (info.interval.vmin > split) {
      right_items.push_back(info);
    } else {
      const std::uint64_t offset = info.id * record_size_;
      node.by_vmin.push_back({info.interval, info.id, offset});
      node.by_vmax.push_back({info.interval, info.id, offset});
    }
  }
  items.clear();
  items.shrink_to_fit();

  std::sort(node.by_vmin.begin(), node.by_vmin.end(),
            [](const ListEntry& a, const ListEntry& b) {
              return a.interval.vmin != b.interval.vmin
                         ? a.interval.vmin < b.interval.vmin
                         : a.id < b.id;
            });
  std::sort(node.by_vmax.begin(), node.by_vmax.end(),
            [](const ListEntry& a, const ListEntry& b) {
              return a.interval.vmax != b.interval.vmax
                         ? a.interval.vmax > b.interval.vmax
                         : a.id < b.id;
            });

  const auto index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  const std::int32_t left =
      mid > lo ? build(lo, mid - 1, std::move(left_items), endpoints) : -1;
  const std::int32_t right =
      mid < hi ? build(mid + 1, hi, std::move(right_items), endpoints) : -1;
  nodes_[static_cast<std::size_t>(index)].left = left;
  nodes_[static_cast<std::size_t>(index)].right = right;
  return index;
}

std::vector<std::uint32_t> IntervalTree::query(core::ValueKey isovalue) const {
  std::vector<std::uint32_t> ids;
  last_entries_examined_ = 0;
  std::int32_t current = root_;
  while (current >= 0) {
    const Node& node = nodes_[static_cast<std::size_t>(current)];
    if (isovalue < node.split) {
      for (const ListEntry& entry : node.by_vmin) {
        ++last_entries_examined_;
        if (entry.interval.vmin > isovalue) break;
        ids.push_back(entry.id);
      }
      current = node.left;
    } else if (isovalue > node.split) {
      for (const ListEntry& entry : node.by_vmax) {
        ++last_entries_examined_;
        if (entry.interval.vmax < isovalue) break;
        ids.push_back(entry.id);
      }
      current = node.right;
    } else {
      for (const ListEntry& entry : node.by_vmin) {
        ++last_entries_examined_;
        ids.push_back(entry.id);
      }
      break;
    }
  }
  return ids;
}

std::size_t IntervalTree::entry_count() const {
  std::size_t count = 0;
  for (const Node& node : nodes_) {
    count += node.by_vmin.size() + node.by_vmax.size();
  }
  return count;
}

std::size_t IntervalTree::size_bytes() const {
  std::size_t bytes = sizeof(*this) + nodes_.size() * sizeof(Node);
  bytes += entry_count() * sizeof(ListEntry);
  return bytes;
}

std::size_t IntervalTree::height() const {
  if (root_ < 0) return 0;
  std::size_t max_depth = 0;
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{root_, 1}};
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& node = nodes_[static_cast<std::size_t>(index)];
    if (node.left >= 0) stack.emplace_back(node.left, depth + 1);
    if (node.right >= 0) stack.emplace_back(node.right, depth + 1);
  }
  return max_depth;
}

}  // namespace oociso::index
