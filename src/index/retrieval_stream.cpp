#include "index/retrieval_stream.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "io/io_error.h"
#include "io/serial.h"
#include "util/crc32.h"
#include "util/timer.h"

namespace oociso::index {
namespace {

/// Reads the vmin field of a serialized metacell record (it follows the
/// 4-byte id; see metacell.h for the record layout).
core::ValueKey record_vmin(std::span<const std::byte> record,
                           core::ScalarKind kind) {
  io::ByteReader reader(record);
  reader.skip(sizeof(std::uint32_t));
  switch (kind) {
    case core::ScalarKind::kU8:
      return static_cast<core::ValueKey>(reader.get<std::uint8_t>());
    case core::ScalarKind::kU16:
      return static_cast<core::ValueKey>(reader.get<std::uint16_t>());
    case core::ScalarKind::kF32:
      return reader.get<float>();
  }
  throw std::runtime_error("bad scalar kind in record");
}

}  // namespace

RetrievalStream::RetrievalStream(QueryPlan plan, core::ScalarKind kind,
                                 std::size_t record_size,
                                 io::BlockDevice& device,
                                 RetrievalOptions options)
    : plan_(std::move(plan)),
      kind_(kind),
      record_size_(record_size),
      device_(device),
      options_(options) {
  stats_.nodes_visited = plan_.nodes_visited;
  if (record_size_ == 0) {
    if (!plan_.scans.empty()) {
      throw std::logic_error("RetrievalStream: empty index queried");
    }
    return;
  }
  // Case-1 (full) scans read the whole brick in large sequential chunks.
  // Case-2 (prefix) scans gallop: the first read is one block's worth of
  // records and each subsequent read doubles, so a short active prefix
  // costs O(prefix) blocks while a long one converges to bulk reads —
  // keeping total I/O proportional to output (the T/B term).
  //
  // All read sizes are multiples of the checksum chunk (one block's worth
  // of records for an index built against this device), so every batch
  // covers whole chunks and can be verified before any record is consumed
  // — the verification granularity never changes the access pattern.
  const std::size_t chunk_base =
      plan_.crc_chunk_records > 0
          ? plan_.crc_chunk_records
          : std::max<std::size_t>(1, device_.block_size() / record_size_);
  const auto round_to_chunks = [chunk_base](std::size_t records) {
    return std::max<std::size_t>(chunk_base, records / chunk_base * chunk_base);
  };
  full_chunk_records_ =
      round_to_chunks((64 * device_.block_size()) / record_size_);
  first_batch_records_ = chunk_base;
  max_batch_records_ = round_to_chunks(std::max<std::size_t>(
      first_batch_records_, (16 * device_.block_size()) / record_size_));
}

void RetrievalStream::verify_batch(const BrickScan& scan,
                                   std::uint64_t first_record,
                                   std::span<const std::byte> data) const {
  if (!options_.verify_checksums || plan_.crc_chunk_records == 0 ||
      scan.chunk_crcs.empty()) {
    return;
  }
  // Reads are chunk-aligned (first_record is a multiple of the chunk size)
  // and end either on a chunk boundary or at the brick end, so the batch
  // covers whole chunks — including the ragged final one.
  const std::uint64_t base = plan_.crc_chunk_records;
  const std::size_t batch_records = data.size() / record_size_;
  std::uint64_t chunk = first_record / base;
  std::size_t done = 0;
  while (done < batch_records) {
    const auto chunk_records = static_cast<std::size_t>(std::min<std::uint64_t>(
        base, scan.metacell_count - (first_record + done)));
    if (chunk >= scan.chunk_crcs.size()) {
      throw std::logic_error("RetrievalStream: chunk index out of range");
    }
    const std::uint32_t actual =
        util::crc32(data.subspan(done * record_size_,
                                 chunk_records * record_size_));
    if (actual != scan.chunk_crcs[chunk]) {
      // Retriable: an in-flight corruption clears on re-read; persistent
      // media damage keeps failing and exhausts the retry budget loudly.
      throw io::IoError(
          io::IoError::Kind::kCorruption, /*retriable=*/true,
          "checksum mismatch in brick at offset " +
              std::to_string(scan.offset) + ", chunk " + std::to_string(chunk) +
              " (records " + std::to_string(first_record + done) + ".." +
              std::to_string(first_record + done + chunk_records - 1) + ")");
    }
    done += chunk_records;
    ++chunk;
  }
}

std::optional<RecordBatch> RetrievalStream::next() {
  while (scan_index_ < plan_.scans.size()) {
    const BrickScan& scan = plan_.scans[scan_index_];
    if (!scan_entered_) {
      ++stats_.bricks_scanned;
      scan_entered_ = true;
      scan_done_ = 0;
      scan_stopped_ = false;
      scan_batch_ = scan.full ? full_chunk_records_ : first_batch_records_;
    }
    if (scan_stopped_ || scan_done_ >= scan.metacell_count) {
      ++scan_index_;
      scan_entered_ = false;
      continue;
    }

    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(scan_batch_, scan.metacell_count - scan_done_));
    RecordBatch batch;
    batch.record_size = record_size_;
    batch.data.resize(want * record_size_);

    // Bounded retry: a retriable fault (transient device error or a chunk
    // checksum mismatch) repeats the read after modeled backoff; anything
    // else — or an exhausted budget — propagates to the consumer.
    const io::IoStats io_before = device_.stats();
    int failures = 0;
    for (;;) {
      const util::WallTimer read_timer;
      try {
        device_.read(scan.offset + scan_done_ * record_size_, batch.data);
        verify_batch(scan, scan_done_, batch.data);
        batch.io_seconds += read_timer.seconds();
        break;
      } catch (const io::IoError& error) {
        batch.io_seconds += read_timer.seconds();
        if (error.kind() == io::IoError::Kind::kCorruption) {
          ++faults_.checksum_failures;
        } else {
          ++faults_.transient_errors;
        }
        ++failures;
        if (!error.retriable() || failures >= options_.retry.max_attempts) {
          io_wall_seconds_ += batch.io_seconds;
          throw;
        }
        ++faults_.retries;
        faults_.backoff_modeled_seconds +=
            options_.retry.backoff_seconds(failures - 1);
      }
    }
    batch.io = device_.stats().since(io_before);
    io_wall_seconds_ += batch.io_seconds;

    std::size_t active = 0;
    for (std::size_t r = 0; r < want; ++r) {
      ++batch.records_fetched;
      ++stats_.records_fetched;
      if (!scan.full &&
          record_vmin(batch.record(r), kind_) > plan_.isovalue) {
        // End of the active prefix; the rest of the brick is inactive.
        scan_stopped_ = true;
        break;
      }
      ++active;
      ++stats_.active_metacells;
    }
    batch.data.resize(active * record_size_);
    batch.record_count = active;

    scan_done_ += want;
    if (!scan.full) {
      scan_batch_ = std::min(scan_batch_ * 2, max_batch_records_);
    }
    return batch;
  }
  return std::nullopt;
}

}  // namespace oociso::index
