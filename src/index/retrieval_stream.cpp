#include "index/retrieval_stream.h"

#include <algorithm>
#include <stdexcept>

#include "io/serial.h"
#include "util/timer.h"

namespace oociso::index {
namespace {

/// Reads the vmin field of a serialized metacell record (it follows the
/// 4-byte id; see metacell.h for the record layout).
core::ValueKey record_vmin(std::span<const std::byte> record,
                           core::ScalarKind kind) {
  io::ByteReader reader(record);
  reader.skip(sizeof(std::uint32_t));
  switch (kind) {
    case core::ScalarKind::kU8:
      return static_cast<core::ValueKey>(reader.get<std::uint8_t>());
    case core::ScalarKind::kU16:
      return static_cast<core::ValueKey>(reader.get<std::uint16_t>());
    case core::ScalarKind::kF32:
      return reader.get<float>();
  }
  throw std::runtime_error("bad scalar kind in record");
}

}  // namespace

RetrievalStream::RetrievalStream(QueryPlan plan, core::ScalarKind kind,
                                 std::size_t record_size,
                                 io::BlockDevice& device)
    : plan_(std::move(plan)),
      kind_(kind),
      record_size_(record_size),
      device_(device) {
  stats_.nodes_visited = plan_.nodes_visited;
  if (record_size_ == 0) {
    if (!plan_.scans.empty()) {
      throw std::logic_error("RetrievalStream: empty index queried");
    }
    return;
  }
  // Case-1 (full) scans read the whole brick in large sequential chunks.
  // Case-2 (prefix) scans gallop: the first read is one block's worth of
  // records and each subsequent read doubles, so a short active prefix
  // costs O(prefix) blocks while a long one converges to bulk reads —
  // keeping total I/O proportional to output (the T/B term).
  full_chunk_records_ = std::max<std::size_t>(
      1, (64 * device_.block_size()) / record_size_);
  first_batch_records_ =
      std::max<std::size_t>(1, device_.block_size() / record_size_);
  max_batch_records_ = std::max<std::size_t>(
      first_batch_records_, (16 * device_.block_size()) / record_size_);
}

std::optional<RecordBatch> RetrievalStream::next() {
  while (scan_index_ < plan_.scans.size()) {
    const BrickScan& scan = plan_.scans[scan_index_];
    if (!scan_entered_) {
      ++stats_.bricks_scanned;
      scan_entered_ = true;
      scan_done_ = 0;
      scan_stopped_ = false;
      scan_batch_ = scan.full ? full_chunk_records_ : first_batch_records_;
    }
    if (scan_stopped_ || scan_done_ >= scan.metacell_count) {
      ++scan_index_;
      scan_entered_ = false;
      continue;
    }

    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(scan_batch_, scan.metacell_count - scan_done_));
    RecordBatch batch;
    batch.record_size = record_size_;
    batch.data.resize(want * record_size_);

    const io::IoStats io_before = device_.stats();
    const util::WallTimer read_timer;
    device_.read(scan.offset + scan_done_ * record_size_, batch.data);
    batch.io_seconds = read_timer.seconds();
    batch.io = device_.stats().since(io_before);
    io_wall_seconds_ += batch.io_seconds;

    std::size_t active = 0;
    for (std::size_t r = 0; r < want; ++r) {
      ++batch.records_fetched;
      ++stats_.records_fetched;
      if (!scan.full &&
          record_vmin(batch.record(r), kind_) > plan_.isovalue) {
        // End of the active prefix; the rest of the brick is inactive.
        scan_stopped_ = true;
        break;
      }
      ++active;
      ++stats_.active_metacells;
    }
    batch.data.resize(active * record_size_);
    batch.record_count = active;

    scan_done_ += want;
    if (!scan.full) {
      scan_batch_ = std::min(scan_batch_ * 2, max_batch_records_);
    }
    return batch;
  }
  return std::nullopt;
}

}  // namespace oociso::index
