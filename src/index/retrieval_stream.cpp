#include "index/retrieval_stream.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "codec/decoding_device.h"
#include "io/io_error.h"
#include "io/serial.h"
#include "util/crc32.h"
#include "util/timer.h"

namespace oociso::index {
namespace {

/// Reads the vmin field of a serialized metacell record (it follows the
/// 4-byte id; see metacell.h for the record layout).
core::ValueKey record_vmin(std::span<const std::byte> record,
                           core::ScalarKind kind) {
  io::ByteReader reader(record);
  reader.skip(sizeof(std::uint32_t));
  switch (kind) {
    case core::ScalarKind::kU8:
      return static_cast<core::ValueKey>(reader.get<std::uint8_t>());
    case core::ScalarKind::kU16:
      return static_cast<core::ValueKey>(reader.get<std::uint16_t>());
    case core::ScalarKind::kF32:
      return reader.get<float>();
  }
  throw std::runtime_error("bad scalar kind in record");
}

}  // namespace

RetrievalStream::RetrievalStream(QueryPlan plan, core::ScalarKind kind,
                                 std::size_t record_size,
                                 io::BlockDevice& device,
                                 RetrievalOptions options,
                                 BrickDirectory directory,
                                 io::SharedBufferPool* cache,
                                 ReplicaRouting routing)
    : plan_(std::move(plan)),
      kind_(kind),
      record_size_(record_size),
      device_(device),
      options_(options),
      cache_(cache),
      routing_(std::move(routing)),
      replicas_(directory.replicas) {
  routing_active_ = replicas_.active() && !routing_.targets.empty();
  if (routing_active_) {
    routed_.resize(routing_.targets.size());
    // Routing picks a (possibly different) serving device per read; the
    // async dispatcher queues against a single device, so routed streams
    // always run the synchronous path (see DESIGN §13).
    options_.queue_depth = 0;
  }
  stats_.nodes_visited = plan_.nodes_visited;
  if (record_size_ == 0) {
    if (!plan_.scans.empty()) {
      throw std::logic_error("RetrievalStream: empty index queried");
    }
    return;
  }
  // Case-1 (full) scans read in large sequential chunks (coalesced across
  // bricks by the scheduler). Case-2 (prefix) scans gallop: the first read
  // is one block's worth of records and each subsequent read doubles, so a
  // short active prefix costs O(prefix) blocks while a long one converges
  // to bulk reads — keeping total I/O proportional to output (the T/B
  // term).
  //
  // All read sizes are multiples of the checksum chunk (one block's worth
  // of records for an index built against this device), so every batch
  // covers whole chunks and can be verified before any record is consumed
  // — the verification granularity never changes the access pattern.
  const std::size_t chunk_base =
      plan_.crc_chunk_records > 0
          ? plan_.crc_chunk_records
          : std::max<std::size_t>(1, device_.block_size() / record_size_);
  const auto round_to_chunks = [chunk_base](std::size_t records) {
    return std::max<std::size_t>(chunk_base, records / chunk_base * chunk_base);
  };
  full_chunk_records_ =
      round_to_chunks((64 * device_.block_size()) / record_size_);
  first_batch_records_ = chunk_base;
  max_batch_records_ = round_to_chunks(std::max<std::size_t>(
      first_batch_records_, (16 * device_.block_size()) / record_size_));
  chunk_records_ = chunk_base;

  ScheduleParams params;
  params.record_size = record_size_;
  params.chunk_records = chunk_records_;
  params.max_read_records = full_chunk_records_;
  params.max_gap_bytes =
      options_.coalesce_gap_bytes < 0
          ? static_cast<std::uint64_t>(device_.readahead_blocks()) *
                device_.block_size()
          : static_cast<std::uint64_t>(options_.coalesce_gap_bytes);
  params.coalesce = options_.coalesce;
  // Bridged gap bytes must stay as verifiable as planned bytes; when the
  // directory cannot prove a gap's checksums the scheduler keeps the seek.
  params.require_crc_cover =
      options_.verify_checksums && plan_.crc_chunk_records > 0;
  {
    obs::Span span(options_.tracer, "schedule_plan", options_.trace_pid,
                   options_.trace_tid);
    schedule_ = schedule_plan(plan_, params, directory);
    span.arg("scans", static_cast<std::uint64_t>(plan_.scans.size()));
    span.arg("items", static_cast<std::uint64_t>(schedule_.items.size()));
    span.arg("sequential_reads", schedule_.sequential_reads);
    span.arg("coalesced_scans", schedule_.coalesced_scans);
    span.arg("bridged_gap_bytes", schedule_.bridged_gap_bytes);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("scheduler.plans").add();
    options_.metrics->counter("scheduler.sequential_reads")
        .add(schedule_.sequential_reads);
    options_.metrics->counter("scheduler.coalesced_scans")
        .add(schedule_.coalesced_scans);
    options_.metrics->counter("scheduler.bridged_gap_bytes")
        .add(schedule_.bridged_gap_bytes);
  }
  if (options_.queue_depth >= 1 && !schedule_.items.empty()) {
    io::AsyncIoConfig async_config;
    async_config.queue_depth = options_.queue_depth;
    async_config.submit_overhead_seconds = options_.submit_overhead_seconds;
    async_config.tracer = options_.tracer;
    async_config.metrics = options_.metrics;
    async_config.trace_pid = options_.trace_pid;
    async_config.trace_tid = options_.trace_tid;
    async_ = std::make_unique<io::AsyncBlockDevice>(device_, async_config,
                                                    cache_);
  }
}

void RetrievalStream::verify_slice(const ReadSlice& slice,
                                   std::uint64_t brick_offset,
                                   std::span<const std::byte> data,
                                   std::size_t data_offset) const {
  if (!options_.verify_checksums || plan_.crc_chunk_records == 0 ||
      slice.chunk_crcs.empty()) {
    return;
  }
  // Reads are chunk-aligned within each brick (slice.first_record is a
  // multiple of the chunk size) and end either on a chunk boundary or at
  // the brick end, so the slice covers whole chunks — including the ragged
  // final one.
  const std::uint64_t base = plan_.crc_chunk_records;
  std::uint64_t chunk = slice.first_record / base;
  std::uint64_t done = 0;
  while (done < slice.record_count) {
    const auto chunk_records = static_cast<std::size_t>(std::min<std::uint64_t>(
        base, slice.brick_records - (slice.first_record + done)));
    if (chunk >= slice.chunk_crcs.size()) {
      throw std::logic_error("RetrievalStream: chunk index out of range");
    }
    const std::uint32_t actual = util::crc32(
        data.subspan(data_offset + static_cast<std::size_t>(done) * record_size_,
                     chunk_records * record_size_));
    if (actual != slice.chunk_crcs[chunk]) {
      // Retriable: an in-flight corruption clears on re-read; persistent
      // media damage keeps failing and exhausts the retry budget loudly.
      throw io::IoError(
          io::IoError::Kind::kCorruption, /*retriable=*/true,
          "checksum mismatch in brick at offset " +
              std::to_string(brick_offset) + ", chunk " + std::to_string(chunk) +
              " (records " + std::to_string(slice.first_record + done) + ".." +
              std::to_string(slice.first_record + done + chunk_records - 1) +
              ")");
    }
    done += chunk_records;
    ++chunk;
  }
}

template <typename VerifyFn>
void RetrievalStream::read_with_retry(io::BlockDevice& device,
                                      io::SharedBufferPool* cache,
                                      std::uint64_t offset, std::uint64_t salt,
                                      RecordBatch& batch, int& total_failures,
                                      int attempt_budget, VerifyFn&& verify) {
  // Bounded retry against ONE holder: a retriable fault (transient device
  // error or a chunk checksum mismatch) repeats the read after modeled
  // backoff; anything else — or an exhausted per-holder budget — propagates
  // to the caller (routed_read rotates to the next replica; unrouted
  // streams surface the error to the consumer). Wall time and cache stats
  // are accumulated per call so a rotation never double-counts.
  obs::Span span(options_.tracer, "io.read", options_.trace_pid,
                 options_.trace_tid);
  span.arg("offset", offset);
  span.arg("bytes", static_cast<std::uint64_t>(batch.data.size()));
  int failures = 0;
  double call_seconds = 0.0;
  double call_decode = 0.0;
  io::CacheReadStats call_cache;
  const auto finish = [&] {
    batch.io_seconds += call_seconds;
    io_wall_seconds_ += call_seconds;
    batch.decode_seconds += call_decode;
    decode_cpu_seconds_ += call_decode;
    batch.cache.merge(call_cache);
    cache_stats_.merge(call_cache);
  };
  for (;;) {
    const util::WallTimer read_timer;
    // Compressed stores decode inside the read (ChunkDecodingDevice);
    // snapshot the thread's decode ledger so this batch is charged exactly
    // its own decode CPU — 0 everywhere else.
    const double decode_before = codec::thread_decode_cpu_seconds();
    try {
      if (cache != nullptr) {
        // The wall window includes time blocked on another stream's
        // in-flight read of the same blocks — honest I/O wait either way.
        cache->read(offset, batch.data, call_cache);
      } else {
        device.read(offset, batch.data);
      }
      verify(std::span<const std::byte>(batch.data));
      call_seconds += read_timer.seconds();
      call_decode += codec::thread_decode_cpu_seconds() - decode_before;
      break;
    } catch (const io::IoError& error) {
      call_seconds += read_timer.seconds();
      call_decode += codec::thread_decode_cpu_seconds() - decode_before;
      if (error.kind() == io::IoError::Kind::kCorruption) {
        ++faults_.checksum_failures;
        if (options_.metrics != nullptr) {
          options_.metrics->counter("retrieval.checksum_failures").add();
        }
        if (options_.tracer != nullptr) {
          options_.tracer->instant(
              "io.checksum_failure", options_.trace_pid, options_.trace_tid,
              obs::ArgsBuilder().add("offset", offset).str());
        }
        // The corrupted transfer may now be resident in the shared cache;
        // drop the covered frames so the retry re-reads the device instead
        // of being served the same bad bytes until the budget runs out.
        if (cache != nullptr) cache->invalidate(offset, batch.data.size());
      } else {
        ++faults_.transient_errors;
        if (options_.metrics != nullptr) {
          options_.metrics->counter("retrieval.transient_errors").add();
        }
        if (options_.tracer != nullptr) {
          options_.tracer->instant(
              "io.transient_error", options_.trace_pid, options_.trace_tid,
              obs::ArgsBuilder().add("offset", offset).str());
        }
      }
      ++failures;
      ++total_failures;
      if (!error.retriable() || failures >= attempt_budget) {
        finish();
        span.arg("failed", std::string_view("true"));
        throw;
      }
      ++faults_.retries;
      if (options_.metrics != nullptr) {
        options_.metrics->counter("retrieval.retries").add();
      }
      // The ladder index is the cross-holder failure count, so a hedged
      // read keeps climbing instead of restarting at the cheap rungs.
      faults_.backoff_modeled_seconds +=
          options_.retry.backoff_seconds(total_failures - 1, salt);
    }
  }
  if (failures > 0) span.arg("retries", static_cast<std::uint64_t>(failures));
  finish();
}

template <typename VerifyFn>
void RetrievalStream::routed_read(std::uint64_t offset, RecordBatch& batch,
                                  VerifyFn&& verify) {
  if (!routing_active_) {
    // Pre-replication behavior, bit for bit: one holder, full budget,
    // device-stats attribution by snapshot (the device is private to this
    // stream on the raw path; the cache path attributes through the
    // per-call CacheReadStats instead).
    const io::IoStats io_before =
        cache_ != nullptr ? io::IoStats{} : device_.stats();
    int total_failures = 0;
    read_with_retry(device_, cache_, offset, offset, batch, total_failures,
                    options_.retry.max_attempts,
                    std::forward<VerifyFn>(verify));
    batch.io = cache_ != nullptr ? batch.cache.device_io
                                 : device_.stats().since(io_before);
    return;
  }

  // Candidate holders of this read's placement group, primary first. The
  // scheduler confined every read to one group, so each candidate holds
  // all of the read's bytes (at a translated offset for replicas).
  struct Candidate {
    std::size_t node = 0;
    io::BlockDevice* device = nullptr;
    io::SharedBufferPool* cache = nullptr;
    std::uint64_t offset = 0;
  };
  std::vector<Candidate> candidates;
  candidates.push_back(Candidate{routing_.primary, &device_, cache_, offset});
  const std::size_t g = replicas_.group_of(offset);
  if (g < replicas_.groups.size()) {
    const ReplicaGroup& group = replicas_.groups[g];
    for (std::size_t rank = 0; rank < group.targets.size(); ++rank) {
      const std::size_t node = group.targets[rank].node;
      if (node >= routing_.targets.size()) continue;
      const ReplicaRouting::Target& target = routing_.targets[node];
      if (target.device == nullptr && target.cache == nullptr) continue;
      candidates.push_back(Candidate{node, target.device, target.cache,
                                     group.translate(rank, offset)});
    }
  }

  // Health gate: skip holders the tracker has tripped (each consultation
  // may grant a recovery probe). If every candidate is denied, fall back to
  // the full list — better a probe of a sick node than a guaranteed error.
  std::vector<std::size_t> admitted;
  if (routing_.health != nullptr) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (routing_.health->admit(candidates[i].node)) admitted.push_back(i);
    }
  }
  if (admitted.empty()) {
    admitted.resize(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) admitted[i] = i;
  }

  // Least-loaded live holder by bytes this stream has routed to each node;
  // ties go to candidate order (primary first), so a single-stream healthy
  // run alternates deterministically and a dead node's load spreads evenly
  // across the surviving holders.
  std::size_t chosen = admitted.front();
  for (const std::size_t i : admitted) {
    if (routed_[candidates[i].node].bytes <
        routed_[candidates[chosen].node].bytes) {
      chosen = i;
    }
  }

  // Rotation order: the chosen holder, then the remaining candidates in
  // candidate order. A holder that exhausts its per-holder budget charges a
  // hedge and the read moves on; only when every holder is exhausted does
  // the error reach the consumer (and the engine's whole-stripe failover).
  std::vector<std::size_t> rotation{chosen};
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (i != chosen) rotation.push_back(i);
  }
  const int budget =
      options_.hedge_attempts > 0
          ? std::min(options_.hedge_attempts, options_.retry.max_attempts)
          : options_.retry.max_attempts;

  int total_failures = 0;
  for (std::size_t attempt = 0; attempt < rotation.size(); ++attempt) {
    const Candidate& holder = candidates[rotation[attempt]];
    const io::IoStats io_before =
        holder.cache != nullptr ? io::IoStats{} : holder.device->stats();
    const io::IoStats cache_io_before = batch.cache.device_io;
    try {
      read_with_retry(*holder.device, holder.cache, holder.offset, offset,
                      batch, total_failures, budget, verify);
    } catch (const io::IoError&) {
      // This holder is out; charge it, tell the tracker, and hedge to the
      // next one — unless this was the last, in which case the error
      // propagates with all the accounting already merged.
      const io::IoStats holder_io =
          holder.cache != nullptr
              ? batch.cache.device_io.since(cache_io_before)
              : holder.device->stats().since(io_before);
      routed_[holder.node].io += holder_io;
      ++routed_[holder.node].failures;
      if (routing_.health != nullptr) {
        routing_.health->report_failure(holder.node);
      }
      if (attempt + 1 >= rotation.size()) throw;
      ++faults_.hedged_reads;
      if (options_.metrics != nullptr) {
        options_.metrics->counter("faults.hedges").add();
      }
      if (options_.tracer != nullptr) {
        options_.tracer->instant(
            "io.hedge", options_.trace_pid, options_.trace_tid,
            obs::ArgsBuilder()
                .add("offset", offset)
                .add("from_node", static_cast<std::uint64_t>(holder.node))
                .add("to_node",
                     static_cast<std::uint64_t>(
                         candidates[rotation[attempt + 1]].node))
                .str());
      }
      continue;
    }
    // Served. Attribute the I/O to the holder and report health.
    const io::IoStats holder_io =
        holder.cache != nullptr ? batch.cache.device_io.since(cache_io_before)
                                : holder.device->stats().since(io_before);
    batch.io += holder_io;
    routed_[holder.node].io += holder_io;
    ++routed_[holder.node].reads;
    routed_[holder.node].bytes += batch.data.size();
    if (routing_.health != nullptr) {
      routing_.health->report_success(holder.node);
    }
    if (holder.node != routing_.primary) {
      ++faults_.rerouted_reads;
      if (options_.tracer != nullptr) {
        options_.tracer->instant(
            "io.replica_route", options_.trace_pid, options_.trace_tid,
            obs::ArgsBuilder()
                .add("offset", offset)
                .add("node", static_cast<std::uint64_t>(holder.node))
                .str());
      }
    }
    return;
  }
}

RecordBatch RetrievalStream::execute_read(const ScheduledRead& read) {
  RecordBatch batch;
  batch.record_size = record_size_;
  batch.data.resize(static_cast<std::size_t>(read.record_count) * record_size_);

  routed_read(read.offset, batch, [&](std::span<const std::byte> data) {
    // Verify every slice — bridged gap bricks included — before any record
    // of the transfer is consumed, so a corrupted read never splits into a
    // half-accepted batch.
    std::size_t pos = 0;
    for (const ReadSlice& slice : read.slices) {
      const std::uint64_t brick_offset =
          read.offset + pos -
          static_cast<std::uint64_t>(slice.first_record) * record_size_;
      verify_slice(slice, brick_offset, data, pos);
      pos += static_cast<std::size_t>(slice.record_count) * record_size_;
    }
  });

  // Compact the planned scans' records to the front; gap bytes were only
  // read to keep the head moving and are dropped without entering any
  // query counter.
  compact_sequential(read, batch);
  return batch;
}

std::optional<RecordBatch> RetrievalStream::gallop_prefix(
    const BrickScan& scan) {
  if (!scan_entered_) {
    ++stats_.bricks_scanned;
    scan_entered_ = true;
    scan_done_ = 0;
    scan_stopped_ = false;
    scan_batch_ = first_batch_records_;
  }
  if (scan_stopped_ || scan_done_ >= scan.metacell_count) {
    scan_entered_ = false;
    return std::nullopt;
  }

  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(scan_batch_, scan.metacell_count - scan_done_));
  RecordBatch batch;
  batch.record_size = record_size_;
  batch.data.resize(want * record_size_);

  ReadSlice slice;
  slice.first_record = scan_done_;
  slice.record_count = static_cast<std::uint32_t>(want);
  slice.brick_records = scan.metacell_count;
  slice.chunk_crcs = scan.chunk_crcs;

  routed_read(scan.offset + scan_done_ * record_size_, batch,
              [&](std::span<const std::byte> data) {
                verify_slice(slice, scan.offset, data, 0);
              });

  std::size_t active = 0;
  for (std::size_t r = 0; r < want; ++r) {
    ++batch.records_fetched;
    ++stats_.records_fetched;
    if (record_vmin(batch.record(r), kind_) > plan_.isovalue) {
      // End of the active prefix; the rest of the brick is inactive.
      scan_stopped_ = true;
      break;
    }
    ++active;
    ++stats_.active_metacells;
  }
  batch.data.resize(active * record_size_);
  batch.record_count = active;

  scan_done_ += want;
  scan_batch_ = std::min(scan_batch_ * 2, max_batch_records_);
  return batch;
}

std::optional<RecordBatch> RetrievalStream::next() {
  if (async_ != nullptr) return next_async();
  while (item_index_ < schedule_.items.size()) {
    const ScheduledItem& item = schedule_.items[item_index_];
    if (!item.is_prefix()) {
      RecordBatch batch = execute_read(item.read);
      ++item_index_;
      return batch;
    }
    if (std::optional<RecordBatch> batch =
            gallop_prefix(plan_.scans[static_cast<std::size_t>(
                item.prefix_scan)])) {
      return batch;
    }
    ++item_index_;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Async dispatch loop (queue_depth >= 1). See the header's overview: reads
// are registered with the AsyncBlockDevice in schedule order, serviced
// cheapest-first (schedule order on the offset-monotone schedule),
// verified on completion with retries re-submitted through the same
// queue, and delivered strictly in plan order — so consumers see exactly
// the synchronous batch sequence at every depth.
// ---------------------------------------------------------------------------

void RetrievalStream::submit_job(AsyncJob job) {
  const std::uint64_t ticket =
      async_->submit(job.offset, std::span<std::byte>(job.batch.data));
  in_flight_.emplace(ticket, std::move(job));
}

void RetrievalStream::submit_sequential(std::size_t item_index) {
  const ScheduledRead& read = schedule_.items[item_index].read;
  AsyncJob job;
  job.item_index = item_index;
  job.offset = read.offset;
  job.batch.record_size = record_size_;
  job.batch.data.resize(static_cast<std::size_t>(read.record_count) *
                        record_size_);
  submit_job(std::move(job));
}

void RetrievalStream::submit_probe(std::size_t item_index,
                                   const BrickScan& scan) {
  const std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(
      scan_batch_, scan.metacell_count - scan_done_));
  AsyncJob job;
  job.item_index = item_index;
  job.is_probe = true;
  job.offset = scan.offset + scan_done_ * record_size_;
  job.batch.record_size = record_size_;
  job.batch.data.resize(want * record_size_);
  job.probe_slice.first_record = scan_done_;
  job.probe_slice.record_count = static_cast<std::uint32_t>(want);
  job.probe_slice.brick_records = scan.metacell_count;
  job.probe_slice.chunk_crcs = scan.chunk_crcs;
  job.probe_brick_offset = scan.offset;
  submit_job(std::move(job));
}

void RetrievalStream::pump_submissions() {
  while (next_submit_item_ < schedule_.items.size()) {
    // Bound outstanding work (in flight + buffered) by the queue depth —
    // but always let the delivery head through, or a fault-reordered
    // ready_ buffer could wedge the stream one submission short.
    if (async_->in_flight() + ready_.size() >= options_.queue_depth &&
        next_submit_item_ != item_index_) {
      break;
    }
    const ScheduledItem& item = schedule_.items[next_submit_item_];
    if (!item.is_prefix()) {
      // Sequential items keep submitting even across a gallop barrier:
      // their offsets lie beyond the galloping brick on the offset-monotone
      // schedule, so the elevator still services the (lower-offset) probes
      // first and the device sweep — hence every IoStats counter — matches
      // the synchronous order; the early submissions just stop paying dry
      // turnaround once the scan resolves.
      submit_sequential(next_submit_item_);
      ++next_submit_item_;
      continue;
    }
    const BrickScan& scan =
        plan_.scans[static_cast<std::size_t>(item.prefix_scan)];
    if (scan.metacell_count == 0) {
      // Nothing to read; delivery charges the brick visit and moves on.
      ++next_submit_item_;
      continue;
    }
    if (barrier_item_ != SIZE_MAX) {
      // A scan is already galloping and there is a single live scan
      // state, so this one cannot start yet — and nothing beyond it may
      // submit either: its first probe would not exist when the elevator
      // picked among the later (higher-offset) items, the head would move
      // past the brick, and the probe would cost a backward seek the
      // synchronous sweep never pays. Stall here until the live scan
      // resolves; the pump (or delivery) starts this scan then.
      break;
    }
    // First probe of a galloping scan: probe sizes double from one chunk,
    // so its parameters need no scan state. Later probes depend on the
    // decoded prefix and are submitted at delivery.
    scan_done_ = 0;
    scan_batch_ = first_batch_records_;
    scan_stopped_ = false;
    barrier_item_ = next_submit_item_;
    submit_probe(next_submit_item_, scan);
    ++next_submit_item_;
  }
}

void RetrievalStream::process_one_completion() {
  io::AsyncCompletion completion = async_->wait_any();
  const auto it = in_flight_.find(completion.ticket);
  if (it == in_flight_.end()) {
    throw std::logic_error("RetrievalStream: completion for unknown ticket");
  }
  AsyncJob job = std::move(it->second);
  in_flight_.erase(it);

  job.batch.io_seconds += completion.wall_seconds;
  job.batch.decode_seconds += completion.decode_seconds;
  job.batch.cache.merge(completion.cache);
  job.batch.io += completion.io;
  job.batch.turnaround_modeled_seconds +=
      completion.turnaround_modeled_seconds;
  io_wall_seconds_ += completion.wall_seconds;
  decode_cpu_seconds_ += completion.decode_seconds;
  cache_stats_.merge(completion.cache);
  turnaround_modeled_seconds_ += completion.turnaround_modeled_seconds;

  std::exception_ptr error = completion.error;
  if (error == nullptr) {
    try {
      const std::span<const std::byte> data(job.batch.data);
      if (job.is_probe) {
        verify_slice(job.probe_slice, job.probe_brick_offset, data, 0);
      } else {
        const ScheduledRead& read = schedule_.items[job.item_index].read;
        std::size_t pos = 0;
        for (const ReadSlice& slice : read.slices) {
          const std::uint64_t brick_offset =
              read.offset + pos -
              static_cast<std::uint64_t>(slice.first_record) * record_size_;
          verify_slice(slice, brick_offset, data, pos);
          pos += static_cast<std::size_t>(slice.record_count) * record_size_;
        }
      }
    } catch (...) {
      error = std::current_exception();
    }
  }
  if (error == nullptr) {
    if (cache_ != nullptr) job.batch.io = job.batch.cache.device_io;
    ready_.emplace(job.item_index, std::move(job.batch));
    return;
  }

  // Same fault taxonomy and accounting as the synchronous retry loop; the
  // only difference is that the retry goes back through the queue.
  try {
    std::rethrow_exception(error);
  } catch (const io::IoError& io_error) {
    if (io_error.kind() == io::IoError::Kind::kCorruption) {
      ++faults_.checksum_failures;
      if (options_.metrics != nullptr) {
        options_.metrics->counter("retrieval.checksum_failures").add();
      }
      if (options_.tracer != nullptr) {
        options_.tracer->instant(
            "io.checksum_failure", options_.trace_pid, options_.trace_tid,
            obs::ArgsBuilder().add("offset", job.offset).str());
      }
      if (cache_ != nullptr) {
        cache_->invalidate(job.offset, job.batch.data.size());
      }
    } else {
      ++faults_.transient_errors;
      if (options_.metrics != nullptr) {
        options_.metrics->counter("retrieval.transient_errors").add();
      }
      if (options_.tracer != nullptr) {
        options_.tracer->instant(
            "io.transient_error", options_.trace_pid, options_.trace_tid,
            obs::ArgsBuilder().add("offset", job.offset).str());
      }
    }
    ++job.attempts;
    if (!io_error.retriable() || job.attempts >= options_.retry.max_attempts) {
      throw;
    }
    ++faults_.retries;
    if (options_.metrics != nullptr) {
      options_.metrics->counter("retrieval.retries").add();
    }
    faults_.backoff_modeled_seconds +=
        options_.retry.backoff_seconds(job.attempts - 1);
    submit_job(std::move(job));
  }
  // A non-IoError (logic error, read past end) propagated above.
}

void RetrievalStream::compact_sequential(const ScheduledRead& read,
                                         RecordBatch& batch) {
  std::size_t src = 0;
  std::size_t dst = 0;
  for (const ReadSlice& slice : read.slices) {
    const std::size_t bytes =
        static_cast<std::size_t>(slice.record_count) * record_size_;
    if (slice.scan_index >= 0) {
      if (dst != src) {
        std::memmove(batch.data.data() + dst, batch.data.data() + src, bytes);
      }
      dst += bytes;
      batch.records_fetched += slice.record_count;
      stats_.records_fetched += slice.record_count;
      stats_.active_metacells += slice.record_count;
      if (slice.first_record == 0) ++stats_.bricks_scanned;
    }
    src += bytes;
  }
  batch.data.resize(dst);
  batch.record_count = dst / record_size_;
}

std::optional<RecordBatch> RetrievalStream::next_async() {
  for (;;) {
    if (item_index_ >= schedule_.items.size()) return std::nullopt;
    const ScheduledItem& item = schedule_.items[item_index_];

    if (item.is_prefix()) {
      const BrickScan& scan =
          plan_.scans[static_cast<std::size_t>(item.prefix_scan)];
      if (!scan_entered_) {
        ++stats_.bricks_scanned;
        scan_entered_ = true;
        if (scan.metacell_count > 0 && barrier_item_ != item_index_) {
          // The pump stalled before reaching this scan (depth bound or an
          // earlier gallop holding the live scan state). That state is
          // free now — the pump never submits past an un-started scan, so
          // no later scan ran — begin galloping here, exactly as the pump
          // would have.
          scan_done_ = 0;
          scan_batch_ = first_batch_records_;
          scan_stopped_ = false;
          barrier_item_ = item_index_;
          submit_probe(item_index_, scan);
        }
      }
      if (scan.metacell_count == 0 || scan_stopped_ ||
          (barrier_item_ == item_index_ ? scan_done_ >= scan.metacell_count
                                        : false)) {
        // Scan resolved (or empty): release the barrier and advance.
        scan_entered_ = false;
        scan_stopped_ = false;
        if (barrier_item_ == item_index_) barrier_item_ = SIZE_MAX;
        ++item_index_;
        if (next_submit_item_ < item_index_) next_submit_item_ = item_index_;
        continue;
      }
      pump_submissions();
      while (ready_.find(item_index_) == ready_.end()) {
        process_one_completion();
        pump_submissions();
      }
      RecordBatch batch = std::move(ready_.at(item_index_));
      ready_.erase(item_index_);
      const std::size_t want = batch.data.size() / record_size_;

      std::size_t active = 0;
      for (std::size_t r = 0; r < want; ++r) {
        ++batch.records_fetched;
        ++stats_.records_fetched;
        if (record_vmin(batch.record(r), kind_) > plan_.isovalue) {
          scan_stopped_ = true;
          break;
        }
        ++active;
        ++stats_.active_metacells;
      }
      batch.data.resize(active * record_size_);
      batch.record_count = active;

      scan_done_ += want;
      scan_batch_ = std::min(scan_batch_ * 2, max_batch_records_);
      if (!scan_stopped_ && scan_done_ < scan.metacell_count) {
        // The scan gallops on: submit the next probe now (the queue is
        // empty up to the barrier, so the consumer overlaps nothing here —
        // exactly the synchronous gallop's data dependence).
        submit_probe(item_index_, scan);
      }
      return batch;
    }

    pump_submissions();
    while (ready_.find(item_index_) == ready_.end()) {
      process_one_completion();
      pump_submissions();
    }
    RecordBatch batch = std::move(ready_.at(item_index_));
    ready_.erase(item_index_);
    compact_sequential(item.read, batch);
    ++item_index_;
    return batch;
  }
}

}  // namespace oociso::index
