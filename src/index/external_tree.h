#pragma once
// Blocked external-memory variant of the compact interval tree
// (paper Section 5, last paragraph): when the index itself does not fit in
// main memory — e.g. float-valued scalar fields where the number of
// distinct endpoints n is not bounded by the quantization — the binary
// tree's nodes are grouped into disk blocks, reducing the *block* height
// to O(log_B n). A query then reads O(log_B n) index blocks from disk and
// produces exactly the same brick-scan plan as the in-core tree.
//
// Packing: top-down greedy BFS. Starting from a subtree root, nodes are
// appended to the current block in breadth-first order until the block's
// byte budget is exhausted; each frontier child then roots its own block,
// recursively. This keeps every root-to-leaf path crossing at most
// O(log_B n) blocks for a balanced tree while using variable-size nodes
// (a node's serialized size includes its brick index list).
//
// Reads go through an optional BufferPool, making the M/B trade-off of the
// external-memory model directly measurable (ablation A4).

#include <cstdint>
#include <vector>

#include "index/compact_interval_tree.h"
#include "index/retrieval_stream.h"
#include "io/buffer_pool.h"

namespace oociso::index {

class ExternalCompactTree {
 public:
  struct BuildStats {
    std::uint32_t blocks = 0;
    std::uint64_t bytes_written = 0;
    std::uint32_t max_block_depth = 0;  ///< block-granular height
  };

  ExternalCompactTree() = default;

  /// Serializes `tree`'s node structure into blocks of `block_bytes`,
  /// appending them to `device`. The brick data itself is NOT copied: the
  /// external tree references the same brick offsets (typically on another
  /// device). Returns the external tree handle.
  static ExternalCompactTree build(const CompactIntervalTree& tree,
                                   io::BlockDevice& device,
                                   std::uint32_t block_bytes = 4096);

  /// Root-to-leaf walk reading index blocks from `device`; returns the
  /// same plan the in-core tree would produce. `blocks_read` (if given)
  /// receives the number of distinct index-block fetches.
  [[nodiscard]] QueryPlan plan(core::ValueKey isovalue,
                               io::BlockDevice& device,
                               std::uint64_t* blocks_read = nullptr) const;

  /// Same walk but through a block cache; repeated queries hit the pool's
  /// resident blocks instead of the device.
  [[nodiscard]] QueryPlan plan(core::ValueKey isovalue, io::BufferPool& pool,
                               std::uint64_t* blocks_read = nullptr) const;

  /// Plans on the index device and opens the shared retrieval stream over
  /// `brick_device` — the same pull-based consumption path as the in-core
  /// tree (see retrieval_stream.h).
  [[nodiscard]] RetrievalStream open_stream(
      core::ValueKey isovalue, io::BlockDevice& index_device,
      io::BlockDevice& brick_device,
      std::uint64_t* blocks_read = nullptr) const;

  /// Same, with the index walk served through a block cache.
  [[nodiscard]] RetrievalStream open_stream(
      core::ValueKey isovalue, io::BufferPool& index_pool,
      io::BlockDevice& brick_device,
      std::uint64_t* blocks_read = nullptr) const;

  [[nodiscard]] const BuildStats& build_stats() const { return stats_; }
  [[nodiscard]] core::ScalarKind scalar_kind() const { return kind_; }
  [[nodiscard]] std::size_t record_size() const { return record_size_; }

  /// Offset of the first index block on the device.
  [[nodiscard]] std::uint64_t base_offset() const { return base_offset_; }

 private:
  /// Reads `length` bytes at `offset` via either backend.
  template <typename ReadFn>
  QueryPlan walk(core::ValueKey isovalue, ReadFn&& read_block,
                 std::uint64_t* blocks_read) const;

  std::uint64_t base_offset_ = 0;
  std::vector<std::uint64_t> block_offsets_;  ///< device offset per block id
  std::uint32_t block_bytes_ = 0;
  std::uint32_t root_block_ = 0;
  core::ScalarKind kind_ = core::ScalarKind::kU8;
  std::size_t record_size_ = 0;
  bool empty_ = true;
  BuildStats stats_;
};

}  // namespace oociso::index
