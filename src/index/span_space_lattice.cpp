#include "index/span_space_lattice.h"

#include <algorithm>
#include <stdexcept>

namespace oociso::index {

SpanSpaceLattice::SpanSpaceLattice(
    const std::vector<metacell::MetacellInfo>& infos, std::uint32_t resolution)
    : resolution_(resolution), interval_count_(infos.size()) {
  if (resolution == 0) {
    throw std::invalid_argument("lattice resolution must be positive");
  }
  buckets_.resize(static_cast<std::size_t>(resolution) * resolution);
  if (infos.empty()) return;

  lo_ = infos.front().interval.vmin;
  hi_ = infos.front().interval.vmax;
  for (const auto& info : infos) {
    lo_ = std::min(lo_, info.interval.vmin);
    hi_ = std::max(hi_, info.interval.vmax);
  }
  if (hi_ <= lo_) hi_ = lo_ + 1;

  for (const auto& info : infos) {
    const std::uint32_t col = bucket_of(info.interval.vmin);
    const std::uint32_t row = bucket_of(info.interval.vmax);
    buckets_[static_cast<std::size_t>(row) * resolution_ + col].push_back(info);
  }
}

std::uint32_t SpanSpaceLattice::bucket_of(core::ValueKey value) const {
  const auto scaled = static_cast<std::int64_t>(
      (value - lo_) / (hi_ - lo_) * static_cast<core::ValueKey>(resolution_));
  return static_cast<std::uint32_t>(std::clamp<std::int64_t>(
      scaled, 0, static_cast<std::int64_t>(resolution_) - 1));
}

std::vector<std::uint32_t> SpanSpaceLattice::query(
    core::ValueKey isovalue, QueryCounters* counters) const {
  std::vector<std::uint32_t> ids;
  QueryCounters local;
  const std::uint32_t q = bucket_of(isovalue);

  // Interior region: col < q, row > q — wholly active, no per-interval test.
  for (std::uint32_t row = q + 1; row < resolution_; ++row) {
    for (std::uint32_t col = 0; col < q; ++col) {
      const auto& cell = bucket(col, row);
      if (cell.empty()) continue;
      ++local.buckets_touched;
      for (const auto& info : cell) ids.push_back(info.id);
      local.reported += cell.size();
    }
  }
  // Boundary column q (rows > q) and boundary row q (cols <= q): test each.
  auto examine = [&](const std::vector<metacell::MetacellInfo>& cell) {
    if (cell.empty()) return;
    ++local.buckets_touched;
    for (const auto& info : cell) {
      ++local.examined;
      if (info.interval.stabs(isovalue)) {
        ids.push_back(info.id);
        ++local.reported;
      }
    }
  };
  for (std::uint32_t row = q + 1; row < resolution_; ++row) examine(bucket(q, row));
  for (std::uint32_t col = 0; col <= q; ++col) examine(bucket(col, q));

  if (counters != nullptr) *counters = local;
  return ids;
}

std::size_t SpanSpaceLattice::size_bytes() const {
  std::size_t bytes = sizeof(*this) +
                      buckets_.size() * sizeof(buckets_.front());
  bytes += interval_count_ * sizeof(metacell::MetacellInfo);
  return bytes;
}

}  // namespace oociso::index
