#include "index/span_analysis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oociso::index {

SpanProfile::SpanProfile(const std::vector<metacell::MetacellInfo>& infos,
                         std::uint32_t buckets) {
  if (buckets == 0) {
    throw std::invalid_argument("SpanProfile: need at least one bucket");
  }
  counts_.assign(buckets, 0);
  if (infos.empty()) return;

  lo_ = infos.front().interval.vmin;
  hi_ = infos.front().interval.vmax;
  for (const auto& info : infos) {
    lo_ = std::min(lo_, info.interval.vmin);
    hi_ = std::max(hi_, info.interval.vmax);
  }
  if (hi_ <= lo_) hi_ = lo_ + 1;

  // Difference array: +1 where an interval starts stabbing, -1 after it
  // stops; prefix sums give per-bucket active counts in O(N + buckets).
  std::vector<std::int64_t> delta(buckets + 1, 0);
  for (const auto& info : infos) {
    const std::uint32_t first = bucket_of(info.interval.vmin);
    const std::uint32_t last = bucket_of(info.interval.vmax);
    ++delta[first];
    --delta[last + 1];
  }
  std::int64_t running = 0;
  for (std::uint32_t b = 0; b < buckets; ++b) {
    running += delta[b];
    counts_[b] = static_cast<std::uint64_t>(running);
  }
}

std::uint32_t SpanProfile::bucket_of(core::ValueKey value) const {
  const auto buckets = static_cast<core::ValueKey>(counts_.size());
  const auto scaled =
      static_cast<std::int64_t>((value - lo_) / (hi_ - lo_) * buckets);
  return static_cast<std::uint32_t>(std::clamp<std::int64_t>(
      scaled, 0, static_cast<std::int64_t>(counts_.size()) - 1));
}

std::uint64_t SpanProfile::active_estimate(core::ValueKey isovalue) const {
  if (isovalue < lo_ || isovalue > hi_) return 0;
  return counts_[bucket_of(isovalue)];
}

core::ValueKey SpanProfile::bucket_center(std::uint32_t bucket) const {
  const auto buckets = static_cast<core::ValueKey>(counts_.size());
  return lo_ + (hi_ - lo_) *
                   (static_cast<core::ValueKey>(bucket) + 0.5f) / buckets;
}

std::vector<core::ValueKey> SpanProfile::suggest_isovalues(
    std::uint32_t k) const {
  std::vector<std::uint32_t> order(counts_.size());
  for (std::uint32_t b = 0; b < order.size(); ++b) order[b] = b;
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return counts_[a] != counts_[b] ? counts_[a] > counts_[b]
                                              : a < b;
            });

  const auto min_separation =
      static_cast<std::int64_t>(counts_.size() / 8 + 1);
  std::vector<std::uint32_t> chosen;
  for (const std::uint32_t bucket : order) {
    if (counts_[bucket] == 0 || chosen.size() >= k) break;
    const bool close_to_existing = std::any_of(
        chosen.begin(), chosen.end(), [&](std::uint32_t existing) {
          return std::abs(static_cast<std::int64_t>(existing) -
                          static_cast<std::int64_t>(bucket)) < min_separation;
        });
    if (!close_to_existing) chosen.push_back(bucket);
  }

  std::sort(chosen.begin(), chosen.end());
  std::vector<core::ValueKey> suggestions;
  suggestions.reserve(chosen.size());
  for (const std::uint32_t bucket : chosen) {
    suggestions.push_back(bucket_center(bucket));
  }
  return suggestions;
}

}  // namespace oociso::index
