#include "index/hierarchy.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <limits>
#include <list>
#include <unordered_map>
#include <utility>

#include "io/serial.h"  // little-endian static_assert backs the raw memcpys
#include "util/crc32.h"

namespace oociso::index {
namespace {

std::size_t put_scalar(std::byte* out, core::ScalarKind kind, float value) {
  switch (kind) {
    case core::ScalarKind::kU8: {
      const auto narrow = static_cast<std::uint8_t>(value);
      std::memcpy(out, &narrow, sizeof(narrow));
      return sizeof(narrow);
    }
    case core::ScalarKind::kU16: {
      const auto narrow = static_cast<std::uint16_t>(value);
      std::memcpy(out, &narrow, sizeof(narrow));
      return sizeof(narrow);
    }
    case core::ScalarKind::kF32:
      std::memcpy(out, &value, sizeof(value));
      return sizeof(value);
  }
  return 0;
}

/// Point lookups into the fine volume through the source's own record
/// format, with a small LRU of decoded metacells: downsampling walks the
/// coarse lattice x-fastest, so consecutive lookups land in the same few
/// fine metacells.
class FineSampleCache {
 public:
  FineSampleCache(const metacell::MetacellSource& source, std::size_t capacity)
      : source_(source), geometry_(source.geometry()), capacity_(capacity) {
    assert(capacity_ > 0);
  }

  [[nodiscard]] float sample(core::Coord3 f) {
    const core::GridDims& dims = geometry_.volume_dims();
    f.x = std::min(f.x, dims.nx - 1);
    f.y = std::min(f.y, dims.ny - 1);
    f.z = std::min(f.z, dims.nz - 1);
    const std::int32_t cells = geometry_.cells_per_side();
    const core::GridDims& mdims = geometry_.metacell_dims();
    const core::Coord3 m{std::min(f.x / cells, mdims.nx - 1),
                         std::min(f.y / cells, mdims.ny - 1),
                         std::min(f.z / cells, mdims.nz - 1)};
    const metacell::DecodedMetacell& cell = fetch(geometry_.id(m));
    return cell.sample(f.x - m.x * cells, f.y - m.y * cells,
                       f.z - m.z * cells);
  }

 private:
  struct Slot {
    std::list<std::uint32_t>::iterator order;
    metacell::DecodedMetacell cell;
  };

  [[nodiscard]] const metacell::DecodedMetacell& fetch(std::uint32_t id) {
    auto it = map_.find(id);
    if (it != map_.end()) {
      order_.splice(order_.begin(), order_, it->second.order);
      return it->second.cell;
    }
    if (map_.size() >= capacity_) {
      map_.erase(order_.back());
      order_.pop_back();
    }
    scratch_.clear();
    source_.encode(id, scratch_);
    order_.push_front(id);
    Slot& slot = map_[id];
    slot.order = order_.begin();
    metacell::decode_metacell(scratch_, source_.kind(), geometry_, slot.cell);
    return slot.cell;
  }

  const metacell::MetacellSource& source_;
  metacell::MetacellGeometry geometry_;
  std::size_t capacity_;
  std::list<std::uint32_t> order_;  ///< most recent first
  std::unordered_map<std::uint32_t, Slot> map_;
  std::vector<std::byte> scratch_;
};

}  // namespace

core::GridDims hierarchy_level_dims(const core::GridDims& base,
                                    std::int32_t level) {
  if (level <= 0) return base;
  const std::int64_t stride = std::int64_t{1} << level;
  const auto shrink = [stride](std::int32_t n) {
    if (n <= 1) return n;
    const std::int64_t cells = (n - 1 + stride - 1) / stride;  // ceil
    return static_cast<std::int32_t>(cells + 1);
  };
  return {shrink(base.nx), shrink(base.ny), shrink(base.nz)};
}

metacell::MetacellGeometry hierarchy_level_geometry(
    const metacell::MetacellGeometry& base, std::int32_t level) {
  if (level <= 0) return base;
  return {hierarchy_level_dims(base.volume_dims(), level),
          base.samples_per_side()};
}

HierarchyBuildResult build_hierarchy(
    const std::vector<metacell::MetacellInfo>& infos,
    const metacell::MetacellSource& source,
    std::span<io::BlockDevice* const> devices, std::int32_t levels) {
  HierarchyBuildResult result;
  result.per_device.resize(devices.size());
  if (levels <= 1 || devices.empty()) return result;

  const metacell::MetacellGeometry& base = source.geometry();
  const std::int32_t k = base.samples_per_side();
  const core::ScalarKind kind = source.kind();

  // Kept nodes of the level below, keyed by that level's linear metacell id.
  // Level 0's kept set is exactly the culled metacell infos.
  std::unordered_map<std::uint64_t, core::ValueInterval> kept;
  kept.reserve(infos.size());
  for (const metacell::MetacellInfo& info : infos) {
    kept.emplace(info.id, info.interval);
  }
  core::GridDims child_mdims = base.metacell_dims();

  FineSampleCache cache(source, 64);
  const auto samples_per_cell = static_cast<std::size_t>(k);
  std::vector<float> samples(samples_per_cell * samples_per_cell *
                             samples_per_cell);
  std::vector<std::byte> record;
  std::size_t stripe_cursor = 0;

  for (std::int32_t level = 1; level < levels; ++level) {
    const metacell::MetacellGeometry geometry =
        hierarchy_level_geometry(base, level);
    const core::GridDims level_dims = geometry.volume_dims();
    const core::GridDims mdims = geometry.metacell_dims();
    const std::int64_t stride = std::int64_t{1} << level;
    for (std::vector<HierarchyLevel>& stripe : result.per_device) {
      stripe.push_back(HierarchyLevel{level, {}});
    }
    std::unordered_map<std::uint64_t, core::ValueInterval> next_kept;

    for (std::uint64_t mc = 0; mc < geometry.metacell_count(); ++mc) {
      const auto id = static_cast<std::uint32_t>(mc);
      const core::Coord3 c = geometry.coord(id);
      // Exact hull of the kept children: the level-(l-1) metacells
      // 2c + {0,1}^3 tile this node's footprint exactly (see header).
      bool any = false;
      core::ValueInterval hull;
      for (std::int32_t dz = 0; dz < 2; ++dz) {
        for (std::int32_t dy = 0; dy < 2; ++dy) {
          for (std::int32_t dx = 0; dx < 2; ++dx) {
            const core::Coord3 child{2 * c.x + dx, 2 * c.y + dy, 2 * c.z + dz};
            if (!child_mdims.contains(child)) continue;
            const auto it = kept.find(child_mdims.linear(child));
            if (it == kept.end()) continue;
            hull = any ? hull.hull(it->second) : it->second;
            any = true;
          }
        }
      }
      if (!any) continue;

      // Downsampled brick in the standard record format: coarse sample i
      // reads fine position min(i * 2^level, n-1).
      const core::Coord3 origin = geometry.sample_origin(id);
      float vmin = std::numeric_limits<float>::infinity();
      std::size_t cursor = 0;
      for (std::int32_t sz = 0; sz < k; ++sz) {
        for (std::int32_t sy = 0; sy < k; ++sy) {
          for (std::int32_t sx = 0; sx < k; ++sx) {
            const core::Coord3 coarse{
                std::min(origin.x + sx, level_dims.nx - 1),
                std::min(origin.y + sy, level_dims.ny - 1),
                std::min(origin.z + sz, level_dims.nz - 1)};
            const float value =
                cache.sample({static_cast<std::int32_t>(coarse.x * stride),
                              static_cast<std::int32_t>(coarse.y * stride),
                              static_cast<std::int32_t>(coarse.z * stride)});
            samples[cursor++] = value;
            vmin = std::min(vmin, value);
          }
        }
      }
      record.resize(source.record_size());
      std::byte* out = record.data();
      std::memcpy(out, &id, sizeof(id));
      out += sizeof(id);
      out += put_scalar(out, kind, vmin);
      for (const float value : samples) out += put_scalar(out, kind, value);
      assert(out == record.data() + record.size());

      const std::size_t device = stripe_cursor++ % devices.size();
      const std::uint64_t offset = devices[device]->append(record);
      const std::uint32_t crc = util::crc32(record);
      result.per_device[device].back().entries.push_back(
          HierarchyEntry{id, hull, offset, crc});
      next_kept.emplace(mc, hull);
      result.nodes_written += 1;
      result.bytes_written += record.size();
    }

    kept = std::move(next_kept);
    child_mdims = mdims;
    // A single-metacell level has nothing left to aggregate.
    if (geometry.metacell_count() <= 1) break;
  }
  return result;
}

}  // namespace oociso::index
