#pragma once
// Range-space partition distribution baseline (Zhang, Bajaj, Blanke 2001).
//
// The scalar range is split into K equal intervals; a metacell whose
// interval spans buckets (i = bucket(vmin), j = bucket(vmax)) maps to entry
// (i, j) of a triangular matrix, and whole entries are dealt out to the p
// processors round-robin. The paper (Section 2) points out the weakness
// this repository's ablation A2 measures: all metacells of one entry land
// on one processor, so an isovalue that activates few, heavily-populated
// entries produces a badly unbalanced load — in contrast to per-metacell
// brick striping, which balances for every isovalue.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/interval.h"
#include "metacell/metacell.h"

namespace oociso::index {

class RangePartition {
 public:
  /// Distributes `infos` over `processors` using a K x K triangular matrix
  /// (K defaults to 16 intervals, a typical choice in the original work).
  RangePartition(const std::vector<metacell::MetacellInfo>& infos,
                 std::uint32_t processors, std::uint32_t k = 16)
      : k_(std::max<std::uint32_t>(k, 1)),
        processors_(std::max<std::uint32_t>(processors, 1)) {
    if (!infos.empty()) {
      lo_ = infos.front().interval.vmin;
      hi_ = infos.front().interval.vmax;
      for (const auto& info : infos) {
        lo_ = std::min(lo_, info.interval.vmin);
        hi_ = std::max(hi_, info.interval.vmax);
      }
      if (hi_ <= lo_) hi_ = lo_ + 1;
    }
    assignment_.reserve(infos.size());
    for (const auto& info : infos) {
      const std::uint32_t entry = bucket_of(info.interval.vmin) * k_ +
                                  bucket_of(info.interval.vmax);
      assignment_.push_back(entry % processors_);
    }
  }

  /// Processor assigned to infos[index].
  [[nodiscard]] std::uint32_t owner(std::size_t index) const {
    return assignment_[index];
  }

  /// Per-processor count of *active* metacells for an isovalue.
  [[nodiscard]] std::vector<std::uint64_t> active_per_processor(
      const std::vector<metacell::MetacellInfo>& infos,
      core::ValueKey isovalue) const {
    std::vector<std::uint64_t> counts(processors_, 0);
    for (std::size_t i = 0; i < infos.size(); ++i) {
      if (infos[i].interval.stabs(isovalue)) ++counts[assignment_[i]];
    }
    return counts;
  }

 private:
  [[nodiscard]] std::uint32_t bucket_of(core::ValueKey value) const {
    const auto scaled = static_cast<std::int64_t>(
        (value - lo_) / (hi_ - lo_) * static_cast<core::ValueKey>(k_));
    return static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(scaled, 0, static_cast<std::int64_t>(k_) - 1));
  }

  std::uint32_t k_;
  std::uint32_t processors_;
  core::ValueKey lo_ = 0;
  core::ValueKey hi_ = 1;
  std::vector<std::uint32_t> assignment_;
};

}  // namespace oociso::index
