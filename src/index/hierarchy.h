#pragma once
// Multi-resolution metacell hierarchy (index format v5).
//
// A mip pyramid over the metacell grid: level 0 is the full-resolution
// compact interval tree, and each coarse level l >= 1 samples the volume at
// stride 2^l. A level-l metacell at grid coordinate C covers exactly the
// level-(l-1) metacells 2C + {0,1}^3 (clamped to the child grid), so every
// finer metacell has exactly one parent and the pyramid tiles the domain
// completely at every level.
//
// Each kept coarse node stores
//   * the exact hull of its kept children's (vmin, vmax) intervals — by
//     induction the hull of every full-resolution descendant, which is what
//     makes coarse-to-fine refinement conservative: a fine metacell active
//     at isovalue lambda implies every ancestor's interval stabs lambda,
//   * a downsampled coarse brick in the standard metacell record format
//     (u32 id + native vmin + k^3 native samples), so the ordinary decode +
//     marching-cubes path extracts an approximate surface per coarse node.
//
// Coarse sample i along an axis sits at fine position min(i * 2^l, n-1):
// the coarse lattice is *ceil*-sized (hierarchy_level_dims) so it always
// reaches the volume edge — a floor-sized lattice would silently drop the
// border region whenever (n-1) is not a multiple of 2^l, breaking the
// every-child-has-a-parent invariant the refinement contract rests on.
//
// On disk the coarse records are appended to the node stores strictly after
// all primary and replica data (device-space offsets, one CRC32 per
// record), and the per-level entry tables serialize as the v5 hierarchy
// section appended after every existing section — which is why a
// `--levels 1` build stays byte-identical to v4.

#include <cstdint>
#include <span>
#include <vector>

#include "core/grid.h"
#include "core/interval.h"
#include "io/block_device.h"
#include "metacell/metacell.h"
#include "metacell/source.h"

namespace oociso::index {

/// One coarse node of one hierarchy level, local to one node's store.
struct HierarchyEntry {
  std::uint32_t id = 0;          ///< linear id in the level's metacell grid
  core::ValueInterval interval;  ///< exact hull of the kept children
  std::uint64_t offset = 0;      ///< device-space offset of the coarse record
  std::uint32_t crc = 0;         ///< CRC32 of the whole record
};

/// One coarse level of a tree's hierarchy (level 1 = first 2x downsample;
/// level 0 is the tree's own full-resolution structure and is not stored).
struct HierarchyLevel {
  std::int32_t level = 1;
  std::vector<HierarchyEntry> entries;  ///< this store's stripe, id order
};

/// Sample-lattice dimensions of hierarchy level `level` (level 0 returns
/// `base` unchanged). Ceil-sized: n_l = ceil((n-1) / 2^l) + 1 per axis, so
/// the coarse lattice covers the whole domain with the last sample clamped
/// to the volume edge.
[[nodiscard]] core::GridDims hierarchy_level_dims(const core::GridDims& base,
                                                  std::int32_t level);

/// Metacell geometry of hierarchy level `level` for a base decomposition.
[[nodiscard]] metacell::MetacellGeometry hierarchy_level_geometry(
    const metacell::MetacellGeometry& base, std::int32_t level);

/// Everything the builder's hierarchy pass produced.
struct HierarchyBuildResult {
  /// per_device[d] holds device d's stripe of every built level, ordered
  /// coarse level 1 first. All devices carry the same level list (levels a
  /// stripe has no nodes on are present with empty entry tables).
  std::vector<std::vector<HierarchyLevel>> per_device;
  std::uint64_t nodes_written = 0;  ///< coarse records across all levels
  std::uint64_t bytes_written = 0;  ///< coarse record bytes appended
};

/// Builds the coarse levels for a metacell set and appends their records to
/// the devices (round-robin striping, continuing across levels). `levels`
/// counts the full-resolution level: levels <= 1 builds nothing. Level
/// generation stops early once a level collapses to a single metacell —
/// further levels could only repeat it. Must run strictly after all primary
/// and replica bytes are on the devices: coarse records are addressed by
/// the device-space offsets append() returns.
[[nodiscard]] HierarchyBuildResult build_hierarchy(
    const std::vector<metacell::MetacellInfo>& infos,
    const metacell::MetacellSource& source,
    std::span<io::BlockDevice* const> devices, std::int32_t levels);

}  // namespace oociso::index
