#pragma once
// Span-space analysis: answering "which isovalues are interesting, and how
// much will each cost?" without touching the data.
//
// The metacell intervals collected at preprocessing time determine, for
// every isovalue, exactly how many metacells a query will read (and hence,
// to first order, its I/O and triangulation cost). SpanProfile computes the
// active-count function over the whole value range in O(N + buckets) via a
// difference array — the basis for query cost prediction and for the
// isovalue suggestions exposed by the exploration tooling.

#include <cstdint>
#include <vector>

#include "core/interval.h"
#include "metacell/metacell.h"

namespace oociso::index {

class SpanProfile {
 public:
  /// Profiles `infos` over `buckets` equal value bins spanning the data's
  /// endpoint range (at least one bucket; empty input gives a flat zero
  /// profile).
  explicit SpanProfile(const std::vector<metacell::MetacellInfo>& infos,
                       std::uint32_t buckets = 256);

  /// Number of metacells whose interval overlaps the bucket containing
  /// `isovalue` — an upper bound on (and, up to endpoints falling inside
  /// the bucket, equal to) the exact active count at any isovalue in the
  /// bucket. With integer-valued data and one bucket per integer the
  /// estimate is exact.
  [[nodiscard]] std::uint64_t active_estimate(core::ValueKey isovalue) const;

  /// Active counts per bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] core::ValueKey bucket_center(std::uint32_t bucket) const;
  [[nodiscard]] core::ValueKey lo() const { return lo_; }
  [[nodiscard]] core::ValueKey hi() const { return hi_; }

  /// Up to k isovalue suggestions: centers of the most active buckets,
  /// greedily separated by at least one-eighth of the range so the
  /// suggestions span distinct features rather than one peak.
  [[nodiscard]] std::vector<core::ValueKey> suggest_isovalues(
      std::uint32_t k) const;

 private:
  [[nodiscard]] std::uint32_t bucket_of(core::ValueKey value) const;

  core::ValueKey lo_ = 0;
  core::ValueKey hi_ = 1;
  std::vector<std::uint64_t> counts_;
};

}  // namespace oociso::index
