#pragma once
// The paper's contribution: the *compact interval tree* (Section 4) and its
// brick disk layout, including the striped parallel variant (Section 5.1).
//
// Structure. Let n be the number of distinct endpoint values among all
// metacell intervals. A binary tree is built over these endpoints: each node
// holds the median (split) value of the endpoints in its range and owns the
// intervals that contain the split. Unlike the standard interval tree, a
// node does NOT store its intervals in two sorted lists. Instead, the
// node's metacells are grouped by their vmax into *bricks*: all metacells
// of a node with equal vmax are stored contiguously on disk, sorted by
// increasing vmin; the node's bricks are stored contiguously in decreasing
// vmax order. The node keeps only one small index entry per non-empty brick:
//     { vmax, min vmin within the brick, disk offset, metacell count }
// so the in-core structure is O(n log n) entries total, versus Omega(N)
// (N = number of intervals) for the standard interval tree.
//
// Query (Section 5). Walk the root-to-leaf path for isovalue lambda. At a
// node with split v_m:
//   * lambda > v_m (Case 1): every owned metacell has vmin <= v_m < lambda,
//     so the active ones are exactly those with vmax >= lambda: read bricks
//     sequentially from the first (largest vmax) until vmax < lambda — one
//     bulk, contiguous read.
//   * lambda < v_m (Case 2): every owned metacell has vmax >= v_m > lambda,
//     so the active ones are those with vmin <= lambda: scan each brick's
//     vmin-sorted prefix, stopping at the first vmin > lambda; bricks whose
//     stored min-vmin exceeds lambda are skipped with no I/O.
//   * lambda == v_m: all owned metacells are active; read every brick fully.
// Total I/O: O(log n + T/B) with the index in core.
//
// Parallel layout (Section 5.1). Each brick's vmin-sorted metacell list is
// striped round-robin across the p local disks; every node of the cluster
// keeps its own tree whose brick entries describe only the local stripe
// (local count, local min-vmin, local offset). For any isovalue the active
// prefix of each brick splits across disks with per-disk counts differing
// by at most 1 per brick, which is the provable load-balance property.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "codec/chunk_map.h"
#include "core/interval.h"
#include "index/hierarchy.h"
#include "io/block_device.h"
#include "metacell/metacell.h"
#include "metacell/source.h"
#include "placement/replica_map.h"

namespace oociso::index {

/// One replica copy of a placement group: node `node` holds the group's
/// bytes verbatim starting at *raw* offset `base`. Under a compressed (v4)
/// index raw offsets are the uncompressed-equivalent addresses every
/// consumer plans in; `device_base` is where the copy's encoded bytes
/// physically start on the holder. Uncompressed indexes have
/// `device_base == base` (raw and device space coincide).
struct ReplicaTarget {
  std::uint32_t node = 0;
  std::uint64_t base = 0;
  std::uint64_t device_base = 0;
};

/// One placement group of a stripe tree: the group covers the contiguous
/// primary byte range [begin, end) on the stripe owner's device, and each
/// target holds an identical copy (see CompactTreeBuilder's replication
/// pass). Groups of a tree are disjoint and sorted by `begin`.
struct ReplicaGroup {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::vector<ReplicaTarget> targets;  ///< replication - 1 entries

  /// Maps a primary-device offset inside [begin, end) onto target `rank`'s
  /// device. Pure arithmetic — replicas are verbatim byte copies.
  [[nodiscard]] std::uint64_t translate(std::size_t rank,
                                        std::uint64_t offset) const {
    return targets[rank].base + (offset - begin);
  }
};

/// Non-owning view of a tree's replica tables, handed to the scheduler and
/// the retrieval stream. Inactive (replication <= 1 or no groups) means
/// "primary only" — the pre-replication behavior, bit for bit.
struct ReplicaDirectory {
  std::size_t replication = 1;
  std::span<const ReplicaGroup> groups{};

  [[nodiscard]] bool active() const {
    return replication > 1 && !groups.empty();
  }
  /// Index of the group containing primary offset `offset`, or
  /// `groups.size()` when no group covers it.
  [[nodiscard]] std::size_t group_of(std::uint64_t offset) const;
};

/// One index-list entry: a non-empty brick of metacells sharing a vmax.
struct BrickEntry {
  core::ValueKey vmax = 0;      ///< common vmax of the brick's metacells
  core::ValueKey min_vmin = 0;  ///< smallest vmin in the (local) brick
  std::uint64_t offset = 0;     ///< start of the brick on the local disk
  std::uint32_t count = 0;      ///< metacells in the (local) brick
  /// First of this brick's chunk checksums in the tree's CRC array (see
  /// CompactIntervalTree::chunk_crcs(); the chunk count follows from
  /// `count` and the tree's crc_chunk_records()).
  std::uint32_t crc_begin = 0;
};

/// Binary-tree node over distinct endpoint values.
struct CompactNode {
  core::ValueKey split = 0;
  std::int32_t left = -1;   ///< index into nodes(), -1 if none
  std::int32_t right = -1;
  std::uint32_t brick_begin = 0;  ///< [begin, end) into bricks()
  std::uint32_t brick_end = 0;
};

/// One brick read produced by planning a query.
struct BrickScan {
  std::uint64_t offset = 0;
  std::uint32_t metacell_count = 0;  ///< total metacells in the brick
  bool full = false;  ///< read everything vs vmin-bounded prefix scan
  /// Expected CRC32 per chunk of `QueryPlan::crc_chunk_records` records
  /// (last chunk ragged). Views the owning tree's array — the tree must
  /// outlive the plan. Empty when the index carries no checksums (e.g. a
  /// plan walked out of the blocked external tree).
  std::span<const std::uint32_t> chunk_crcs{};
  /// Hierarchy level the scan reads (0 = full resolution; see plan_level()).
  std::int32_t level = 0;
};

struct QueryPlan {
  std::vector<BrickScan> scans;
  std::uint32_t nodes_visited = 0;
  core::ValueKey isovalue = 0;
  /// Records per checksummed chunk; 0 when the scans carry no checksums.
  std::uint32_t crc_chunk_records = 0;
  /// Hierarchy level every scan of this plan reads (plans are single-level;
  /// 0 = the full-resolution tree walk).
  std::int32_t level = 0;

  /// Sum of the planned scans' metacell counts — an upper bound on the
  /// records the query will deliver (Case-2 prefix scans stop early), tight
  /// enough to pre-size output containers.
  [[nodiscard]] std::uint64_t total_records() const {
    std::uint64_t total = 0;
    for (const BrickScan& scan : scans) total += scan.metacell_count;
    return total;
  }
};

/// Result counters for one executed query.
struct QueryStats {
  std::uint64_t active_metacells = 0;   ///< records delivered to the callback
  std::uint64_t records_fetched = 0;    ///< includes per-brick overshoot
  std::uint64_t bricks_scanned = 0;
  std::uint32_t nodes_visited = 0;
};

/// Executes a query plan against the brick device, invoking `callback` with
/// each active metacell record. A convenience wrapper over RetrievalStream
/// (retrieval_stream.h) — the stream is the single retrieval path shared by
/// the in-core tree, the blocked external tree (external_tree.h), and the
/// structured/unstructured query engines; `plan.nodes_visited` is carried
/// into the returned stats.
QueryStats execute_plan(const QueryPlan& plan, core::ScalarKind kind,
                        std::size_t record_size, io::BlockDevice& device,
                        const std::function<void(std::span<const std::byte>)>&
                            callback);

/// In-core compact interval tree for one disk (one cluster node's stripe).
class CompactIntervalTree {
 public:
  CompactIntervalTree() = default;

  /// Plans the root-to-leaf walk for an isovalue; no I/O.
  [[nodiscard]] QueryPlan plan(core::ValueKey isovalue) const;

  /// Plans an isovalue query against one hierarchy level. Level 0 is
  /// plan(); level l >= 1 stabs the coarse level's entry table and emits
  /// one single-record scan per active coarse node (each coarse record is
  /// its own CRC chunk, so the returned plan has crc_chunk_records == 1).
  /// Throws std::out_of_range when the tree has no such level.
  [[nodiscard]] QueryPlan plan_level(core::ValueKey isovalue,
                                     std::int32_t level) const;

  /// Executes a plan against the brick device, invoking `callback` with each
  /// active metacell's serialized record. Case-2 scans decode each record's
  /// vmin field to stop past the active prefix. Implemented on top of the
  /// batched RetrievalStream; pull-based consumers should open a stream
  /// directly (see retrieval_stream.h).
  QueryStats execute(const QueryPlan& plan, io::BlockDevice& device,
                     const std::function<void(std::span<const std::byte>)>&
                         callback) const;

  /// plan() + execute().
  QueryStats query(core::ValueKey isovalue, io::BlockDevice& device,
                   const std::function<void(std::span<const std::byte>)>&
                       callback) const;

  // -- structure accessors ------------------------------------------------
  [[nodiscard]] const std::vector<CompactNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<BrickEntry>& bricks() const { return bricks_; }
  [[nodiscard]] std::int32_t root() const { return root_; }
  [[nodiscard]] core::ScalarKind scalar_kind() const { return kind_; }
  [[nodiscard]] std::size_t record_size() const { return record_size_; }
  [[nodiscard]] std::uint64_t total_metacells() const {
    return total_metacells_;
  }

  /// Records per checksummed brick chunk (fixed at build time from the
  /// device block size); 0 for an index built without checksums.
  [[nodiscard]] std::uint32_t crc_chunk_records() const {
    return crc_chunk_records_;
  }
  /// Per-chunk CRC32s, indexed via BrickEntry::crc_begin.
  [[nodiscard]] const std::vector<std::uint32_t>& chunk_crcs() const {
    return chunk_crcs_;
  }

  /// Copies per placement group, including the primary (1 = unreplicated).
  [[nodiscard]] std::size_t replication() const { return replication_; }
  /// Per-group replica table, sorted by primary begin offset; empty when
  /// replication() == 1.
  [[nodiscard]] const std::vector<ReplicaGroup>& replica_groups() const {
    return replica_groups_;
  }
  [[nodiscard]] ReplicaDirectory replica_directory() const {
    return ReplicaDirectory{replication_, replica_groups_};
  }

  /// Build codec of the brick payload (index v4; kRaw = uncompressed, the
  /// v2/v3 layout byte for byte). Individual chunks may still be kRaw
  /// passthroughs under a kLz build — see chunk_codecs().
  [[nodiscard]] codec::Codec codec() const { return codec_; }
  [[nodiscard]] bool compressed() const {
    return codec_ != codec::Codec::kRaw;
  }
  /// Device offset of this tree's first encoded chunk (compressed trees
  /// only; chunks then sit back to back in chunk-index order).
  [[nodiscard]] std::uint64_t device_base() const { return device_base_; }
  /// Per-chunk encoded sizes / codec ids, indexed like chunk_crcs() via
  /// BrickEntry::crc_begin. Empty for an uncompressed tree.
  [[nodiscard]] const std::vector<std::uint32_t>& chunk_comp_sizes() const {
    return chunk_comp_sizes_;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& chunk_codecs() const {
    return chunk_codecs_;
  }
  /// Coarse hierarchy levels of this tree's stripe (index v5), ordered
  /// level 1 first; empty for a flat (v2–v4) index.
  [[nodiscard]] const std::vector<HierarchyLevel>& hierarchy() const {
    return hierarchy_;
  }
  /// Number of stored coarse levels (the total pyramid depth is one more:
  /// level 0 is the full-resolution tree itself).
  [[nodiscard]] std::size_t hierarchy_levels() const {
    return hierarchy_.size();
  }
  /// Device bytes of this stripe's coarse brick records across all levels.
  [[nodiscard]] std::uint64_t hierarchy_payload_bytes() const {
    std::uint64_t entries = 0;
    for (const HierarchyLevel& level : hierarchy_) {
      entries += level.entries.size();
    }
    return entries * record_size_;
  }
  /// Serialized size of the v5 hierarchy section, CRC trailer included
  /// (0 for a flat tree) — the section is the suffix of to_bytes().
  [[nodiscard]] std::size_t hierarchy_section_bytes() const;

  /// Serialization version to_bytes() writes for this tree: 5 hierarchical,
  /// 4 compressed, 3 replicated-uncompressed, 2 base.
  [[nodiscard]] std::uint32_t format_version() const {
    if (!hierarchy_.empty()) return 5;
    if (compressed()) return 4;
    return replication_ > 1 ? 3 : 2;
  }
  /// Raw (uncompressed-equivalent) bytes of the primary stripe payload.
  [[nodiscard]] std::uint64_t raw_payload_bytes() const;
  /// Encoded bytes of the primary stripe payload on the device
  /// (== raw_payload_bytes() for an uncompressed tree).
  [[nodiscard]] std::uint64_t compressed_payload_bytes() const;

  /// Number of index entries (the paper's O(n log n) size measure).
  [[nodiscard]] std::size_t entry_count() const { return bricks_.size(); }

  /// In-core footprint of the structure in bytes (checksums included —
  /// they are resident alongside the brick entries).
  [[nodiscard]] std::size_t size_bytes() const {
    return nodes_.size() * sizeof(CompactNode) +
           bricks_.size() * sizeof(BrickEntry) +
           chunk_crcs_.size() * sizeof(std::uint32_t) + sizeof(*this);
  }

  [[nodiscard]] std::size_t height() const;

  // -- persistence ----------------------------------------------------------
  /// Serializes the in-core structure (not the bricks, which live on disk).
  [[nodiscard]] std::vector<std::byte> to_bytes() const;
  [[nodiscard]] static CompactIntervalTree from_bytes(
      std::span<const std::byte> data);

 private:
  friend class CompactTreeBuilder;

  std::vector<CompactNode> nodes_;
  std::vector<BrickEntry> bricks_;
  std::vector<std::uint32_t> chunk_crcs_;  ///< per-brick-chunk checksums
  std::vector<ReplicaGroup> replica_groups_;
  std::vector<HierarchyLevel> hierarchy_;  ///< v5 coarse levels, level 1 first
  // v4 compression columns (empty / 0 for uncompressed trees): per-chunk
  // encoded size and codec id, aligned with chunk_crcs_, plus the device
  // offset the first chunk's encoded bytes start at.
  std::vector<std::uint32_t> chunk_comp_sizes_;
  std::vector<std::uint8_t> chunk_codecs_;
  codec::Codec codec_ = codec::Codec::kRaw;
  std::uint64_t device_base_ = 0;
  std::int32_t root_ = -1;
  core::ScalarKind kind_ = core::ScalarKind::kU8;
  std::size_t record_size_ = 0;
  std::uint64_t total_metacells_ = 0;
  std::uint32_t crc_chunk_records_ = 0;
  std::size_t replication_ = 1;
};

/// Builds compact interval trees and writes the brick layout.
///
/// With p devices the metacells of every brick are striped round-robin and
/// p trees are returned, tree i describing only device i's stripe. With one
/// device this is the serial structure of Section 4.
class CompactTreeBuilder {
 public:
  struct Result {
    std::vector<CompactIntervalTree> trees;  ///< one per device
    std::uint64_t bricks_written = 0;        ///< global (non-striped) bricks
    std::uint64_t metacells_written = 0;
    std::uint64_t bytes_written = 0;         ///< primary raw bytes, all devices
    std::uint64_t replica_bytes_written = 0; ///< replication pass (k > 1),
                                             ///< actual device bytes
    /// Primary bytes as stored on the devices after encoding
    /// (== bytes_written for an uncompressed build).
    std::uint64_t compressed_bytes_written = 0;
    /// Hierarchy pass (levels > 1): coarse records and device bytes
    /// appended after all primary and replica data.
    std::uint64_t hierarchy_nodes_written = 0;
    std::uint64_t hierarchy_bytes_written = 0;
  };

  /// `infos` are the (already culled) metacells with their intervals;
  /// `source` serializes records; `devices` are the p local disks (all
  /// non-null). Records are appended to each device starting at its current
  /// end. Throws std::invalid_argument on empty device list.
  ///
  /// `placement` controls k-way replication: with replication > 1 a second
  /// pass groups each stripe's bricks into placement groups of
  /// `placement.group_bricks` consecutive entries and appends a verbatim
  /// copy of every group to its replication-1 rendezvous-chosen holder
  /// devices (placement.node_count is overridden with devices.size()).
  /// The primary layout — every device's pass-1 bytes, every tree's nodes,
  /// bricks, and checksums — is byte-identical at any replication factor:
  /// replicas are appended strictly after all primary data, so replication
  /// can never perturb an unreplicated workload.
  ///
  /// `compression` selects the v4 per-chunk codec. kRaw (the default)
  /// takes the legacy code path untouched — device bytes and serialized
  /// trees stay bit-identical to v2/v3. kLz encodes every CRC chunk
  /// (codec/codec.h) and records the encoded extents in the trees; brick
  /// offsets, CRCs, and replica-group arithmetic all stay in *raw*
  /// address space, so planning and meshes are unaffected by the codec.
  /// `raw_bases` gives, per device, the raw end of data already on it —
  /// required when appending a compressed build to stores that already
  /// hold compressed data (raw end != device size then); empty means
  /// "device size", which is correct for fresh or uncompressed stores.
  ///
  /// `levels` > 1 additionally builds the multi-resolution hierarchy
  /// (hierarchy.h): levels-1 coarse mip levels whose records are appended
  /// strictly after all primary and replica data and whose entry tables
  /// make the trees serialize as v5. levels == 1 leaves every byte — device
  /// and serialized — identical to the flat build.
  static Result build(const std::vector<metacell::MetacellInfo>& infos,
                      const metacell::MetacellSource& source,
                      std::span<io::BlockDevice* const> devices,
                      const placement::PlacementConfig& placement = {},
                      codec::Codec compression = codec::Codec::kRaw,
                      std::span<const std::uint64_t> raw_bases = {},
                      std::int32_t levels = 1);
};

/// Derives the per-node raw↔device chunk maps of a loaded index: node i's
/// map covers tree i's primary chunks plus every replica-group copy other
/// trees placed on node i. Uncompressed trees contribute nothing (their
/// maps stay empty — no decode layer needed). Maps come back finalized.
[[nodiscard]] std::vector<codec::ChunkMap> build_chunk_maps(
    std::span<const CompactIntervalTree> trees);

/// Accumulating variant for stores shared by several tree sets (e.g. a
/// time-varying engine's steps appending to the same disks): merges the
/// trees' extents into `maps` (resized if needed) and re-finalizes.
void append_chunk_maps(std::vector<codec::ChunkMap>& maps,
                       std::span<const CompactIntervalTree> trees);

}  // namespace oociso::index
