#pragma once
// BBIO-style external interval tree baseline (Chiang, Silva, Schroeder
// 1998): the out-of-core comparator the paper measures itself against.
//
// The structure is a standard interval tree whose secondary lists live ON
// DISK (they are Omega(N) and, unlike the compact tree, are not assumed to
// fit in memory). The in-core part is only the node skeleton (split value,
// children, list extents). A query walks the root-to-leaf path and reads
// the qualifying prefix of each node's vmin- or vmax-sorted list from the
// index device, paying block I/O for the index itself.
//
// The returned ids then address a metacell *store* laid out in id order —
// the layout the BBIO pipeline uses so that metacells can be found without
// the index. Active ids for a query are scattered across that store, which
// is exactly the "less effective bulk data movement" the paper contrasts
// with its vmax/vmin-sorted contiguous bricks.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/interval.h"
#include "io/block_device.h"
#include "metacell/metacell.h"
#include "metacell/source.h"

namespace oociso::index {

class BbioTree {
 public:
  /// On-disk secondary-list entry.
  struct ListEntry {
    core::ValueKey key = 0;
    std::uint32_t id = 0;
  };

  struct Node {
    core::ValueKey split = 0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint64_t vmin_list_offset = 0;  ///< entries sorted by vmin asc
    std::uint64_t vmax_list_offset = 0;  ///< entries sorted by vmax desc
    std::uint32_t count = 0;             ///< intervals owned by the node
  };

  struct QueryStats {
    std::uint64_t index_entries_read = 0;
    std::uint64_t active_metacells = 0;
  };

  BbioTree() = default;

  /// Builds the tree, writing both secondary lists of every node to
  /// `index_device` (appended at its current end).
  BbioTree(const std::vector<metacell::MetacellInfo>& infos,
           io::BlockDevice& index_device);

  /// Reads qualifying list prefixes from the index device; returns active
  /// metacell ids.
  [[nodiscard]] std::vector<std::uint32_t> query(core::ValueKey isovalue,
                                                 io::BlockDevice& index_device,
                                                 QueryStats* stats = nullptr)
      const;

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] std::size_t interval_count() const { return interval_count_; }

  /// Bytes of secondary lists on the index device (the Omega(N) part).
  [[nodiscard]] std::uint64_t on_disk_bytes() const { return on_disk_bytes_; }

  /// In-core skeleton footprint.
  [[nodiscard]] std::size_t skeleton_bytes() const {
    return sizeof(*this) + nodes_.size() * sizeof(Node);
  }

 private:
  std::int32_t build(std::size_t lo, std::size_t hi,
                     std::vector<metacell::MetacellInfo> items,
                     const std::vector<core::ValueKey>& endpoints,
                     io::BlockDevice& index_device);

  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t interval_count_ = 0;
  std::uint64_t on_disk_bytes_ = 0;
};

/// Metacell store in id order — the data layout used alongside BbioTree.
/// Provides the id -> record mapping for scattered active-cell reads.
class IdOrderStore {
 public:
  /// Writes every metacell in `infos` (sorted by id) to the device.
  IdOrderStore(const std::vector<metacell::MetacellInfo>& infos,
               const metacell::MetacellSource& source,
               io::BlockDevice& device);

  /// Reads the records for the given ids (any order); ids are first sorted
  /// to give the store its best case. Unknown ids throw std::out_of_range.
  void read(std::vector<std::uint32_t> ids, io::BlockDevice& device,
            const std::function<void(std::span<const std::byte>)>& callback)
      const;

  [[nodiscard]] std::size_t record_size() const { return record_size_; }
  [[nodiscard]] std::uint64_t base_offset() const { return base_offset_; }

 private:
  /// Slot of an id within the store (ids ascending), or npos.
  [[nodiscard]] std::size_t slot_of(std::uint32_t id) const;

  std::vector<std::uint32_t> ids_;  ///< ascending; slot i holds ids_[i]
  std::size_t record_size_ = 0;
  std::uint64_t base_offset_ = 0;
};

}  // namespace oociso::index
