#pragma once
// Pull-based batched retrieval of active metacell records (the single
// consumption path for every index variant).
//
// A RetrievalStream executes a QueryPlan through the plan scheduler
// (plan_scheduler.h): full-brick scans are sorted by device offset and
// near-contiguous runs are coalesced into single large reads, with the
// Case-2 galloping prefix scans merged in at their disk position so the
// whole schedule is one forward sweep. Each call to
// next() performs exactly one BlockDevice::read — possibly covering
// several bricks — and yields the batch of active records it produced.
// Pulling instead of calling back gives consumers two things the callback
// model could not:
//
//   1. Sound phase timing. Time blocked in a device read is invisible to a
//      thread-CPU clock (CLOCK_THREAD_CPUTIME_ID does not advance while the
//      thread sleeps in pread), so the old interleaved re-marking trick
//      systematically under-reported I/O wall time on file-backed clusters.
//      The stream times each device read with a monotonic wall clock
//      (io_wall_seconds()), leaving consumers free to time decoding and
//      triangulation with the thread-CPU clock — two clean, non-interleaved
//      measurements.
//
//   2. Overlap. Batches own their bytes, so an I/O stage can prefetch the
//      next batch on one thread while a compute stage triangulates the
//      current one on another (see parallel/pipeline.h and the query
//      engines), which is how per-node completion drops from io + cpu to
//      the bounded-pipeline window.
//
// Case-2 (prefix) scans decode each record's vmin inside the stream and
// trim the batch at the end of the active prefix, so consumers only ever
// see active records. Gap bytes bridged by a coalesced read are verified
// (when the plan carries checksums) and discarded — they appear in the
// device IoStats but never in QueryStats or in a batch.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "index/compact_interval_tree.h"
#include "index/plan_scheduler.h"
#include "io/async_block_device.h"
#include "io/block_device.h"
#include "io/io_stats.h"
#include "io/retry_policy.h"
#include "io/shared_buffer_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "placement/health.h"

namespace oociso::index {

/// One contiguous run of active records produced by a single device read.
/// The batch owns its bytes so it can safely cross a pipeline queue.
struct RecordBatch {
  std::vector<std::byte> data;        ///< active records, tightly packed
  std::size_t record_size = 0;        ///< bytes per record
  std::size_t record_count = 0;       ///< active records in `data`
  std::uint64_t records_fetched = 0;  ///< records read, incl. trimmed overshoot
  io::IoStats io;                     ///< device I/O performed for this batch
  /// Shared-cache accounting when the stream reads through a pool (zeros
  /// otherwise); `io` above is then the physical device I/O this batch's
  /// misses triggered, not the logical bytes it consumed.
  io::CacheReadStats cache;
  double io_seconds = 0.0;            ///< wall clock spent inside device reads
  /// Thread-CPU seconds spent decoding compressed chunks for this batch
  /// (codec::ChunkDecodingDevice; 0 on uncompressed stores). Included in
  /// io_seconds' wall window but measured on the CPU clock, so the ledger
  /// can charge it as compute alongside the modeled device time.
  double decode_seconds = 0.0;
  /// Modeled host turnaround charged to this batch's (re)submissions by
  /// the async dispatcher (see RetrievalOptions::queue_depth); always 0 on
  /// the synchronous path. Like retry backoff, this is ledger-side modeled
  /// time, never measured wall time.
  double turnaround_modeled_seconds = 0.0;

  /// Record `i` of the batch.
  [[nodiscard]] std::span<const std::byte> record(std::size_t i) const {
    return {data.data() + i * record_size, record_size};
  }
};

/// Fault-handling counters for one stream (see RetrievalOptions).
struct RetrievalFaults {
  std::uint64_t transient_errors = 0;   ///< retriable device read failures seen
  std::uint64_t checksum_failures = 0;  ///< chunk CRC mismatches detected
  std::uint64_t retries = 0;            ///< read attempts repeated after a fault
  /// Failure-driven replica rotations: a read exhausted its per-holder
  /// budget and was re-issued against the next replica of its placement
  /// group (the brick-granular failover / hedge event). A query with
  /// hedged_reads > 0 ran degraded.
  std::uint64_t hedged_reads = 0;
  /// Reads served by a non-primary holder for any reason — load-balance
  /// routing included — so replica traffic is visible even when healthy.
  std::uint64_t rerouted_reads = 0;
  /// Modeled (not slept) exponential-backoff seconds accumulated across
  /// retries; charged to the time model, never to measured wall time.
  double backoff_modeled_seconds = 0.0;

  void merge(const RetrievalFaults& other) {
    transient_errors += other.transient_errors;
    checksum_failures += other.checksum_failures;
    retries += other.retries;
    hedged_reads += other.hedged_reads;
    rerouted_reads += other.rerouted_reads;
    backoff_modeled_seconds += other.backoff_modeled_seconds;
  }
};

/// Replica routing for one stream: how to reach every node's brick store.
/// Empty targets (the default) disables routing — the stream reads its
/// primary device/cache exactly as before replication existed. When set,
/// `targets[i]` serves node i's store: a per-stream private device handle
/// (raw path — the stream owns its accounting, see BlockDevice::read_raw)
/// and/or the node's shared pool (serve path). targets[primary] must be the
/// stream's own device/cache pair. A node whose target has neither device
/// nor cache is unreachable from this program and is never routed to.
struct ReplicaRouting {
  struct Target {
    io::BlockDevice* device = nullptr;
    io::SharedBufferPool* cache = nullptr;
  };
  std::vector<Target> targets;
  std::size_t primary = 0;
  /// Shared health tracker (optional): tripped nodes are skipped up front
  /// and failures/successes are reported back, so one query's dead node is
  /// the next query's avoided node.
  placement::NodeHealthTracker* health = nullptr;
};

/// Per-node serving counters of one routed stream (index = node id).
struct RouteCounters {
  io::IoStats io;              ///< device I/O this node served for the stream
  std::uint64_t reads = 0;     ///< scheduled reads served by this node
  std::uint64_t bytes = 0;     ///< payload bytes served (load-balance key)
  std::uint64_t failures = 0;  ///< exhausted-holder events charged here
};

struct RetrievalOptions {
  /// Bounded retry with exponential backoff for retriable io::IoError
  /// (transient device failures and in-flight corruption). A read that
  /// still fails after max_attempts rethrows the last error.
  io::RetryPolicy retry{};
  /// Verify each checksummed chunk against the plan's expected CRC32s
  /// before any record of the batch is handed to the consumer. Plans
  /// without checksums (crc_chunk_records == 0) are never verified.
  bool verify_checksums = true;
  /// Offset-sort the plan's full-brick scans and coalesce near-contiguous
  /// runs into single large reads (see plan_scheduler.h). With false the
  /// stream reproduces the legacy one-read-per-brick execution in plan
  /// order — the A/B baseline for the seek/read_op measurements.
  bool coalesce = true;
  /// Largest byte gap a coalesced read may bridge; gap bytes are read,
  /// verified when checksummed, and discarded. Negative means automatic:
  /// the device's readahead window (readahead_blocks * block_size), the
  /// span the cost model already charges at bandwidth instead of a seek.
  std::int64_t coalesce_gap_bytes = -1;
  /// Reads kept in flight per device through a modeled
  /// submission/completion queue (io::AsyncBlockDevice). 0 = the legacy
  /// fully synchronous issue-read-then-verify loop (the default — nothing
  /// changes for existing consumers). 1 = the async dispatcher at depth
  /// one: bit-identical records, QueryStats, and device IoStats, but every
  /// submission is dry and pays the modeled host turnaround. >= 2 keeps
  /// the queue primed, so only the first submission of each idle period
  /// pays — the deterministic completion-time win the queue-depth CI gate
  /// asserts. Delivery stays in plan order at every depth.
  std::size_t queue_depth = 0;
  /// Modeled host turnaround per dry submission (async path only); see
  /// io::AsyncIoConfig::submit_overhead_seconds.
  double submit_overhead_seconds = 0.0005;
  /// Attempts against one replica holder before the read rotates to the
  /// next one (replica routing only). 0 means the full retry budget
  /// (retry.max_attempts) per holder; a smaller value hedges earlier. The
  /// global backoff ladder keeps climbing across holders either way.
  int hedge_attempts = 0;
  /// Observability (both optional, null = off). `tracer` gets a
  /// "schedule_plan" span at construction, an "io.read" span per batch
  /// (covering the whole retry loop), and instant events for transient /
  /// checksum faults, all on (trace_pid, trace_tid). `metrics` gets
  /// `scheduler.*` planning counters and `retrieval.*` fault counters that
  /// mirror the per-stream RetrievalFaults.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  std::uint32_t trace_pid = 0;  ///< query id
  std::uint32_t trace_tid = 0;  ///< obs::track(node, Lane::kIo)
};

class RetrievalStream {
 public:
  /// The stream copies the plan's scan list; `device` must outlive the
  /// stream. `directory`, when given, is the brick table of the index the
  /// plan came from — it lets the scheduler bridge gaps between planned
  /// bricks while keeping every transferred byte CRC-verifiable (the
  /// directory's spans must outlive the stream). Throws std::logic_error
  /// when `record_size` is zero but the plan has scans (an empty index
  /// queried).
  /// `cache`, when given, routes every read through the shared per-node
  /// pool instead of `device`: warm frames cost no device I/O, cold ones
  /// are faulted in with single-flight dedup across concurrent streams,
  /// and every slice is still CRC-verified inside the retry loop — a
  /// cached corrupted transfer is invalidated so the retry re-reads the
  /// device. `device` is then only consulted for its geometry (block size,
  /// readahead window) and must be the pool's underlying device (or share
  /// its geometry).
  /// `routing`, when its targets are non-empty AND the directory carries an
  /// active replica placement, turns on per-read replica routing: every
  /// scheduled read (which the scheduler confined to one placement group)
  /// is served by the least-loaded live holder of its group, with
  /// brick-granular failover to the next holder when a read exhausts its
  /// per-holder budget. Routing never changes item order or payload bytes —
  /// only which device serves them — so records and meshes are identical to
  /// the healthy primary-only run under any failure pattern. Routing forces
  /// the synchronous path (queue_depth is ignored).
  RetrievalStream(QueryPlan plan, core::ScalarKind kind,
                  std::size_t record_size, io::BlockDevice& device,
                  RetrievalOptions options = {},
                  BrickDirectory directory = {},
                  io::SharedBufferPool* cache = nullptr,
                  ReplicaRouting routing = {});

  /// Produces the next batch, or std::nullopt once the plan is exhausted.
  /// Batches arrive in plan order at every queue depth. Synchronously
  /// (queue_depth == 0) each call performs exactly one device read; with
  /// the async dispatcher a call services however many in-flight reads it
  /// takes to complete the delivery head, buffering later completions. A
  /// returned batch may hold zero active records (a Case-2 probe that
  /// found the prefix already ended); its I/O is still accounted.
  [[nodiscard]] std::optional<RecordBatch> next();

  /// Running query counters; complete once next() has returned nullopt.
  /// Identical for the coalesced and the legacy schedule — gap bytes are
  /// not records fetched.
  [[nodiscard]] const QueryStats& stats() const { return stats_; }

  /// Total wall-clock seconds spent inside device reads so far. This is
  /// the sound io-time measurement: a monotonic clock around each read,
  /// nothing else in the window.
  [[nodiscard]] double io_wall_seconds() const { return io_wall_seconds_; }

  /// Total thread-CPU seconds spent decoding compressed chunks so far
  /// (0 on uncompressed stores); equals the sum over delivered batches.
  [[nodiscard]] double decode_cpu_seconds() const {
    return decode_cpu_seconds_;
  }

  /// True once every scheduled item of the plan has been consumed.
  [[nodiscard]] bool exhausted() const {
    return item_index_ >= schedule_.items.size();
  }

  /// Faults absorbed (and, for the last error of an exhausted read, about
  /// to be rethrown) so far.
  [[nodiscard]] const RetrievalFaults& faults() const { return faults_; }

  /// How the plan was scheduled (read coalescing diagnostics).
  [[nodiscard]] const ScheduledPlan& schedule() const { return schedule_; }

  /// Shared-cache accounting accumulated across all batches (zeros when
  /// the stream reads the device directly); complete after exhaustion.
  [[nodiscard]] const io::CacheReadStats& cache_stats() const {
    return cache_stats_;
  }

  /// Total modeled host turnaround charged by the async dispatcher so far
  /// (0 on the synchronous path); equals the sum over delivered batches.
  [[nodiscard]] double turnaround_modeled_seconds() const {
    return turnaround_modeled_seconds_;
  }

  /// The dispatcher's submission/completion counters; null when running
  /// synchronously (queue_depth == 0).
  [[nodiscard]] const io::AsyncIoStats* async_stats() const {
    return async_ != nullptr ? &async_->stats() : nullptr;
  }

  /// True when this stream routes reads across replica holders.
  [[nodiscard]] bool routing_active() const { return routing_active_; }

  /// Per-node serving counters (empty unless routing is active). The sum of
  /// entries' `io` is the stream's total device I/O; NodeReport aggregation
  /// uses this instead of a single device's stats when routed.
  [[nodiscard]] const std::vector<RouteCounters>& routed() const {
    return routed_;
  }

 private:
  /// Performs one pre-packed sequential read: reads, verifies every slice,
  /// then compacts the planned scans' records to the front of the batch
  /// (gap bytes are dropped).
  [[nodiscard]] RecordBatch execute_read(const ScheduledRead& read);

  /// One galloping probe of the Case-2 prefix scan `scan`; returns the
  /// batch, or nullopt when the scan is complete (advance to next item).
  [[nodiscard]] std::optional<RecordBatch> gallop_prefix(const BrickScan& scan);

  /// Reads into `batch.data` from one holder with bounded retry and
  /// wall-clock accounting; `verify` runs inside the retry loop after each
  /// attempt. `total_failures` carries the cross-holder backoff ladder;
  /// `attempt_budget` bounds attempts against this holder; `salt` feeds the
  /// deterministic backoff jitter. Throws the last error once the budget is
  /// exhausted (or immediately for non-retriable faults).
  template <typename VerifyFn>
  void read_with_retry(io::BlockDevice& device, io::SharedBufferPool* cache,
                       std::uint64_t offset, std::uint64_t salt,
                       RecordBatch& batch, int& total_failures,
                       int attempt_budget, VerifyFn&& verify);

  /// Serves one scheduled read at primary-device `offset`: without routing,
  /// exactly the legacy single-device retry loop (including batch.io
  /// attribution); with routing, selects the least-loaded live holder of
  /// the offset's placement group and rotates to the next holder whenever
  /// one exhausts its budget (a hedge). Fills batch.io/batch.cache.
  template <typename VerifyFn>
  void routed_read(std::uint64_t offset, RecordBatch& batch,
                   VerifyFn&& verify);

  /// Verifies the checksummed chunks of one slice of `data` starting at
  /// byte `data_offset`; throws a retriable io::IoError(kCorruption) on the
  /// first mismatch.
  void verify_slice(const ReadSlice& slice, std::uint64_t device_offset,
                    std::span<const std::byte> data,
                    std::size_t data_offset) const;

  // ---- async dispatch (queue_depth >= 1) ----------------------------------
  // The schedule executes as a dispatch loop: pump_submissions() keeps up
  // to queue_depth reads registered with the AsyncBlockDevice in schedule
  // order, process_one_completion() services one, verifies it, and either
  // buffers the batch under its item index (ready_) or re-submits it
  // through the same queue after a retriable fault; next_async() delivers
  // ready batches strictly in plan order. A Case-2 prefix scan is a
  // submission barrier — its probes are sequentially dependent, so no
  // later item is submitted until the scan resolves; this keeps the device
  // sweep (and with it every IoStats counter) identical to the synchronous
  // execution on the offset-monotone schedule at every depth.

  /// One in-flight read: a sequential schedule item or one gallop probe.
  struct AsyncJob {
    std::size_t item_index = 0;
    bool is_probe = false;
    std::uint64_t offset = 0;
    RecordBatch batch;        ///< owns the read buffer; accumulates retries
    ReadSlice probe_slice{};  ///< synthesized slice (probe jobs only)
    std::uint64_t probe_brick_offset = 0;
    int attempts = 0;
  };

  [[nodiscard]] std::optional<RecordBatch> next_async();
  /// Submits schedule items in order up to the depth bound (the delivery
  /// head is always allowed through so progress cannot deadlock).
  void pump_submissions();
  void submit_sequential(std::size_t item_index);
  /// Submits the gallop probe described by the current scan state of the
  /// prefix item `item_index`.
  void submit_probe(std::size_t item_index, const BrickScan& scan);
  void submit_job(AsyncJob job);
  /// Services one completion: merges accounting, verifies, and buffers the
  /// batch in ready_ — or re-submits after a retriable fault, charging
  /// backoff. Rethrows when the retry budget is exhausted.
  void process_one_completion();
  /// Compacts a completed sequential read (drops gap slices) and charges
  /// QueryStats — delivery-side so counters advance exactly as the
  /// synchronous path's.
  void compact_sequential(const ScheduledRead& read, RecordBatch& batch);

  QueryPlan plan_;
  core::ScalarKind kind_;
  std::size_t record_size_;
  io::BlockDevice& device_;
  RetrievalOptions options_;
  io::SharedBufferPool* cache_;
  ReplicaRouting routing_;
  ReplicaDirectory replicas_;  ///< views the owning tree's replica tables
  bool routing_active_ = false;
  std::vector<RouteCounters> routed_;  ///< per node; empty unless routed
  ScheduledPlan schedule_;

  // Read-size parameters (see the constructor): sequential reads are packed
  // up to full_chunk_records_; prefix scans start at one chunk's worth of
  // records and double per read, capped at max_batch_records_.
  std::size_t chunk_records_ = 1;
  std::size_t full_chunk_records_ = 1;
  std::size_t first_batch_records_ = 1;
  std::size_t max_batch_records_ = 1;

  std::size_t item_index_ = 0;   ///< current item within the schedule
  std::uint64_t scan_done_ = 0;  ///< records consumed of the current prefix
  std::size_t scan_batch_ = 0;   ///< next read size for the current prefix
  bool scan_entered_ = false;    ///< bricks_scanned charged for this prefix
  bool scan_stopped_ = false;    ///< Case-2 prefix ended early

  QueryStats stats_;
  RetrievalFaults faults_;
  io::CacheReadStats cache_stats_;
  double io_wall_seconds_ = 0.0;
  double decode_cpu_seconds_ = 0.0;
  double turnaround_modeled_seconds_ = 0.0;

  // Async dispatcher state (unused when queue_depth == 0).
  std::unique_ptr<io::AsyncBlockDevice> async_;
  std::map<std::uint64_t, AsyncJob> in_flight_;   ///< ticket -> job
  std::map<std::size_t, RecordBatch> ready_;      ///< item index -> batch
  std::size_t next_submit_item_ = 0;  ///< first schedule item not submitted
  /// Schedule index of the prefix scan currently galloping. Its probes are
  /// sequentially dependent, so no *other scan* may start until it
  /// resolves — but sequential items beyond it, up to the next un-started
  /// scan, still submit (the schedule is offset-monotone and the elevator
  /// services lowest-offset first, so the device sweep, and with it every
  /// IoStats counter, stays identical to the synchronous execution; only
  /// dry submissions drop). The pump never submits past a scan it hasn't
  /// started: that scan's probe wouldn't be in the queue to win the
  /// elevator's pick, and the head sweeping past it would turn the probe
  /// into a backward seek the synchronous order never pays.
  std::size_t barrier_item_ = SIZE_MAX;
};

/// Convenience: plan the isovalue on an in-core tree and open the stream
/// over its brick device. Passing the tree's brick directory lets the
/// scheduler coalesce across gaps with full checksum cover.
[[nodiscard]] inline RetrievalStream open_stream(
    const CompactIntervalTree& tree, core::ValueKey isovalue,
    io::BlockDevice& device, RetrievalOptions options = {}) {
  return RetrievalStream(tree.plan(isovalue), tree.scalar_kind(),
                         tree.record_size(), device, std::move(options),
                         BrickDirectory{tree.bricks(), tree.chunk_crcs()});
}

}  // namespace oociso::index
