#include "data/noise.h"

#include <cmath>

namespace oociso::data {
namespace {

/// Final mixer of splitmix64; good avalanche for lattice hashing.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr float smoothstep(float t) { return t * t * (3.0f - 2.0f * t); }

}  // namespace

float ValueNoise::lattice(std::int64_t ix, std::int64_t iy,
                          std::int64_t iz) const {
  std::uint64_t h = seed_;
  h = mix64(h ^ static_cast<std::uint64_t>(ix) * 0x9E3779B97F4A7C15ULL);
  h = mix64(h ^ static_cast<std::uint64_t>(iy) * 0xC2B2AE3D27D4EB4FULL);
  h = mix64(h ^ static_cast<std::uint64_t>(iz) * 0x165667B19E3779F9ULL);
  // Top 24 bits -> [0,1) -> [-1,1].
  return static_cast<float>(h >> 40) * (2.0f / 16777216.0f) - 1.0f;
}

float ValueNoise::sample(float x, float y, float z) const {
  const float fx = std::floor(x);
  const float fy = std::floor(y);
  const float fz = std::floor(z);
  const auto ix = static_cast<std::int64_t>(fx);
  const auto iy = static_cast<std::int64_t>(fy);
  const auto iz = static_cast<std::int64_t>(fz);
  const float tx = smoothstep(x - fx);
  const float ty = smoothstep(y - fy);
  const float tz = smoothstep(z - fz);

  auto lerp = [](float a, float b, float t) { return a + (b - a) * t; };

  const float c000 = lattice(ix, iy, iz);
  const float c100 = lattice(ix + 1, iy, iz);
  const float c010 = lattice(ix, iy + 1, iz);
  const float c110 = lattice(ix + 1, iy + 1, iz);
  const float c001 = lattice(ix, iy, iz + 1);
  const float c101 = lattice(ix + 1, iy, iz + 1);
  const float c011 = lattice(ix, iy + 1, iz + 1);
  const float c111 = lattice(ix + 1, iy + 1, iz + 1);

  const float x00 = lerp(c000, c100, tx);
  const float x10 = lerp(c010, c110, tx);
  const float x01 = lerp(c001, c101, tx);
  const float x11 = lerp(c011, c111, tx);
  const float y0 = lerp(x00, x10, ty);
  const float y1 = lerp(x01, x11, ty);
  return lerp(y0, y1, tz);
}

float ValueNoise::fbm(float x, float y, float z, int octaves,
                      float persistence, float lacunarity) const {
  float sum = 0.0f;
  float amplitude = 1.0f;
  float norm = 0.0f;
  float fx = x;
  float fy = y;
  float fz = z;
  for (int o = 0; o < octaves; ++o) {
    sum += amplitude * sample(fx, fy, fz);
    norm += amplitude;
    amplitude *= persistence;
    fx *= lacunarity;
    fy *= lacunarity;
    fz *= lacunarity;
  }
  return norm > 0.0f ? sum / norm : 0.0f;
}

}  // namespace oociso::data
