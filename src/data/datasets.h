#pragma once
// Registry of the named datasets used across tests, examples, and the
// Table-1 index-size comparison. Each descriptor records the dimensions and
// scalar width of the original dataset (Stanford volume archive / LLNL RM)
// and a generator that synthesizes an analog with the same dimensions and
// endpoint-diversity regime (see DESIGN.md, substitution table).

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "core/volume.h"

namespace oociso::data {

using AnyVolume = std::variant<core::VolumeU8, core::VolumeU16>;

struct DatasetInfo {
  std::string name;
  core::GridDims full_dims;      ///< dimensions of the original dataset
  core::ScalarKind kind;
  std::string provenance;        ///< what the analog stands in for
};

/// All datasets from the paper's Table 1 plus the RM time step.
[[nodiscard]] std::vector<DatasetInfo> table1_datasets();

/// Synthesizes the analog volume for a named dataset, optionally scaled
/// down: each dimension is divided by `downscale` (>= 1, preserving the
/// scalar width and field character). Throws std::invalid_argument for an
/// unknown name.
[[nodiscard]] AnyVolume make_dataset(const std::string& name,
                                     std::int32_t downscale = 1);

/// Scalar kind held by an AnyVolume.
[[nodiscard]] core::ScalarKind kind_of(const AnyVolume& volume);

/// Dimensions of an AnyVolume.
[[nodiscard]] core::GridDims dims_of(const AnyVolume& volume);

}  // namespace oociso::data
