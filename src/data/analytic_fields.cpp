#include "data/analytic_fields.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "core/vec3.h"
#include "data/noise.h"
#include "util/rng.h"

namespace oociso::data {
namespace {

using core::Coord3;
using core::GridDims;
using core::Vec3;

/// Maps lattice coordinates to the unit cube [0,1]^3.
Vec3 unit_pos(const GridDims& dims, std::int32_t x, std::int32_t y,
              std::int32_t z) {
  return {static_cast<float>(x) / static_cast<float>(std::max(dims.nx - 1, 1)),
          static_cast<float>(y) / static_cast<float>(std::max(dims.ny - 1, 1)),
          static_cast<float>(z) / static_cast<float>(std::max(dims.nz - 1, 1))};
}

template <typename T, typename F>
core::Volume<T> fill(const GridDims& dims, F&& field) {
  core::Volume<T> volume(dims);
  T* out = volume.samples().data();
  for (std::int32_t z = 0; z < dims.nz; ++z) {
    for (std::int32_t y = 0; y < dims.ny; ++y) {
      for (std::int32_t x = 0; x < dims.nx; ++x, ++out) {
        *out = field(x, y, z);
      }
    }
  }
  return volume;
}

std::uint8_t quantize_u8(float value01) {
  return static_cast<std::uint8_t>(std::clamp(value01, 0.0f, 1.0f) * 255.0f +
                                   0.5f);
}

std::uint16_t quantize_u16(float value01, float full_scale = 65535.0f) {
  return static_cast<std::uint16_t>(
      std::clamp(value01, 0.0f, 1.0f) * full_scale + 0.5f);
}

}  // namespace

core::VolumeU8 make_sphere_field(GridDims dims) {
  const Vec3 center{0.5f, 0.5f, 0.5f};
  // Distance 0 at center -> 255; distance ~ 0.87 (corner) -> 0.
  const float inv_max_dist = 1.0f / std::sqrt(3.0f) * 2.0f;
  return fill<std::uint8_t>(dims, [&](auto x, auto y, auto z) {
    const float d = (unit_pos(dims, x, y, z) - center).length();
    return quantize_u8(1.0f - d * inv_max_dist);
  });
}

core::VolumeU8 make_gyroid_field(GridDims dims, float frequency) {
  constexpr float kTau = 2.0f * std::numbers::pi_v<float>;
  const float k = kTau * frequency;
  return fill<std::uint8_t>(dims, [&](auto x, auto y, auto z) {
    const Vec3 p = unit_pos(dims, x, y, z) * k;
    const float g = std::sin(p.x) * std::cos(p.y) +
                    std::sin(p.y) * std::cos(p.z) +
                    std::sin(p.z) * std::cos(p.x);
    return quantize_u8(0.5f + g / 3.0f * 0.5f);
  });
}

core::VolumeU8 make_torus_field(GridDims dims, float major_radius,
                                float minor_radius) {
  const Vec3 center{0.5f, 0.5f, 0.5f};
  return fill<std::uint8_t>(dims, [&](auto x, auto y, auto z) {
    const Vec3 p = unit_pos(dims, x, y, z) - center;
    const float ring = std::sqrt(p.x * p.x + p.y * p.y) - major_radius;
    const float d = std::sqrt(ring * ring + p.z * p.z);
    // 255 on the torus core circle, falling off with distance; the value
    // `128` isosurface sits near distance == minor_radius.
    return quantize_u8(1.0f - d / (2.0f * minor_radius) * 0.5f);
  });
}

core::VolumeU16 make_pressure_field(GridDims dims, std::uint64_t seed) {
  struct Blob {
    Vec3 center;
    float sigma;
    float weight;
  };
  util::Xoshiro256 rng(seed);
  std::vector<Blob> blobs(6);
  for (auto& blob : blobs) {
    blob.center = {static_cast<float>(rng.uniform(0.15, 0.85)),
                   static_cast<float>(rng.uniform(0.15, 0.85)),
                   static_cast<float>(rng.uniform(0.15, 0.85))};
    blob.sigma = static_cast<float>(rng.uniform(0.12, 0.3));
    blob.weight = static_cast<float>(rng.uniform(0.4, 1.0)) *
                  (rng.bounded(2) ? 1.0f : -1.0f);
  }
  return fill<std::uint16_t>(dims, [&](auto x, auto y, auto z) {
    const Vec3 p = unit_pos(dims, x, y, z);
    float value = 0.0f;
    for (const Blob& blob : blobs) {
      const float d2 = (p - blob.center).length_squared();
      value += blob.weight * std::exp(-d2 / (2.0f * blob.sigma * blob.sigma));
    }
    return quantize_u16(0.5f + 0.35f * value);
  });
}

core::VolumeU16 make_velocity_field(GridDims dims, std::uint64_t seed) {
  struct Vortex {
    Vec3 point;
    Vec3 axis;
    float core_radius;
    float strength;
  };
  util::Xoshiro256 rng(seed);
  std::vector<Vortex> tubes(8);
  for (auto& tube : tubes) {
    tube.point = {static_cast<float>(rng.uniform(0.0, 1.0)),
                  static_cast<float>(rng.uniform(0.0, 1.0)),
                  static_cast<float>(rng.uniform(0.0, 1.0))};
    tube.axis = Vec3{static_cast<float>(rng.uniform(-1.0, 1.0)),
                     static_cast<float>(rng.uniform(-1.0, 1.0)),
                     static_cast<float>(rng.uniform(-1.0, 1.0))}
                    .normalized();
    tube.core_radius = static_cast<float>(rng.uniform(0.05, 0.15));
    tube.strength = static_cast<float>(rng.uniform(0.3, 1.0));
  }
  const ValueNoise small_scales(seed ^ 0x56454C4F43495459ULL);
  return fill<std::uint16_t>(dims, [&](auto x, auto y, auto z) {
    const Vec3 p = unit_pos(dims, x, y, z);
    Vec3 velocity{};
    for (const Vortex& tube : tubes) {
      // Lamb-Oseen-like tube: tangential speed peaks at the core radius.
      const Vec3 r = p - tube.point;
      const Vec3 radial = r - tube.axis * r.dot(tube.axis);
      const float dist = radial.length();
      const float swirl =
          tube.strength * dist /
          (tube.core_radius * tube.core_radius + dist * dist);
      velocity += tube.axis.cross(radial.normalized()) * swirl;
    }
    const float turbulence =
        0.15f * small_scales.fbm(9.0f * p.x, 9.0f * p.y, 9.0f * p.z, 3);
    const float magnitude = velocity.length() + std::abs(turbulence);
    return quantize_u16(std::min(magnitude * 0.35f, 1.0f));
  });
}

core::VolumeU16 make_ct_head_field(GridDims dims, std::uint64_t seed) {
  const Vec3 center{0.5f, 0.5f, 0.52f};
  const ValueNoise acquisition_noise(seed);
  return fill<std::uint16_t>(dims, [&](auto x, auto y, auto z) {
    const Vec3 p = unit_pos(dims, x, y, z);
    Vec3 d = p - center;
    d.z *= 1.25f;  // heads are taller than wide
    const float r = d.length();
    // Nested shells: air | skin | soft tissue | skull | brain.
    float density01;  // fraction of the 12-bit range
    if (r > 0.42f) density01 = 0.02f;         // air
    else if (r > 0.40f) density01 = 0.35f;    // skin
    else if (r > 0.36f) density01 = 0.45f;    // soft tissue
    else if (r > 0.32f) density01 = 0.95f;    // skull (bone, bright in CT)
    else density01 = 0.55f;                   // brain
    const float noise =
        0.03f * acquisition_noise.fbm(24.0f * p.x, 24.0f * p.y, 24.0f * p.z, 2);
    // 12-bit DICOM-style range inside a u16 container.
    return quantize_u16(std::clamp(density01 + noise, 0.0f, 1.0f), 4095.0f);
  });
}

core::VolumeU8 make_bunny_field(GridDims dims, std::uint64_t seed) {
  // Blobby closed object: body + head + two ears, smooth-union metaballs.
  struct Ball {
    Vec3 center;
    float radius;
  };
  const Ball balls[] = {
      {{0.50f, 0.48f, 0.38f}, 0.22f},  // body
      {{0.50f, 0.56f, 0.62f}, 0.13f},  // head
      {{0.43f, 0.58f, 0.78f}, 0.055f}, // left ear
      {{0.57f, 0.58f, 0.78f}, 0.055f}, // right ear
      {{0.50f, 0.30f, 0.33f}, 0.09f},  // tail
  };
  const ValueNoise surface_detail(seed);
  return fill<std::uint8_t>(dims, [&](auto x, auto y, auto z) {
    const Vec3 p = unit_pos(dims, x, y, z);
    float field = 0.0f;
    for (const Ball& ball : balls) {
      const float d2 = (p - ball.center).length_squared();
      field += ball.radius * ball.radius / (d2 + 1e-6f);
    }
    const float fuzz =
        0.08f * surface_detail.fbm(16.0f * p.x, 16.0f * p.y, 16.0f * p.z, 3);
    return quantize_u8(std::min((field + fuzz) * 0.5f, 1.0f));
  });
}

}  // namespace oociso::data
