#pragma once
// Synthetic Richtmyer-Meshkov-instability-like dataset generator.
//
// Stand-in for the 2.1 TB LLNL ASCI dataset the paper evaluates on
// (2048x2048x1920 one-byte scalars, 270 time steps). The real simulation
// shows two gases separated by a perturbed membrane: a shock passes through,
// the interface develops bubbles and spikes seeded by superposed long- and
// short-wavelength disturbances, and the mixing layer thickens and turns
// turbulent over time.
//
// The generator reproduces the *span-space statistics* that the paper's
// algorithms are sensitive to:
//   * large homogeneous regions away from the mixing layer -> roughly half
//     of all metacells are constant-valued and culled in preprocessing
//     (the paper reports ~50% savings);
//   * a mixing layer whose thickness and turbulence grow with the time
//     step, so the active-cell count varies strongly with both isovalue
//     and time;
//   * one-byte scalars, so the number of distinct interval endpoints n is
//     at most 256 while the number of metacells N is millions -- exactly
//     the regime where the compact interval tree wins (Section 4).
//
// Determinism: identical (seed, time_step, dims) always produces the same
// volume, bit for bit, on every platform.

#include <cstdint>

#include "core/volume.h"

namespace oociso::data {

struct RmConfig {
  core::GridDims dims{256, 256, 240};  ///< paper's down-sampled size
  std::uint64_t seed = 42;
  int time_steps = 270;  ///< total steps in the series (paper: 270)

  /// Densities of the two gases on the 0..255 scale.
  float light_gas_value = 8.0f;
  float heavy_gas_value = 240.0f;

  /// Interface perturbation: counts of long/short wavelength modes across
  /// the (x, y) plane and their relative amplitudes (fractions of nz).
  int long_modes = 3;
  int short_modes = 17;
  float long_amplitude = 0.045f;
  float short_amplitude = 0.015f;

  /// Turbulent mixing-layer parameters. Thickness is a fraction of nz and
  /// grows with time; noise octaves control fine-scale structure.
  float base_thickness = 0.03f;
  float final_thickness = 0.20f;
  int noise_octaves = 5;
};

/// Generates the volume for one time step (0-based, < config.time_steps).
/// Throws std::invalid_argument for an out-of-range step.
[[nodiscard]] core::VolumeU8 generate_rm_timestep(const RmConfig& config,
                                                  int time_step);

}  // namespace oociso::data
