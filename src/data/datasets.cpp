#include "data/datasets.h"

#include <algorithm>
#include <stdexcept>

#include "data/analytic_fields.h"
#include "data/rm_generator.h"

namespace oociso::data {
namespace {

core::GridDims scaled(core::GridDims dims, std::int32_t downscale) {
  if (downscale < 1) {
    throw std::invalid_argument("downscale must be >= 1");
  }
  auto shrink = [downscale](std::int32_t n) {
    return std::max<std::int32_t>(n / downscale, 8);
  };
  return {shrink(dims.nx), shrink(dims.ny), shrink(dims.nz)};
}

}  // namespace

std::vector<DatasetInfo> table1_datasets() {
  using core::ScalarKind;
  return {
      {"bunny", {512, 512, 361}, ScalarKind::kU8,
       "Stanford Bunny CT scan analog (blobby closed object)"},
      {"mrbrain", {256, 256, 109}, ScalarKind::kU16,
       "Stanford MRBrain analog (nested tissue shells)"},
      {"cthead", {256, 256, 113}, ScalarKind::kU16,
       "Stanford CTHead analog (nested tissue shells)"},
      {"pressure", {256, 256, 256}, ScalarKind::kU16,
       "smooth pressure field (sum of Gaussian blobs); N ~ n regime"},
      {"velocity", {256, 256, 256}, ScalarKind::kU16,
       "velocity magnitude from analytic vortex tubes; N ~ n regime"},
      {"rm", {2048, 2048, 1920}, ScalarKind::kU8,
       "LLNL Richtmyer-Meshkov instability analog, single time step"},
  };
}

AnyVolume make_dataset(const std::string& name, std::int32_t downscale) {
  for (const DatasetInfo& info : table1_datasets()) {
    if (info.name != name) continue;
    const core::GridDims dims = scaled(info.full_dims, downscale);
    if (name == "bunny") return make_bunny_field(dims);
    if (name == "mrbrain") return make_ct_head_field(dims, /*seed=*/3);
    if (name == "cthead") return make_ct_head_field(dims, /*seed=*/9);
    if (name == "pressure") return make_pressure_field(dims);
    if (name == "velocity") return make_velocity_field(dims);
    if (name == "rm") {
      RmConfig config;
      config.dims = dims;
      return generate_rm_timestep(config, /*time_step=*/250 % config.time_steps);
    }
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

core::ScalarKind kind_of(const AnyVolume& volume) {
  return std::visit(
      [](const auto& v) {
        using T = typename std::decay_t<decltype(v)>::value_type;
        return core::scalar_kind_of<T>();
      },
      volume);
}

core::GridDims dims_of(const AnyVolume& volume) {
  return std::visit([](const auto& v) { return v.dims(); }, volume);
}

}  // namespace oociso::data
