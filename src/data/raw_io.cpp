#include "data/raw_io.h"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace oociso::data {
namespace {

constexpr std::array<char, 4> kMagic = {'O', 'O', 'C', 'V'};
constexpr std::uint32_t kVersion = 1;

struct Header {
  std::array<char, 4> magic;
  std::uint32_t version;
  std::uint8_t kind;
  std::uint8_t reserved[3];
  std::int32_t nx;
  std::int32_t ny;
  std::int32_t nz;
};
static_assert(sizeof(Header) == 24);

template <typename T>
void write_payload(std::ofstream& out, const core::Volume<T>& volume) {
  out.write(reinterpret_cast<const char*>(volume.samples().data()),
            static_cast<std::streamsize>(volume.samples().size() * sizeof(T)));
}

template <typename T>
core::Volume<T> read_payload(std::ifstream& in, core::GridDims dims) {
  std::vector<T> samples(dims.count());
  in.read(reinterpret_cast<char*>(samples.data()),
          static_cast<std::streamsize>(samples.size() * sizeof(T)));
  if (!in) throw std::runtime_error("OOCV: truncated payload");
  return core::Volume<T>(dims, std::move(samples));
}

}  // namespace

void write_volume(const AnyVolume& volume, const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("OOCV: cannot open " + path.string());

  const core::GridDims dims = dims_of(volume);
  Header header{};
  header.magic = kMagic;
  header.version = kVersion;
  header.kind = static_cast<std::uint8_t>(kind_of(volume));
  header.nx = dims.nx;
  header.ny = dims.ny;
  header.nz = dims.nz;
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));

  std::visit([&out](const auto& v) { write_payload(out, v); }, volume);
  if (!out) throw std::runtime_error("OOCV: write failed for " + path.string());
}

AnyVolume read_volume(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("OOCV: cannot open " + path.string());

  Header header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || header.magic != kMagic) {
    throw std::runtime_error("OOCV: bad magic in " + path.string());
  }
  if (header.version != kVersion) {
    throw std::runtime_error("OOCV: unsupported version in " + path.string());
  }
  const core::GridDims dims{header.nx, header.ny, header.nz};
  if (dims.nx <= 0 || dims.ny <= 0 || dims.nz <= 0) {
    throw std::runtime_error("OOCV: bad dimensions in " + path.string());
  }
  switch (static_cast<core::ScalarKind>(header.kind)) {
    case core::ScalarKind::kU8:
      return read_payload<std::uint8_t>(in, dims);
    case core::ScalarKind::kU16:
      return read_payload<std::uint16_t>(in, dims);
    case core::ScalarKind::kF32:
      throw std::runtime_error("OOCV: f32 volumes not supported by AnyVolume");
  }
  throw std::runtime_error("OOCV: unknown scalar kind in " + path.string());
}

}  // namespace oociso::data
