#pragma once
// Deterministic 3D value noise with fractional-Brownian-motion octaves.
//
// This is the turbulence primitive behind the synthetic Richtmyer-Meshkov
// stand-in dataset: cheap, seeded, and with a controllable spectrum
// (persistence/lacunarity), which is what the mixing-layer generator needs
// to mimic the bubble-and-spike fine structure of the real simulation.

#include <cstdint>

#include "core/vec3.h"

namespace oociso::data {

/// Seeded lattice value noise; thread-safe (stateless after construction).
class ValueNoise {
 public:
  explicit ValueNoise(std::uint64_t seed) : seed_(seed) {}

  /// Single-octave smooth noise in [-1, 1], trilinear with smoothstep fade.
  [[nodiscard]] float sample(float x, float y, float z) const;

  /// fBm: `octaves` layers, each `lacunarity` times the frequency and
  /// `persistence` times the amplitude of the previous; output in [-1, 1].
  [[nodiscard]] float fbm(float x, float y, float z, int octaves,
                          float persistence = 0.5f,
                          float lacunarity = 2.0f) const;

 private:
  /// Hash of an integer lattice point to [-1, 1].
  [[nodiscard]] float lattice(std::int64_t ix, std::int64_t iy,
                              std::int64_t iz) const;

  std::uint64_t seed_;
};

}  // namespace oociso::data
