#include "data/rm_generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "data/noise.h"
#include "util/rng.h"

namespace oociso::data {
namespace {

/// One sinusoidal interface-perturbation mode across the (x, y) plane.
struct Mode {
  float kx;         ///< wavenumber in x (radians per unit of normalized x)
  float ky;         ///< wavenumber in y
  float phase;
  float amplitude;  ///< in normalized z units
};

std::vector<Mode> make_modes(util::Xoshiro256& rng, int count,
                             int min_waves, int max_waves, float amplitude) {
  std::vector<Mode> modes;
  modes.reserve(static_cast<std::size_t>(count));
  constexpr float kTau = 2.0f * std::numbers::pi_v<float>;
  for (int i = 0; i < count; ++i) {
    const auto wx = static_cast<float>(
        min_waves + static_cast<int>(rng.bounded(
                        static_cast<std::uint64_t>(max_waves - min_waves + 1))));
    const auto wy = static_cast<float>(
        min_waves + static_cast<int>(rng.bounded(
                        static_cast<std::uint64_t>(max_waves - min_waves + 1))));
    modes.push_back(Mode{
        .kx = kTau * wx,
        .ky = kTau * wy,
        .phase = static_cast<float>(rng.uniform(0.0, kTau)),
        .amplitude = amplitude *
                     static_cast<float>(rng.uniform(0.6, 1.0)) /
                     static_cast<float>(count),
    });
  }
  return modes;
}

}  // namespace

core::VolumeU8 generate_rm_timestep(const RmConfig& config, int time_step) {
  if (time_step < 0 || time_step >= config.time_steps) {
    throw std::invalid_argument("RM time step out of range");
  }
  const core::GridDims dims = config.dims;
  core::VolumeU8 volume(dims);

  // Normalized time in [0, 1]; the mixing layer thickens and the turbulence
  // amplitude grows as the instability develops.
  const float t = config.time_steps > 1
                      ? static_cast<float>(time_step) /
                            static_cast<float>(config.time_steps - 1)
                      : 0.0f;
  const float growth = std::sqrt(t);  // RM mixing width grows sub-linearly
  const float thickness =
      config.base_thickness +
      (config.final_thickness - config.base_thickness) * growth;

  // The perturbation modes are fixed per seed (the membrane is machined
  // once); their amplitude grows with time. The turbulence field decorrelates
  // slowly across steps by sliding the noise domain, which gives the
  // temporal coherence Table 8 relies on.
  util::Xoshiro256 mode_rng(config.seed, /*stream=*/1);
  const auto long_modes =
      make_modes(mode_rng, config.long_modes, 1, 3, config.long_amplitude);
  const auto short_modes =
      make_modes(mode_rng, config.short_modes, 8, 24, config.short_amplitude);

  const ValueNoise turbulence(config.seed ^ 0x524D5F5455524231ULL);
  const float time_slide = 7.3f * t;

  const float mid = config.light_gas_value +
                    0.5f * (config.heavy_gas_value - config.light_gas_value);
  const float half_span =
      0.5f * (config.heavy_gas_value - config.light_gas_value);

  const float inv_nx = 1.0f / static_cast<float>(dims.nx);
  const float inv_ny = 1.0f / static_cast<float>(dims.ny);
  const float inv_nz = 1.0f / static_cast<float>(dims.nz);
  const float noise_scale = 28.0f;  // base turbulence frequency

  std::uint8_t* out = volume.samples().data();
  for (std::int32_t z = 0; z < dims.nz; ++z) {
    const float nz = static_cast<float>(z) * inv_nz;
    for (std::int32_t y = 0; y < dims.ny; ++y) {
      const float ny = static_cast<float>(y) * inv_ny;
      for (std::int32_t x = 0; x < dims.nx; ++x, ++out) {
        const float nx = static_cast<float>(x) * inv_nx;

        // Perturbed interface height (normalized z), growing with time.
        float interface_z = 0.5f;
        for (const Mode& m : long_modes) {
          interface_z += (0.4f + 0.6f * growth) * m.amplitude *
                         std::sin(m.kx * nx + m.ky * ny + m.phase);
        }
        for (const Mode& m : short_modes) {
          interface_z += growth * m.amplitude *
                         std::sin(m.kx * nx + m.ky * ny + m.phase);
        }

        // Signed distance to the interface in units of layer thickness.
        const float signed_dist = (nz - interface_z) / thickness;

        float value;
        if (signed_dist <= -1.0f) {
          value = config.light_gas_value;  // pure light gas
        } else if (signed_dist >= 1.0f) {
          value = config.heavy_gas_value;  // pure heavy gas
        } else {
          // Inside the mixing layer: smooth transition plus turbulence whose
          // amplitude peaks at the interface and grows with time.
          const float s = 0.5f * (signed_dist + 1.0f);  // [0, 1]
          const float ramp = s * s * (3.0f - 2.0f * s);
          const float gap = 1.0f - signed_dist * signed_dist;
          const float envelope = gap * gap * gap;  // strongly core-concentrated
          const float noise =
              turbulence.fbm(noise_scale * nx + time_slide,
                             noise_scale * ny - 0.5f * time_slide,
                             noise_scale * nz + 0.25f * time_slide,
                             config.noise_octaves);
          const float turbulent_mix =
              (0.20f + 0.78f * growth) * envelope * noise;
          value = mid + half_span * (2.0f * ramp - 1.0f) +
                  half_span * turbulent_mix;
        }

        *out = static_cast<std::uint8_t>(
            std::clamp(value, 0.0f, 255.0f) + 0.5f);
      }
    }
  }
  return volume;
}

}  // namespace oociso::data
