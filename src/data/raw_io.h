#pragma once
// Simple volume file format ("OOCV"): a fixed header followed by the raw
// x-fastest sample payload. Lets examples persist generated datasets and
// re-load them instead of regenerating.
//
// Layout (little-endian):
//   char[4]  magic "OOCV"
//   u32      version (1)
//   u8       scalar kind (core::ScalarKind)
//   u8[3]    reserved (zero)
//   i32      nx, ny, nz
//   payload  nx*ny*nz scalars

#include <filesystem>

#include "core/volume.h"
#include "data/datasets.h"

namespace oociso::data {

/// Writes a volume; throws std::system_error / std::runtime_error on
/// failure.
void write_volume(const AnyVolume& volume, const std::filesystem::path& path);

/// Reads a volume written by write_volume; throws std::runtime_error on
/// malformed input.
[[nodiscard]] AnyVolume read_volume(const std::filesystem::path& path);

}  // namespace oociso::data
