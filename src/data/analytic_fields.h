#pragma once
// Analytic scalar fields used for tests, examples, and the Table-1 dataset
// analogs. All generators are deterministic and evaluate a closed-form
// field over the unit cube mapped onto the sample lattice.

#include <cstdint>

#include "core/volume.h"

namespace oociso::data {

/// Distance-to-center field: isosurfaces are concentric spheres. The exact
/// triangle-free analytic form makes it the reference field for marching
/// cubes and index correctness tests.
[[nodiscard]] core::VolumeU8 make_sphere_field(core::GridDims dims);

/// Gyroid minimal-surface field (sin x cos y + sin y cos z + sin z cos x),
/// mapped to [0, 255]. Dense, highly multi-connected isosurfaces — a
/// worst-ish case for per-metacell activity.
[[nodiscard]] core::VolumeU8 make_gyroid_field(core::GridDims dims,
                                               float frequency = 3.0f);

/// Torus distance field; a genus-1 reference surface for mesh sanity tests.
[[nodiscard]] core::VolumeU8 make_torus_field(core::GridDims dims,
                                              float major_radius = 0.3f,
                                              float minor_radius = 0.12f);

/// Smooth low-frequency "pressure"-like field (sum of a few Gaussian
/// blobs), 16-bit. Very few distinct endpoint values per locality but a
/// wide global range: the N ~ n regime called out in Table 1.
[[nodiscard]] core::VolumeU16 make_pressure_field(core::GridDims dims,
                                                  std::uint64_t seed = 7);

/// "Velocity magnitude"-like field from a sum of analytic vortex tubes,
/// 16-bit, turbulent spectrum.
[[nodiscard]] core::VolumeU16 make_velocity_field(core::GridDims dims,
                                                  std::uint64_t seed = 11);

/// CT-like density field: nested tissue shells (skin/bone/brain analog)
/// plus mild acquisition noise, 16-bit with a 12-bit value range, matching
/// the regime of the Stanford MRBrain/CTHead datasets.
[[nodiscard]] core::VolumeU16 make_ct_head_field(core::GridDims dims,
                                                 std::uint64_t seed = 3);

/// Laser-scan-like occupancy/density field of a blobby closed object
/// (Stanford-bunny analog): a smooth union of spheres body with appendages.
[[nodiscard]] core::VolumeU8 make_bunny_field(core::GridDims dims,
                                              std::uint64_t seed = 5);

}  // namespace oociso::data
