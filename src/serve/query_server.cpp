#include "serve/query_server.h"

#include <future>
#include <stdexcept>
#include <utility>

namespace oociso::serve {

QueryServer::QueryServer(parallel::Cluster& cluster,
                         const pipeline::PreprocessResult& data,
                         ServeOptions options)
    : cluster_(cluster), data_(data), options_(std::move(options)) {
  if (options_.max_concurrent_queries == 0) {
    throw std::invalid_argument("QueryServer: need at least one query slot");
  }
  if (options_.query.inject_faults.has_value()) {
    throw std::invalid_argument(
        "QueryServer: per-query inject_faults cannot compose with shared "
        "pools; use ServeOptions::inject_faults (cluster-level) instead");
  }
  options_.query.use_shared_cache = true;
  cluster_.enable_shared_cache(options_.cache_capacity_blocks,
                               options_.inject_faults);
  admission_ =
      std::make_unique<parallel::ThreadPool>(options_.max_concurrent_queries);
}

QueryServer::~QueryServer() {
  // Join the admission workers first — after this no query is reading
  // through a pool — then tear the pools down.
  admission_.reset();
  cluster_.disable_shared_cache();
}

pipeline::QueryReport QueryServer::run_admitted(
    const pipeline::PreprocessResult& data, core::ValueKey isovalue) {
  {
    const std::lock_guard lock(gauge_mutex_);
    ++in_flight_;
    if (in_flight_ > peak_in_flight_) peak_in_flight_ = in_flight_;
  }
  pipeline::QueryEngine engine(cluster_, data);
  try {
    pipeline::QueryReport report = engine.run(isovalue, options_.query);
    const std::lock_guard lock(gauge_mutex_);
    --in_flight_;
    return report;
  } catch (...) {
    const std::lock_guard lock(gauge_mutex_);
    --in_flight_;
    throw;
  }
}

pipeline::QueryReport QueryServer::query(core::ValueKey isovalue) {
  return admission_
      ->submit([this, isovalue] { return run_admitted(data_, isovalue); })
      .get();
}

pipeline::QueryReport QueryServer::query_step(
    const pipeline::PreprocessResult& step, core::ValueKey isovalue) {
  return admission_
      ->submit([this, &step, isovalue] { return run_admitted(step, isovalue); })
      .get();
}

std::vector<pipeline::QueryReport> QueryServer::serve(
    std::span<const core::ValueKey> isovalues) {
  std::vector<std::future<pipeline::QueryReport>> pending;
  pending.reserve(isovalues.size());
  for (const core::ValueKey isovalue : isovalues) {
    pending.push_back(admission_->submit(
        [this, isovalue] { return run_admitted(data_, isovalue); }));
  }
  std::vector<pipeline::QueryReport> reports;
  reports.reserve(pending.size());
  for (auto& request : pending) reports.push_back(request.get());
  return reports;
}

void QueryServer::drop_caches() { cluster_.drop_caches(); }

io::CacheCounters QueryServer::cache_counters() const {
  io::CacheCounters total;
  for (std::size_t node = 0; node < cluster_.size(); ++node) {
    total.merge(cache_counters(node));
  }
  return total;
}

io::CacheCounters QueryServer::cache_counters(std::size_t node) const {
  const io::SharedBufferPool* pool =
      static_cast<const parallel::Cluster&>(cluster_).cache(node);
  return pool != nullptr ? pool->counters() : io::CacheCounters{};
}

std::size_t QueryServer::peak_in_flight() const {
  const std::lock_guard lock(gauge_mutex_);
  return peak_in_flight_;
}

}  // namespace oociso::serve
