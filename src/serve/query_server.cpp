#include "serve/query_server.h"

#include <future>
#include <stdexcept>
#include <string>
#include <utility>

namespace oociso::serve {

QueryServer::QueryServer(parallel::Cluster& cluster,
                         const pipeline::PreprocessResult& data,
                         ServeOptions options)
    : cluster_(cluster),
      data_(data),
      options_(std::move(options)),
      health_(cluster.size(), options_.health),
      next_query_id_(options_.first_query_id) {
  if (options_.max_concurrent_queries == 0) {
    throw std::invalid_argument("QueryServer: need at least one query slot");
  }
  if (options_.query.inject_faults.has_value()) {
    throw std::invalid_argument(
        "QueryServer: per-query inject_faults cannot compose with shared "
        "pools; use ServeOptions::inject_faults (cluster-level) instead");
  }
  if (options_.inject_faults.has_value() &&
      !options_.inject_faults_per_node.empty()) {
    throw std::invalid_argument(
        "QueryServer: inject_faults and inject_faults_per_node are mutually "
        "exclusive");
  }
  options_.query.use_shared_cache = true;
  options_.query.health = &health_;
  if (options_.metrics != nullptr) {
    // Attach before the pools exist is fine — Cluster remembers the
    // registry and attaches each pool as enable_shared_cache creates it.
    cluster_.attach_metrics(*options_.metrics);
    // Re-point the in-flight gauge at the registry while the server is
    // provably quiescent: no admission workers exist yet, so no increment
    // can land on the local gauge between reading its level and the swap
    // (an increment lost that way would leak into every later level and
    // peak the registry exports). The asserts pin that ordering — metrics
    // attachment must stay ahead of the thread pool below.
    if (admission_ != nullptr || local_in_flight_.value() != 0 ||
        local_in_flight_.max_value() != 0) {
      throw std::logic_error(
          "QueryServer: metrics must attach before admission starts");
    }
    in_flight_ = &options_.metrics->gauge("serve.in_flight");
  }
  if (options_.metrics != nullptr) health_.attach_metrics(*options_.metrics);
  // Compressed index: install the per-node chunk maps before the pools come
  // up, so every pool decodes on fetch and caches decoded (raw-space)
  // frames. No-op for an uncompressed index (no tree is compressed).
  bool compressed = false;
  for (const auto& tree : data.trees) compressed |= tree.compressed();
  if (compressed) {
    cluster_.set_chunk_maps(index::build_chunk_maps(data.trees));
  }
  if (!options_.inject_faults_per_node.empty()) {
    cluster_.enable_shared_cache(options_.cache_capacity_blocks,
                                 options_.inject_faults_per_node);
  } else {
    cluster_.enable_shared_cache(options_.cache_capacity_blocks,
                                 options_.inject_faults);
  }
  admission_ =
      std::make_unique<parallel::ThreadPool>(options_.max_concurrent_queries);
}

QueryServer::~QueryServer() {
  // Join the admission workers first — after this no query is reading
  // through a pool — then tear the pools down.
  admission_.reset();
  cluster_.disable_shared_cache();
}

pipeline::QueryReport QueryServer::run_admitted(
    const pipeline::PreprocessResult& data, core::ValueKey isovalue,
    std::uint64_t submitted_us, std::optional<extract::KernelOptions> kernel) {
  const std::uint32_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  obs::Tracer* const tracer = options_.tracer;
  if (tracer != nullptr) {
    tracer->name_process(query_id, "query " + std::to_string(query_id) +
                                       " iso=" + std::to_string(isovalue));
    // Explicit-timestamp span: submission happened on the client's thread,
    // execution starts here — the gap is the admission-queue wait.
    const std::uint64_t admitted_us = tracer->now_us();
    tracer->complete("admission.wait", query_id,
                     obs::track(0, obs::Lane::kAdmission), submitted_us,
                     admitted_us - submitted_us);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("serve.queries").add();
  }
  const std::int64_t level = in_flight_->add(1);
  if (tracer != nullptr) {
    tracer->counter("serve.in_flight", 0, static_cast<double>(level));
  }
  pipeline::QueryOptions query_options = options_.query;
  query_options.tracer = tracer;
  query_options.metrics = options_.metrics;
  query_options.query_id = query_id;
  if (kernel.has_value()) query_options.kernel = *kernel;
  pipeline::QueryEngine engine(cluster_, data);
  try {
    pipeline::QueryReport report = engine.run(isovalue, query_options);
    const std::int64_t after = in_flight_->add(-1);
    if (tracer != nullptr) {
      tracer->counter("serve.in_flight", 0, static_cast<double>(after));
    }
    return report;
  } catch (...) {
    in_flight_->add(-1);
    throw;
  }
}

pipeline::ProgressiveReport QueryServer::run_admitted_progressive(
    core::ValueKey isovalue, std::uint64_t submitted_us,
    ProgressiveParams params) {
  const std::uint32_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  obs::Tracer* const tracer = options_.tracer;
  if (tracer != nullptr) {
    tracer->name_process(query_id, "query " + std::to_string(query_id) +
                                       " iso=" + std::to_string(isovalue) +
                                       " progressive");
    const std::uint64_t admitted_us = tracer->now_us();
    tracer->complete("admission.wait", query_id,
                     obs::track(0, obs::Lane::kAdmission), submitted_us,
                     admitted_us - submitted_us);
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("serve.queries").add();
  }
  const std::int64_t level = in_flight_->add(1);
  if (tracer != nullptr) {
    tracer->counter("serve.in_flight", 0, static_cast<double>(level));
  }
  pipeline::QueryOptions query_options = options_.query;
  query_options.tracer = tracer;
  query_options.metrics = options_.metrics;
  query_options.query_id = query_id;
  if (params.deadline_ms.has_value()) {
    query_options.deadline_ms = *params.deadline_ms;
  }
  if (params.memory_budget_bytes.has_value()) {
    query_options.memory_budget_bytes = *params.memory_budget_bytes;
  }
  if (params.max_level.has_value()) query_options.max_level = *params.max_level;
  if (params.cancel != nullptr) query_options.cancel = params.cancel;
  pipeline::ProgressiveEngine engine(cluster_, data_);
  try {
    pipeline::ProgressiveReport report = engine.run(isovalue, query_options);
    const std::int64_t after = in_flight_->add(-1);
    if (tracer != nullptr) {
      tracer->counter("serve.in_flight", 0, static_cast<double>(after));
    }
    return report;
  } catch (...) {
    in_flight_->add(-1);
    throw;
  }
}

pipeline::QueryReport QueryServer::query(core::ValueKey isovalue) {
  const std::uint64_t submitted_us = submit_time_us();
  return admission_
      ->submit([this, isovalue, submitted_us] {
        return run_admitted(data_, isovalue, submitted_us);
      })
      .get();
}

pipeline::QueryReport QueryServer::query(core::ValueKey isovalue,
                                         extract::KernelOptions kernel) {
  const std::uint64_t submitted_us = submit_time_us();
  return admission_
      ->submit([this, isovalue, submitted_us, kernel] {
        return run_admitted(data_, isovalue, submitted_us, kernel);
      })
      .get();
}

pipeline::ProgressiveReport QueryServer::query_progressive(
    core::ValueKey isovalue, const ProgressiveParams& params) {
  const std::uint64_t submitted_us = submit_time_us();
  return admission_
      ->submit([this, isovalue, submitted_us, params] {
        return run_admitted_progressive(isovalue, submitted_us, params);
      })
      .get();
}

pipeline::QueryReport QueryServer::query_step(
    const pipeline::PreprocessResult& step, core::ValueKey isovalue) {
  const std::uint64_t submitted_us = submit_time_us();
  return admission_
      ->submit([this, &step, isovalue, submitted_us] {
        return run_admitted(step, isovalue, submitted_us);
      })
      .get();
}

std::vector<pipeline::QueryReport> QueryServer::serve(
    std::span<const core::ValueKey> isovalues) {
  std::vector<std::future<pipeline::QueryReport>> pending;
  pending.reserve(isovalues.size());
  for (const core::ValueKey isovalue : isovalues) {
    const std::uint64_t submitted_us = submit_time_us();
    pending.push_back(admission_->submit([this, isovalue, submitted_us] {
      return run_admitted(data_, isovalue, submitted_us);
    }));
  }
  std::vector<pipeline::QueryReport> reports;
  reports.reserve(pending.size());
  for (auto& request : pending) reports.push_back(request.get());
  return reports;
}

void QueryServer::drop_caches() { cluster_.drop_caches(); }

io::CacheCounters QueryServer::cache_counters() const {
  io::CacheCounters total;
  for (std::size_t node = 0; node < cluster_.size(); ++node) {
    total.merge(cache_counters(node));
  }
  return total;
}

io::CacheCounters QueryServer::cache_counters(std::size_t node) const {
  const io::SharedBufferPool* pool =
      static_cast<const parallel::Cluster&>(cluster_).cache(node);
  return pool != nullptr ? pool->counters() : io::CacheCounters{};
}

std::size_t QueryServer::peak_in_flight() const {
  return static_cast<std::size_t>(in_flight_->max_value());
}

}  // namespace oociso::serve
