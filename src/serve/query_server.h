#pragma once
// Concurrent isovalue query serving (the interactive-session workload the
// paper's Section 7 sweeps emulate one request at a time).
//
// A QueryServer admits up to N concurrent isovalue queries against one
// preprocessed cluster. Every query executes through the standard
// QueryEngine path — per-node interval-tree plans, offset-sorted coalesced
// retrieval, marching cubes — but all of them read through the cluster's
// shared per-node brick pools (Cluster::enable_shared_cache, owned by the
// server), so:
//
//   * two queries wanting the same coalesced slice issue ONE device read
//     (single-flight dedup; the loser pins the winner's frame),
//   * a repeated or adjacent isovalue finds its blocks warm and skips the
//     device entirely — across time steps too, since all steps share the
//     per-node disks,
//   * concurrency stays bit-identical to serial execution: marching cubes
//     consumes the same bytes in the same plan order regardless of which
//     query faulted them in.
//
// Admission is a fixed worker pool of max_concurrent_queries threads:
// excess requests queue instead of piling cache pressure on the pools.
// Fault-model compatible: transient/corruption injection moves to the
// cluster level (one coherent fault stream under the shared frames), CRC
// verification and bounded retry still run per query inside the stream,
// and dead nodes fail over to peers that re-read the stripe through the
// dead node's pool.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/interval.h"
#include "io/fault_injection.h"
#include "io/shared_buffer_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/cluster.h"
#include "parallel/thread_pool.h"
#include "placement/health.h"
#include "pipeline/preprocess.h"
#include "pipeline/progressive.h"
#include "pipeline/query_engine.h"

namespace oociso::serve {

/// Per-request overrides for a progressive query (progressive.h). Absent
/// fields inherit ServeOptions::query, so a server can fix a house policy
/// ("every progressive request gets 50 ms") while clients override per
/// call.
struct ProgressiveParams {
  std::optional<double> deadline_ms;
  std::optional<std::uint64_t> memory_budget_bytes;
  std::optional<std::int32_t> max_level;
  /// External cancellation flag for this request (null = none); must
  /// outlive the call.
  std::atomic<bool>* cancel = nullptr;
};

struct ServeOptions {
  /// Queries executing at once; further requests wait in the admission
  /// queue. Must be >= 1.
  std::size_t max_concurrent_queries = 4;
  /// Per-node shared pool capacity (M/B frames per node).
  std::size_t cache_capacity_blocks = 4096;
  /// Cluster-level fault injection under the pools (per-node seeds strided
  /// as usual). Queries served through the pools see the transients and
  /// corruptions through their normal CRC/retry machinery.
  std::optional<io::FaultConfig> inject_faults;
  /// Per-node cluster-level fault injection — one explicit FaultConfig per
  /// node, the chaos harness's hook for killing a single node's store
  /// mid-run (FaultConfig::die_after_reads) while the rest stay healthy.
  /// Mutually exclusive with `inject_faults`; must be empty or one entry
  /// per node.
  std::vector<io::FaultConfig> inject_faults_per_node;
  /// Health-tracking policy for the server's shared NodeHealthTracker
  /// (trip threshold, recovery-probe interval). The tracker is passed to
  /// every admitted query, so replica routing skips holders that recent
  /// queries found dead and probes them for recovery.
  placement::HealthConfig health;
  /// Base options for every query. `use_shared_cache` is forced on;
  /// `inject_faults` must stay empty (use the field above). `dead_nodes`
  /// and `failover` compose with serving as they do with single queries.
  /// The per-query observability fields (`tracer`/`metrics`/`query_id`)
  /// are overwritten per admitted query from the two sinks below.
  pipeline::QueryOptions query;

  /// Trace sink (null = off). Every admitted query gets a fresh pid, a
  /// named process group ("query N iso=V"), an "admission.wait" span from
  /// submission to execution start on the admission lane, and the engine's
  /// full span tree underneath.
  obs::Tracer* tracer = nullptr;
  /// Metrics sink (null = off). The cluster's disks and pools attach at
  /// startup (`node<i>.disk.*` / `node<i>.cache.*`), the in-flight gauge
  /// becomes the registry's `serve.in_flight` (so peak_in_flight() is
  /// derived from the exported metric), and every query bumps
  /// `serve.queries`.
  obs::MetricsRegistry* metrics = nullptr;
  /// First trace pid the server assigns. Raise it when other code traces
  /// into the same sink with its own pids (e.g. a serial baseline pass in
  /// a bench), so the two ranges cannot collide.
  std::uint32_t first_query_id = 1;
};

class QueryServer {
 public:
  /// Enables the cluster's shared pools (throws std::logic_error if some
  /// other owner already enabled them) and validates the options.
  /// `cluster` and `data` must outlive the server.
  QueryServer(parallel::Cluster& cluster, const pipeline::PreprocessResult& data,
              ServeOptions options = {});
  /// Waits for in-flight queries, then tears the shared pools down.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Executes one isovalue query through the admission queue and waits for
  /// its report. Thread-safe; callers on different threads are exactly the
  /// concurrent clients the server exists for.
  [[nodiscard]] pipeline::QueryReport query(core::ValueKey isovalue);

  /// Like query(), but with the marching-cubes kernel ISA overridden for
  /// this request only (ServeOptions::query.kernel otherwise applies to
  /// every admitted query). Mixed-ISA concurrent clients are safe by
  /// construction — the kernels differ only in classify throughput, never
  /// in output — and the TSan kernel suite serves exactly that mix.
  [[nodiscard]] pipeline::QueryReport query(core::ValueKey isovalue,
                                            extract::KernelOptions kernel);

  /// Executes one deadline/budget-bounded progressive query through the
  /// same admission queue (progressive.h): the coarsest stored level
  /// always completes, refinement toward full resolution is gated by the
  /// request's deadline/budget/cancel. On an index built without a
  /// hierarchy this degenerates to the flat query wrapped in a one-level
  /// report. Thread-safe, and counted/traced exactly like flat queries.
  [[nodiscard]] pipeline::ProgressiveReport query_progressive(
      core::ValueKey isovalue, const ProgressiveParams& params = {});

  /// Like query(), but for one preprocessed time step of a time-varying
  /// dataset (`step` must outlive the call; all steps share the per-node
  /// pools, which is what keeps a step revisit warm).
  [[nodiscard]] pipeline::QueryReport query_step(
      const pipeline::PreprocessResult& step, core::ValueKey isovalue);

  /// Submits all isovalues at once and waits; reports come back in request
  /// order while execution overlaps up to max_concurrent_queries.
  [[nodiscard]] std::vector<pipeline::QueryReport> serve(
      std::span<const core::ValueKey> isovalues);

  /// Drops every node pool's resident frames (counters survive) — the
  /// cold-start switch between measurement passes.
  void drop_caches();

  /// Pool-level counters summed over nodes / for one node. The invariant
  /// `hits + misses + waits == fetches` holds for both views.
  [[nodiscard]] io::CacheCounters cache_counters() const;
  [[nodiscard]] io::CacheCounters cache_counters(std::size_t node) const;

  /// High-water mark of queries executing simultaneously since startup
  /// (<= max_concurrent_queries by construction). Derived from the
  /// in-flight gauge — the registry's `serve.in_flight` when metrics are
  /// attached.
  [[nodiscard]] std::size_t peak_in_flight() const;

  [[nodiscard]] const ServeOptions& options() const { return options_; }

  /// The server's shared per-node health tracker (replica routing state).
  [[nodiscard]] placement::NodeHealthTracker& health() { return health_; }
  [[nodiscard]] const placement::NodeHealthTracker& health() const {
    return health_;
  }

 private:
  /// The body of one admitted query: gauge in, run the engine against
  /// `data` through the shared pools, gauge out. `submitted_us` is the
  /// tracer clock at submission (0 without a tracer) — the admission-wait
  /// span runs from there to execution start. `kernel` overrides the
  /// base options' kernel ISA for this query when present.
  [[nodiscard]] pipeline::QueryReport run_admitted(
      const pipeline::PreprocessResult& data, core::ValueKey isovalue,
      std::uint64_t submitted_us,
      std::optional<extract::KernelOptions> kernel = std::nullopt);

  /// run_admitted's progressive twin: same admission bookkeeping (fresh
  /// pid, admission-wait span, serve.queries counter, in-flight gauge),
  /// but the body is a ProgressiveEngine run with the request's
  /// deadline/budget/cancel folded into the base options.
  [[nodiscard]] pipeline::ProgressiveReport run_admitted_progressive(
      core::ValueKey isovalue, std::uint64_t submitted_us,
      ProgressiveParams params);

  /// Tracer clock now, or 0 when tracing is off (submission timestamps).
  [[nodiscard]] std::uint64_t submit_time_us() const {
    return options_.tracer != nullptr ? options_.tracer->now_us() : 0;
  }

  parallel::Cluster& cluster_;
  const pipeline::PreprocessResult& data_;
  ServeOptions options_;
  /// Shared across every admitted query (guarded internally); queries
  /// report holder failures/successes here and skip tripped holders.
  placement::NodeHealthTracker health_;

  /// In-flight level + high-water mark. Points at local_in_flight_ until
  /// metrics are attached, then at the registry's `serve.in_flight` gauge —
  /// one set of atomics, and peak_in_flight() reads whichever is live.
  obs::Gauge local_in_flight_;
  obs::Gauge* in_flight_ = &local_in_flight_;
  std::atomic<std::uint32_t> next_query_id_;

  /// Admission pool, behind a pointer so the destructor can join all
  /// workers (completing every in-flight query) before it tears the shared
  /// pools down.
  std::unique_ptr<parallel::ThreadPool> admission_;
};

}  // namespace oociso::serve
