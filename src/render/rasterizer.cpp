#include "render/rasterizer.h"

#include <algorithm>
#include <cmath>

namespace oociso::render {
namespace {

float edge_function(const ProjectedVertex& a, const ProjectedVertex& b,
                    float px, float py) {
  return (px - a.x) * (b.y - a.y) - (py - a.y) * (b.x - a.x);
}

}  // namespace

bool Rasterizer::draw(const extract::Triangle& triangle, const Camera& camera,
                      Framebuffer& target) {
  ++stats_.triangles_submitted;

  const auto pa = camera.project(triangle.a);
  const auto pb = camera.project(triangle.b);
  const auto pc = camera.project(triangle.c);
  // Near-plane clipping is conservative: a triangle with any vertex behind
  // the near plane is dropped (isosurface geometry sits well inside the
  // volume for the framing cameras used here).
  if (!pa || !pb || !pc) return false;

  // Shading: Lambert with a headlight (light along the view direction);
  // two-sided so winding does not matter for a triangle soup.
  const core::Vec3 normal = triangle.raw_normal().normalized();
  const float lambert = std::abs(normal.dot(camera.forward()));
  const float shade = 0.25f + 0.75f * lambert;  // ambient + diffuse
  const Rgb color{
      static_cast<std::uint8_t>(static_cast<float>(base_color_.r) * shade),
      static_cast<std::uint8_t>(static_cast<float>(base_color_.g) * shade),
      static_cast<std::uint8_t>(static_cast<float>(base_color_.b) * shade)};

  // Screen-space bounding box clamped to the framebuffer.
  const float min_xf = std::min({pa->x, pb->x, pc->x});
  const float max_xf = std::max({pa->x, pb->x, pc->x});
  const float min_yf = std::min({pa->y, pb->y, pc->y});
  const float max_yf = std::max({pa->y, pb->y, pc->y});
  const std::int32_t min_x =
      std::max<std::int32_t>(0, static_cast<std::int32_t>(std::floor(min_xf)));
  const std::int32_t max_x = std::min<std::int32_t>(
      target.width() - 1, static_cast<std::int32_t>(std::ceil(max_xf)));
  const std::int32_t min_y =
      std::max<std::int32_t>(0, static_cast<std::int32_t>(std::floor(min_yf)));
  const std::int32_t max_y = std::min<std::int32_t>(
      target.height() - 1, static_cast<std::int32_t>(std::ceil(max_yf)));
  if (min_x > max_x || min_y > max_y) return false;

  const float area = edge_function(*pa, *pb, pc->x, pc->y);
  if (std::abs(area) < 1e-12f) return false;  // degenerate in screen space
  const float inv_area = 1.0f / area;

  ++stats_.triangles_rasterized;
  bool wrote = false;
  for (std::int32_t y = min_y; y <= max_y; ++y) {
    const float py = static_cast<float>(y) + 0.5f;
    for (std::int32_t x = min_x; x <= max_x; ++x) {
      const float px = static_cast<float>(x) + 0.5f;
      // Barycentric weights via edge functions; sign-normalized by the
      // total area so back-facing triangles rasterize too.
      const float w0 = edge_function(*pb, *pc, px, py) * inv_area;
      const float w1 = edge_function(*pc, *pa, px, py) * inv_area;
      const float w2 = edge_function(*pa, *pb, px, py) * inv_area;
      ++stats_.fragments_tested;
      if (w0 < 0.0f || w1 < 0.0f || w2 < 0.0f) continue;
      const float depth = w0 * pa->depth + w1 * pb->depth + w2 * pc->depth;
      if (target.plot(x, y, depth, color)) {
        ++stats_.fragments_written;
        wrote = true;
      }
    }
  }
  return wrote;
}

RasterStats Rasterizer::draw(const extract::TriangleSoup& soup,
                             const Camera& camera, Framebuffer& target) {
  const RasterStats before = stats_;
  for (const extract::Triangle& triangle : soup.triangles()) {
    draw(triangle, camera, target);
  }
  RasterStats delta;
  delta.triangles_submitted =
      stats_.triangles_submitted - before.triangles_submitted;
  delta.triangles_rasterized =
      stats_.triangles_rasterized - before.triangles_rasterized;
  delta.fragments_tested = stats_.fragments_tested - before.fragments_tested;
  delta.fragments_written = stats_.fragments_written - before.fragments_written;
  return delta;
}

}  // namespace oociso::render
