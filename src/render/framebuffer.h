#pragma once
// Color + depth framebuffer — the unit of the sort-last compositing phase.
//
// Every cluster node rasterizes its local triangles into one of these;
// compositing merges framebuffers pixel-by-pixel keeping the nearer depth,
// which is exactly the z-buffer merge the paper performs over InfiniBand.

#include <cstdint>
#include <filesystem>
#include <limits>
#include <span>
#include <vector>

namespace oociso::render {

struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  constexpr bool operator==(const Rgb&) const = default;
};

class Framebuffer {
 public:
  static constexpr float kFarDepth = std::numeric_limits<float>::infinity();

  Framebuffer(std::int32_t width, std::int32_t height);

  [[nodiscard]] std::int32_t width() const { return width_; }
  [[nodiscard]] std::int32_t height() const { return height_; }
  [[nodiscard]] std::size_t pixel_count() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }

  void clear(Rgb background = {0, 0, 0});

  [[nodiscard]] std::size_t index(std::int32_t x, std::int32_t y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  [[nodiscard]] Rgb color_at(std::int32_t x, std::int32_t y) const {
    return color_[index(x, y)];
  }
  [[nodiscard]] float depth_at(std::int32_t x, std::int32_t y) const {
    return depth_[index(x, y)];
  }

  /// Depth-tested write: stores the fragment iff it is nearer than what the
  /// pixel holds. Returns true when the fragment won.
  bool plot(std::int32_t x, std::int32_t y, float depth, Rgb color) {
    const std::size_t i = index(x, y);
    if (depth >= depth_[i]) return false;
    depth_[i] = depth;
    color_[i] = color;
    return true;
  }

  [[nodiscard]] std::span<const Rgb> colors() const { return color_; }
  [[nodiscard]] std::span<const float> depths() const { return depth_; }
  [[nodiscard]] std::span<Rgb> colors() { return color_; }
  [[nodiscard]] std::span<float> depths() { return depth_; }

  /// Z-merges `other` into this buffer (both must have equal dimensions):
  /// each pixel keeps the nearer fragment. The core sort-last operation.
  void composite_min_depth(const Framebuffer& other);

  /// Number of pixels covered by geometry (depth < far).
  [[nodiscard]] std::size_t covered_pixels() const;

  /// Bytes a node must ship per pixel region during compositing
  /// (color + depth), used by the interconnect cost model.
  [[nodiscard]] static constexpr std::size_t bytes_per_pixel() {
    return sizeof(Rgb) + sizeof(float);
  }

  /// Writes a binary PPM (P6) image of the color plane.
  void write_ppm(const std::filesystem::path& path) const;

 private:
  std::int32_t width_;
  std::int32_t height_;
  std::vector<Rgb> color_;
  std::vector<float> depth_;
};

}  // namespace oociso::render
