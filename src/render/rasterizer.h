#pragma once
// Z-buffered software triangle rasterizer with Lambertian shading.
//
// Stands in for the per-node GPU of the paper's cluster: each simulated
// node rasterizes its locally extracted triangles into its own framebuffer
// before sort-last compositing. Edge-function rasterization, one light
// headlight shading, no perspective-correct interpolation (depth is
// interpolated affinely, adequate for opaque isosurfaces at these scales).

#include <cstdint>

#include "extract/mesh.h"
#include "render/camera.h"
#include "render/framebuffer.h"

namespace oociso::render {

struct RasterStats {
  std::uint64_t triangles_submitted = 0;
  std::uint64_t triangles_rasterized = 0;  ///< after culling/clipping
  std::uint64_t fragments_tested = 0;
  std::uint64_t fragments_written = 0;
};

class Rasterizer {
 public:
  /// `base_color` tints the shaded surface.
  explicit Rasterizer(Rgb base_color = {208, 208, 224})
      : base_color_(base_color) {}

  /// Rasterizes one triangle; returns true if any fragment was written.
  bool draw(const extract::Triangle& triangle, const Camera& camera,
            Framebuffer& target);

  /// Rasterizes a whole soup.
  RasterStats draw(const extract::TriangleSoup& soup, const Camera& camera,
                   Framebuffer& target);

  [[nodiscard]] const RasterStats& stats() const { return stats_; }
  void reset_stats() { stats_ = RasterStats{}; }

 private:
  Rgb base_color_;
  RasterStats stats_;
};

}  // namespace oociso::render
