#include "render/framebuffer.h"

#include <fstream>
#include <stdexcept>

namespace oociso::render {

Framebuffer::Framebuffer(std::int32_t width, std::int32_t height)
    : width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Framebuffer dimensions must be positive");
  }
  color_.resize(pixel_count());
  depth_.resize(pixel_count(), kFarDepth);
}

void Framebuffer::clear(Rgb background) {
  std::fill(color_.begin(), color_.end(), background);
  std::fill(depth_.begin(), depth_.end(), kFarDepth);
}

void Framebuffer::composite_min_depth(const Framebuffer& other) {
  if (other.width_ != width_ || other.height_ != height_) {
    throw std::invalid_argument("composite: framebuffer size mismatch");
  }
  for (std::size_t i = 0; i < depth_.size(); ++i) {
    if (other.depth_[i] < depth_[i]) {
      depth_[i] = other.depth_[i];
      color_[i] = other.color_[i];
    }
  }
}

std::size_t Framebuffer::covered_pixels() const {
  std::size_t covered = 0;
  for (const float d : depth_) {
    if (d < kFarDepth) ++covered;
  }
  return covered;
}

void Framebuffer::write_ppm(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_ppm: cannot open " + path.string());
  out << "P6\n" << width_ << ' ' << height_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(color_.data()),
            static_cast<std::streamsize>(color_.size() * sizeof(Rgb)));
  if (!out) throw std::runtime_error("write_ppm: write failed " + path.string());
}

}  // namespace oociso::render
