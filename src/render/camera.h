#pragma once
// Minimal look-at perspective camera for the software rasterizer.
//
// project() maps world space -> screen pixels + view-space depth. Depth is
// the distance along the view direction (not 1/z), so depths from different
// nodes composite correctly with a plain min comparison.

#include <cmath>
#include <optional>

#include "core/vec3.h"

namespace oociso::render {

struct ProjectedVertex {
  float x = 0;      ///< pixel coordinates (can be off-screen)
  float y = 0;
  float depth = 0;  ///< view-space z, > 0 in front of the camera
};

class Camera {
 public:
  /// `vertical_fov_deg` is the full vertical field of view.
  Camera(const core::Vec3& eye, const core::Vec3& target, const core::Vec3& up,
         float vertical_fov_deg, std::int32_t screen_width,
         std::int32_t screen_height, float near_plane = 0.1f)
      : eye_(eye),
        width_(static_cast<float>(screen_width)),
        height_(static_cast<float>(screen_height)),
        near_(near_plane) {
    forward_ = (target - eye).normalized();
    right_ = forward_.cross(up).normalized();
    up_ = right_.cross(forward_);
    const float fov_rad = vertical_fov_deg * 3.14159265358979323846f / 180.0f;
    // Pixels per unit of tan(angle): scale such that the full fov spans the
    // screen height.
    focal_ = (height_ * 0.5f) / std::tan(fov_rad * 0.5f);
  }

  /// Returns nothing when the point is on or behind the near plane.
  [[nodiscard]] std::optional<ProjectedVertex> project(
      const core::Vec3& world) const {
    const core::Vec3 v = world - eye_;
    const float depth = v.dot(forward_);
    if (depth <= near_) return std::nullopt;
    const float sx = v.dot(right_) / depth * focal_ + width_ * 0.5f;
    const float sy = -v.dot(up_) / depth * focal_ + height_ * 0.5f;
    return ProjectedVertex{sx, sy, depth};
  }

  [[nodiscard]] const core::Vec3& eye() const { return eye_; }
  [[nodiscard]] const core::Vec3& forward() const { return forward_; }

  /// Convenience: a camera looking at the center of a volume of the given
  /// dimensions from an oblique direction that frames it fully.
  static Camera framing_volume(float nx, float ny, float nz,
                               std::int32_t screen_width,
                               std::int32_t screen_height) {
    const core::Vec3 center{nx * 0.5f, ny * 0.5f, nz * 0.5f};
    const float radius = std::sqrt(nx * nx + ny * ny + nz * nz) * 0.5f;
    const core::Vec3 direction = core::Vec3{1.0f, 0.8f, 0.6f}.normalized();
    const core::Vec3 eye = center + direction * (radius * 2.2f);
    return Camera(eye, center, {0.0f, 0.0f, 1.0f}, 45.0f, screen_width,
                  screen_height);
  }

 private:
  core::Vec3 eye_;
  core::Vec3 forward_;
  core::Vec3 right_;
  core::Vec3 up_;
  float width_;
  float height_;
  float near_;
  float focal_ = 1.0f;
};

}  // namespace oociso::render
