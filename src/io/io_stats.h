#pragma once
// I/O accounting in units of disk blocks.
//
// The standard external-memory model (Aggarwal & Vitter) counts I/O
// operations, each transferring one block of B contiguous bytes. Every read
// and write issued through a BlockDevice is decomposed into the blocks it
// touches, and classified as *sequential* (the block immediately following
// the previously accessed one) or *seek* (any other block). The disk cost
// model then charges bandwidth for all bytes and latency per seek, which is
// how we reproduce the paper's 50 MB/s local-disk behaviour and verify the
// O(log n + T/B) I/O bound of the compact interval tree.

#include <cstdint>
#include <ostream>

namespace oociso::io {

struct IoStats {
  std::uint64_t read_ops = 0;     ///< block-granular read operations
  std::uint64_t write_ops = 0;    ///< block-granular write operations
  std::uint64_t bytes_read = 0;   ///< payload bytes read (not rounded to B)
  std::uint64_t bytes_written = 0;
  std::uint64_t blocks_read = 0;     ///< distinct blocks touched by reads
  std::uint64_t blocks_written = 0;  ///< distinct blocks touched by writes
  std::uint64_t seeks = 0;  ///< long/backward repositionings (reads+writes)
  /// Blocks skipped by short *forward* jumps within the device's readahead
  /// window. A spinning disk (and its readahead) passes over these at media
  /// speed rather than performing a head seek, so the cost model charges
  /// them at bandwidth. This is what lets the paper's brick scans sustain
  /// the raw ~50 MB/s even though Case-2 prefix scans hop between bricks.
  std::uint64_t skip_blocks = 0;

  [[nodiscard]] std::uint64_t total_ops() const { return read_ops + write_ops; }
  [[nodiscard]] std::uint64_t total_bytes() const {
    return bytes_read + bytes_written;
  }
  [[nodiscard]] std::uint64_t total_blocks() const {
    return blocks_read + blocks_written;
  }

  IoStats& operator+=(const IoStats& o) {
    read_ops += o.read_ops;
    write_ops += o.write_ops;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    blocks_read += o.blocks_read;
    blocks_written += o.blocks_written;
    seeks += o.seeks;
    skip_blocks += o.skip_blocks;
    return *this;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }

  /// Difference since an earlier snapshot (all counters are monotone).
  [[nodiscard]] IoStats since(const IoStats& snapshot) const {
    IoStats d;
    d.read_ops = read_ops - snapshot.read_ops;
    d.write_ops = write_ops - snapshot.write_ops;
    d.bytes_read = bytes_read - snapshot.bytes_read;
    d.bytes_written = bytes_written - snapshot.bytes_written;
    d.blocks_read = blocks_read - snapshot.blocks_read;
    d.blocks_written = blocks_written - snapshot.blocks_written;
    d.seeks = seeks - snapshot.seeks;
    d.skip_blocks = skip_blocks - snapshot.skip_blocks;
    return d;
  }
};

inline std::ostream& operator<<(std::ostream& os, const IoStats& s) {
  return os << "IoStats{ops=" << s.total_ops() << ", blocks=" << s.total_blocks()
            << ", bytes=" << s.total_bytes() << ", seeks=" << s.seeks << '}';
}

/// Disk cost model: bandwidth + repositioning latency.
///
/// Defaults match the paper's platform: 50 MB/s local-disk transfer rate
/// and 4 KiB blocks. Short forward jumps (within the device readahead
/// window) are charged at bandwidth via `skip_blocks`; long or backward
/// jumps pay `seek_seconds`, defaulting to a 1 ms short-stroke settle —
/// the regime of an index scan within one file region (a full random
/// stroke on a 2006 disk would be ~4-8 ms; ablations may set that).
struct DiskModel {
  std::uint64_t block_size = 4096;
  double bandwidth_bytes_per_s = 50.0 * 1000 * 1000;
  double seek_seconds = 0.001;

  /// Modeled wall-clock seconds for the given I/O activity.
  [[nodiscard]] double seconds(const IoStats& stats) const {
    const double transfer =
        static_cast<double>(stats.total_blocks() + stats.skip_blocks) *
        static_cast<double>(block_size) / bandwidth_bytes_per_s;
    return transfer + static_cast<double>(stats.seeks) * seek_seconds;
  }
};

}  // namespace oociso::io
