#pragma once
// Bounded-attempt retry with exponential backoff for retriable I/O errors.
//
// The policy is pure arithmetic: it says how many attempts an operation
// gets and how long to back off before attempt k. The backoff is *modeled*
// seconds, not a real sleep — the simulated cluster charges it to the
// node's TimeLedger exactly like disk-model seconds, so a query under
// fault injection reports a deterministic, reproducible completion time
// (see EXPERIMENTS.md, degraded-mode timing semantics).

#include <algorithm>

namespace oociso::io {

struct RetryPolicy {
  /// Total tries for one operation, including the first (>= 1 enforced by
  /// users; 1 means "never retry").
  int max_attempts = 4;
  /// Backoff charged before the first retry; each further retry doubles it
  /// (multiplier below).
  double backoff_start_seconds = 0.001;
  double backoff_multiplier = 2.0;

  /// Modeled backoff before retry number `retry_index` (0-based: the wait
  /// between the first failure and the second attempt is index 0).
  [[nodiscard]] double backoff_seconds(int retry_index) const {
    double backoff = backoff_start_seconds;
    for (int i = 0; i < retry_index; ++i) backoff *= backoff_multiplier;
    return std::max(backoff, 0.0);
  }
};

}  // namespace oociso::io
