#pragma once
// Bounded-attempt retry with exponential backoff for retriable I/O errors.
//
// The policy is pure arithmetic: it says how many attempts an operation
// gets and how long to back off before attempt k. The backoff is *modeled*
// seconds, not a real sleep — the simulated cluster charges it to the
// node's TimeLedger exactly like disk-model seconds, so a query under
// fault injection reports a deterministic, reproducible completion time
// (see EXPERIMENTS.md, degraded-mode timing semantics).

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/rng.h"

namespace oociso::io {

struct RetryPolicy {
  /// Total tries for one operation, including the first (>= 1 enforced by
  /// users; 1 means "never retry").
  int max_attempts = 4;
  /// Backoff charged before the first retry; each further retry doubles it
  /// (multiplier below), saturating at backoff_max_seconds.
  double backoff_start_seconds = 0.001;
  double backoff_multiplier = 2.0;
  /// Ceiling on any single backoff charge. The exponential is evaluated in
  /// closed form and clamped here, so a policy with a large max_attempts
  /// (or a runaway multiplier) can neither overflow the double to inf nor
  /// charge an unbounded modeled stall to the ledger. The default keeps
  /// every charge of the default policy unchanged (1/2/4 ms all sit far
  /// below the cap).
  double backoff_max_seconds = 0.1;
  /// Jitter fraction in [0, 1): each backoff charge is scaled by a
  /// deterministic factor in [1 - jitter, 1 + jitter) so concurrent queries
  /// retrying against the same sick device don't synchronize their retry
  /// storms. 0 (the default) reproduces the un-jittered ladder bit for bit.
  double jitter = 0.0;
  /// Seed for the jitter draws. The draw is a closed-form hash of
  /// (jitter_seed, salt, retry_index) — no hidden RNG state, so the same
  /// policy applied to the same operation always charges the same backoff.
  std::uint64_t jitter_seed = 0;

  /// Modeled backoff before retry number `retry_index` (0-based: the wait
  /// between the first failure and the second attempt is index 0).
  [[nodiscard]] double backoff_seconds(int retry_index) const {
    const double start = std::max(backoff_start_seconds, 0.0);
    const double cap = std::max(backoff_max_seconds, 0.0);
    if (start == 0.0 || retry_index <= 0) return std::min(start, cap);
    // Closed form: start * multiplier^index. std::pow may saturate to inf
    // for extreme inputs; min() with the finite cap absorbs that.
    const double backoff =
        start * std::pow(std::max(backoff_multiplier, 0.0),
                         static_cast<double>(retry_index));
    return std::min(backoff, cap);
  }

  /// Jittered backoff for the retry ladder of one operation, identified by
  /// `salt` (callers pass the operation's device offset, so two queries
  /// retrying different reads desynchronize while a replayed run charges
  /// identical values). With jitter == 0 this is exactly backoff_seconds().
  [[nodiscard]] double backoff_seconds(int retry_index,
                                       std::uint64_t salt) const {
    const double base = backoff_seconds(retry_index);
    if (jitter <= 0.0) return base;
    std::uint64_t state =
        jitter_seed ^ (salt * 0x9E3779B97F4A7C15ULL) ^
        (static_cast<std::uint64_t>(std::max(retry_index, 0)) + 1);
    const double unit =
        static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
    const double fraction = std::min(jitter, 1.0);
    // Scale into [1 - jitter, 1 + jitter); the cap still bounds the charge.
    const double scaled = base * (1.0 - fraction + 2.0 * fraction * unit);
    return std::min(scaled, std::max(backoff_max_seconds, 0.0));
  }
};

}  // namespace oociso::io
