#pragma once
// Per-thread decode-CPU ledger.
//
// Decoding decorators (codec::ChunkDecodingDevice) charge the thread-CPU
// seconds they spend decompressing here; read-side consumers (the
// retrieval stream, the async dispatcher) snapshot the ledger around a
// read to attribute that read's exact decode cost — even when several
// streams share one decoder, since the ledger is thread-local and decode
// runs on the calling thread. Lives in io (not codec) so the async device
// can read it without a dependency cycle: codec links io, never the
// reverse.

namespace oociso::io {

namespace detail {
inline thread_local double tls_decode_seconds = 0.0;
}  // namespace detail

/// Monotone total decode thread-CPU seconds this thread has spent in any
/// decoding decorator. Snapshot before/after a read to attribute its cost.
[[nodiscard]] inline double thread_decode_cpu_seconds() {
  return detail::tls_decode_seconds;
}

/// Called by decoding decorators only.
inline void charge_thread_decode_cpu(double seconds) {
  detail::tls_decode_seconds += seconds;
}

}  // namespace oociso::io
