#pragma once
// Little-endian binary (de)serialization of fixed-width records into byte
// buffers. Used by the metacell and index layers for their on-disk formats.
// All formats in this repository are explicitly little-endian; on the
// platforms we target (x86-64, AArch64 Linux) this is a memcpy.

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace oociso::io {

static_assert(std::endian::native == std::endian::little,
              "on-disk formats assume a little-endian host");

/// Appends fixed-width values to a growing byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::byte>& out) : out_(out) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    const auto* raw = reinterpret_cast<const std::byte*>(&value);
    out_.insert(out_.end(), raw, raw + sizeof(T));
  }

  void put_bytes(std::span<const std::byte> bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }

  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::byte>& out_;
};

/// Reads fixed-width values from a byte span with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T get() {
    if (pos_ + sizeof(T) > data_.size()) {
      throw std::out_of_range("ByteReader: truncated record");
    }
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  [[nodiscard]] std::span<const std::byte> get_bytes(std::size_t count) {
    if (pos_ + count > data_.size()) {
      throw std::out_of_range("ByteReader: truncated record");
    }
    auto view = data_.subspan(pos_, count);
    pos_ += count;
    return view;
  }

  void skip(std::size_t count) {
    if (pos_ + count > data_.size()) {
      throw std::out_of_range("ByteReader: skip past end");
    }
    pos_ += count;
  }

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace oociso::io
