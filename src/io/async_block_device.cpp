#include "io/async_block_device.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "io/decode_ledger.h"
#include "util/timer.h"

namespace oociso::io {
namespace {

/// Repositioning rank of moving the head from `head` (valid when
/// `has_position`) to the first block of a request: lexicographic
/// (class, distance) with class 0 = sequential, 1 = forward jump inside
/// the readahead window (distance = blocks passed), 2 = seek (distance =
/// absolute block distance; first access ranks by the block itself so an
/// idle queue drains lowest-offset-first). Mirrors the cost classes of
/// BlockDevice::account(), which is what keeps the elevator's order equal
/// to the model's cheapest order.
struct Rank {
  int cls = 2;
  std::uint64_t distance = 0;

  [[nodiscard]] bool operator<(const Rank& other) const {
    return cls != other.cls ? cls < other.cls : distance < other.distance;
  }
};

Rank rank_move(bool has_position, std::uint64_t head, std::uint64_t first,
               std::uint64_t readahead_blocks) {
  if (!has_position) return {2, first};
  if (first == head || first == head + 1) return {0, 0};
  if (first > head + 1 && first - head - 1 <= readahead_blocks) {
    return {1, first - head - 1};
  }
  return {2, first > head ? first - head : head - first};
}

}  // namespace

AsyncBlockDevice::AsyncBlockDevice(BlockDevice& device, AsyncIoConfig config,
                                   SharedBufferPool* pool)
    : device_(device), pool_(pool), config_(config) {
  if (config_.queue_depth == 0) {
    throw std::invalid_argument("AsyncBlockDevice: queue_depth must be >= 1");
  }
  pending_.reserve(config_.queue_depth);
  if (config_.metrics != nullptr) {
    config_.metrics->gauge("io.queue_depth")
        .set(static_cast<std::int64_t>(config_.queue_depth));
    completion_seconds_ = &config_.metrics->histogram("io.completion_seconds");
  }
}

std::uint64_t AsyncBlockDevice::submit(std::uint64_t offset,
                                       std::span<std::byte> out) {
  if (pending_.size() >= config_.queue_depth) {
    throw std::logic_error("AsyncBlockDevice: submission queue full");
  }
  Pending request;
  request.ticket = next_ticket_++;
  request.offset = offset;
  request.out = out;
  request.dry = pending_.empty();
  if (config_.tracer != nullptr) {
    request.submitted_us = config_.tracer->now_us();
  }
  ++stats_.submissions;
  if (request.dry) {
    ++stats_.dry_submissions;
    stats_.turnaround_modeled_seconds += config_.submit_overhead_seconds;
  }
  pending_.push_back(request);
  stats_.max_in_flight = std::max(stats_.max_in_flight, pending_.size());
  return request.ticket;
}

std::size_t AsyncBlockDevice::pick_cheapest() const {
  std::size_t best = 0;
  Rank best_rank = rank_move(has_position_, head_block_,
                             pending_[0].offset / device_.block_size(),
                             device_.readahead_blocks());
  for (std::size_t i = 1; i < pending_.size(); ++i) {
    const Rank rank = rank_move(has_position_, head_block_,
                                pending_[i].offset / device_.block_size(),
                                device_.readahead_blocks());
    // Ties go to the older ticket; pending_ is in submission order.
    if (rank < best_rank) {
      best_rank = rank;
      best = i;
    }
  }
  return best;
}

AsyncCompletion AsyncBlockDevice::wait_any() {
  if (pending_.empty()) {
    throw std::logic_error("AsyncBlockDevice: wait_any on an empty queue");
  }
  const std::size_t index = pick_cheapest();
  const Pending request = pending_[index];
  std::uint64_t oldest = pending_[0].ticket;
  for (const Pending& p : pending_) oldest = std::min(oldest, p.ticket);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));

  AsyncCompletion completion;
  completion.ticket = request.ticket;
  completion.offset = request.offset;
  completion.bytes = request.out.size();
  if (request.dry) {
    completion.turnaround_modeled_seconds = config_.submit_overhead_seconds;
  }

  const util::WallTimer timer;
  const double decode_before = thread_decode_cpu_seconds();
  const IoStats before = pool_ == nullptr ? device_.stats() : IoStats{};
  try {
    if (pool_ != nullptr) {
      pool_->read(request.offset, request.out, completion.cache);
      completion.io = completion.cache.device_io;
    } else {
      device_.read(request.offset, request.out);
    }
  } catch (...) {
    completion.error = std::current_exception();
  }
  completion.wall_seconds = timer.seconds();
  completion.decode_seconds = thread_decode_cpu_seconds() - decode_before;
  if (pool_ == nullptr) completion.io = device_.stats().since(before);

  // Head advances even on a failed service: the device accounted the
  // repositioning before the transfer broke, and the pooled path models
  // the same sweep.
  if (!request.out.empty()) {
    head_block_ =
        (request.offset + request.out.size() - 1) / device_.block_size();
    has_position_ = true;
  }
  ++stats_.services;
  if (request.ticket != oldest) ++stats_.reordered_services;
  if (completion_seconds_ != nullptr) {
    completion_seconds_->observe(completion.wall_seconds);
  }
  if (config_.tracer != nullptr) {
    const std::uint64_t now = config_.tracer->now_us();
    config_.tracer->complete(
        "io.submission", config_.trace_pid, config_.trace_tid,
        request.submitted_us, now - request.submitted_us,
        obs::ArgsBuilder()
            .add("offset", request.offset)
            .add("bytes", static_cast<std::uint64_t>(request.out.size()))
            .add("dry", std::string_view(request.dry ? "true" : "false"))
            .str());
  }
  return completion;
}

}  // namespace oociso::io
