#pragma once
// Abstract block-granular storage device.
//
// All out-of-core data in this repository flows through BlockDevice, which
// gives two things the algorithms need:
//   1. exact I/O accounting in the external-memory model (see IoStats), and
//   2. a swappable backend (real file vs in-memory) so tests can run without
//      touching the filesystem while benches exercise real disks.
//
// Devices are byte-addressed for convenience but account every access at
// block granularity: reading [off, off+len) counts all blocks overlapping
// the range, and a transition to a block that is not the successor of the
// previously touched block counts as a seek.
//
// Thread-safety: a device instance is NOT thread-safe; in the simulated
// cluster each node owns its device exclusively (the paper's "local disk").

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "io/io_stats.h"
#include "obs/metrics.h"

namespace oociso::io {

class BlockDevice {
 public:
  /// `readahead_blocks` sets the forward-jump window: skipping at most this
  /// many blocks forward is charged as media passing under the head
  /// (IoStats::skip_blocks) rather than a seek; longer jumps are seeks.
  /// The default (12 blocks = 48 KiB) puts the crossover where passing the
  /// gap at the default 50 MB/s costs about one 1 ms short-stroke seek, so
  /// the model never overcharges a jump relative to the cheaper action.
  /// 0 disables the window (every non-adjacent transition is a seek).
  explicit BlockDevice(std::uint64_t block_size,
                       std::uint64_t readahead_blocks = 12)
      : block_size_(block_size), readahead_blocks_(readahead_blocks) {}
  virtual ~BlockDevice() = default;

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  /// Reads `out.size()` bytes starting at `offset`. The range must lie
  /// within the device ([offset, offset+size] <= size()).
  void read(std::uint64_t offset, std::span<std::byte> out) {
    account(offset, out.size(), /*is_write=*/false);
    if (obs_.read_seconds == nullptr) {
      do_read(offset, out);
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    do_read(offset, out);
    obs_.read_seconds->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }

  /// Reads without touching this device's IoStats / obs accounting or head
  /// position. For cross-node replica views: account() mutates shared state
  /// and is NOT thread-safe, but the storage backends' do_read is (pread on
  /// files, memcpy on memory), so a per-program view can serve concurrent
  /// readers of one store as long as each view keeps its *own* accounting
  /// and leaves the store's untouched.
  void read_raw(std::uint64_t offset, std::span<std::byte> out) {
    do_read(offset, out);
  }

  /// Writes the bytes at `offset`, growing the device if needed.
  void write(std::uint64_t offset, std::span<const std::byte> data) {
    account(offset, data.size(), /*is_write=*/true);
    do_write(offset, data);
  }

  /// Appends at the current end; returns the offset the data was placed at.
  std::uint64_t append(std::span<const std::byte> data) {
    const std::uint64_t offset = size();
    write(offset, data);
    return offset;
  }

  /// Current device size in bytes.
  [[nodiscard]] virtual std::uint64_t size() const = 0;

  /// Flushes buffered writes to the backing store (no-op for memory).
  virtual void flush() {}

  [[nodiscard]] std::uint64_t block_size() const { return block_size_; }
  [[nodiscard]] std::uint64_t readahead_blocks() const {
    return readahead_blocks_;
  }
  /// Virtual so address-translating decorators (codec::ChunkDecodingDevice)
  /// can surface the *inner* device's accounting: callers snapshotting
  /// stats() around reads through the decorator then see the physical
  /// traffic (compressed bytes, real seek pattern), not the decorator's
  /// raw-address-space view.
  [[nodiscard]] virtual const IoStats& stats() const { return stats_; }
  virtual void reset_stats() { stats_ = IoStats{}; }

  /// Mirrors every subsequent access into `registry` counters named
  /// `<prefix>.read_ops`, `.write_ops`, `.bytes_read`, `.bytes_written`,
  /// `.seeks`, plus a `<prefix>.read_seconds` wall-clock latency histogram.
  /// The local IoStats keep accumulating unchanged — the registry is an
  /// additional view, resolved once here so the per-access cost is a few
  /// relaxed atomic adds.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) {
    obs_.read_ops = &registry.counter(prefix + ".read_ops");
    obs_.write_ops = &registry.counter(prefix + ".write_ops");
    obs_.bytes_read = &registry.counter(prefix + ".bytes_read");
    obs_.bytes_written = &registry.counter(prefix + ".bytes_written");
    obs_.seeks = &registry.counter(prefix + ".seeks");
    obs_.read_seconds = &registry.histogram(prefix + ".read_seconds");
  }

 protected:
  virtual void do_read(std::uint64_t offset, std::span<std::byte> out) = 0;
  virtual void do_write(std::uint64_t offset,
                        std::span<const std::byte> data) = 0;

 private:
  void account(std::uint64_t offset, std::size_t length, bool is_write) {
    if (length == 0) return;
    const std::uint64_t first = offset / block_size_;
    const std::uint64_t last = (offset + length - 1) / block_size_;
    const std::uint64_t blocks = last - first + 1;
    if (is_write) {
      ++stats_.write_ops;
      stats_.bytes_written += length;
      stats_.blocks_written += blocks;
      if (obs_.write_ops != nullptr) {
        obs_.write_ops->add();
        obs_.bytes_written->add(length);
      }
    } else {
      ++stats_.read_ops;
      stats_.bytes_read += length;
      stats_.blocks_read += blocks;
      if (obs_.read_ops != nullptr) {
        obs_.read_ops->add();
        obs_.bytes_read->add(length);
      }
    }
    // Repositioning: re-touching the current block or the next one is
    // sequential; a short forward jump passes media under the head (charged
    // at bandwidth via skip_blocks); anything else — first access, backward
    // jump, or a long forward jump — is a seek.
    if (!has_position_) {
      ++stats_.seeks;
      if (obs_.seeks != nullptr) obs_.seeks->add();
    } else if (first == last_block_ || first == last_block_ + 1) {
      // sequential, free
    } else if (first > last_block_ + 1 &&
               first - last_block_ - 1 <= readahead_blocks_) {
      stats_.skip_blocks += first - last_block_ - 1;
    } else {
      ++stats_.seeks;
      if (obs_.seeks != nullptr) obs_.seeks->add();
    }
    last_block_ = last;
    has_position_ = true;
  }

  struct DeviceObs {
    obs::Counter* read_ops = nullptr;
    obs::Counter* write_ops = nullptr;
    obs::Counter* bytes_read = nullptr;
    obs::Counter* bytes_written = nullptr;
    obs::Counter* seeks = nullptr;
    obs::Histogram* read_seconds = nullptr;
  };

  std::uint64_t block_size_;
  std::uint64_t readahead_blocks_;
  IoStats stats_;
  DeviceObs obs_;
  std::uint64_t last_block_ = 0;
  bool has_position_ = false;
};

}  // namespace oociso::io
