#include "io/fault_injection.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace oociso::io {
namespace {

// Channels keep the per-ordinal decisions independent of one another: the
// failure draw for read k must not perturb the corruption draw for the same
// read, or rates would interact.
enum Channel : std::uint64_t {
  kChannelReadFail = 0,
  kChannelReadCorrupt = 1,
  kChannelReadStall = 2,
  kChannelWriteTorn = 3,
  kChannelCount = 4,
};

/// Independent deterministic stream for (seed, ordinal, channel).
util::Xoshiro256 stream_for(std::uint64_t seed, std::uint64_t ordinal,
                            Channel channel) {
  return util::Xoshiro256(seed, ordinal * kChannelCount + channel);
}

bool decide(std::uint64_t seed, std::uint64_t ordinal, Channel channel,
            double rate) {
  if (rate <= 0.0) return false;
  return stream_for(seed, ordinal, channel).uniform() < rate;
}

bool listed(const std::vector<std::uint64_t>& ordinals, std::uint64_t k) {
  return std::find(ordinals.begin(), ordinals.end(), k) != ordinals.end();
}

}  // namespace

FaultConfig FaultConfig::parse(std::string_view spec) {
  const std::size_t comma = spec.find(',');
  if (comma == std::string_view::npos || comma == 0 ||
      comma + 1 >= spec.size()) {
    throw std::invalid_argument(
        "--inject-faults expects <seed,rate>, got '" + std::string(spec) + "'");
  }
  FaultConfig config;
  const std::string_view seed_part = spec.substr(0, comma);
  const auto [seed_end, seed_ec] = std::from_chars(
      seed_part.data(), seed_part.data() + seed_part.size(), config.seed);
  if (seed_ec != std::errc{} || seed_end != seed_part.data() + seed_part.size()) {
    throw std::invalid_argument("--inject-faults: bad seed in '" +
                                std::string(spec) + "'");
  }
  // std::from_chars for double is not universally available; strtod via a
  // NUL-terminated copy is.
  const std::string rate_part(spec.substr(comma + 1));
  char* rate_end = nullptr;
  config.read_failure_rate = std::strtod(rate_part.c_str(), &rate_end);
  if (rate_end != rate_part.c_str() + rate_part.size() ||
      config.read_failure_rate < 0.0 || config.read_failure_rate > 1.0) {
    throw std::invalid_argument("--inject-faults: bad rate in '" +
                                std::string(spec) + "'");
  }
  return config;
}

bool FaultInjectingBlockDevice::read_fails(const FaultConfig& config,
                                           std::uint64_t k) {
  if (config.die_after_reads >= 0 &&
      k >= static_cast<std::uint64_t>(config.die_after_reads)) {
    // The device died mid-run: every read at or past the threshold fails,
    // permanently — retries burn their budget and the caller must fail over.
    return true;
  }
  return config.fail_all_reads || listed(config.fail_reads, k) ||
         decide(config.seed, k, kChannelReadFail, config.read_failure_rate);
}

bool FaultInjectingBlockDevice::read_corrupts(const FaultConfig& config,
                                              std::uint64_t k) {
  return listed(config.corrupt_reads, k) ||
         decide(config.seed, k, kChannelReadCorrupt,
                config.read_corruption_rate);
}

void FaultInjectingBlockDevice::do_read(std::uint64_t offset,
                                        std::span<std::byte> out) {
  const std::uint64_t k = injected_.reads++;
  if (read_fails(config_, k)) {
    ++injected_.read_failures;
    throw IoError(IoError::Kind::kTransient, /*retriable=*/true,
                  "injected transient read failure (read #" +
                      std::to_string(k) + ")");
  }
  if (decide(config_.seed, k, kChannelReadStall, config_.stall_rate)) {
    ++injected_.stalls;
    injected_.stall_modeled_seconds += config_.stall_seconds;
  }
  inner_.read(offset, out);
  if (!out.empty() && read_corrupts(config_, k)) {
    // Flip one deterministic bit, as if the transfer went bad in flight:
    // the backing store stays clean, so a re-read returns good bytes.
    util::Xoshiro256 rng = stream_for(config_.seed, k, kChannelReadCorrupt);
    rng();  // skip the draw decide() consumed
    const std::uint64_t position = rng.bounded(out.size());
    const auto bit = static_cast<int>(rng.bounded(8));
    out[position] ^= static_cast<std::byte>(1 << bit);
    ++injected_.corrupted_reads;
  }
}

void FaultInjectingBlockDevice::do_write(std::uint64_t offset,
                                         std::span<const std::byte> data) {
  const std::uint64_t k = injected_.writes++;
  if (decide(config_.seed, k, kChannelWriteTorn, config_.write_torn_rate)) {
    // A torn write: only a prefix reaches the media before the error.
    ++injected_.torn_writes;
    const std::size_t torn = data.size() / 2;
    if (torn > 0) inner_.write(offset, data.first(torn));
    throw IoError(IoError::Kind::kTornWrite, /*retriable=*/true,
                  "injected torn write (write #" + std::to_string(k) + ", " +
                      std::to_string(torn) + " of " +
                      std::to_string(data.size()) + " bytes transferred)");
  }
  inner_.write(offset, data);
}

}  // namespace oociso::io
