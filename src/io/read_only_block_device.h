#pragma once
// Read-only forwarding view over another device. Used for failover: when a
// node program dies, a healthy peer reopens the dead node's brick store
// through this wrapper (in-memory clusters have no file to reopen), so the
// takeover can never scribble on the store it is trying to salvage.

#include <stdexcept>

#include "io/block_device.h"

namespace oociso::io {

class ReadOnlyBlockDevice final : public BlockDevice {
 public:
  /// `inner` must outlive the wrapper. With `account_inner` (the default)
  /// every read is forwarded through the inner device's public read(), so
  /// the store's own IoStats see the traffic — single-threaded takeover
  /// keeps today's accounting. Passing false forwards through read_raw()
  /// instead: the store's accounting (which is not thread-safe) is left
  /// untouched and only this view's IoStats accumulate, which is what
  /// replica routing needs when several node programs read one store
  /// concurrently through private views.
  explicit ReadOnlyBlockDevice(BlockDevice& inner, bool account_inner = true)
      : BlockDevice(inner.block_size(), inner.readahead_blocks()),
        inner_(inner),
        account_inner_(account_inner) {}

  [[nodiscard]] std::uint64_t size() const override { return inner_.size(); }
  void flush() override {}

 protected:
  void do_read(std::uint64_t offset, std::span<std::byte> out) override {
    if (account_inner_) {
      inner_.read(offset, out);
    } else {
      inner_.read_raw(offset, out);
    }
  }
  void do_write(std::uint64_t, std::span<const std::byte>) override {
    throw std::logic_error("ReadOnlyBlockDevice: write refused");
  }

 private:
  BlockDevice& inner_;
  bool account_inner_;
};

}  // namespace oociso::io
