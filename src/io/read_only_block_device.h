#pragma once
// Read-only forwarding view over another device. Used for failover: when a
// node program dies, a healthy peer reopens the dead node's brick store
// through this wrapper (in-memory clusters have no file to reopen), so the
// takeover can never scribble on the store it is trying to salvage.

#include <stdexcept>

#include "io/block_device.h"

namespace oociso::io {

class ReadOnlyBlockDevice final : public BlockDevice {
 public:
  /// `inner` must outlive the wrapper.
  explicit ReadOnlyBlockDevice(BlockDevice& inner)
      : BlockDevice(inner.block_size(), inner.readahead_blocks()),
        inner_(inner) {}

  [[nodiscard]] std::uint64_t size() const override { return inner_.size(); }
  void flush() override {}

 protected:
  void do_read(std::uint64_t offset, std::span<std::byte> out) override {
    inner_.read(offset, out);
  }
  void do_write(std::uint64_t, std::span<const std::byte>) override {
    throw std::logic_error("ReadOnlyBlockDevice: write refused");
  }

 private:
  BlockDevice& inner_;
};

}  // namespace oociso::io
