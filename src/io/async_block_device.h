#pragma once
// Modeled asynchronous block I/O: a submission/completion queue over a
// synchronous BlockDevice (optionally fronted by a SharedBufferPool).
//
// Real devices expose queued interfaces (NCQ, io_uring) whose benefit is
// not faster transfers but a primed pipeline: while the device services one
// request the host has already handed it the next, so per-request host
// turnaround — syscall entry, interrupt, scheduling the issuing thread —
// hides behind media time instead of serializing with it. AsyncBlockDevice
// reproduces exactly that in the repository's deterministic cost model:
//
//   * submit() registers up to `queue_depth` requests without performing
//     any I/O. A submission made while no other request is outstanding is
//     a *dry* submission: the device was idle, so the host turnaround
//     (`submit_overhead_seconds`, modeled — never slept) is exposed and
//     charged to the request. A submission made while the queue is busy is
//     free: its preparation overlapped the in-flight service.
//   * wait_any() services one outstanding request and returns its
//     completion. The request chosen is the one with the cheapest head
//     repositioning under the device's own model (sequential beats a
//     readahead-window skip beats a seek; ties in submission order), i.e.
//     an elevator over the queue. On an offset-monotone schedule — what
//     the plan scheduler emits — this is submission order, so IoStats,
//     seek counts, and transferred bytes are identical to executing the
//     same reads synchronously at any depth; scrambled submissions are
//     serviced out of submission order, deterministically.
//
// At queue depth 1 there is never more than one request outstanding, every
// submission is dry, and the byte/seek accounting equals the synchronous
// path exactly — the equivalence the asyncio test label pins.
//
// The service itself is the caller's blocking read (the simulation has no
// device thread): wait_any() runs BlockDevice::read — or
// SharedBufferPool::read when pooled, which keeps single-flight dedup with
// concurrent streams intact, waiters included — on the calling thread and
// captures the IoStats delta, pool accounting, wall time, and any thrown
// error into the completion instead of letting it escape. Retrying a
// failed request is the consumer's job: re-submit it through the same
// queue (see RetrievalStream's dispatch loop).
//
// Thread-safety: like BlockDevice, an AsyncBlockDevice is single-consumer;
// concurrency across streams comes from each owning its own queue over a
// shared pool.

#include <cstddef>
#include <cstdint>
#include <exception>
#include <span>
#include <vector>

#include "io/block_device.h"
#include "io/io_stats.h"
#include "io/shared_buffer_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oociso::io {

struct AsyncIoConfig {
  /// Maximum requests outstanding at once (>= 1). submit() beyond this
  /// throws std::logic_error — the consumer owns pacing.
  std::size_t queue_depth = 4;
  /// Modeled host turnaround charged to every dry submission (the queue
  /// was empty, so nothing hid the request hand-off). Modeled seconds:
  /// charged to the time ledger like backoff, never slept.
  double submit_overhead_seconds = 0.0005;
  /// Observability (optional). `metrics` gets an `io.queue_depth` gauge
  /// (the configured depth) and an `io.completion_seconds` histogram (wall
  /// seconds per service); `tracer` gets one complete event per submission
  /// spanning submit -> service end on (trace_pid, trace_tid).
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  std::uint32_t trace_pid = 0;
  std::uint32_t trace_tid = 0;
};

/// Outcome of one serviced request. `error` is set when the read threw
/// (the IoStats delta still reflects whatever accounting the attempt
/// performed); the consumer decides between resubmission and rethrow.
struct AsyncCompletion {
  std::uint64_t ticket = 0;  ///< as returned by submit()
  std::uint64_t offset = 0;
  std::size_t bytes = 0;
  IoStats io;            ///< device I/O this service performed
  CacheReadStats cache;  ///< pool accounting when pooled (zeros otherwise)
  double wall_seconds = 0.0;  ///< monotonic clock around the inner read
  /// Thread-CPU seconds the service spent decoding compressed chunks
  /// (codec::ChunkDecodingDevice in the read stack; 0 elsewhere).
  double decode_seconds = 0.0;
  /// Modeled turnaround charged to this request (submit_overhead_seconds
  /// when its submission was dry, else 0).
  double turnaround_modeled_seconds = 0.0;
  std::exception_ptr error;
};

/// Lifetime counters of one queue (diagnostics + the asyncio tests).
struct AsyncIoStats {
  std::uint64_t submissions = 0;
  std::uint64_t dry_submissions = 0;  ///< charged submit_overhead_seconds
  std::uint64_t services = 0;
  /// Services that did not pick the oldest outstanding ticket — the
  /// elevator reordered around submission order.
  std::uint64_t reordered_services = 0;
  std::size_t max_in_flight = 0;
  double turnaround_modeled_seconds = 0.0;  ///< sum over dry submissions
};

class AsyncBlockDevice {
 public:
  /// `device` must outlive the queue. With `pool` given, every service
  /// reads through it (single-flight shared caching; `device` is then only
  /// consulted for geometry and must be the pool's underlying device or
  /// share its block size and readahead window).
  AsyncBlockDevice(BlockDevice& device, AsyncIoConfig config = {},
                   SharedBufferPool* pool = nullptr);

  AsyncBlockDevice(const AsyncBlockDevice&) = delete;
  AsyncBlockDevice& operator=(const AsyncBlockDevice&) = delete;

  /// Registers a read of `out.size()` bytes at `offset`; returns its
  /// ticket. `out` must stay valid until the completion is returned.
  /// Throws std::logic_error when the queue is full.
  std::uint64_t submit(std::uint64_t offset, std::span<std::byte> out);

  /// Services the cheapest outstanding request (see file comment) and
  /// returns its completion. Throws std::logic_error on an empty queue.
  [[nodiscard]] AsyncCompletion wait_any();

  [[nodiscard]] std::size_t in_flight() const { return pending_.size(); }
  [[nodiscard]] std::size_t queue_depth() const { return config_.queue_depth; }
  [[nodiscard]] const AsyncIoStats& stats() const { return stats_; }

 private:
  struct Pending {
    std::uint64_t ticket = 0;
    std::uint64_t offset = 0;
    std::span<std::byte> out;
    std::uint64_t submitted_us = 0;  ///< tracer clock at submit (0 w/o tracer)
    bool dry = false;
  };

  /// Index into pending_ of the request with the cheapest repositioning.
  [[nodiscard]] std::size_t pick_cheapest() const;

  BlockDevice& device_;
  SharedBufferPool* pool_;
  AsyncIoConfig config_;
  std::vector<Pending> pending_;
  std::uint64_t next_ticket_ = 0;
  /// Modeled head position: last block a serviced request touched. Tracked
  /// here (not read off the device) so the pooled path — where a warm
  /// service never touches the device — still sweeps in logical order.
  std::uint64_t head_block_ = 0;
  bool has_position_ = false;
  AsyncIoStats stats_;
  obs::Histogram* completion_seconds_ = nullptr;
};

}  // namespace oociso::io
