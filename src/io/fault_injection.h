#pragma once
// Deterministic fault-injecting BlockDevice decorator.
//
// Wraps another device (composable with ThrottledBlockDevice — decorators
// stack through the public read()/write() of the inner device) and injects
// the failure modes a 16-node cluster of commodity local disks actually
// exhibits:
//   * transient read failures  — a retriable io::IoError before the inner
//     device is touched (the read can simply be re-issued);
//   * silent corruption        — the inner read succeeds but one bit of the
//     returned buffer is flipped, as if the transfer went bad in flight
//     (only a checksum can catch this; a re-read returns clean bytes);
//   * torn writes              — only a prefix of the data reaches the
//     inner device before a retriable error is thrown;
//   * stalls                   — modeled latency spikes, accumulated as
//     virtual seconds rather than slept, so benches stay deterministic.
//
// Determinism: every decision is a pure function of (seed, operation
// ordinal, channel) via the repo's counter-seeded Xoshiro256 streams — the
// k-th read of a device with seed S always sees the same fate, regardless
// of thread interleaving or what earlier operations did. Same seed, same
// access sequence => same fault schedule, which is what makes
// retry/failover tests and `--inject-faults <seed,rate>` bench runs
// reproducible. Explicit ordinal lists (`fail_reads`, `corrupt_reads`)
// pin individual operations for tests that need an exact schedule.

#include <cstdint>
#include <string_view>
#include <vector>

#include "io/block_device.h"
#include "io/io_error.h"

namespace oociso::io {

struct FaultConfig {
  std::uint64_t seed = 1;
  double read_failure_rate = 0.0;     ///< P(transient error) per read
  double read_corruption_rate = 0.0;  ///< P(one flipped bit) per read
  double write_torn_rate = 0.0;       ///< P(short write + error) per write
  double stall_rate = 0.0;            ///< P(latency spike) per read
  double stall_seconds = 0.0;         ///< modeled length of one stall
  /// Every read fails (a dead disk / dead node program). Used by the query
  /// engine's `dead_nodes` to force retry exhaustion and failover.
  bool fail_all_reads = false;
  /// Healthy until `die_after_reads` reads have been served, then every
  /// further read fails permanently (a device that dies mid-query, not from
  /// the start). -1 disables. The threshold counts read *ordinals* on this
  /// device, so with a cluster-level injector under a shared cache it is a
  /// global per-store death point across all concurrent queries.
  std::int64_t die_after_reads = -1;
  /// Read ordinals (0-based, per device) that fail / arrive corrupted in
  /// addition to the rate-driven schedule — exact placement for tests.
  std::vector<std::uint64_t> fail_reads;
  std::vector<std::uint64_t> corrupt_reads;

  /// Parses the CLI/bench `--inject-faults <seed,rate>` spec: `seed` feeds
  /// the schedule, `rate` becomes read_failure_rate. Throws
  /// std::invalid_argument on malformed input.
  [[nodiscard]] static FaultConfig parse(std::string_view spec);
};

/// What the injector actually did, for cross-checking detection counts.
struct InjectedFaults {
  std::uint64_t reads = 0;   ///< operations seen (= next read ordinal)
  std::uint64_t writes = 0;
  std::uint64_t read_failures = 0;
  std::uint64_t corrupted_reads = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t stalls = 0;
  double stall_modeled_seconds = 0.0;
};

class FaultInjectingBlockDevice final : public BlockDevice {
 public:
  /// `inner` must outlive the wrapper.
  FaultInjectingBlockDevice(BlockDevice& inner, FaultConfig config)
      : BlockDevice(inner.block_size(), inner.readahead_blocks()),
        inner_(inner),
        config_(std::move(config)) {}

  [[nodiscard]] std::uint64_t size() const override { return inner_.size(); }
  void flush() override { inner_.flush(); }

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] const InjectedFaults& injected() const { return injected_; }

  /// Schedule predicates: whether read ordinal `k` under `config` fails /
  /// arrives corrupted. Tests use these to predict the exact fault
  /// schedule a run will see.
  [[nodiscard]] static bool read_fails(const FaultConfig& config,
                                       std::uint64_t k);
  [[nodiscard]] static bool read_corrupts(const FaultConfig& config,
                                          std::uint64_t k);

 protected:
  void do_read(std::uint64_t offset, std::span<std::byte> out) override;
  void do_write(std::uint64_t offset,
                std::span<const std::byte> data) override;

 private:
  BlockDevice& inner_;
  FaultConfig config_;
  InjectedFaults injected_;
};

}  // namespace oociso::io
