#include "io/file_block_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <string>
#include <system_error>

namespace oociso::io {
namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::filesystem::path& path) {
  throw std::system_error(errno, std::generic_category(),
                          what + ": " + path.string());
}

}  // namespace

FileBlockDevice::FileBlockDevice(const std::filesystem::path& path, Mode mode,
                                 std::uint64_t block_size,
                                 std::uint64_t readahead_blocks)
    : BlockDevice(block_size, readahead_blocks), path_(path) {
  int flags = 0;
  switch (mode) {
    case Mode::kCreate: flags = O_RDWR | O_CREAT | O_TRUNC; break;
    case Mode::kReadWrite: flags = O_RDWR; break;
    case Mode::kReadOnly: flags = O_RDONLY; break;
  }
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) throw_errno("FileBlockDevice: open failed", path);
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    throw_errno("FileBlockDevice: fstat failed", path);
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

void FileBlockDevice::flush() {
  if (fd_ >= 0) ::fdatasync(fd_);
}

void FileBlockDevice::do_read(std::uint64_t offset, std::span<std::byte> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("FileBlockDevice: pread failed", path_);
    }
    if (n == 0) {
      throw std::out_of_range("FileBlockDevice: read past end of " +
                              path_.string());
    }
    done += static_cast<std::size_t>(n);
  }
}

void FileBlockDevice::do_write(std::uint64_t offset,
                               std::span<const std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("FileBlockDevice: pwrite failed", path_);
    }
    if (n == 0) {
      // A zero-byte pwrite for a non-empty request makes no progress;
      // looping on it would spin forever. Surface it like do_read does.
      throw std::runtime_error("FileBlockDevice: pwrite wrote 0 of " +
                               std::to_string(data.size() - done) +
                               " remaining bytes to " + path_.string());
    }
    done += static_cast<std::size_t>(n);
  }
  size_ = std::max(size_, offset + data.size());
}

}  // namespace oociso::io
