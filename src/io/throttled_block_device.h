#pragma once
// Delay-injecting BlockDevice decorator, for timing tests.
//
// Wraps another device and sleeps for a fixed wall-clock delay before every
// read (and optionally every write) it forwards. Because the inner device is
// reached through its public read()/write(), the wrapper keeps its own
// IoStats consistent with the inner device's while making "time blocked in
// a device read" large and deterministic — exactly what a regression test
// for I/O wall-time attribution needs: a thread-CPU clock will NOT observe
// the injected sleep, a monotonic wall clock around the read will.

#include <chrono>
#include <cstdint>
#include <thread>

#include "io/block_device.h"

namespace oociso::io {

class ThrottledBlockDevice final : public BlockDevice {
 public:
  /// `inner` must outlive the wrapper. `read_delay` is slept before every
  /// forwarded read, `write_delay` before every forwarded write.
  ThrottledBlockDevice(BlockDevice& inner,
                       std::chrono::nanoseconds read_delay,
                       std::chrono::nanoseconds write_delay =
                           std::chrono::nanoseconds{0})
      : BlockDevice(inner.block_size()),
        inner_(inner),
        read_delay_(read_delay),
        write_delay_(write_delay) {}

  [[nodiscard]] std::uint64_t size() const override { return inner_.size(); }
  void flush() override { inner_.flush(); }

  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

 protected:
  void do_read(std::uint64_t offset, std::span<std::byte> out) override {
    ++reads_;
    if (read_delay_.count() > 0) std::this_thread::sleep_for(read_delay_);
    inner_.read(offset, out);
  }

  void do_write(std::uint64_t offset,
                std::span<const std::byte> data) override {
    ++writes_;
    if (write_delay_.count() > 0) std::this_thread::sleep_for(write_delay_);
    inner_.write(offset, data);
  }

 private:
  BlockDevice& inner_;
  std::chrono::nanoseconds read_delay_;
  std::chrono::nanoseconds write_delay_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace oociso::io
