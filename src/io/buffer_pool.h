#pragma once
// LRU block cache over a BlockDevice.
//
// The external-memory model assumes a main memory of M bytes caching blocks
// of B bytes. BufferPool makes that explicit: reads go through a fixed-size
// LRU cache of device blocks, writes are write-back (dirty blocks flushed on
// eviction and on flush()). Cache hits perform no device I/O, so IoStats on
// the underlying device reflect true out-of-core traffic.

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "io/block_device.h"

namespace oociso::io {

class BufferPool {
 private:
  struct Frame {
    std::uint64_t block_index;
    std::vector<std::byte> data;
    bool dirty = false;
    int pins = 0;  ///< live PinnedBlock handles; > 0 blocks eviction
  };

 public:
  /// RAII pin on one cached block. While the handle lives the frame cannot
  /// be evicted, so data() stays valid across further pool operations —
  /// the unguarded internal Frame& used to dangle as soon as another
  /// access faulted a block in at capacity.
  class PinnedBlock {
   public:
    PinnedBlock(PinnedBlock&& other) noexcept
        : pool_(other.pool_), frame_(other.frame_) {
      other.frame_ = nullptr;
    }
    PinnedBlock(const PinnedBlock&) = delete;
    PinnedBlock& operator=(const PinnedBlock&) = delete;
    PinnedBlock& operator=(PinnedBlock&&) = delete;
    ~PinnedBlock();

    [[nodiscard]] std::uint64_t block_index() const;
    [[nodiscard]] std::span<std::byte> data();
    [[nodiscard]] std::span<const std::byte> data() const;
    /// Schedules the block for write-back (the caller mutated data()).
    void mark_dirty();

   private:
    friend class BufferPool;
    PinnedBlock(BufferPool& pool, Frame& frame)
        : pool_(&pool), frame_(&frame) {}
    BufferPool* pool_;
    Frame* frame_;  ///< list nodes are address-stable; null after move
  };

  /// `capacity_blocks` is M/B in model terms; must be >= 1.
  BufferPool(BlockDevice& device, std::size_t capacity_blocks);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Faults the block in (evicting an unpinned victim if needed) and pins
  /// it. Throws std::runtime_error when the pool is full of pinned blocks.
  [[nodiscard]] PinnedBlock pin_block(std::uint64_t block_index);

  /// Cached byte-range read ([offset, offset+out.size()) must be within the
  /// logical size, which covers both flushed and still-dirty data).
  void read(std::uint64_t offset, std::span<std::byte> out);

  /// Cached byte-range write (write-back).
  void write(std::uint64_t offset, std::span<const std::byte> data);

  /// Logical size including unflushed tail writes.
  [[nodiscard]] std::uint64_t size() const { return logical_size_; }

  /// Writes all dirty blocks back to the device.
  void flush();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  /// Frames displaced by capacity pressure (hits + misses counts fetches;
  /// evictions says how many of the missed frames pushed a victim out).
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::size_t capacity_blocks() const { return capacity_; }
  [[nodiscard]] std::size_t resident_blocks() const { return map_.size(); }
  /// Resident blocks whose contents have not been written back yet.
  [[nodiscard]] std::size_t dirty_blocks() const;
  /// Resident blocks currently held by a PinnedBlock.
  [[nodiscard]] std::size_t pinned_blocks() const;

  [[nodiscard]] BlockDevice& device() { return device_; }

 private:
  using LruList = std::list<Frame>;

  /// Returns the frame for the block, faulting it in (and evicting the LRU
  /// victim) as needed; moves it to the MRU position.
  Frame& pin(std::uint64_t block_index);
  void evict_one();
  void write_back(Frame& frame);

  BlockDevice& device_;
  std::size_t capacity_;
  std::uint64_t block_size_;
  std::uint64_t logical_size_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace oociso::io
