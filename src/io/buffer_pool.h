#pragma once
// LRU block cache over a BlockDevice.
//
// The external-memory model assumes a main memory of M bytes caching blocks
// of B bytes. BufferPool makes that explicit: reads go through a fixed-size
// LRU cache of device blocks, writes are write-back (dirty blocks flushed on
// eviction and on flush()). Cache hits perform no device I/O, so IoStats on
// the underlying device reflect true out-of-core traffic.

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "io/block_device.h"

namespace oociso::io {

class BufferPool {
 public:
  /// `capacity_blocks` is M/B in model terms; must be >= 1.
  BufferPool(BlockDevice& device, std::size_t capacity_blocks);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Cached byte-range read ([offset, offset+out.size()) must be within the
  /// logical size, which covers both flushed and still-dirty data).
  void read(std::uint64_t offset, std::span<std::byte> out);

  /// Cached byte-range write (write-back).
  void write(std::uint64_t offset, std::span<const std::byte> data);

  /// Logical size including unflushed tail writes.
  [[nodiscard]] std::uint64_t size() const { return logical_size_; }

  /// Writes all dirty blocks back to the device.
  void flush();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::size_t capacity_blocks() const { return capacity_; }
  [[nodiscard]] std::size_t resident_blocks() const { return map_.size(); }

  [[nodiscard]] BlockDevice& device() { return device_; }

 private:
  struct Frame {
    std::uint64_t block_index;
    std::vector<std::byte> data;
    bool dirty = false;
  };
  using LruList = std::list<Frame>;

  /// Returns the frame for the block, faulting it in (and evicting the LRU
  /// victim) as needed; moves it to the MRU position.
  Frame& pin(std::uint64_t block_index);
  void evict_one();
  void write_back(Frame& frame);

  BlockDevice& device_;
  std::size_t capacity_;
  std::uint64_t block_size_;
  std::uint64_t logical_size_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace oociso::io
