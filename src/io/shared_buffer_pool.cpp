#include "io/shared_buffer_pool.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace oociso::io {

SharedBufferPool::SharedBufferPool(BlockDevice& device,
                                   std::size_t capacity_blocks)
    : device_(device),
      capacity_(capacity_blocks),
      block_size_(device.block_size()),
      tally_{&local_[0], &local_[1], &local_[2],
             &local_[3], &local_[4], &local_[5]} {
  if (capacity_blocks == 0) {
    throw std::invalid_argument("SharedBufferPool needs at least one block");
  }
}

void SharedBufferPool::attach_metrics(obs::MetricsRegistry& registry,
                                      const std::string& prefix) {
  const std::lock_guard lock(mutex_);
  const auto repoint = [&](obs::Counter*& slot, const char* name) {
    obs::Counter& target = registry.counter(prefix + "." + name);
    if (&target == slot) return;
    target.add(slot->value());
    slot = &target;
  };
  repoint(tally_.fetches, "fetches");
  repoint(tally_.hits, "hits");
  repoint(tally_.misses, "misses");
  repoint(tally_.waits, "waits");
  repoint(tally_.evictions, "evictions");
  repoint(tally_.invalidated, "invalidated");
}

std::vector<std::byte> SharedBufferPool::read_run(std::uint64_t first_block,
                                                  std::size_t count,
                                                  CacheReadStats& stats) {
  std::vector<std::byte> bytes(count * block_size_, std::byte{0});
  const std::uint64_t start = first_block * block_size_;
  std::lock_guard device_lock(device_mutex_);
  // size() is read under the device lock so appended data (fresh offsets,
  // see the header) is seen consistently with the read below.
  const std::uint64_t device_size = device_.size();
  if (start < device_size) {
    const std::uint64_t valid =
        std::min<std::uint64_t>(bytes.size(), device_size - start);
    const IoStats before = device_.stats();
    device_.read(start,
                 std::span(bytes.data(), static_cast<std::size_t>(valid)));
    stats.device_io += device_.stats().since(before);
  }
  return bytes;
}

void SharedBufferPool::evict_to_capacity(std::unique_lock<std::mutex>& lock,
                                         CacheReadStats& stats) {
  (void)lock;  // must be held; eviction only mutates map_/lru_/counters_
  while (lru_.size() > capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);  // readers mid-copy hold the frame's shared_ptr
    tally_.evictions->add();
    ++stats.evictions;
  }
}

void SharedBufferPool::read(std::uint64_t offset, std::span<std::byte> out,
                            CacheReadStats& stats) {
  std::size_t done = 0;
  std::unique_lock lock(mutex_);
  while (done < out.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t block = pos / block_size_;
    const std::uint64_t within = pos % block_size_;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(block_size_ - within, out.size() - done));

    bool waited = false;
    auto it = map_.find(block);
    while (it != map_.end() && it->second.data == nullptr) {
      // Single flight: another caller's device read covers this block.
      waited = true;
      loaded_.wait(lock);
      it = map_.find(block);
    }

    if (it != map_.end()) {
      // Resident: copy outside the lock — the shared_ptr keeps the bytes
      // alive even if the frame is evicted meanwhile.
      const std::shared_ptr<const std::vector<std::byte>> data =
          it->second.data;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      tally_.fetches->add();
      if (waited) {
        tally_.waits->add();
        ++stats.wait_blocks;
      } else {
        tally_.hits->add();
        ++stats.hit_blocks;
      }
      lock.unlock();
      std::memcpy(out.data() + done,
                  data->data() + static_cast<std::size_t>(within), chunk);
      lock.lock();
      done += chunk;
      continue;
    }

    // Miss: claim this block plus every further block this request needs
    // that is also absent, so one device read covers the contiguous run (a
    // cold coalesced scheduler read stays a single device operation).
    const std::uint64_t run_end_byte = offset + out.size();
    const std::uint64_t last_needed = (run_end_byte - 1) / block_size_;
    std::size_t run = 1;
    while (block + run <= last_needed &&
           map_.find(block + run) == map_.end()) {
      ++run;
    }
    for (std::size_t i = 0; i < run; ++i) {
      map_.emplace(block + i, Frame{nullptr, lru_.end()});
    }
    lock.unlock();

    std::vector<std::byte> bytes;
    try {
      bytes = read_run(block, run, stats);
    } catch (...) {
      // Un-claim: erase our placeholders so a waiter re-claims and retries
      // the fault itself; the error goes to the caller who performed the
      // read (whose retry policy owns it).
      lock.lock();
      for (std::size_t i = 0; i < run; ++i) map_.erase(block + i);
      loaded_.notify_all();
      throw;
    }

    // The run buffer already holds everything this request needs from the
    // claimed blocks; serve it directly and publish the frames.
    const std::size_t run_offset = static_cast<std::size_t>(within);
    const std::size_t take = std::min<std::size_t>(
        out.size() - done, run * static_cast<std::size_t>(block_size_) -
                               run_offset);
    std::memcpy(out.data() + done, bytes.data() + run_offset, take);

    lock.lock();
    for (std::size_t i = 0; i < run; ++i) {
      Frame& frame = map_.at(block + i);
      frame.data = std::make_shared<const std::vector<std::byte>>(
          bytes.begin() +
              static_cast<std::ptrdiff_t>(i * static_cast<std::size_t>(
                                                  block_size_)),
          bytes.begin() +
              static_cast<std::ptrdiff_t>((i + 1) * static_cast<std::size_t>(
                                                        block_size_)));
      lru_.push_front(block + i);
      frame.lru_pos = lru_.begin();
      tally_.fetches->add();
      tally_.misses->add();
      ++stats.miss_blocks;
    }
    loaded_.notify_all();
    evict_to_capacity(lock, stats);
    done += take;
  }
}

void SharedBufferPool::invalidate(std::uint64_t offset, std::uint64_t length) {
  if (length == 0) return;
  const std::uint64_t first = offset / block_size_;
  const std::uint64_t last = (offset + length - 1) / block_size_;
  std::lock_guard lock(mutex_);
  for (std::uint64_t block = first; block <= last; ++block) {
    const auto it = map_.find(block);
    if (it == map_.end() || it->second.data == nullptr) continue;
    lru_.erase(it->second.lru_pos);
    map_.erase(it);
    tally_.invalidated->add();
  }
}

void SharedBufferPool::clear() {
  std::lock_guard lock(mutex_);
  for (const std::uint64_t block : lru_) {
    map_.erase(block);
    tally_.invalidated->add();
  }
  lru_.clear();
}

CacheCounters SharedBufferPool::counters() const {
  std::lock_guard lock(mutex_);
  CacheCounters c;
  c.fetches = tally_.fetches->value();
  c.hits = tally_.hits->value();
  c.misses = tally_.misses->value();
  c.waits = tally_.waits->value();
  c.evictions = tally_.evictions->value();
  c.invalidated = tally_.invalidated->value();
  return c;
}

std::size_t SharedBufferPool::resident_blocks() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

}  // namespace oociso::io
