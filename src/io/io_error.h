#pragma once
// Typed I/O failures for the fault-tolerant retrieval path.
//
// A plain std::system_error from a device gives a caller no way to decide
// whether retrying is sane. IoError classifies the failure — a transient
// read error (the disk hiccuped; the same read may succeed), detected
// corruption (a checksum mismatch; a re-read may return clean bytes if the
// corruption happened in transit), or a torn write (a partial transfer that
// must be re-issued in full) — and carries an explicit retriable flag the
// RetryPolicy consults. Anything that is not an IoError (ENOENT, a read
// past the device end, a logic error) is treated as fatal by the retry
// machinery and propagates immediately.

#include <stdexcept>
#include <string>

namespace oociso::io {

class IoError : public std::runtime_error {
 public:
  enum class Kind {
    kTransient,   ///< the operation failed but left no bad state behind
    kCorruption,  ///< data arrived but failed its checksum
    kTornWrite,   ///< a write transferred only a prefix of its bytes
  };

  IoError(Kind kind, bool retriable, const std::string& what)
      : std::runtime_error(what), kind_(kind), retriable_(retriable) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool retriable() const { return retriable_; }

 private:
  Kind kind_;
  bool retriable_;
};

}  // namespace oociso::io
