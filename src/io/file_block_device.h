#pragma once
// File-backed BlockDevice using POSIX pread/pwrite.
//
// Each simulated cluster node owns one FileBlockDevice as its "local disk";
// the preprocessing stage writes brick files through it and the isosurface
// query reads active metacells back through it, so every byte of the
// out-of-core pipeline is visible to the I/O accounting layer.

#include <filesystem>
#include <string>

#include "io/block_device.h"

namespace oociso::io {

class FileBlockDevice final : public BlockDevice {
 public:
  enum class Mode {
    kCreate,    ///< create or truncate
    kReadWrite, ///< open existing for read/write
    kReadOnly,  ///< open existing read-only
  };

  /// Opens (or creates) the backing file; throws std::system_error on
  /// failure.
  FileBlockDevice(const std::filesystem::path& path, Mode mode,
                  std::uint64_t block_size = 4096,
                  std::uint64_t readahead_blocks = 12);
  ~FileBlockDevice() override;

  [[nodiscard]] std::uint64_t size() const override { return size_; }
  void flush() override;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 protected:
  void do_read(std::uint64_t offset, std::span<std::byte> out) override;
  void do_write(std::uint64_t offset,
                std::span<const std::byte> data) override;

 private:
  std::filesystem::path path_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

}  // namespace oociso::io
