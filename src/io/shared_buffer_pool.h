#pragma once
// Thread-safe shared block cache with single-flight read deduplication.
//
// BufferPool (buffer_pool.h) gives one query exclusive, write-back caching;
// SharedBufferPool is its serving-side sibling: many concurrent queries
// read the same immutable brick store through one per-node cache, so
// overlapping span-space plans and repeated isovalue sweeps hit warm
// frames instead of re-reading the device. Two properties matter:
//
//   1. Single flight. When several queries want a block that is not
//      resident, exactly one performs the device read; the others block on
//      the in-flight frame and reuse it (the loser pins the winner's frame
//      via the frame's shared_ptr). Contiguous missing blocks of one
//      request are faulted in with a single device read, so a scheduler's
//      coalesced large read stays one device operation on a cold cache.
//   2. Honest attribution. The underlying BlockDevice is not thread-safe
//      and its IoStats cannot be snapshotted per query once shared; every
//      read() therefore accumulates its own CacheReadStats — the physical
//      device I/O *this call* triggered plus hit/miss/wait/eviction counts
//      — which the retrieval stream rolls up into per-query reports.
//
// The pool is read-only: it never writes the device, and it assumes no
// concurrent writer mutates cached ranges (brick stores are immutable
// after preprocessing; data appended later occupies fresh offsets and is
// simply faulted in on first use). A consumer that detects a corrupted
// transfer (chunk CRC mismatch) calls invalidate() so its retry re-reads
// the device instead of being served the same bad bytes forever.

#include <array>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/block_device.h"

namespace oociso::io {

/// Accounting for SharedBufferPool::read calls, accumulated into the
/// caller-provided struct (so one struct can cover a retry loop or a whole
/// stream without touching shared device counters).
struct CacheReadStats {
  std::uint64_t hit_blocks = 0;   ///< blocks served from resident frames
  std::uint64_t miss_blocks = 0;  ///< blocks this caller faulted in
  std::uint64_t wait_blocks = 0;  ///< blocks reused from another caller's
                                  ///< in-flight read (single-flight dedup)
  std::uint64_t evictions = 0;    ///< victims this caller's fault-ins evicted
  IoStats device_io;              ///< physical device I/O this caller performed

  void merge(const CacheReadStats& other) {
    hit_blocks += other.hit_blocks;
    miss_blocks += other.miss_blocks;
    wait_blocks += other.wait_blocks;
    evictions += other.evictions;
    device_io += other.device_io;
  }
};

/// Cumulative pool-level counters across all callers. Every resolved block
/// access is exactly one of hit / miss / wait, so
/// `hits + misses + waits == fetches` always holds.
struct CacheCounters {
  std::uint64_t fetches = 0;      ///< block accesses resolved
  std::uint64_t hits = 0;         ///< resolved from a resident frame
  std::uint64_t misses = 0;       ///< resolved by a device read of the caller
  std::uint64_t waits = 0;        ///< resolved by waiting on another's read
  std::uint64_t evictions = 0;    ///< frames displaced by capacity pressure
  std::uint64_t invalidated = 0;  ///< frames dropped by invalidate()/clear()

  void merge(const CacheCounters& other) {
    fetches += other.fetches;
    hits += other.hits;
    misses += other.misses;
    waits += other.waits;
    evictions += other.evictions;
    invalidated += other.invalidated;
  }
};

class SharedBufferPool {
 public:
  /// `capacity_blocks` bounds resident *ready* frames (M/B in model terms);
  /// must be >= 1. `device` must outlive the pool, and all access to it
  /// must go through the pool while the pool is in use (the pool serializes
  /// device reads internally; the device itself is not thread-safe).
  SharedBufferPool(BlockDevice& device, std::size_t capacity_blocks);

  SharedBufferPool(const SharedBufferPool&) = delete;
  SharedBufferPool& operator=(const SharedBufferPool&) = delete;

  /// Cached byte-range read. [offset, offset + out.size()) must lie within
  /// the device. Thread-safe; accounting for this call is *added* to
  /// `stats`. Device errors (e.g. injected transients) propagate to the
  /// caller whose fault-in performed the failing read; waiters of its
  /// frames retry the fault themselves.
  void read(std::uint64_t offset, std::span<std::byte> out,
            CacheReadStats& stats);

  /// Drops ready frames overlapping [offset, offset + length) so the next
  /// access re-reads the device — the checksum-failure retry path. Frames
  /// still in flight are left alone (their read is already fresh).
  void invalidate(std::uint64_t offset, std::uint64_t length);

  /// Drops every ready frame (cold restart between sweeps).
  void clear();

  /// Re-points the pool's cumulative tallies at registry counters named
  /// `<prefix>.fetches`, `.hits`, `.misses`, `.waits`, `.evictions`,
  /// `.invalidated`, carrying the totals accumulated so far over. After
  /// this there is ONE set of atomics with two views: counters() derives
  /// its CacheCounters from the same counters a registry snapshot exports,
  /// so the two can never diverge. Attach at most once per registry/prefix.
  void attach_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix);

  /// Derived from the pool's tallies (see attach_metrics); taken under the
  /// pool mutex so `hits + misses + waits == fetches` holds exactly.
  [[nodiscard]] CacheCounters counters() const;
  [[nodiscard]] std::size_t capacity_blocks() const { return capacity_; }
  /// Ready (servable) resident frames; in-flight loads are not counted.
  [[nodiscard]] std::size_t resident_blocks() const;
  [[nodiscard]] std::uint64_t block_size() const { return block_size_; }
  [[nodiscard]] BlockDevice& device() { return device_; }

 private:
  struct Frame {
    /// Null while the winning reader's device read is in flight; waiters
    /// sleep on `loaded_` until it is set (ready) or the frame is erased
    /// (the winner's read failed — the waiter re-claims the block). The
    /// shared_ptr keeps bytes alive for readers even across eviction.
    std::shared_ptr<const std::vector<std::byte>> data;
    /// Position in lru_ when ready; lru_.end() while loading.
    std::list<std::uint64_t>::iterator lru_pos;
  };

  /// Faults `count` blocks starting at `first_block` in with one device
  /// read (map lock dropped, device lock held); returns the run's bytes.
  /// The blocks must already be claimed (loading placeholders inserted).
  std::vector<std::byte> read_run(std::uint64_t first_block,
                                  std::size_t count, CacheReadStats& stats);

  void evict_to_capacity(std::unique_lock<std::mutex>& lock,
                         CacheReadStats& stats);

  BlockDevice& device_;
  const std::size_t capacity_;
  const std::uint64_t block_size_;

  /// Cumulative pool tallies. The pointers normally target local_; after
  /// attach_metrics() they target registry-owned counters carrying the same
  /// totals. Bumps happen under mutex_, which is what keeps the
  /// hit/miss/wait/fetch identity exact for counters().
  struct Tallies {
    obs::Counter* fetches = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* waits = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* invalidated = nullptr;
  };

  mutable std::mutex mutex_;  ///< guards map_, lru_, tally_
  std::mutex device_mutex_;   ///< serializes device_ access
  std::condition_variable loaded_;
  std::unordered_map<std::uint64_t, Frame> map_;
  std::list<std::uint64_t> lru_;  ///< ready frames, front = MRU
  std::array<obs::Counter, 6> local_;
  Tallies tally_;
};

}  // namespace oociso::io
