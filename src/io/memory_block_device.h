#pragma once
// In-memory BlockDevice backend. Used by unit tests and by benches that
// isolate algorithmic I/O counts from real-disk noise; accounting is
// identical to the file-backed device.

#include <cstring>
#include <stdexcept>
#include <vector>

#include "io/block_device.h"

namespace oociso::io {

class MemoryBlockDevice final : public BlockDevice {
 public:
  explicit MemoryBlockDevice(std::uint64_t block_size = 4096,
                             std::uint64_t readahead_blocks = 12)
      : BlockDevice(block_size, readahead_blocks) {}

  [[nodiscard]] std::uint64_t size() const override { return bytes_.size(); }

 protected:
  void do_read(std::uint64_t offset, std::span<std::byte> out) override {
    if (offset + out.size() > bytes_.size()) {
      throw std::out_of_range("MemoryBlockDevice: read past end");
    }
    if (out.empty()) return;  // empty spans may carry a null data()
    std::memcpy(out.data(), bytes_.data() + offset, out.size());
  }

  void do_write(std::uint64_t offset,
                std::span<const std::byte> data) override {
    if (data.empty()) return;  // empty spans may carry a null data()
    const std::uint64_t end = offset + data.size();
    if (end > bytes_.size()) bytes_.resize(end);
    std::memcpy(bytes_.data() + offset, data.data(), data.size());
  }

 private:
  std::vector<std::byte> bytes_;
};

}  // namespace oociso::io
