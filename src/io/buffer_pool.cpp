#include "io/buffer_pool.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace oociso::io {

BufferPool::BufferPool(BlockDevice& device, std::size_t capacity_blocks)
    : device_(device),
      capacity_(capacity_blocks),
      block_size_(device.block_size()),
      logical_size_(device.size()) {
  if (capacity_blocks == 0) {
    throw std::invalid_argument("BufferPool needs at least one block");
  }
}

BufferPool::~BufferPool() {
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; data loss here is acceptable only because
    // every production path calls flush() explicitly before teardown.
  }
}

BufferPool::Frame& BufferPool::pin(std::uint64_t block_index) {
  if (const auto it = map_.find(block_index); it != map_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return *it->second;
  }
  ++misses_;
  if (map_.size() >= capacity_) evict_one();

  Frame frame;
  frame.block_index = block_index;
  frame.data.assign(block_size_, std::byte{0});
  // Fault in whatever part of this block already exists on the device.
  const std::uint64_t start = block_index * block_size_;
  const std::uint64_t device_size = device_.size();
  if (start < device_size) {
    const std::uint64_t valid = std::min(block_size_, device_size - start);
    device_.read(start, std::span(frame.data.data(),
                                  static_cast<std::size_t>(valid)));
  }
  lru_.push_front(std::move(frame));
  map_.emplace(block_index, lru_.begin());
  return lru_.front();
}

void BufferPool::evict_one() {
  auto victim = std::prev(lru_.end());
  write_back(*victim);
  map_.erase(victim->block_index);
  lru_.erase(victim);
}

void BufferPool::write_back(Frame& frame) {
  if (!frame.dirty) return;
  const std::uint64_t start = frame.block_index * block_size_;
  // Only the portion within the logical size is meaningful; writing the
  // full block would pad the device file past the logical end.
  const std::uint64_t valid =
      std::min<std::uint64_t>(block_size_,
                              logical_size_ > start ? logical_size_ - start : 0);
  if (valid > 0) {
    device_.write(start, std::span(frame.data.data(),
                                   static_cast<std::size_t>(valid)));
  }
  frame.dirty = false;
}

void BufferPool::read(std::uint64_t offset, std::span<std::byte> out) {
  if (offset + out.size() > logical_size_) {
    throw std::out_of_range("BufferPool: read past logical end");
  }
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t block = pos / block_size_;
    const std::uint64_t within = pos % block_size_;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(block_size_ - within, out.size() - done));
    Frame& frame = pin(block);
    std::memcpy(out.data() + done, frame.data.data() + within, chunk);
    done += chunk;
  }
}

void BufferPool::write(std::uint64_t offset, std::span<const std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t block = pos / block_size_;
    const std::uint64_t within = pos % block_size_;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(block_size_ - within, data.size() - done));
    Frame& frame = pin(block);
    std::memcpy(frame.data.data() + within, data.data() + done, chunk);
    frame.dirty = true;
    done += chunk;
    logical_size_ = std::max(logical_size_, pos + chunk);
  }
}

void BufferPool::flush() {
  // Flush in block order for sequential device access.
  std::vector<Frame*> dirty;
  for (Frame& frame : lru_) {
    if (frame.dirty) dirty.push_back(&frame);
  }
  std::sort(dirty.begin(), dirty.end(), [](const Frame* a, const Frame* b) {
    return a->block_index < b->block_index;
  });
  for (Frame* frame : dirty) write_back(*frame);
  device_.flush();
}

}  // namespace oociso::io
