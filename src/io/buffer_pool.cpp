#include "io/buffer_pool.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace oociso::io {

BufferPool::BufferPool(BlockDevice& device, std::size_t capacity_blocks)
    : device_(device),
      capacity_(capacity_blocks),
      block_size_(device.block_size()),
      logical_size_(device.size()) {
  if (capacity_blocks == 0) {
    throw std::invalid_argument("BufferPool needs at least one block");
  }
}

BufferPool::~BufferPool() {
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; data loss here is acceptable only because
    // every production path calls flush() explicitly before teardown.
  }
}

BufferPool::Frame& BufferPool::pin(std::uint64_t block_index) {
  if (const auto it = map_.find(block_index); it != map_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return *it->second;
  }
  ++misses_;
  if (map_.size() >= capacity_) evict_one();

  Frame frame;
  frame.block_index = block_index;
  frame.data.assign(block_size_, std::byte{0});
  // Fault in whatever part of this block already exists on the device.
  const std::uint64_t start = block_index * block_size_;
  const std::uint64_t device_size = device_.size();
  if (start < device_size) {
    const std::uint64_t valid = std::min(block_size_, device_size - start);
    device_.read(start, std::span(frame.data.data(),
                                  static_cast<std::size_t>(valid)));
  }
  lru_.push_front(std::move(frame));
  map_.emplace(block_index, lru_.begin());
  return lru_.front();
}

void BufferPool::evict_one() {
  // First unpinned frame from the LRU end; a pinned frame's bytes are
  // observable through a live PinnedBlock, so evicting it would dangle.
  auto victim = lru_.end();
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    if (it->pins == 0) {
      victim = std::prev(it.base());
      break;
    }
  }
  if (victim == lru_.end()) {
    throw std::runtime_error(
        "BufferPool: cannot fault a block in — every resident frame is "
        "pinned (capacity " +
        std::to_string(capacity_) + ")");
  }
  write_back(*victim);
  map_.erase(victim->block_index);
  lru_.erase(victim);
  ++evictions_;
}

BufferPool::PinnedBlock BufferPool::pin_block(std::uint64_t block_index) {
  Frame& frame = pin(block_index);
  ++frame.pins;
  return PinnedBlock(*this, frame);
}

BufferPool::PinnedBlock::~PinnedBlock() {
  if (frame_ != nullptr) --frame_->pins;
}

std::uint64_t BufferPool::PinnedBlock::block_index() const {
  return frame_->block_index;
}

std::span<std::byte> BufferPool::PinnedBlock::data() {
  return {frame_->data.data(), frame_->data.size()};
}

std::span<const std::byte> BufferPool::PinnedBlock::data() const {
  return {frame_->data.data(), frame_->data.size()};
}

void BufferPool::PinnedBlock::mark_dirty() {
  frame_->dirty = true;
  // Writes through a pin may extend the file: anything in this block is
  // meaningful up to its end once dirtied.
  pool_->logical_size_ =
      std::max(pool_->logical_size_,
               (frame_->block_index + 1) * pool_->block_size_);
}

std::size_t BufferPool::dirty_blocks() const {
  std::size_t count = 0;
  for (const Frame& frame : lru_) {
    if (frame.dirty) ++count;
  }
  return count;
}

std::size_t BufferPool::pinned_blocks() const {
  std::size_t count = 0;
  for (const Frame& frame : lru_) {
    if (frame.pins > 0) ++count;
  }
  return count;
}

void BufferPool::write_back(Frame& frame) {
  if (!frame.dirty) return;
  const std::uint64_t start = frame.block_index * block_size_;
  // Only the portion within the logical size is meaningful; writing the
  // full block would pad the device file past the logical end.
  const std::uint64_t valid =
      std::min<std::uint64_t>(block_size_,
                              logical_size_ > start ? logical_size_ - start : 0);
  if (valid > 0) {
    device_.write(start, std::span(frame.data.data(),
                                   static_cast<std::size_t>(valid)));
  }
  frame.dirty = false;
}

void BufferPool::read(std::uint64_t offset, std::span<std::byte> out) {
  if (offset + out.size() > logical_size_) {
    throw std::out_of_range("BufferPool: read past logical end");
  }
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t block = pos / block_size_;
    const std::uint64_t within = pos % block_size_;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(block_size_ - within, out.size() - done));
    Frame& frame = pin(block);
    std::memcpy(out.data() + done, frame.data.data() + within, chunk);
    done += chunk;
  }
}

void BufferPool::write(std::uint64_t offset, std::span<const std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t block = pos / block_size_;
    const std::uint64_t within = pos % block_size_;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(block_size_ - within, data.size() - done));
    Frame& frame = pin(block);
    std::memcpy(frame.data.data() + within, data.data() + done, chunk);
    frame.dirty = true;
    done += chunk;
    logical_size_ = std::max(logical_size_, pos + chunk);
  }
}

void BufferPool::flush() {
  // Flush in block order for sequential device access.
  std::vector<Frame*> dirty;
  for (Frame& frame : lru_) {
    if (frame.dirty) dirty.push_back(&frame);
  }
  std::sort(dirty.begin(), dirty.end(), [](const Frame* a, const Frame* b) {
    return a->block_index < b->block_index;
  });
  for (Frame* frame : dirty) write_back(*frame);
  device_.flush();
}

}  // namespace oociso::io
