#pragma once
// Type-erased metacell producer used by the preprocessing pipeline, so the
// pipeline code is independent of the volume's scalar type.

#include <memory>
#include <vector>

#include "data/datasets.h"
#include "metacell/metacell.h"

namespace oociso::metacell {

class MetacellSource {
 public:
  virtual ~MetacellSource() = default;

  [[nodiscard]] virtual const MetacellGeometry& geometry() const = 0;
  [[nodiscard]] virtual core::ScalarKind kind() const = 0;

  /// All non-degenerate metacells with their intervals.
  [[nodiscard]] virtual std::vector<MetacellInfo> scan() const = 0;

  /// Appends the serialized record for one metacell to `out`.
  virtual void encode(std::uint32_t id, std::vector<std::byte>& out) const = 0;

  /// Bytes of one serialized record. Virtual so non-metacell producers
  /// (e.g. unstructured tet clusters) can define their own record format
  /// while reusing the index builder unchanged.
  [[nodiscard]] virtual std::size_t record_size() const {
    return metacell::record_size(kind(), geometry().samples_per_side());
  }
};

/// MetacellSource over an in-memory volume.
template <core::VolumeScalar T>
class VolumeMetacellSource final : public MetacellSource {
 public:
  VolumeMetacellSource(const core::Volume<T>& volume,
                       std::int32_t samples_per_side)
      : volume_(volume), geometry_(volume.dims(), samples_per_side) {}

  [[nodiscard]] const MetacellGeometry& geometry() const override {
    return geometry_;
  }
  [[nodiscard]] core::ScalarKind kind() const override {
    return core::scalar_kind_of<T>();
  }
  [[nodiscard]] std::vector<MetacellInfo> scan() const override {
    return scan_metacells(volume_, geometry_);
  }
  void encode(std::uint32_t id, std::vector<std::byte>& out) const override {
    encode_metacell(volume_, geometry_, id, out);
  }

 private:
  const core::Volume<T>& volume_;  ///< not owned; must outlive the source
  MetacellGeometry geometry_;
};

/// Wraps an AnyVolume (keeps it alive) as a MetacellSource.
[[nodiscard]] std::unique_ptr<MetacellSource> make_source(
    data::AnyVolume volume, std::int32_t samples_per_side);

}  // namespace oociso::metacell
