#include "metacell/metacell.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "io/serial.h"

namespace oociso::metacell {

namespace {

core::GridDims checked_metacell_dims(core::GridDims volume_dims,
                                     std::int32_t samples_per_side) {
  if (samples_per_side < 2) {
    throw std::invalid_argument("metacell needs >= 2 samples per side");
  }
  if (volume_dims.nx < 2 || volume_dims.ny < 2 || volume_dims.nz < 2) {
    throw std::invalid_argument("volume too small for metacells");
  }
  return volume_dims.metacell_dims(samples_per_side - 1);
}

}  // namespace

MetacellGeometry::MetacellGeometry(core::GridDims volume_dims,
                                   std::int32_t samples_per_side)
    : volume_dims_(volume_dims),
      metacell_dims_(checked_metacell_dims(volume_dims, samples_per_side)),
      samples_per_side_(samples_per_side) {
  if (metacell_count() > std::uint64_t{1} << 32) {
    throw std::invalid_argument("metacell grid exceeds 32-bit id space");
  }
}

core::GridDims MetacellGeometry::valid_cells(std::uint32_t id) const {
  const core::Coord3 origin = sample_origin(id);
  const core::GridDims cells = volume_dims_.cell_dims();
  const std::int32_t k = cells_per_side();
  return {std::min(k, cells.nx - origin.x), std::min(k, cells.ny - origin.y),
          std::min(k, cells.nz - origin.z)};
}

std::size_t record_size(core::ScalarKind kind, std::int32_t samples_per_side) {
  const auto k = static_cast<std::size_t>(samples_per_side);
  const std::size_t scalar = core::scalar_size(kind);
  return sizeof(std::uint32_t) + scalar + scalar * k * k * k;
}

namespace {

/// Visits the k^3 sample values of a metacell in x-fastest record order,
/// clamping coordinates at the volume border (padding replicates the edge).
template <core::VolumeScalar T, typename Visitor>
void for_each_sample(const core::Volume<T>& volume,
                     const MetacellGeometry& geometry, std::uint32_t id,
                     Visitor&& visit) {
  const core::Coord3 origin = geometry.sample_origin(id);
  const core::GridDims& dims = volume.dims();
  const std::int32_t k = geometry.samples_per_side();
  for (std::int32_t z = 0; z < k; ++z) {
    const std::int32_t sz = std::min(origin.z + z, dims.nz - 1);
    for (std::int32_t y = 0; y < k; ++y) {
      const std::int32_t sy = std::min(origin.y + y, dims.ny - 1);
      const std::int32_t row_z = sz;
      // The x run is contiguous up to the border; clamp the tail.
      const T* row = &volume.samples()[dims.linear({0, sy, row_z})];
      for (std::int32_t x = 0; x < k; ++x) {
        const std::int32_t sx = std::min(origin.x + x, dims.nx - 1);
        visit(row[sx]);
      }
    }
  }
}

}  // namespace

template <core::VolumeScalar T>
std::vector<MetacellInfo> scan_metacells(const core::Volume<T>& volume,
                                         const MetacellGeometry& geometry,
                                         bool cull_degenerate) {
  if (volume.dims() != geometry.volume_dims()) {
    throw std::invalid_argument("volume/geometry dimension mismatch");
  }
  std::vector<MetacellInfo> infos;
  infos.reserve(geometry.metacell_count());
  const auto count = static_cast<std::uint32_t>(geometry.metacell_count());
  for (std::uint32_t id = 0; id < count; ++id) {
    T lo = std::numeric_limits<T>::max();
    T hi = std::numeric_limits<T>::lowest();
    for_each_sample(volume, geometry, id, [&](T v) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    });
    const core::ValueInterval interval{static_cast<core::ValueKey>(lo),
                                       static_cast<core::ValueKey>(hi)};
    if (cull_degenerate && interval.degenerate()) continue;
    infos.push_back(MetacellInfo{id, interval});
  }
  return infos;
}

template <core::VolumeScalar T>
void encode_metacell(const core::Volume<T>& volume,
                     const MetacellGeometry& geometry, std::uint32_t id,
                     std::vector<std::byte>& out) {
  io::ByteWriter writer(out);
  writer.put(id);
  // First pass for vmin (the record stores it ahead of the samples so the
  // query layer can stop a brick scan without decoding the payload).
  T lo = std::numeric_limits<T>::max();
  for_each_sample(volume, geometry, id, [&](T v) { lo = std::min(lo, v); });
  writer.put(lo);
  for_each_sample(volume, geometry, id, [&](T v) { writer.put(v); });
}

DecodedMetacell decode_metacell(std::span<const std::byte> record,
                                core::ScalarKind kind,
                                const MetacellGeometry& geometry) {
  DecodedMetacell cell;
  decode_metacell(record, kind, geometry, cell);
  return cell;
}

void decode_metacell(std::span<const std::byte> record, core::ScalarKind kind,
                     const MetacellGeometry& geometry, DecodedMetacell& out) {
  const std::int32_t k = geometry.samples_per_side();
  if (record.size() != record_size(kind, k)) {
    throw std::runtime_error("metacell record size mismatch");
  }
  io::ByteReader reader(record);
  out.id = reader.get<std::uint32_t>();
  if (out.id >= geometry.metacell_count()) {
    throw std::runtime_error("metacell record has out-of-range id");
  }
  out.sample_origin = geometry.sample_origin(out.id);
  out.samples_per_side = k;
  out.valid_cells = geometry.valid_cells(out.id);

  auto read_scalar = [&]() -> float {
    switch (kind) {
      case core::ScalarKind::kU8:
        return static_cast<float>(reader.get<std::uint8_t>());
      case core::ScalarKind::kU16:
        return static_cast<float>(reader.get<std::uint16_t>());
      case core::ScalarKind::kF32:
        return reader.get<float>();
    }
    throw std::runtime_error("bad scalar kind");
  };

  out.vmin = read_scalar();
  const auto total = static_cast<std::size_t>(k) * static_cast<std::size_t>(k) *
                     static_cast<std::size_t>(k);
  out.samples.resize(total);
  for (auto& sample : out.samples) sample = read_scalar();
}

// Explicit instantiations for the supported scalar kinds.
template std::vector<MetacellInfo> scan_metacells<std::uint8_t>(
    const core::Volume<std::uint8_t>&, const MetacellGeometry&, bool);
template std::vector<MetacellInfo> scan_metacells<std::uint16_t>(
    const core::Volume<std::uint16_t>&, const MetacellGeometry&, bool);
template std::vector<MetacellInfo> scan_metacells<float>(
    const core::Volume<float>&, const MetacellGeometry&, bool);

template void encode_metacell<std::uint8_t>(const core::Volume<std::uint8_t>&,
                                            const MetacellGeometry&,
                                            std::uint32_t,
                                            std::vector<std::byte>&);
template void encode_metacell<std::uint16_t>(
    const core::Volume<std::uint16_t>&, const MetacellGeometry&, std::uint32_t,
    std::vector<std::byte>&);
template void encode_metacell<float>(const core::Volume<float>&,
                                     const MetacellGeometry&, std::uint32_t,
                                     std::vector<std::byte>&);

}  // namespace oociso::metacell
