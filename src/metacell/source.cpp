#include "metacell/source.h"

namespace oociso::metacell {
namespace {

/// Owns the volume and delegates to a VolumeMetacellSource over it.
template <core::VolumeScalar T>
class OwningSource final : public MetacellSource {
 public:
  OwningSource(core::Volume<T> volume, std::int32_t samples_per_side)
      : volume_(std::move(volume)), inner_(volume_, samples_per_side) {}

  [[nodiscard]] const MetacellGeometry& geometry() const override {
    return inner_.geometry();
  }
  [[nodiscard]] core::ScalarKind kind() const override { return inner_.kind(); }
  [[nodiscard]] std::vector<MetacellInfo> scan() const override {
    return inner_.scan();
  }
  void encode(std::uint32_t id, std::vector<std::byte>& out) const override {
    inner_.encode(id, out);
  }

 private:
  core::Volume<T> volume_;
  VolumeMetacellSource<T> inner_;
};

}  // namespace

std::unique_ptr<MetacellSource> make_source(data::AnyVolume volume,
                                            std::int32_t samples_per_side) {
  return std::visit(
      [samples_per_side](auto&& v) -> std::unique_ptr<MetacellSource> {
        using T = typename std::decay_t<decltype(v)>::value_type;
        return std::make_unique<OwningSource<T>>(std::move(v),
                                                 samples_per_side);
      },
      std::move(volume));
}

}  // namespace oociso::metacell
