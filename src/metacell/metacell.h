#pragma once
// Metacell decomposition (paper Section 4).
//
// A metacell is a cluster of neighboring cells, sized to a small multiple of
// the disk block. For the RM dataset the paper uses 9x9x9 *samples* per
// metacell (8x8x8 cells), with one sample of overlap between neighbors so
// each metacell triangulates independently. The serialized record matches
// the paper byte for byte in the u8/k=9 case (734 bytes):
//
//   u32     metacell id (linear index in the metacell grid, x-fastest)
//   scalar  vmin of the metacell
//   scalar  samples[k^3] in x-fastest order
//
// vmax is not stored in the record: the brick a metacell lives in determines
// its vmax (Section 4), and extraction does not need it.

#include <cstdint>
#include <vector>

#include "core/grid.h"
#include "core/interval.h"
#include "core/volume.h"

namespace oociso::metacell {

/// Identifies a metacell and its scalar interval; the unit the index
/// structures operate on.
struct MetacellInfo {
  std::uint32_t id = 0;
  core::ValueInterval interval;
};

/// Geometry of a metacell decomposition: how a sample lattice of
/// `volume_dims` tiles into metacells of `samples_per_side`^3 samples.
class MetacellGeometry {
 public:
  /// Default: a minimal 2^3-sample placeholder so aggregates holding a
  /// geometry (e.g. PreprocessResult) are default-constructible; real
  /// geometries always come from the two-argument constructor.
  MetacellGeometry() : MetacellGeometry({2, 2, 2}, 2) {}

  /// `samples_per_side` must be >= 2 (at least one cell per metacell).
  MetacellGeometry(core::GridDims volume_dims, std::int32_t samples_per_side);

  [[nodiscard]] const core::GridDims& volume_dims() const {
    return volume_dims_;
  }
  [[nodiscard]] const core::GridDims& metacell_dims() const {
    return metacell_dims_;
  }
  [[nodiscard]] std::int32_t samples_per_side() const {
    return samples_per_side_;
  }
  [[nodiscard]] std::int32_t cells_per_side() const {
    return samples_per_side_ - 1;
  }
  [[nodiscard]] std::uint64_t metacell_count() const {
    return metacell_dims_.count();
  }

  /// Metacell grid coordinate for a linear metacell id.
  [[nodiscard]] core::Coord3 coord(std::uint32_t id) const {
    return metacell_dims_.coord(id);
  }
  [[nodiscard]] std::uint32_t id(const core::Coord3& c) const {
    return static_cast<std::uint32_t>(metacell_dims_.linear(c));
  }

  /// First sample (== first cell) coordinate covered by the metacell.
  [[nodiscard]] core::Coord3 sample_origin(std::uint32_t id) const {
    const core::Coord3 c = coord(id);
    return {c.x * cells_per_side(), c.y * cells_per_side(),
            c.z * cells_per_side()};
  }

  /// Number of *valid* cells along each axis for this metacell. Interior
  /// metacells have cells_per_side()^3; border metacells may have fewer
  /// (the record still stores k^3 samples, with clamped padding).
  [[nodiscard]] core::GridDims valid_cells(std::uint32_t id) const;

  bool operator==(const MetacellGeometry&) const = default;

 private:
  core::GridDims volume_dims_;
  core::GridDims metacell_dims_;
  std::int32_t samples_per_side_;
};

/// A metacell decoded from its on-disk record, ready for triangulation.
/// Samples are widened to float; `valid_cells` excludes clamped padding so
/// border metacells do not emit duplicate geometry.
struct DecodedMetacell {
  std::uint32_t id = 0;
  core::Coord3 sample_origin;
  std::int32_t samples_per_side = 0;
  core::GridDims valid_cells;
  float vmin = 0.0f;
  std::vector<float> samples;  ///< samples_per_side^3, x-fastest

  [[nodiscard]] float sample(std::int32_t x, std::int32_t y,
                             std::int32_t z) const {
    const auto k = static_cast<std::size_t>(samples_per_side);
    return samples[static_cast<std::size_t>(x) +
                   k * (static_cast<std::size_t>(y) +
                        k * static_cast<std::size_t>(z))];
  }
};

/// Size in bytes of one serialized metacell record.
[[nodiscard]] std::size_t record_size(core::ScalarKind kind,
                                      std::int32_t samples_per_side);

/// Scans a volume into metacell infos. Degenerate metacells (vmin == vmax,
/// which can produce no isosurface) are culled when `cull_degenerate` is
/// true — the preprocessing saving the paper reports as ~50% on RM.
template <core::VolumeScalar T>
[[nodiscard]] std::vector<MetacellInfo> scan_metacells(
    const core::Volume<T>& volume, const MetacellGeometry& geometry,
    bool cull_degenerate = true);

/// Serializes the record for one metacell (appends to `out`).
template <core::VolumeScalar T>
void encode_metacell(const core::Volume<T>& volume,
                     const MetacellGeometry& geometry, std::uint32_t id,
                     std::vector<std::byte>& out);

/// Decodes a record produced by encode_metacell. Throws std::runtime_error
/// on size mismatch.
[[nodiscard]] DecodedMetacell decode_metacell(std::span<const std::byte> record,
                                              core::ScalarKind kind,
                                              const MetacellGeometry& geometry);

/// In-place variant for hot loops: decodes into `out`, reusing its samples
/// allocation across records of the same geometry (the extraction loop
/// decodes hundreds of thousands of equally-sized records back to back).
void decode_metacell(std::span<const std::byte> record, core::ScalarKind kind,
                     const MetacellGeometry& geometry, DecodedMetacell& out);

}  // namespace oociso::metacell
