#pragma once
// Fixed-size worker pool. Node programs of the simulated cluster run as
// pool tasks, giving real concurrent execution of the per-node code paths
// (the virtual-time ledgers, not wall time, provide the multi-node timing
// shape — see DESIGN.md).

#include <condition_variable>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace oociso::parallel {

class ThreadPool {
 public:
  /// Spawns `worker_count` workers (>= 1 enforced).
  explicit ThreadPool(std::size_t worker_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future reports its result or exception.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace([packaged] { (*packaged)(); });
    }
    wake_.notify_one();
    return result;
  }

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

/// Runs fn(0) .. fn(count-1) concurrently on the pool and waits for all;
/// the first raised exception (lowest index) is rethrown. When more than
/// one task failed, the rethrown std::exception's message is extended with
/// how many other tasks also failed, so the swallowed errors leave a trace.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Like parallel_for, but never throws for task errors: returns one
/// std::exception_ptr per index (null for the tasks that succeeded), so the
/// caller can degrade gracefully instead of losing all completed work to
/// one failed peer.
[[nodiscard]] std::vector<std::exception_ptr> parallel_for_collect(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t)>& fn);

}  // namespace oociso::parallel
