#pragma once
// Per-node virtual-time accounting.
//
// The paper reports, per node and per query, three phase times: active-
// metacell (AMC) retrieval I/O, triangulation CPU, and rendering. The
// ledger accumulates these per node — I/O and network phases from the cost
// models, CPU phases from measured wall time — and the cluster-level
// summary takes the max over nodes per phase, which is the parallel
// completion time under the BSP view the paper uses.
//
// Overlapped extraction. The pipelined query engines run AMC retrieval and
// triangulation as a per-node producer/consumer pair (parallel/pipeline.h)
// rather than as barrier-separated phases. The ledger can record the pair
// as *overlapped*: each phase is still charged in full for per-phase
// reporting (the Table 2-5 columns), but completion-oriented totals count
// the pipelined window max(io, cpu) + residue, where the residue is the
// pipeline fill (the first batch's I/O, which nothing can hide). The
// difference io + cpu − window is exposed as overlap_saved().

#include <algorithm>
#include <array>
#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace oociso::parallel {

enum class Phase : std::size_t {
  kAmcRetrieval = 0,  ///< disk I/O to read active metacells
  kTriangulation,     ///< marching-cubes CPU time
  kRendering,         ///< local rasterization
  kCompositing,       ///< frame-buffer merge traffic + merge CPU
  kCount
};

[[nodiscard]] constexpr std::string_view phase_name(Phase phase) {
  switch (phase) {
    case Phase::kAmcRetrieval: return "amc-retrieval";
    case Phase::kTriangulation: return "triangulation";
    case Phase::kRendering: return "rendering";
    case Phase::kCompositing: return "compositing";
    case Phase::kCount: break;
  }
  return "?";
}

class TimeLedger {
 public:
  void add(Phase phase, double seconds) {
    times_[static_cast<std::size_t>(phase)] += seconds;
  }

  /// Records one pipelined retrieval+triangulation run: `io_seconds` goes
  /// to kAmcRetrieval and `cpu_seconds` to kTriangulation in full, and the
  /// overlap window max(io, cpu) + residue is what extraction_seconds()
  /// (and cluster completion) will count. `residue_seconds` is the
  /// non-overlappable part — the pipeline fill, i.e. the I/O of the first
  /// batch the compute stage had to wait for.
  void add_extraction_overlapped(double io_seconds, double cpu_seconds,
                                 double residue_seconds = 0.0) {
    add(Phase::kAmcRetrieval, io_seconds);
    add(Phase::kTriangulation, cpu_seconds);
    extraction_overlapped_ = true;
    const double window =
        std::max(io_seconds, cpu_seconds) + std::max(residue_seconds, 0.0);
    overlap_saved_ += std::max(0.0, io_seconds + cpu_seconds - window);
  }

  /// Records one pipelined retrieval+triangulation run from its per-batch
  /// times, simulating the bounded producer/consumer queue the engines
  /// actually run (parallel/pipeline.h): the producer may run at most
  /// `queue_capacity` batches ahead of the consumer, so a deeper queue hides
  /// more I/O jitter behind compute and the charged window shrinks toward
  /// max(io, cpu) — the add_extraction_overlapped() limit — while capacity 1
  /// degrades toward lock-step alternation. `extra_io_seconds` is modeled
  /// I/O time with no batch of its own (retry backoff, stall charges); it
  /// is spread over the batches pro rata. Phase totals are charged in full,
  /// exactly like add_extraction_overlapped().
  void add_extraction_pipelined(std::span<const double> io_batches,
                                std::span<const double> cpu_batches,
                                std::size_t queue_capacity,
                                double extra_io_seconds = 0.0) {
    const std::size_t n = std::min(io_batches.size(), cpu_batches.size());
    double io_sum = 0.0;
    double cpu_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      io_sum += io_batches[i];
      cpu_sum += cpu_batches[i];
    }
    const double extra = std::max(extra_io_seconds, 0.0);
    const double scale = io_sum > 0.0 ? (io_sum + extra) / io_sum : 1.0;
    const std::size_t capacity = std::max<std::size_t>(1, queue_capacity);
    // Event-driven queue simulation. pop[i] is when batch i leaves the
    // queue; the producer stalls (backpressure) until a slot frees.
    std::vector<double> pop(n, 0.0);
    double produced_prev = 0.0;
    double consume_done = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double push = produced_prev + io_batches[i] * scale;
      if (i >= capacity) push = std::max(push, pop[i - capacity]);
      produced_prev = push;
      pop[i] = std::max(push, consume_done);
      consume_done = pop[i] + cpu_batches[i];
    }
    const double window = n > 0 ? consume_done : extra;
    add(Phase::kAmcRetrieval, io_sum + extra);
    add(Phase::kTriangulation, cpu_sum);
    extraction_overlapped_ = true;
    overlap_saved_ += std::max(0.0, io_sum + extra + cpu_sum - window);
  }

  [[nodiscard]] double get(Phase phase) const {
    return times_[static_cast<std::size_t>(phase)];
  }

  /// Seconds the retrieval/triangulation overlap hid relative to running
  /// the two phases back to back; 0 when nothing was overlapped.
  [[nodiscard]] double overlap_saved() const { return overlap_saved_; }

  /// True when any extraction on this ledger ran pipelined.
  [[nodiscard]] bool extraction_overlapped() const {
    return extraction_overlapped_;
  }

  /// This node's retrieval+triangulation span: the serial sum, minus what
  /// the pipeline overlapped away.
  [[nodiscard]] double extraction_seconds() const {
    return get(Phase::kAmcRetrieval) + get(Phase::kTriangulation) -
           overlap_saved_;
  }

  /// Total *work* across phases. Overlap hides time, it does not remove
  /// work, so this stays the gross sum (the paper's "no overhead relative
  /// to the serial algorithm" comparison); span-oriented callers want
  /// extraction_seconds().
  [[nodiscard]] double total() const {
    double sum = 0.0;
    for (const double t : times_) sum += t;
    return sum;
  }

  void reset() {
    times_.fill(0.0);
    overlap_saved_ = 0.0;
    extraction_overlapped_ = false;
  }

 private:
  std::array<double, static_cast<std::size_t>(Phase::kCount)> times_{};
  double overlap_saved_ = 0.0;
  bool extraction_overlapped_ = false;
};

/// Summary over the per-node ledgers of one parallel query.
struct ClusterTimes {
  std::vector<TimeLedger> per_node;

  /// Completion time of the extraction stage (retrieval + triangulation).
  /// When the engines pipelined the two phases there is no barrier between
  /// them on a node, so the stage ends when the slowest node's *pipelined
  /// window* does: max over nodes of (io + cpu − overlap_saved). With no
  /// overlap recorded anywhere this falls back to the strict BSP view,
  /// max(io over nodes) + max(cpu over nodes).
  [[nodiscard]] double extraction_completion_seconds() const {
    bool any_overlap = false;
    for (const TimeLedger& ledger : per_node) {
      if (ledger.extraction_overlapped()) any_overlap = true;
    }
    if (!any_overlap) {
      return max_phase(Phase::kAmcRetrieval) + max_phase(Phase::kTriangulation);
    }
    double slowest = 0.0;
    for (const TimeLedger& ledger : per_node) {
      slowest = std::max(slowest, ledger.extraction_seconds());
    }
    return slowest;
  }

  /// Cluster completion time: the pipelined extraction window plus the
  /// barrier (max-over-nodes) rendering and compositing phases — the
  /// metric the paper's Tables 2-5 report.
  [[nodiscard]] double completion_seconds() const {
    return extraction_completion_seconds() + max_phase(Phase::kRendering) +
           max_phase(Phase::kCompositing);
  }

  [[nodiscard]] double max_phase(Phase phase) const {
    double max = 0.0;
    for (const TimeLedger& ledger : per_node) {
      max = std::max(max, ledger.get(phase));
    }
    return max;
  }

  [[nodiscard]] double sum_phase(Phase phase) const {
    double sum = 0.0;
    for (const TimeLedger& ledger : per_node) sum += ledger.get(phase);
    return sum;
  }

  /// Total work across nodes (the paper's "no overhead relative to the
  /// serial algorithm" claim compares this to the one-node total).
  [[nodiscard]] double total_work_seconds() const {
    double sum = 0.0;
    for (const TimeLedger& ledger : per_node) sum += ledger.total();
    return sum;
  }
};

}  // namespace oociso::parallel
