#pragma once
// Per-node virtual-time accounting.
//
// The paper reports, per node and per query, three phase times: active-
// metacell (AMC) retrieval I/O, triangulation CPU, and rendering. The
// ledger accumulates these per node — I/O and network phases from the cost
// models, CPU phases from measured wall time — and the cluster-level
// summary takes the max over nodes per phase, which is the parallel
// completion time under the BSP view the paper uses.

#include <algorithm>
#include <array>
#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace oociso::parallel {

enum class Phase : std::size_t {
  kAmcRetrieval = 0,  ///< disk I/O to read active metacells
  kTriangulation,     ///< marching-cubes CPU time
  kRendering,         ///< local rasterization
  kCompositing,       ///< frame-buffer merge traffic + merge CPU
  kCount
};

[[nodiscard]] constexpr std::string_view phase_name(Phase phase) {
  switch (phase) {
    case Phase::kAmcRetrieval: return "amc-retrieval";
    case Phase::kTriangulation: return "triangulation";
    case Phase::kRendering: return "rendering";
    case Phase::kCompositing: return "compositing";
    case Phase::kCount: break;
  }
  return "?";
}

class TimeLedger {
 public:
  void add(Phase phase, double seconds) {
    times_[static_cast<std::size_t>(phase)] += seconds;
  }
  [[nodiscard]] double get(Phase phase) const {
    return times_[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] double total() const {
    double sum = 0.0;
    for (const double t : times_) sum += t;
    return sum;
  }
  void reset() { times_.fill(0.0); }

 private:
  std::array<double, static_cast<std::size_t>(Phase::kCount)> times_{};
};

/// Summary over the per-node ledgers of one parallel query.
struct ClusterTimes {
  std::vector<TimeLedger> per_node;

  /// BSP completion time: every phase is a barrier, so the cluster finishes
  /// a phase when its slowest node does.
  [[nodiscard]] double completion_seconds() const {
    double total = 0.0;
    for (std::size_t p = 0; p < static_cast<std::size_t>(Phase::kCount); ++p) {
      total += max_phase(static_cast<Phase>(p));
    }
    return total;
  }

  [[nodiscard]] double max_phase(Phase phase) const {
    double max = 0.0;
    for (const TimeLedger& ledger : per_node) {
      max = std::max(max, ledger.get(phase));
    }
    return max;
  }

  [[nodiscard]] double sum_phase(Phase phase) const {
    double sum = 0.0;
    for (const TimeLedger& ledger : per_node) sum += ledger.get(phase);
    return sum;
  }

  /// Total work across nodes (the paper's "no overhead relative to the
  /// serial algorithm" claim compares this to the one-node total).
  [[nodiscard]] double total_work_seconds() const {
    double sum = 0.0;
    for (const TimeLedger& ledger : per_node) sum += ledger.total();
    return sum;
  }
};

}  // namespace oociso::parallel
