#pragma once
// Simulated visualization cluster (paper Section 6 platform).
//
// p nodes, each owning a private local disk (a BlockDevice of its own,
// file-backed under a per-node directory or in-memory for tests), connected
// by a modeled interconnect. Node programs execute concurrently on a thread
// pool; their disk and network *costs* come from the calibrated models so
// the reported times have the multi-node shape of the paper's testbed (see
// DESIGN.md, substitution table).

#include <exception>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "io/block_device.h"
#include "io/fault_injection.h"
#include "io/io_stats.h"
#include "io/shared_buffer_pool.h"
#include "parallel/cost_model.h"
#include "parallel/thread_pool.h"

namespace oociso::parallel {

struct ClusterConfig {
  std::size_t node_count = 1;
  io::DiskModel disk;          ///< defaults: 50 MB/s, 4 KiB blocks, 4 ms seek
  NetworkModel network;        ///< defaults: 10 Gb/s, 10 us
  bool in_memory = false;      ///< MemoryBlockDevice instead of files
  /// Open existing per-node brick files read/write instead of truncating —
  /// used to reattach to a preprocessed dataset (see pipeline/bundle.h).
  bool open_existing = false;
  std::filesystem::path storage_dir;  ///< required unless in_memory
};

class Cluster {
 public:
  /// Creates the per-node disks ("<storage_dir>/node<i>/bricks.dat").
  /// Throws std::invalid_argument for zero nodes or a missing storage dir
  /// in file-backed mode.
  explicit Cluster(ClusterConfig config);

  [[nodiscard]] std::size_t size() const { return disks_.size(); }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  [[nodiscard]] io::BlockDevice& disk(std::size_t node) {
    return *disks_.at(node);
  }

  /// Raw pointers to all node disks, in node order (for builder APIs).
  [[nodiscard]] std::vector<io::BlockDevice*> disk_pointers();

  /// Runs `node_program(i)` for every node concurrently and waits.
  void run(const std::function<void(std::size_t node)>& node_program);

  /// Like run(), but collects instead of throws: returns one
  /// std::exception_ptr per node (null for nodes that completed), so a
  /// caller can fail over the dead nodes' work to healthy peers.
  [[nodiscard]] std::vector<std::exception_ptr> run_collect(
      const std::function<void(std::size_t node)>& node_program);

  /// Reopens `node`'s brick store read-only, independently of the node's
  /// own device handle — the failover path by which a healthy peer takes
  /// over a dead node's stripe. File-backed clusters open the file afresh;
  /// in-memory clusters return a read-only view of the node's device. The
  /// cluster must outlive the returned device.
  [[nodiscard]] std::unique_ptr<io::BlockDevice> open_readonly(
      std::size_t node);

  /// Builds one shared, thread-safe brick cache per node so concurrent
  /// queries against the same stripe dedup their device reads (see
  /// io/shared_buffer_pool.h). `capacity_blocks` is the per-node frame
  /// budget. When `inject` is given each node's pool reads through a
  /// deterministic fault injector (per-node seeds strided by the golden
  /// ratio, matching the query engine's per-query schedule shape) — the
  /// cluster owns the injector so every query sharing the pool sees one
  /// coherent fault stream instead of per-query schedules racing on shared
  /// frames. Throws std::logic_error if already enabled. Not thread-safe
  /// against in-flight queries; call between query waves.
  void enable_shared_cache(
      std::size_t capacity_blocks,
      const std::optional<io::FaultConfig>& inject = std::nullopt);

  /// Tears the per-node pools (and any cache-level injectors) down. Must
  /// not be called while queries are reading through them.
  void disable_shared_cache();

  /// Node `node`'s shared pool, or nullptr when caching is disabled.
  [[nodiscard]] io::SharedBufferPool* cache(std::size_t node) {
    return caches_.empty() ? nullptr : caches_.at(node).get();
  }
  [[nodiscard]] const io::SharedBufferPool* cache(std::size_t node) const {
    return caches_.empty() ? nullptr : caches_.at(node).get();
  }

  /// What node `node`'s cache-level injector actually did; nullptr when the
  /// cache was enabled without fault injection.
  [[nodiscard]] const io::InjectedFaults* cache_injected(
      std::size_t node) const {
    return cache_injectors_.empty() ? nullptr
                                    : &cache_injectors_.at(node)->injected();
  }

  /// Drops every pool's resident frames (cumulative counters survive) — the
  /// cold-start switch for warm-vs-cold cache measurements.
  void drop_caches();

  /// Attaches every node disk (counters `node<i>.disk.*`) and — when the
  /// shared cache is or later becomes enabled — every pool (counters
  /// `node<i>.cache.*`, re-pointed so CacheCounters derive from the
  /// registry's atomics) to `registry`. The registry must outlive the
  /// cluster's devices; call once per registry.
  void attach_metrics(obs::MetricsRegistry& registry);

  /// Modeled seconds for node-local I/O activity.
  [[nodiscard]] double disk_seconds(const io::IoStats& stats) const {
    return config_.disk.seconds(stats);
  }

  /// Modeled seconds for a node moving `bytes` in `messages` messages.
  [[nodiscard]] double network_seconds(std::uint64_t messages,
                                       std::uint64_t bytes) const {
    return config_.network.seconds(messages, bytes);
  }

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<io::BlockDevice>> disks_;
  /// Cache-level fault injectors (empty unless enable_shared_cache was
  /// given a FaultConfig); each wraps the matching node disk.
  std::vector<std::unique_ptr<io::FaultInjectingBlockDevice>> cache_injectors_;
  /// Per-node shared pools (empty while caching is disabled).
  std::vector<std::unique_ptr<io::SharedBufferPool>> caches_;
  /// Registry from attach_metrics, so pools created later attach too.
  obs::MetricsRegistry* metrics_ = nullptr;
  ThreadPool pool_;
};

}  // namespace oociso::parallel
