#pragma once
// Simulated visualization cluster (paper Section 6 platform).
//
// p nodes, each owning a private local disk (a BlockDevice of its own,
// file-backed under a per-node directory or in-memory for tests), connected
// by a modeled interconnect. Node programs execute concurrently on a thread
// pool; their disk and network *costs* come from the calibrated models so
// the reported times have the multi-node shape of the paper's testbed (see
// DESIGN.md, substitution table).
//
// The cluster composes three independent layers:
//
//   * placement (placement/replica_map.h) — which node holds which bricks:
//     the stripe owner, plus the rendezvous-hashed replica holders of each
//     placement group when the index is built with --replication k > 1.
//   * transport (parallel/transport.h) — how a program reaches each node's
//     store: the per-node devices, read-only / replica view handles, and
//     the optional shared pools with their cache-level fault injectors.
//   * execution (parallel/executor.h) — the thread pool that drives one
//     program per node.
//
// Cluster itself is a thin facade preserving the original one-object API;
// subsystems that only need one layer (the query engine routes through the
// transport, the builder only needs devices + placement) can take it alone.

#include <exception>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "io/block_device.h"
#include "io/fault_injection.h"
#include "io/io_stats.h"
#include "io/shared_buffer_pool.h"
#include "parallel/cost_model.h"
#include "parallel/executor.h"
#include "parallel/transport.h"

namespace oociso::parallel {

struct ClusterConfig {
  std::size_t node_count = 1;
  io::DiskModel disk;          ///< defaults: 50 MB/s, 4 KiB blocks, 4 ms seek
  NetworkModel network;        ///< defaults: 10 Gb/s, 10 us
  bool in_memory = false;      ///< MemoryBlockDevice instead of files
  /// Open existing per-node brick files read/write instead of truncating —
  /// used to reattach to a preprocessed dataset (see pipeline/bundle.h).
  bool open_existing = false;
  std::filesystem::path storage_dir;  ///< required unless in_memory
};

class Cluster {
 public:
  /// Creates the per-node disks ("<storage_dir>/node<i>/bricks.dat").
  /// Throws std::invalid_argument for zero nodes or a missing storage dir
  /// in file-backed mode.
  explicit Cluster(ClusterConfig config);

  [[nodiscard]] std::size_t size() const { return transport_.size(); }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  /// The storage-reachability layer (per-node devices, replica views,
  /// shared pools). The cluster owns it; it outlives every handle below.
  [[nodiscard]] StoreTransport& transport() { return transport_; }
  [[nodiscard]] const StoreTransport& transport() const { return transport_; }

  [[nodiscard]] io::BlockDevice& disk(std::size_t node) {
    return transport_.disk(node);
  }

  /// Raw pointers to all node disks, in node order (for builder APIs).
  [[nodiscard]] std::vector<io::BlockDevice*> disk_pointers() {
    return transport_.disk_pointers();
  }

  /// Runs `node_program(i)` for every node concurrently and waits.
  void run(const std::function<void(std::size_t node)>& node_program) {
    executor_.run(transport_.size(), node_program);
  }

  /// Like run(), but collects instead of throws: returns one
  /// std::exception_ptr per node (null for nodes that completed), so a
  /// caller can fail over the dead nodes' work to healthy peers.
  [[nodiscard]] std::vector<std::exception_ptr> run_collect(
      const std::function<void(std::size_t node)>& node_program) {
    return executor_.run_collect(transport_.size(), node_program);
  }

  /// Reopens `node`'s brick store read-only, independently of the node's
  /// own device handle — the failover path by which a healthy peer takes
  /// over a dead node's stripe. See StoreTransport::open_readonly.
  [[nodiscard]] std::unique_ptr<io::BlockDevice> open_readonly(
      std::size_t node) {
    return transport_.open_readonly(node);
  }

  /// A private, non-accounting read handle on `node`'s store for replica
  /// routing. See StoreTransport::open_replica_view.
  [[nodiscard]] std::unique_ptr<io::BlockDevice> open_replica_view(
      std::size_t node) {
    return transport_.open_replica_view(node);
  }

  /// Builds one shared, thread-safe brick cache per node so concurrent
  /// queries against the same stripe dedup their device reads (see
  /// io/shared_buffer_pool.h). `capacity_blocks` is the per-node frame
  /// budget. When `inject` is given each node's pool reads through a
  /// deterministic fault injector (per-node seeds strided by the golden
  /// ratio, matching the query engine's per-query schedule shape) — the
  /// cluster owns the injector so every query sharing the pool sees one
  /// coherent fault stream instead of per-query schedules racing on shared
  /// frames. Throws std::logic_error if already enabled. Not thread-safe
  /// against in-flight queries; call between query waves.
  void enable_shared_cache(
      std::size_t capacity_blocks,
      const std::optional<io::FaultConfig>& inject = std::nullopt);

  /// Like above with one explicit FaultConfig per node — the chaos
  /// harness's hook for killing a single node (e.g. die_after_reads on one
  /// store) while the rest stay healthy. `inject` must be empty or size().
  void enable_shared_cache(std::size_t capacity_blocks,
                           const std::vector<io::FaultConfig>& inject) {
    transport_.enable_shared_cache(capacity_blocks, inject);
  }

  /// Tears the per-node pools (and any cache-level injectors) down. Must
  /// not be called while queries are reading through them.
  void disable_shared_cache() { transport_.disable_shared_cache(); }

  /// Installs a compressed index's per-node chunk maps so later
  /// enable_shared_cache calls decode on fetch (and raw-path consumers can
  /// wrap their handles). See StoreTransport::set_chunk_maps.
  void set_chunk_maps(std::vector<codec::ChunkMap> maps) {
    transport_.set_chunk_maps(std::move(maps));
  }

  /// Node `node`'s chunk map, or nullptr for an uncompressed store.
  [[nodiscard]] const codec::ChunkMap* chunk_map(std::size_t node) const {
    return transport_.chunk_map(node);
  }

  /// Node `node`'s shared pool, or nullptr when caching is disabled.
  [[nodiscard]] io::SharedBufferPool* cache(std::size_t node) {
    return transport_.cache(node);
  }
  [[nodiscard]] const io::SharedBufferPool* cache(std::size_t node) const {
    return transport_.cache(node);
  }

  /// What node `node`'s cache-level injector actually did; nullptr when the
  /// cache was enabled without fault injection.
  [[nodiscard]] const io::InjectedFaults* cache_injected(
      std::size_t node) const {
    return transport_.cache_injected(node);
  }

  /// Drops every pool's resident frames (cumulative counters survive) — the
  /// cold-start switch for warm-vs-cold cache measurements.
  void drop_caches() { transport_.drop_caches(); }

  /// Attaches every node disk (counters `node<i>.disk.*`) and — when the
  /// shared cache is or later becomes enabled — every pool (counters
  /// `node<i>.cache.*`, re-pointed so CacheCounters derive from the
  /// registry's atomics) to `registry`. The registry must outlive the
  /// cluster's devices; call once per registry.
  void attach_metrics(obs::MetricsRegistry& registry) {
    transport_.attach_metrics(registry);
  }

  /// Modeled seconds for node-local I/O activity.
  [[nodiscard]] double disk_seconds(const io::IoStats& stats) const {
    return config_.disk.seconds(stats);
  }

  /// Modeled seconds for a node moving `bytes` in `messages` messages.
  [[nodiscard]] double network_seconds(std::uint64_t messages,
                                       std::uint64_t bytes) const {
    return config_.network.seconds(messages, bytes);
  }

 private:
  ClusterConfig config_;
  StoreTransport transport_;
  Executor executor_;
};

}  // namespace oociso::parallel
