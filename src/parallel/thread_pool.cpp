#include "parallel/thread_pool.h"

#include <algorithm>

namespace oociso::parallel {

ThreadPool::ThreadPool(std::size_t worker_count) {
  worker_count = std::max<std::size_t>(worker_count, 1);
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  // Wait on all before rethrowing so no task references dead stack frames.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace oociso::parallel
