#include "parallel/thread_pool.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace oociso::parallel {

ThreadPool::ThreadPool(std::size_t worker_count) {
  worker_count = std::max<std::size_t>(worker_count, 1);
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  const std::vector<std::exception_ptr> errors =
      parallel_for_collect(pool, count, fn);
  std::exception_ptr first_error;
  std::size_t failed = 0;
  for (const std::exception_ptr& error : errors) {
    if (!error) continue;
    ++failed;
    if (!first_error) first_error = error;
  }
  if (!first_error) return;
  if (failed == 1) std::rethrow_exception(first_error);
  // Several tasks failed but only one exception can propagate; note the
  // swallowed failures in the message so they don't vanish silently.
  try {
    std::rethrow_exception(first_error);
  } catch (const std::exception& error) {
    throw std::runtime_error(std::string(error.what()) + " (and " +
                             std::to_string(failed - 1) +
                             " other parallel task(s) also failed)");
  }
  // Non-std exceptions fall through the catch above and propagate as-is.
}

std::vector<std::exception_ptr> parallel_for_collect(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  // Wait on all before returning so no task references dead stack frames.
  std::vector<std::exception_ptr> errors(count);
  for (std::size_t i = 0; i < count; ++i) {
    try {
      futures[i].get();
    } catch (...) {
      errors[i] = std::current_exception();
    }
  }
  return errors;
}

}  // namespace oociso::parallel
