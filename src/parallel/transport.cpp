#include "parallel/transport.h"

#include <stdexcept>
#include <string>

#include "io/file_block_device.h"
#include "io/memory_block_device.h"
#include "io/read_only_block_device.h"

namespace oociso::parallel {

StoreTransport::StoreTransport(TransportConfig config)
    : config_(std::move(config)) {
  if (config_.node_count == 0) {
    throw std::invalid_argument("StoreTransport: need at least one node");
  }
  disks_.reserve(config_.node_count);
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    if (config_.in_memory) {
      disks_.push_back(
          std::make_unique<io::MemoryBlockDevice>(config_.block_size));
    } else {
      if (config_.storage_dir.empty()) {
        throw std::invalid_argument("StoreTransport: storage_dir required");
      }
      const auto node_dir = config_.storage_dir / ("node" + std::to_string(i));
      std::filesystem::create_directories(node_dir);
      const auto brick_path = node_dir / "bricks.dat";
      if (config_.open_existing && !std::filesystem::exists(brick_path)) {
        // Don't let the raw ENOENT from ::open surface — name the node and
        // the path so a half-copied bundle is diagnosable.
        throw std::runtime_error(
            "StoreTransport: open_existing requested but node " +
            std::to_string(i) + " has no brick store at " +
            brick_path.string());
      }
      const auto mode = config_.open_existing
                            ? io::FileBlockDevice::Mode::kReadWrite
                            : io::FileBlockDevice::Mode::kCreate;
      disks_.push_back(std::make_unique<io::FileBlockDevice>(
          brick_path, mode, config_.block_size));
    }
  }
}

std::vector<io::BlockDevice*> StoreTransport::disk_pointers() {
  std::vector<io::BlockDevice*> pointers;
  pointers.reserve(disks_.size());
  for (auto& disk : disks_) pointers.push_back(disk.get());
  return pointers;
}

void StoreTransport::set_chunk_maps(std::vector<codec::ChunkMap> maps) {
  if (!caches_.empty()) {
    throw std::logic_error(
        "StoreTransport: set chunk maps before enabling the shared cache");
  }
  if (!maps.empty() && maps.size() != disks_.size()) {
    throw std::invalid_argument(
        "StoreTransport: need one ChunkMap per node (or none)");
  }
  chunk_maps_ = std::move(maps);
}

void StoreTransport::enable_shared_cache(
    std::size_t capacity_blocks, const std::vector<io::FaultConfig>& inject) {
  if (!caches_.empty()) {
    throw std::logic_error("StoreTransport: shared cache already enabled");
  }
  if (!inject.empty() && inject.size() != disks_.size()) {
    throw std::invalid_argument(
        "StoreTransport: need one FaultConfig per node (or none)");
  }
  caches_.reserve(disks_.size());
  if (!inject.empty()) cache_injectors_.reserve(disks_.size());
  cache_decoders_.clear();
  cache_decoders_.resize(disks_.size());
  for (std::size_t i = 0; i < disks_.size(); ++i) {
    io::BlockDevice* base = disks_[i].get();
    if (!inject.empty()) {
      cache_injectors_.push_back(
          std::make_unique<io::FaultInjectingBlockDevice>(*base, inject[i]));
      base = cache_injectors_.back().get();
    }
    if (const codec::ChunkMap* map = chunk_map(i); map != nullptr) {
      // Decode-on-fetch: decoder outermost, so the pool claims, faults in,
      // and caches *decoded* frames (raw address space) while the injector
      // below keeps perturbing the physical encoded reads.
      cache_decoders_[i] =
          std::make_unique<codec::ChunkDecodingDevice>(*base, *map);
      base = cache_decoders_[i].get();
    }
    caches_.push_back(
        std::make_unique<io::SharedBufferPool>(*base, capacity_blocks));
    if (metrics_ != nullptr) {
      caches_.back()->attach_metrics(
          *metrics_, "node" + std::to_string(i) + ".cache");
    }
  }
}

void StoreTransport::attach_metrics(obs::MetricsRegistry& registry) {
  metrics_ = &registry;
  for (std::size_t i = 0; i < disks_.size(); ++i) {
    disks_[i]->attach_metrics(registry, "node" + std::to_string(i) + ".disk");
  }
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    caches_[i]->attach_metrics(registry,
                               "node" + std::to_string(i) + ".cache");
  }
}

void StoreTransport::disable_shared_cache() {
  caches_.clear();
  cache_decoders_.clear();
  cache_injectors_.clear();
}

void StoreTransport::drop_caches() {
  for (auto& cache : caches_) cache->clear();
}

std::unique_ptr<io::BlockDevice> StoreTransport::open_readonly(
    std::size_t node) {
  if (config_.in_memory) {
    return std::make_unique<io::ReadOnlyBlockDevice>(*disks_.at(node));
  }
  const auto brick_path = config_.storage_dir /
                          ("node" + std::to_string(node)) / "bricks.dat";
  return std::make_unique<io::FileBlockDevice>(
      brick_path, io::FileBlockDevice::Mode::kReadOnly, config_.block_size);
}

std::unique_ptr<io::BlockDevice> StoreTransport::open_replica_view(
    std::size_t node) {
  if (config_.in_memory) {
    // Non-accounting view: routing programs each hold a private handle, so
    // the shared MemoryBlockDevice's stats must not be mutated from many
    // threads (BlockDevice accounting is not thread-safe).
    return std::make_unique<io::ReadOnlyBlockDevice>(
        *disks_.at(node), /*account_inner=*/false);
  }
  return open_readonly(node);
}

}  // namespace oociso::parallel
