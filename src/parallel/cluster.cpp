#include "parallel/cluster.h"

#include <stdexcept>

#include "io/file_block_device.h"
#include "io/memory_block_device.h"
#include "io/read_only_block_device.h"

namespace oociso::parallel {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)), pool_(config_.node_count) {
  if (config_.node_count == 0) {
    throw std::invalid_argument("Cluster: need at least one node");
  }
  disks_.reserve(config_.node_count);
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    if (config_.in_memory) {
      disks_.push_back(
          std::make_unique<io::MemoryBlockDevice>(config_.disk.block_size));
    } else {
      if (config_.storage_dir.empty()) {
        throw std::invalid_argument("Cluster: storage_dir required");
      }
      const auto node_dir = config_.storage_dir / ("node" + std::to_string(i));
      std::filesystem::create_directories(node_dir);
      const auto brick_path = node_dir / "bricks.dat";
      if (config_.open_existing && !std::filesystem::exists(brick_path)) {
        // Don't let the raw ENOENT from ::open surface — name the node and
        // the path so a half-copied bundle is diagnosable.
        throw std::runtime_error(
            "Cluster: open_existing requested but node " + std::to_string(i) +
            " has no brick store at " + brick_path.string());
      }
      const auto mode = config_.open_existing
                            ? io::FileBlockDevice::Mode::kReadWrite
                            : io::FileBlockDevice::Mode::kCreate;
      disks_.push_back(std::make_unique<io::FileBlockDevice>(
          brick_path, mode, config_.disk.block_size));
    }
  }
}

std::vector<io::BlockDevice*> Cluster::disk_pointers() {
  std::vector<io::BlockDevice*> pointers;
  pointers.reserve(disks_.size());
  for (auto& disk : disks_) pointers.push_back(disk.get());
  return pointers;
}

void Cluster::run(const std::function<void(std::size_t)>& node_program) {
  parallel_for(pool_, disks_.size(), node_program);
}

std::vector<std::exception_ptr> Cluster::run_collect(
    const std::function<void(std::size_t)>& node_program) {
  return parallel_for_collect(pool_, disks_.size(), node_program);
}

void Cluster::enable_shared_cache(
    std::size_t capacity_blocks,
    const std::optional<io::FaultConfig>& inject) {
  if (!caches_.empty()) {
    throw std::logic_error("Cluster: shared cache already enabled");
  }
  caches_.reserve(disks_.size());
  if (inject) cache_injectors_.reserve(disks_.size());
  for (std::size_t i = 0; i < disks_.size(); ++i) {
    io::BlockDevice* base = disks_[i].get();
    if (inject) {
      // Same golden-ratio stride the query engine uses per node, so node
      // fault streams stay decorrelated without a second seed convention.
      io::FaultConfig node_config = *inject;
      node_config.seed = inject->seed + 0x9E3779B97F4A7C15ULL * i;
      cache_injectors_.push_back(std::make_unique<io::FaultInjectingBlockDevice>(
          *base, std::move(node_config)));
      base = cache_injectors_.back().get();
    }
    caches_.push_back(
        std::make_unique<io::SharedBufferPool>(*base, capacity_blocks));
    if (metrics_ != nullptr) {
      caches_.back()->attach_metrics(
          *metrics_, "node" + std::to_string(i) + ".cache");
    }
  }
}

void Cluster::attach_metrics(obs::MetricsRegistry& registry) {
  metrics_ = &registry;
  for (std::size_t i = 0; i < disks_.size(); ++i) {
    disks_[i]->attach_metrics(registry, "node" + std::to_string(i) + ".disk");
  }
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    caches_[i]->attach_metrics(registry,
                               "node" + std::to_string(i) + ".cache");
  }
}

void Cluster::disable_shared_cache() {
  caches_.clear();
  cache_injectors_.clear();
}

void Cluster::drop_caches() {
  for (auto& cache : caches_) cache->clear();
}

std::unique_ptr<io::BlockDevice> Cluster::open_readonly(std::size_t node) {
  if (config_.in_memory) {
    return std::make_unique<io::ReadOnlyBlockDevice>(*disks_.at(node));
  }
  const auto brick_path = config_.storage_dir /
                          ("node" + std::to_string(node)) / "bricks.dat";
  return std::make_unique<io::FileBlockDevice>(
      brick_path, io::FileBlockDevice::Mode::kReadOnly,
      config_.disk.block_size);
}

}  // namespace oociso::parallel
