#include "parallel/cluster.h"

namespace oociso::parallel {
namespace {

TransportConfig transport_config(const ClusterConfig& config) {
  TransportConfig t;
  t.node_count = config.node_count;
  t.block_size = config.disk.block_size;
  t.in_memory = config.in_memory;
  t.open_existing = config.open_existing;
  t.storage_dir = config.storage_dir;
  return t;
}

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      transport_(transport_config(config_)),
      executor_(config_.node_count) {}

void Cluster::enable_shared_cache(
    std::size_t capacity_blocks, const std::optional<io::FaultConfig>& inject) {
  std::vector<io::FaultConfig> per_node;
  if (inject) {
    // Same golden-ratio stride the query engine uses per node, so node
    // fault streams stay decorrelated without a second seed convention.
    per_node.reserve(transport_.size());
    for (std::size_t i = 0; i < transport_.size(); ++i) {
      io::FaultConfig node_config = *inject;
      node_config.seed = inject->seed + 0x9E3779B97F4A7C15ULL * i;
      per_node.push_back(node_config);
    }
  }
  transport_.enable_shared_cache(capacity_blocks, per_node);
}

}  // namespace oociso::parallel
