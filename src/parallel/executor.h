#pragma once
// Execution layer of the simulated cluster: runs one program per node
// concurrently on a thread pool. Split out of Cluster so the execution
// policy (how node programs are driven) is independent of the transport
// (how node brick stores are reached) and of the placement (which node
// holds which bricks — see placement/replica_map.h).

#include <exception>
#include <functional>
#include <vector>

#include "parallel/thread_pool.h"

namespace oociso::parallel {

class Executor {
 public:
  explicit Executor(std::size_t node_count) : pool_(node_count) {}

  /// Runs `node_program(i)` for every node in [0, node_count) concurrently
  /// and waits; the first exception (lowest node id) is rethrown.
  void run(std::size_t node_count,
           const std::function<void(std::size_t node)>& node_program) {
    parallel_for(pool_, node_count, node_program);
  }

  /// Like run(), but collects instead of throws: one std::exception_ptr per
  /// node (null for nodes that completed), so a caller can fail over the
  /// dead nodes' work to healthy peers.
  [[nodiscard]] std::vector<std::exception_ptr> run_collect(
      std::size_t node_count,
      const std::function<void(std::size_t node)>& node_program) {
    return parallel_for_collect(pool_, node_count, node_program);
  }

 private:
  ThreadPool pool_;
};

}  // namespace oociso::parallel
