#pragma once
// Transport layer of the simulated cluster: how a program — local or on a
// peer node — reaches each node's brick store. Owns the per-node devices
// (file-backed under "<storage_dir>/node<i>/" or in-memory for tests), the
// optional per-node shared buffer pools with their cache-level fault
// injectors, and the read-only / replica view handles used by failover and
// replica routing. Split out of Cluster so storage reachability is
// independent of execution (parallel/executor.h) and of placement
// (placement/replica_map.h): the three layers compose in Cluster, and each
// is testable alone.

#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "codec/chunk_map.h"
#include "codec/decoding_device.h"
#include "io/block_device.h"
#include "io/fault_injection.h"
#include "io/shared_buffer_pool.h"
#include "obs/metrics.h"

namespace oociso::parallel {

struct TransportConfig {
  std::size_t node_count = 1;
  std::uint64_t block_size = 4096;
  bool in_memory = false;  ///< MemoryBlockDevice instead of files
  /// Open existing per-node brick files read/write instead of truncating —
  /// used to reattach to a preprocessed dataset (see pipeline/bundle.h).
  bool open_existing = false;
  std::filesystem::path storage_dir;  ///< required unless in_memory
};

class StoreTransport {
 public:
  /// Creates the per-node stores ("<storage_dir>/node<i>/bricks.dat").
  /// Throws std::invalid_argument for zero nodes or a missing storage dir
  /// in file-backed mode.
  explicit StoreTransport(TransportConfig config);

  [[nodiscard]] std::size_t size() const { return disks_.size(); }
  [[nodiscard]] const TransportConfig& config() const { return config_; }

  [[nodiscard]] io::BlockDevice& disk(std::size_t node) {
    return *disks_.at(node);
  }

  /// Raw pointers to all node stores, in node order (for builder APIs).
  [[nodiscard]] std::vector<io::BlockDevice*> disk_pointers();

  /// Reopens `node`'s brick store read-only, independently of the node's
  /// own device handle — the failover path by which a healthy peer takes
  /// over a dead node's stripe. File-backed transports open the file
  /// afresh; in-memory ones return a read-only view of the node's device.
  /// The transport must outlive the returned device.
  [[nodiscard]] std::unique_ptr<io::BlockDevice> open_readonly(
      std::size_t node);

  /// A PRIVATE read handle on `node`'s store for replica routing: the
  /// caller owns the handle's IoStats (BlockDevice accounting is not
  /// thread-safe, so concurrent programs must not share one handle).
  /// File-backed transports open the file afresh — indistinguishable from
  /// open_readonly. In-memory ones return a non-accounting view
  /// (ReadOnlyBlockDevice with inner accounting off): reads reach the
  /// node's store without mutating its shared stats, so many programs can
  /// route to one node concurrently. The transport must outlive the
  /// returned device.
  [[nodiscard]] std::unique_ptr<io::BlockDevice> open_replica_view(
      std::size_t node);

  /// Installs the per-node raw↔device chunk maps of a compressed (v4)
  /// index (index::build_chunk_maps). Once set, enable_shared_cache stacks
  /// a codec::ChunkDecodingDevice between each mapped node's store (and
  /// its fault injector, which keeps injecting on the *physical* encoded
  /// reads) and its pool — so pools address, claim, and cache *decoded*
  /// frames in raw space: one device read of compressed bytes per
  /// single-flight claim, decode charged to the claiming thread's CPU
  /// ledger, and every concurrent waiter reusing the decoded frame. Nodes
  /// with an empty map keep the uncompressed path untouched. Must be
  /// called before enable_shared_cache (throws std::logic_error after);
  /// pass an empty vector to clear. `maps` must be sized 0 or size().
  void set_chunk_maps(std::vector<codec::ChunkMap> maps);

  /// Node `node`'s chunk map, or nullptr when none is installed (store is
  /// uncompressed). Raw-path consumers wrap their private device handles
  /// in their own ChunkDecodingDevice over this map.
  [[nodiscard]] const codec::ChunkMap* chunk_map(std::size_t node) const {
    if (chunk_maps_.empty() || chunk_maps_.at(node).empty()) return nullptr;
    return &chunk_maps_.at(node);
  }

  /// Builds one shared, thread-safe brick cache per node so concurrent
  /// queries against the same stripe dedup their device reads (see
  /// io/shared_buffer_pool.h). `capacity_blocks` is the per-node frame
  /// budget. When `inject` is given, node i's pool reads through a
  /// deterministic fault injector configured by inject[i] — the transport
  /// owns the injector so every query sharing the pool sees one coherent
  /// fault stream. `inject` must be empty or have exactly one entry per
  /// node. With chunk maps installed (set_chunk_maps) each mapped node's
  /// pool reads through a decoder and caches decoded frames. Throws
  /// std::logic_error if already enabled. Not thread-safe against
  /// in-flight queries; call between query waves.
  void enable_shared_cache(std::size_t capacity_blocks,
                           const std::vector<io::FaultConfig>& inject = {});

  /// Tears the per-node pools (and any cache-level injectors) down. Must
  /// not be called while queries are reading through them.
  void disable_shared_cache();

  /// Node `node`'s shared pool, or nullptr when caching is disabled.
  [[nodiscard]] io::SharedBufferPool* cache(std::size_t node) {
    return caches_.empty() ? nullptr : caches_.at(node).get();
  }
  [[nodiscard]] const io::SharedBufferPool* cache(std::size_t node) const {
    return caches_.empty() ? nullptr : caches_.at(node).get();
  }

  /// What node `node`'s cache-level injector actually did; nullptr when the
  /// cache was enabled without fault injection.
  [[nodiscard]] const io::InjectedFaults* cache_injected(
      std::size_t node) const {
    return cache_injectors_.empty() ? nullptr
                                    : &cache_injectors_.at(node)->injected();
  }

  /// Drops every pool's resident frames (cumulative counters survive) — the
  /// cold-start switch for warm-vs-cold cache measurements.
  void drop_caches();

  /// Attaches every node store (counters `node<i>.disk.*`) and — when the
  /// shared cache is or later becomes enabled — every pool (counters
  /// `node<i>.cache.*`) to `registry`. The registry must outlive the
  /// transport's devices; call once per registry.
  void attach_metrics(obs::MetricsRegistry& registry);

 private:
  TransportConfig config_;
  std::vector<std::unique_ptr<io::BlockDevice>> disks_;
  /// Raw↔device maps of a compressed index (empty = uncompressed).
  std::vector<codec::ChunkMap> chunk_maps_;
  /// Cache-level fault injectors (empty unless enable_shared_cache was
  /// given configs); each wraps the matching node store.
  std::vector<std::unique_ptr<io::FaultInjectingBlockDevice>> cache_injectors_;
  /// Decode-on-fetch decorators (one per mapped node, null elsewhere);
  /// stacked decoder(injector(disk)) so pools cache decoded frames while
  /// faults hit the physical encoded reads.
  std::vector<std::unique_ptr<codec::ChunkDecodingDevice>> cache_decoders_;
  /// Per-node shared pools (empty while caching is disabled).
  std::vector<std::unique_ptr<io::SharedBufferPool>> caches_;
  /// Registry from attach_metrics, so pools created later attach too.
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace oociso::parallel
