#pragma once
// Interconnect cost model for the simulated cluster.
//
// Defaults follow the paper's platform: 10 Gb/s InfiniBand with
// microsecond-class latency. Together with io::DiskModel (50 MB/s local
// disks) these models supply the multi-node wall-clock shape on a
// single-host run; see DESIGN.md section 1 for the substitution rationale.

#include <cstdint>

namespace oociso::parallel {

struct NetworkModel {
  double latency_seconds = 10e-6;
  double bandwidth_bytes_per_s = 10.0e9 / 8.0;  // 10 Gb/s

  /// Modeled time for a node to move `bytes` in `messages` messages.
  [[nodiscard]] double seconds(std::uint64_t messages,
                               std::uint64_t bytes) const {
    return static_cast<double>(messages) * latency_seconds +
           static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

}  // namespace oociso::parallel
