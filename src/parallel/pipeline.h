#pragma once
// Two-stage producer/consumer pipeline primitives.
//
// The query engines overlap a node's AMC retrieval I/O with its decoding +
// marching-cubes work: an I/O stage pulls batches from a RetrievalStream
// and pushes them through a bounded queue while the compute stage drains
// them on the node's own thread. The queue is deliberately small — it
// bounds memory to capacity batches and keeps the producer at most a few
// reads ahead (prefetch, not full buffering), so per-node completion is
// max(io, cpu) + fill rather than io + cpu.
//
// Thread-safety: BoundedQueue is a plain mutex + condition-variable queue,
// safe for any number of producers/consumers (the pipelines use exactly one
// of each). produce_consume() owns the producer thread's lifetime and
// propagates exceptions from either stage to the caller.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

namespace oociso::parallel {

/// Fixed-capacity blocking queue. push() blocks while full; pop() blocks
/// while empty; close() wakes everyone and makes further push() calls
/// return false and pop() return nullopt once drained.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks until there is room (or the queue is closed). Returns false —
  /// dropping the item — iff the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Idempotent; unblocks all waiters. Items already queued remain
  /// poppable (close-then-drain).
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Runs `produce(push)` on a dedicated thread while `consume(item)` drains
/// the queue on the calling thread.
///
/// `produce` receives a callable `bool push(T)`; it should stop producing
/// when push returns false (consumer aborted). `consume` is invoked once
/// per item in FIFO order. Exceptions: a consumer exception closes the
/// queue (unblocking the producer), the producer thread is joined, and the
/// consumer's exception propagates; a producer exception is rethrown after
/// the consumer drains whatever was queued. The producer thread never
/// outlives this call.
template <typename T, typename ProduceFn, typename ConsumeFn>
void produce_consume(std::size_t queue_capacity, ProduceFn&& produce,
                     ConsumeFn&& consume) {
  BoundedQueue<T> queue(queue_capacity);
  std::exception_ptr producer_error;

  std::thread producer([&] {
    try {
      produce([&queue](T item) { return queue.push(std::move(item)); });
    } catch (...) {
      producer_error = std::current_exception();
    }
    queue.close();
  });

  try {
    while (std::optional<T> item = queue.pop()) {
      consume(*item);
    }
  } catch (...) {
    queue.close();  // unblock a producer stuck in push()
    producer.join();
    throw;
  }
  producer.join();
  if (producer_error) std::rethrow_exception(producer_error);
}

}  // namespace oociso::parallel
