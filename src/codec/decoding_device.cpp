#include "codec/decoding_device.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "io/decode_ledger.h"
#include "util/timer.h"

namespace oociso::codec {

double thread_decode_cpu_seconds() { return io::thread_decode_cpu_seconds(); }

void ChunkDecodingDevice::do_read(std::uint64_t offset,
                                  std::span<std::byte> out) {
  if (out.empty()) return;
  const std::uint64_t end = offset + out.size();
  const std::span<const ChunkExtent> extents = map_.extents();
  std::size_t index = map_.find(offset);
  if (index >= extents.size()) {
    throw std::out_of_range("ChunkDecodingDevice: read before mapped space");
  }
  std::vector<std::byte> comp;
  std::vector<std::byte> chunk;
  std::uint64_t pos = offset;
  while (pos < end) {
    if (index >= extents.size() ||
        extents[index].raw_offset > pos) {
      throw std::out_of_range("ChunkDecodingDevice: read past mapped space");
    }
    // Group raw- and device-contiguous extents into one physical read, so a
    // coalesced raw run keeps costing one inner read_op.
    std::size_t run_end = index;
    const std::uint64_t device_begin = extents[index].device_offset;
    std::uint64_t device_end = device_begin;
    std::uint64_t raw_cursor = extents[index].raw_offset;
    while (run_end < extents.size() && raw_cursor < end &&
           extents[run_end].raw_offset == raw_cursor &&
           extents[run_end].device_offset == device_end) {
      device_end += extents[run_end].comp_size;
      raw_cursor += extents[run_end].raw_size;
      ++run_end;
    }
    comp.resize(device_end - device_begin);
    inner_.read(device_begin, comp);
    util::ThreadCpuTimer cpu;
    for (std::size_t i = index; i < run_end && pos < end; ++i) {
      const ChunkExtent& extent = extents[i];
      const std::uint64_t chunk_end = extent.raw_offset + extent.raw_size;
      const std::span<const std::byte> encoded =
          std::span<const std::byte>(comp).subspan(
              extent.device_offset - device_begin, extent.comp_size);
      if (extent.raw_offset >= offset && chunk_end <= end) {
        // Chunk fully inside the request: decode straight into the caller.
        decode_chunk(extent.codec, encoded, map_.record_size(),
                     out.subspan(extent.raw_offset - offset, extent.raw_size));
      } else {
        chunk.resize(extent.raw_size);
        decode_chunk(extent.codec, encoded, map_.record_size(), chunk);
        const std::uint64_t copy_begin = std::max(pos, extent.raw_offset);
        const std::uint64_t copy_end = std::min(end, chunk_end);
        std::memcpy(out.data() + (copy_begin - offset),
                    chunk.data() + (copy_begin - extent.raw_offset),
                    copy_end - copy_begin);
      }
      pos = std::min(chunk_end, end);
    }
    const double spent = cpu.seconds();
    io::charge_thread_decode_cpu(spent);
    decode_nanos_.fetch_add(static_cast<std::uint64_t>(spent * 1e9),
                            std::memory_order_relaxed);
    index = run_end;
  }
}

void ChunkDecodingDevice::do_write(std::uint64_t /*offset*/,
                                   std::span<const std::byte> /*data*/) {
  throw std::logic_error("ChunkDecodingDevice: read-only decorator");
}

}  // namespace oociso::codec
