#pragma once
// Per-chunk lossless brick compression (index format v4, DESIGN §14).
//
// The unit of compression is the index's CRC chunk — the same
// `crc_chunk_records * record_size` span the retrieval stream already
// verifies atomically — so compression never changes chunk boundaries,
// checksum coverage, or replica-group arithmetic. Each chunk is encoded
// independently:
//
//   1. *Byte-shuffle* with stride = record_size: byte j of every record in
//      the chunk is grouped together. Record fields (little-endian ids,
//      vmin/vmax, samples) vary smoothly across neighboring metacells, so
//      the transpose turns per-field high bytes into long near-constant
//      runs the match stage can fold.
//   2. *LZ stage*: a greedy LZ77 block format (4-byte minimum match,
//      16-bit backward offsets, LZ4-style nibble token with 255-byte
//      length extensions) over the shuffled bytes, prefixed with a CRC32
//      of the encoded stream so a truncated or bit-flipped compressed
//      chunk is rejected *before* the decoder touches it.
//   3. *Raw-passthrough escape*: when stages 1–2 do not win, the chunk is
//      stored verbatim with per-chunk codec id kRaw — an incompressible
//      chunk never grows, and `--compression none` never changes a byte.
//
// CRC32s in the brick directory always cover the *raw* bytes, so the
// existing verify/retry/hedge machinery checks decoded output end to end;
// the encoded-stream CRC only exists to classify malformed compressed
// input as the corruption fault it is (io::IoError, kind kCorruption,
// retriable) instead of undefined decoder behavior.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace oociso::codec {

/// Per-chunk codec id as stored in the v4 index.
enum class Codec : std::uint8_t {
  kRaw = 0,  ///< verbatim bytes (also the passthrough escape under kLz)
  kLz = 1,   ///< byte-shuffle + LZ block stream (see file comment)
};

[[nodiscard]] constexpr std::string_view codec_name(Codec codec) {
  switch (codec) {
    case Codec::kRaw: return "none";
    case Codec::kLz: return "lz";
  }
  return "?";
}

/// Parses a --compression flag value ("none" | "lz"); throws
/// std::invalid_argument on anything else.
[[nodiscard]] Codec parse_codec(std::string_view name);

/// Encodes one chunk of `raw.size()` bytes (a multiple of `record_size`)
/// into `out` and returns the codec actually used: kLz when the encoded
/// form (including its stream CRC) is strictly smaller than the input,
/// kRaw otherwise (out then holds the input verbatim). `out` is replaced.
[[nodiscard]] Codec encode_chunk(std::span<const std::byte> raw,
                                 std::size_t record_size,
                                 std::vector<std::byte>& out);

/// Decodes one chunk previously produced by encode_chunk into exactly
/// `out.size()` raw bytes (the chunk's known raw size, a multiple of
/// `record_size`). Malformed input — wrong passthrough length, stream CRC
/// mismatch, truncated stream, out-of-range match, wrong decoded length —
/// throws a *retriable* io::IoError of kind kCorruption, so callers treat
/// a decode failure exactly like a checksum fault (invalidate, retry,
/// reroute, hedge).
void decode_chunk(Codec codec, std::span<const std::byte> encoded,
                  std::size_t record_size, std::span<std::byte> out);

}  // namespace oociso::codec
