#pragma once
// Raw-address ↔ device-address map for compressed brick stores.
//
// Under index v4 every consumer keeps addressing bricks in *raw* space —
// the byte offsets an uncompressed build would have produced — while the
// device holds the chunks' encoded bytes back to back. The ChunkMap is the
// per-store translation table: one ChunkExtent per CRC chunk, sorted by
// raw offset, disjoint and dense over every raw range the store holds
// (primary stripe plus any replica-group copies). index::build_chunk_maps
// derives the per-node maps from the loaded trees; codec::
// ChunkDecodingDevice consumes one to present the raw address space over
// the compressed device.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "codec/codec.h"

namespace oociso::codec {

/// One CRC chunk's placement: `raw_size` decoded bytes addressed at
/// `raw_offset`, stored as `comp_size` encoded bytes at `device_offset`.
struct ChunkExtent {
  std::uint64_t raw_offset = 0;
  std::uint64_t device_offset = 0;
  std::uint32_t raw_size = 0;
  std::uint32_t comp_size = 0;
  Codec codec = Codec::kRaw;
};

class ChunkMap {
 public:
  ChunkMap() = default;
  explicit ChunkMap(std::size_t record_size) : record_size_(record_size) {}

  [[nodiscard]] std::size_t record_size() const { return record_size_; }
  void set_record_size(std::size_t record_size) { record_size_ = record_size; }

  void add(const ChunkExtent& extent) {
    extents_.push_back(extent);
    finalized_ = false;
  }

  /// Sorts by raw offset and validates: disjoint raw extents, strictly
  /// ascending, no zero-sized chunks. Throws std::invalid_argument on a
  /// malformed map. Must be called before any lookup.
  void finalize();

  /// Merges another map's extents in (e.g. later time steps appending to
  /// the same store); call finalize() again afterwards.
  void merge(const ChunkMap& other) {
    extents_.insert(extents_.end(), other.extents_.begin(),
                    other.extents_.end());
    finalized_ = false;
  }

  [[nodiscard]] bool empty() const { return extents_.empty(); }
  [[nodiscard]] std::size_t size() const { return extents_.size(); }
  [[nodiscard]] std::span<const ChunkExtent> extents() const {
    return extents_;
  }

  /// One past the last mapped raw byte (0 when empty).
  [[nodiscard]] std::uint64_t raw_end() const;
  /// Sum of raw chunk sizes.
  [[nodiscard]] std::uint64_t raw_bytes() const;
  /// Sum of encoded chunk sizes (== raw_bytes for an uncompressed store).
  [[nodiscard]] std::uint64_t compressed_bytes() const;

  /// Index of the extent containing `raw_offset`, or size() when none.
  [[nodiscard]] std::size_t find(std::uint64_t raw_offset) const;

  /// Device-space position of a raw-space position: exact on chunk
  /// boundaries (the only places schedules start and end reads), clamped
  /// proportionally inside a chunk, identity past the mapped range. The
  /// scheduler uses this to measure coalescing gaps in *compressed* bytes.
  [[nodiscard]] std::uint64_t device_position(std::uint64_t raw_offset) const;

 private:
  std::vector<ChunkExtent> extents_;
  std::size_t record_size_ = 0;
  bool finalized_ = false;
};

}  // namespace oociso::codec
