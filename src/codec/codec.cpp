#include "codec/codec.h"

#include <cstring>
#include <stdexcept>
#include <string>

#include "io/io_error.h"
#include "util/crc32.h"

namespace oociso::codec {
namespace {

[[noreturn]] void corrupt(const std::string& what) {
  throw io::IoError(io::IoError::Kind::kCorruption, /*retriable=*/true,
                    "codec: " + what);
}

// ---- byte shuffle ---------------------------------------------------------

// shuffled[j * records + i] = raw[i * stride + j]: column-major over the
// record fields. Self-inverse up to transposition; both directions below.

void shuffle(std::span<const std::byte> in, std::size_t stride,
             std::span<std::byte> out) {
  const std::size_t records = in.size() / stride;
  for (std::size_t i = 0; i < records; ++i) {
    for (std::size_t j = 0; j < stride; ++j) {
      out[j * records + i] = in[i * stride + j];
    }
  }
}

void unshuffle(std::span<const std::byte> in, std::size_t stride,
               std::span<std::byte> out) {
  const std::size_t records = in.size() / stride;
  for (std::size_t i = 0; i < records; ++i) {
    for (std::size_t j = 0; j < stride; ++j) {
      out[i * stride + j] = in[j * records + i];
    }
  }
}

// ---- LZ block stream ------------------------------------------------------
//
// Token byte: high nibble = literal count, low nibble = match length − 4;
// nibble value 15 extends with 255-continuation bytes (LZ4 convention).
// After the literals, a 16-bit little-endian backward offset (1-based)
// introduces the match; the final token carries literals only and ends the
// stream without an offset.

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 0xFFFF;
constexpr std::size_t kHashBits = 13;

std::uint32_t hash4(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_length(std::vector<std::byte>& out, std::size_t extra) {
  while (extra >= 255) {
    out.push_back(std::byte{255});
    extra -= 255;
  }
  out.push_back(static_cast<std::byte>(extra));
}

void emit(std::vector<std::byte>& out, std::span<const std::byte> literals,
          std::size_t match_len, std::size_t match_offset) {
  const std::size_t lit_nibble = literals.size() < 15 ? literals.size() : 15;
  const std::size_t match_extra = match_len >= kMinMatch ? match_len - kMinMatch : 0;
  const std::size_t match_nibble = match_extra < 15 ? match_extra : 15;
  out.push_back(static_cast<std::byte>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) put_length(out, literals.size() - 15);
  out.insert(out.end(), literals.begin(), literals.end());
  if (match_len >= kMinMatch) {
    out.push_back(static_cast<std::byte>(match_offset & 0xFF));
    out.push_back(static_cast<std::byte>((match_offset >> 8) & 0xFF));
    if (match_nibble == 15) put_length(out, match_extra - 15);
  }
}

void compress_lz(std::span<const std::byte> in, std::vector<std::byte>& out) {
  out.clear();
  const std::size_t n = in.size();
  std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, 0);
  std::vector<bool> seen(std::size_t{1} << kHashBits, false);
  std::size_t anchor = 0;
  std::size_t pos = 0;
  while (n >= kMinMatch && pos + kMinMatch <= n) {
    const std::uint32_t h = hash4(in.data() + pos);
    const std::size_t candidate = table[h];
    const bool usable = seen[h] && candidate < pos &&
                        pos - candidate <= kMaxOffset &&
                        std::memcmp(in.data() + candidate, in.data() + pos,
                                    kMinMatch) == 0;
    table[h] = static_cast<std::uint32_t>(pos);
    seen[h] = true;
    if (!usable) {
      ++pos;
      continue;
    }
    std::size_t len = kMinMatch;
    while (pos + len < n && in[candidate + len] == in[pos + len]) ++len;
    emit(out, in.subspan(anchor, pos - anchor), len, pos - candidate);
    pos += len;
    anchor = pos;
  }
  emit(out, in.subspan(anchor), 0, 0);  // trailing literals, no match
}

std::size_t get_length(std::span<const std::byte> in, std::size_t& pos,
                       std::size_t nibble) {
  std::size_t length = nibble;
  if (nibble == 15) {
    for (;;) {
      if (pos >= in.size()) corrupt("truncated length extension");
      const std::size_t step = std::to_integer<std::size_t>(in[pos++]);
      length += step;
      if (step != 255) break;
    }
  }
  return length;
}

void decompress_lz(std::span<const std::byte> in, std::span<std::byte> out) {
  std::size_t pos = 0;
  std::size_t produced = 0;
  for (;;) {
    if (pos >= in.size()) corrupt("truncated token stream");
    const std::size_t token = std::to_integer<std::size_t>(in[pos++]);
    const std::size_t literals = get_length(in, pos, token >> 4);
    if (literals > in.size() - pos) corrupt("literal run past stream end");
    if (literals > out.size() - produced) corrupt("literal run past raw size");
    std::memcpy(out.data() + produced, in.data() + pos, literals);
    pos += literals;
    produced += literals;
    if (pos == in.size()) {
      // Final token: literals only. The decoded length must land exactly.
      if (produced != out.size()) corrupt("decoded length mismatch");
      return;
    }
    if (in.size() - pos < 2) corrupt("truncated match offset");
    const std::size_t offset = std::to_integer<std::size_t>(in[pos]) |
                               (std::to_integer<std::size_t>(in[pos + 1]) << 8);
    pos += 2;
    if (offset == 0 || offset > produced) corrupt("match offset out of range");
    const std::size_t match = kMinMatch + get_length(in, pos, token & 0xF);
    if (match > out.size() - produced) corrupt("match run past raw size");
    // Byte-by-byte: overlapping matches (offset < length) replicate runs.
    for (std::size_t i = 0; i < match; ++i, ++produced) {
      out[produced] = out[produced - offset];
    }
  }
}

}  // namespace

Codec parse_codec(std::string_view name) {
  if (name == "none") return Codec::kRaw;
  if (name == "lz") return Codec::kLz;
  throw std::invalid_argument("unknown compression codec '" +
                              std::string(name) + "' (expected none|lz)");
}

Codec encode_chunk(std::span<const std::byte> raw, std::size_t record_size,
                   std::vector<std::byte>& out) {
  if (record_size == 0 || raw.size() % record_size != 0) {
    throw std::invalid_argument("encode_chunk: size not a record multiple");
  }
  std::vector<std::byte> shuffled(raw.size());
  shuffle(raw, record_size, shuffled);
  std::vector<std::byte> body;
  compress_lz(shuffled, body);
  if (body.size() + sizeof(std::uint32_t) >= raw.size()) {
    out.assign(raw.begin(), raw.end());
    return Codec::kRaw;
  }
  const std::uint32_t crc = util::crc32(std::as_bytes(std::span(body)));
  out.clear();
  out.reserve(body.size() + sizeof(crc));
  for (std::size_t i = 0; i < sizeof(crc); ++i) {
    out.push_back(static_cast<std::byte>((crc >> (8 * i)) & 0xFF));
  }
  out.insert(out.end(), body.begin(), body.end());
  return Codec::kLz;
}

void decode_chunk(Codec codec, std::span<const std::byte> encoded,
                  std::size_t record_size, std::span<std::byte> out) {
  if (record_size == 0 || out.size() % record_size != 0) {
    throw std::invalid_argument("decode_chunk: size not a record multiple");
  }
  switch (codec) {
    case Codec::kRaw:
      if (encoded.size() != out.size()) corrupt("passthrough length mismatch");
      std::memcpy(out.data(), encoded.data(), encoded.size());
      return;
    case Codec::kLz: {
      if (encoded.size() <= sizeof(std::uint32_t)) corrupt("stream too short");
      std::uint32_t stored = 0;
      for (std::size_t i = 0; i < sizeof(stored); ++i) {
        stored |= std::to_integer<std::uint32_t>(encoded[i]) << (8 * i);
      }
      const auto body = encoded.subspan(sizeof(stored));
      if (util::crc32(body) != stored) corrupt("stream CRC mismatch");
      std::vector<std::byte> shuffled(out.size());
      decompress_lz(body, shuffled);
      unshuffle(shuffled, record_size, out);
      return;
    }
  }
  corrupt("unknown chunk codec id");
}

}  // namespace oociso::codec
