#include "codec/chunk_map.h"

#include <algorithm>
#include <stdexcept>

namespace oociso::codec {

void ChunkMap::finalize() {
  std::sort(extents_.begin(), extents_.end(),
            [](const ChunkExtent& a, const ChunkExtent& b) {
              return a.raw_offset < b.raw_offset;
            });
  std::uint64_t prev_end = 0;
  for (const ChunkExtent& extent : extents_) {
    if (extent.raw_size == 0 || extent.comp_size == 0) {
      throw std::invalid_argument("ChunkMap: zero-sized chunk extent");
    }
    if (extent.raw_offset < prev_end) {
      throw std::invalid_argument("ChunkMap: overlapping raw extents");
    }
    prev_end = extent.raw_offset + extent.raw_size;
  }
  finalized_ = true;
}

std::uint64_t ChunkMap::raw_end() const {
  if (!finalized_) throw std::logic_error("ChunkMap: not finalized");
  if (extents_.empty()) return 0;
  const ChunkExtent& last = extents_.back();
  return last.raw_offset + last.raw_size;
}

std::uint64_t ChunkMap::raw_bytes() const {
  std::uint64_t sum = 0;
  for (const ChunkExtent& extent : extents_) sum += extent.raw_size;
  return sum;
}

std::uint64_t ChunkMap::compressed_bytes() const {
  std::uint64_t sum = 0;
  for (const ChunkExtent& extent : extents_) sum += extent.comp_size;
  return sum;
}

std::size_t ChunkMap::find(std::uint64_t raw_offset) const {
  if (!finalized_) throw std::logic_error("ChunkMap: not finalized");
  const auto it = std::upper_bound(
      extents_.begin(), extents_.end(), raw_offset,
      [](std::uint64_t offset, const ChunkExtent& extent) {
        return offset < extent.raw_offset;
      });
  if (it == extents_.begin()) return extents_.size();
  const std::size_t index = static_cast<std::size_t>(it - extents_.begin()) - 1;
  const ChunkExtent& extent = extents_[index];
  if (raw_offset >= extent.raw_offset + extent.raw_size) {
    return extents_.size();
  }
  return index;
}

std::uint64_t ChunkMap::device_position(std::uint64_t raw_offset) const {
  const std::size_t index = find(raw_offset);
  if (index >= extents_.size()) return raw_offset;
  const ChunkExtent& extent = extents_[index];
  const std::uint64_t into = raw_offset - extent.raw_offset;
  return extent.device_offset + std::min<std::uint64_t>(into, extent.comp_size);
}

}  // namespace oociso::codec
