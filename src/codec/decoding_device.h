#pragma once
// Decode-on-fetch: the raw address space of a compressed brick store.
//
// A ChunkDecodingDevice stacks on any BlockDevice holding v4-encoded
// chunks and serves reads in *raw* (uncompressed) byte addresses, so every
// consumer above it — the shared buffer pool (which then caches *decoded*
// frames, one device read of compressed bytes per single-flight claim),
// the retrieval stream, replica views — keeps its addressing unchanged.
// Each do_read:
//
//   1. resolves the raw range to its covering chunk extents,
//   2. groups device-contiguous extents into single inner reads (so one
//      coalesced raw run still costs one physical read),
//   3. decodes each chunk (thread-CPU-timed) and copies the overlap into
//      the caller's buffer.
//
// Accounting: stats()/reset_stats() forward to the inner device, so IoStats
// snapshots taken around reads through this decorator see the *physical*
// compressed traffic — the whole point of the exercise, since the modeled
// DiskModel seconds derive from those stats. Decode CPU accumulates both
// per-device (decode_cpu_seconds) and in a thread-local ledger
// (thread_decode_cpu_seconds) so per-batch and per-caller attribution
// stays exact even when several streams share one decoder under a pool.
//
// A malformed chunk (bit-flipped or truncated compressed bytes) throws the
// codec's retriable kCorruption IoError out of read(): upstream this is
// indistinguishable from a raw-CRC checksum fault, which is exactly the
// taxonomy DESIGN §14 specifies.
//
// Thread-safety matches BlockDevice: not thread-safe; pools serialize
// access under their device mutex, and each stream/view owns its decorator.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "codec/chunk_map.h"
#include "io/block_device.h"

namespace oociso::codec {

/// Total decode thread-CPU seconds this thread has spent in any
/// ChunkDecodingDevice. Monotone per thread; snapshot around a read to
/// attribute its decode cost.
[[nodiscard]] double thread_decode_cpu_seconds();

class ChunkDecodingDevice final : public io::BlockDevice {
 public:
  /// `inner` and `map` must outlive the device; `map` must be finalized.
  ChunkDecodingDevice(io::BlockDevice& inner, const ChunkMap& map)
      : io::BlockDevice(inner.block_size(), inner.readahead_blocks()),
        inner_(inner),
        map_(map) {}

  /// The raw address space ends where the last mapped chunk does.
  [[nodiscard]] std::uint64_t size() const override { return map_.raw_end(); }

  /// Physical (compressed) traffic of the inner device.
  [[nodiscard]] const io::IoStats& stats() const override {
    return inner_.stats();
  }
  void reset_stats() override { inner_.reset_stats(); }

  /// Decode thread-CPU spent by reads through *this* device.
  [[nodiscard]] double decode_cpu_seconds() const {
    return decode_nanos_.load(std::memory_order_relaxed) * 1e-9;
  }

  [[nodiscard]] io::BlockDevice& inner() { return inner_; }

 protected:
  void do_read(std::uint64_t offset, std::span<std::byte> out) override;
  void do_write(std::uint64_t offset,
                std::span<const std::byte> data) override;

 private:
  io::BlockDevice& inner_;
  const ChunkMap& map_;
  std::atomic<std::uint64_t> decode_nanos_{0};
};

}  // namespace oociso::codec
