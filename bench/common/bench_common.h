#pragma once
// Shared scaffolding for the paper-reproduction benchmark binaries.
//
// Every bench binary is stand-alone: it synthesizes the RM-analog dataset,
// preprocesses it onto a file-backed simulated cluster, runs the paper's
// isovalue sweep, and prints the corresponding table/figure in the paper's
// layout. Common flags:
//   --dims N       base volume width (default 256, the paper's down-sample;
//                  depth is 15/16 of it, matching 2048:1920)
//   --scale N      divide each volume dimension by N
//   --step S       RM time step to preprocess (default 250, as in Fig. 4)
//   --seed X       generator seed (default 42)
//   --memory       use in-memory disks instead of file-backed ones
//   --image N      framebuffer size for rendering phases (default 512)
//   --reps N       repetitions per query; fastest kept (default 3)
//   --inject-faults SEED,RATE
//                  deterministic transient read faults on every node disk;
//                  absorbed by retry/backoff (modeled seconds appear in the
//                  AMC column), failed nodes fail over to peers. A fault
//                  summary line is printed after the sweep.
//   --json PATH    also write the sweep machine-readably (setup, per-query
//                  QueryReport, per-node IoStats); see write_bench_json
//   --readahead N  per-node pipeline queue depth in batches (default 4)
//   --queue-depth D
//                  async submission-queue depth per node: 0 = synchronous
//                  reads (default), 1 = async with identical traffic,
//                  >= 2 keeps D reads in flight (see DESIGN §12)
//   --no-coalesce  execute plans brick by brick in plan order (the legacy
//                  baseline for the scheduler A/B, see DESIGN §9.1)
//   --coalesce-gap BYTES
//                  largest gap a coalesced read may bridge (default: the
//                  device readahead window)
//   --replication K
//                  K-way replicated placement-group layout (default 1 =
//                  unreplicated, bit-identical legacy index); queries
//                  route reads across live holders and fail over
//                  brick-granularly (see DESIGN §13)
//   --compression none|lz
//                  per-chunk brick payload compression (default none =
//                  bit-identical v2/v3 layout); lz writes index v4 and
//                  queries decode on fetch (see DESIGN §14)
//   --kernel auto|scalar|sse2|avx2
//                  marching-cubes classification kernel (default auto =
//                  widest ISA the host supports; see DESIGN §15). The
//                  mesh is bit-identical across ISAs.
//   --mesh-crc     compute the canonical mesh hash per query into the
//                  JSON (`mesh_crc`) — the cross-ISA identity gate
//   --levels N     total resolution levels incl. full resolution (default
//                  1 = flat index, byte-identical legacy layout); N > 1
//                  appends N-1 coarse mip levels (index v5) enabling
//                  progressive queries (see DESIGN §16)
//   --trace PATH   write a Chrome trace_event JSON (chrome://tracing /
//                  Perfetto) of every query the bench runs: one process
//                  per executed query, per-node compute/I-O lanes, span
//                  args carrying the report counters. Written when the
//                  bench exits.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/rm_generator.h"
#include "obs/trace.h"
#include "pipeline/query_engine.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/temp_dir.h"

namespace oociso::bench {

struct BenchSetup {
  data::RmConfig rm;       ///< dims already scaled
  int time_step = 250;
  std::vector<float> isovalues;  ///< paper sweep: 10..210 step 20
  std::int32_t image_size = 512;
  bool file_backed = true;
  std::int32_t scale = 1;
  int reps = 3;  ///< repetitions per isovalue; the fastest run is kept
  /// --inject-faults <seed,rate>: fault-inject every node disk per query.
  std::optional<io::FaultConfig> inject_faults;
  /// --json PATH: also write the results machine-readably (see
  /// write_bench_json); empty = off.
  std::string json_path;
  /// --readahead N: per-node pipeline depth, in record batches.
  std::size_t readahead_batches = 4;
  /// --queue-depth D: async submission-queue depth per node (0 = the
  /// synchronous read path; see RetrievalOptions::queue_depth).
  std::size_t queue_depth = 0;
  /// --no-coalesce: execute plans brick by brick (the legacy baseline)
  /// instead of through the offset-sorting, run-coalescing scheduler.
  bool coalesce = true;
  /// --coalesce-gap BYTES: largest gap a coalesced read bridges; -1 = the
  /// device readahead window.
  std::int64_t coalesce_gap = -1;
  /// --replication K: keep K copies of every placement group across the
  /// node stores (1 = unreplicated, bit-identical legacy layout). Queries
  /// then route each read to the least-loaded live holder and fail over
  /// brick-granularly when a holder dies.
  std::size_t replication = 1;
  /// --compression none|lz: per-chunk payload compression at preprocess;
  /// queries decode on fetch, meshes stay bit-identical (DESIGN §14).
  codec::Codec compression = codec::Codec::kRaw;
  /// --kernel auto|scalar|sse2|avx2: marching-cubes classification ISA
  /// (validated against the host up front; auto = runtime dispatch).
  extract::KernelOptions kernel;
  /// --mesh-crc: hash every query's mesh into the JSON (`mesh_crc`).
  bool mesh_crc = false;
  /// --levels N: total resolution levels including full resolution at
  /// preprocess (1 = flat index; N > 1 stores N-1 coarse mip levels, v5).
  std::int32_t levels = 1;
  /// --trace PATH: Chrome trace_event JSON destination; empty = off.
  std::string trace_path;
  /// Shared trace sink when --trace is given. The shared_ptr's deleter
  /// writes `trace_path` when the last BenchSetup copy dies (end of the
  /// bench's main), so individual benches never manage the file.
  std::shared_ptr<obs::Tracer> tracer;

  /// `default_dims` sets the base volume width when --dims is not given;
  /// the speedup figures default larger so per-node work at 8 nodes stays
  /// out of the fixed-cost regime.
  static BenchSetup from_cli(int argc, char** argv, int default_dims = 256);

  /// QueryOptions reflecting this setup's knobs (faults, readahead,
  /// coalescing, tracing); benches that build their own options start
  /// here. The tracer is wired but `query_id` is 0 — callers running more
  /// than one query should stamp each run via next_trace_query().
  [[nodiscard]] pipeline::QueryOptions query_options() const;

  /// Reserves a process-unique trace pid and names its process group
  /// `label`; returns 0 (and does nothing) when tracing is off. run_sweep
  /// calls this per executed query; benches driving QueryEngine directly
  /// do the same.
  std::uint32_t next_trace_query(const std::string& label) const;
};

/// A cluster with the RM-analog time step preprocessed onto its disks.
struct Prepared {
  std::unique_ptr<util::TempDir> storage;       ///< null when in-memory
  std::unique_ptr<parallel::Cluster> cluster;
  pipeline::PreprocessResult prep;
  double volume_generation_seconds = 0.0;
};

/// Generates the configured RM time step and preprocesses it onto a fresh
/// `nodes`-node cluster. Prints a one-line preprocessing summary.
[[nodiscard]] Prepared prepare_rm(const BenchSetup& setup, std::size_t nodes);

/// Runs the full isovalue sweep on a prepared cluster.
[[nodiscard]] std::vector<pipeline::QueryReport> run_sweep(
    Prepared& prepared, const BenchSetup& setup, bool render = true);

/// Prints the per-isovalue table of Tables 2-5 for a p-node run, plus a
/// `paper-shape check` block asserting the table's qualitative claims.
void print_nodes_table(const std::string& caption, const BenchSetup& setup,
                       Prepared& prepared,
                       const std::vector<pipeline::QueryReport>& reports);

/// Formats a triangle count as the paper does (millions, 2 decimals).
[[nodiscard]] std::string mtri(std::uint64_t triangles);

/// Prints a PASS/FAIL shape-check line and returns pass.
bool shape_check(const std::string& claim, bool pass);

// ---- machine-readable output (--json) -------------------------------------

/// Minimal streaming JSON builder: explicit begin/end nesting, automatic
/// comma placement, standard escaping, round-trippable doubles. No
/// dependency — the benches only ever *write* JSON.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view name);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  /// Keeps string literals out of the bool overload.
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  /// key + value in one call.
  template <typename T>
  JsonWriter& member(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  /// Writes the document to `path`; throws std::runtime_error on failure.
  void save(const std::string& path) const;

 private:
  void comma();
  void append_string(std::string_view v);
  std::string out_;
  std::vector<bool> has_items_;  ///< per open scope
  bool pending_key_ = false;
};

/// One sweep at a node count, for write_bench_json.
struct JsonRun {
  std::size_t nodes = 0;
  const Prepared& prepared;
  const std::vector<pipeline::QueryReport>& reports;
};

/// Writes the standard BENCH_*.json document: the setup, the dataset /
/// preprocess summary, and per run one entry per isovalue with modeled and
/// measured times, aggregated IoStats, triangle counts, and a small
/// per-node breakdown. Shared by every table/figure bench; benches with
/// extra structure (time-varying, dataset sizes) build on JsonWriter
/// directly.
void write_bench_json(const std::string& path, std::string_view bench,
                      const BenchSetup& setup, std::span<const JsonRun> runs);

/// Appends one QueryReport as a JSON object to an open array/writer scope.
/// Exposed for benches that assemble custom documents (e.g. per time step).
void append_report_json(JsonWriter& json, const pipeline::QueryReport& report);

}  // namespace oociso::bench
