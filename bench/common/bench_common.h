#pragma once
// Shared scaffolding for the paper-reproduction benchmark binaries.
//
// Every bench binary is stand-alone: it synthesizes the RM-analog dataset,
// preprocesses it onto a file-backed simulated cluster, runs the paper's
// isovalue sweep, and prints the corresponding table/figure in the paper's
// layout. Common flags:
//   --dims N       base volume width (default 256, the paper's down-sample;
//                  depth is 15/16 of it, matching 2048:1920)
//   --scale N      divide each volume dimension by N
//   --step S       RM time step to preprocess (default 250, as in Fig. 4)
//   --seed X       generator seed (default 42)
//   --memory       use in-memory disks instead of file-backed ones
//   --image N      framebuffer size for rendering phases (default 512)
//   --reps N       repetitions per query; fastest kept (default 3)
//   --inject-faults SEED,RATE
//                  deterministic transient read faults on every node disk;
//                  absorbed by retry/backoff (modeled seconds appear in the
//                  AMC column), failed nodes fail over to peers. A fault
//                  summary line is printed after the sweep.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/rm_generator.h"
#include "pipeline/query_engine.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/temp_dir.h"

namespace oociso::bench {

struct BenchSetup {
  data::RmConfig rm;       ///< dims already scaled
  int time_step = 250;
  std::vector<float> isovalues;  ///< paper sweep: 10..210 step 20
  std::int32_t image_size = 512;
  bool file_backed = true;
  std::int32_t scale = 1;
  int reps = 3;  ///< repetitions per isovalue; the fastest run is kept
  /// --inject-faults <seed,rate>: fault-inject every node disk per query.
  std::optional<io::FaultConfig> inject_faults;

  /// `default_dims` sets the base volume width when --dims is not given;
  /// the speedup figures default larger so per-node work at 8 nodes stays
  /// out of the fixed-cost regime.
  static BenchSetup from_cli(int argc, char** argv, int default_dims = 256);
};

/// A cluster with the RM-analog time step preprocessed onto its disks.
struct Prepared {
  std::unique_ptr<util::TempDir> storage;       ///< null when in-memory
  std::unique_ptr<parallel::Cluster> cluster;
  pipeline::PreprocessResult prep;
  double volume_generation_seconds = 0.0;
};

/// Generates the configured RM time step and preprocesses it onto a fresh
/// `nodes`-node cluster. Prints a one-line preprocessing summary.
[[nodiscard]] Prepared prepare_rm(const BenchSetup& setup, std::size_t nodes);

/// Runs the full isovalue sweep on a prepared cluster.
[[nodiscard]] std::vector<pipeline::QueryReport> run_sweep(
    Prepared& prepared, const BenchSetup& setup, bool render = true);

/// Prints the per-isovalue table of Tables 2-5 for a p-node run, plus a
/// `paper-shape check` block asserting the table's qualitative claims.
void print_nodes_table(const std::string& caption, const BenchSetup& setup,
                       Prepared& prepared,
                       const std::vector<pipeline::QueryReport>& reports);

/// Formats a triangle count as the paper does (millions, 2 decimals).
[[nodiscard]] std::string mtri(std::uint64_t triangles);

/// Prints a PASS/FAIL shape-check line and returns pass.
bool shape_check(const std::string& claim, bool pass);

}  // namespace oociso::bench
