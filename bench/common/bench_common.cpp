#include "bench_common.h"

#include <algorithm>
#include <iostream>

#include "metacell/source.h"
#include "util/stats.h"
#include "util/timer.h"

namespace oociso::bench {

BenchSetup BenchSetup::from_cli(int argc, char** argv, int default_dims) {
  const util::CliArgs args(argc, argv);
  BenchSetup setup;
  setup.scale = static_cast<std::int32_t>(args.get_int("scale", 1));
  if (setup.scale < 1) throw std::invalid_argument("--scale must be >= 1");

  const auto base = static_cast<std::int32_t>(args.get_int("dims", default_dims));
  setup.rm.dims = {std::max(base / setup.scale, 16),
                   std::max(base / setup.scale, 16),
                   std::max(base * 15 / 16 / setup.scale, 16)};
  setup.rm.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  setup.time_step = static_cast<int>(args.get_int("step", 250));
  setup.image_size = static_cast<std::int32_t>(args.get_int("image", 512));
  setup.file_backed = !args.get_bool("memory", false);
  setup.reps = static_cast<int>(args.get_int("reps", 3));
  if (setup.reps < 1) throw std::invalid_argument("--reps must be >= 1");
  const std::string fault_spec = args.get("inject-faults", "");
  if (!fault_spec.empty()) {
    setup.inject_faults = io::FaultConfig::parse(fault_spec);
  }
  for (int isovalue = 10; isovalue <= 210; isovalue += 20) {
    setup.isovalues.push_back(static_cast<float>(isovalue));
  }
  return setup;
}

Prepared prepare_rm(const BenchSetup& setup, std::size_t nodes) {
  util::WallTimer generation_timer;
  const core::VolumeU8 volume =
      data::generate_rm_timestep(setup.rm, setup.time_step);
  const double generation_seconds = generation_timer.seconds();

  parallel::ClusterConfig cluster_config;
  cluster_config.node_count = nodes;
  std::unique_ptr<util::TempDir> storage;
  if (setup.file_backed) {
    storage = std::make_unique<util::TempDir>("oociso-bench");
    cluster_config.storage_dir = storage->path();
  } else {
    cluster_config.in_memory = true;
  }
  auto cluster = std::make_unique<parallel::Cluster>(cluster_config);

  const auto source = metacell::make_source(volume, /*samples_per_side=*/9);
  pipeline::PreprocessResult prep = pipeline::preprocess(*source, *cluster);

  std::cout << "# dataset: RM-analog " << setup.rm.dims << " u8, step "
            << setup.time_step << ", seed " << setup.rm.seed << "\n"
            << "# preprocess: " << util::with_commas(prep.kept_metacells)
            << " of " << util::with_commas(prep.total_metacells)
            << " metacells kept ("
            << util::fixed(100.0 * prep.culled_fraction(), 1)
            << "% culled), bricks "
            << util::human_bytes(prep.bytes_written) << " vs raw "
            << util::human_bytes(prep.raw_bytes) << ", index "
            << util::human_bytes(prep.index_bytes()) << " in-core, "
            << nodes << " node(s), " << util::human_seconds(prep.elapsed_seconds)
            << "\n";

  return Prepared{std::move(storage), std::move(cluster), std::move(prep),
                  generation_seconds};
}

std::vector<pipeline::QueryReport> run_sweep(Prepared& prepared,
                                             const BenchSetup& setup,
                                             bool render) {
  pipeline::QueryEngine engine(*prepared.cluster, prepared.prep);
  pipeline::QueryOptions options;
  options.render = render;
  options.image_width = setup.image_size;
  options.image_height = setup.image_size;
  options.inject_faults = setup.inject_faults;

  std::vector<pipeline::QueryReport> reports;
  reports.reserve(setup.isovalues.size());
  for (const float isovalue : setup.isovalues) {
    // Repeat and keep the fastest run: completion time mixes modeled I/O
    // (deterministic) with measured thread-CPU phases (noisy on a shared
    // host); min-of-N is the standard de-noising for the measured part.
    pipeline::QueryReport best = engine.run(isovalue, options);
    for (int rep = 1; rep < setup.reps; ++rep) {
      pipeline::QueryReport candidate = engine.run(isovalue, options);
      if (candidate.completion_seconds() < best.completion_seconds()) {
        best = std::move(candidate);
      }
    }
    reports.push_back(std::move(best));
  }
  if (setup.inject_faults.has_value()) {
    index::RetrievalFaults faults;
    std::uint32_t failovers = 0;
    bool degraded = false;
    for (const auto& report : reports) {
      faults.merge(report.total_retrieval_faults());
      failovers += report.total_failovers();
      degraded = degraded || report.degraded;
    }
    std::cout << "# faults (seed " << setup.inject_faults->seed << ", rate "
              << setup.inject_faults->read_failure_rate << "): "
              << faults.transient_errors << " transient, "
              << faults.checksum_failures << " checksum, " << faults.retries
              << " retries (+" << util::human_seconds(
                     faults.backoff_modeled_seconds)
              << " modeled backoff), " << failovers << " failovers"
              << (degraded ? " — DEGRADED sweep" : "") << "\n";
  }
  return reports;
}

std::string mtri(std::uint64_t triangles) {
  return util::fixed(static_cast<double>(triangles) / 1e6, 2) + "M";
}

bool shape_check(const std::string& claim, bool pass) {
  std::cout << "paper-shape check [" << (pass ? "PASS" : "FAIL") << "] "
            << claim << "\n";
  return pass;
}

void print_nodes_table(const std::string& caption, const BenchSetup& setup,
                       Prepared& prepared,
                       const std::vector<pipeline::QueryReport>& reports) {
  util::Table table({"isovalue", "active MC", "triangles", "AMC I/O (s)",
                     "triangulate (s)", "overlap (s)", "render (s)",
                     "total (s)", "MTri/s"});
  table.set_caption(caption);

  for (const auto& report : reports) {
    const auto& times = report.times;
    // What the per-node retrieval/triangulation pipeline hid relative to
    // running the two phases with a barrier between them (0 when serial).
    const double overlap_hidden =
        times.max_phase(parallel::Phase::kAmcRetrieval) +
        times.max_phase(parallel::Phase::kTriangulation) -
        times.extraction_completion_seconds();
    table.add_row({
        util::fixed(report.isovalue, 0),
        util::with_commas(report.total_active_metacells()),
        mtri(report.total_triangles()),
        util::fixed(times.max_phase(parallel::Phase::kAmcRetrieval), 3),
        util::fixed(times.max_phase(parallel::Phase::kTriangulation), 3),
        util::fixed(overlap_hidden, 3),
        util::fixed(times.max_phase(parallel::Phase::kRendering) +
                        times.max_phase(parallel::Phase::kCompositing),
                    3),
        util::fixed(report.completion_seconds(), 3),
        util::fixed(report.mtri_per_second(), 2),
    });
  }
  std::cout << table.render() << "\n";

  // Claims shared by Tables 2-5. The paper reports a linear relationship
  // between AMC retrieval time and the data retrieved (a steady ~50 MB/s):
  // at full scale transfer dwarfs seeks. At bench scale the per-brick seek
  // term is visible, so the check targets the underlying property — bulk
  // movement: essentially every byte read is an active metacell's payload.
  bool bulk_movement = true;
  bool triangulation_dominates = true;
  std::uint64_t checked = 0;
  for (const auto& report : reports) {
    if (report.total_active_metacells() < 50) continue;  // too small to judge
    ++checked;
    std::uint64_t fetched = 0;
    std::uint64_t active = 0;
    for (const auto& node : report.nodes) {
      fetched += node.records_fetched;
      active += node.active_metacells;
    }
    if (fetched > active + (active + 4) / 5) bulk_movement = false;
    if (report.times.max_phase(parallel::Phase::kTriangulation) <
        report.times.max_phase(parallel::Phase::kRendering)) {
      triangulation_dominates = false;
    }
  }
  if (checked > 0) {
    shape_check("I/O is bulk movement of active metacells "
                "(fetch overshoot < 20% at every isovalue)",
                bulk_movement);
    shape_check("triangulation, not rendering, is the per-node bottleneck",
                triangulation_dominates);
  }
}

}  // namespace oociso::bench
