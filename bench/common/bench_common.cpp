#include "bench_common.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "metacell/source.h"
#include "util/stats.h"
#include "util/timer.h"

namespace oociso::bench {

BenchSetup BenchSetup::from_cli(int argc, char** argv, int default_dims) {
  const util::CliArgs args(argc, argv);
  BenchSetup setup;
  setup.scale = static_cast<std::int32_t>(args.get_int("scale", 1));
  if (setup.scale < 1) throw std::invalid_argument("--scale must be >= 1");

  const auto base = static_cast<std::int32_t>(args.get_int("dims", default_dims));
  setup.rm.dims = {std::max(base / setup.scale, 16),
                   std::max(base / setup.scale, 16),
                   std::max(base * 15 / 16 / setup.scale, 16)};
  setup.rm.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  setup.time_step = static_cast<int>(args.get_int("step", 250));
  setup.image_size = static_cast<std::int32_t>(args.get_int("image", 512));
  setup.file_backed = !args.get_bool("memory", false);
  setup.reps = static_cast<int>(args.get_int("reps", 3));
  if (setup.reps < 1) throw std::invalid_argument("--reps must be >= 1");
  const std::string fault_spec = args.get("inject-faults", "");
  if (!fault_spec.empty()) {
    setup.inject_faults = io::FaultConfig::parse(fault_spec);
  }
  setup.json_path = args.get("json", "");
  setup.readahead_batches = static_cast<std::size_t>(
      args.get_int_in("readahead", 4, 0, 1 << 20));
  setup.queue_depth = static_cast<std::size_t>(
      args.get_int_in("queue-depth", 0, 0, 1024));
  setup.coalesce = !args.get_bool("no-coalesce", false);
  setup.coalesce_gap = args.get_int("coalesce-gap", -1);
  setup.replication =
      static_cast<std::size_t>(args.get_int_in("replication", 1, 1, 64));
  setup.compression = codec::parse_codec(args.get("compression", "none"));
  setup.kernel.isa = extract::kernel::parse_isa(args.get("kernel", "auto"));
  if (!extract::kernel::available(setup.kernel.isa)) {
    throw std::invalid_argument(
        "--kernel " + std::string(extract::kernel::isa_name(setup.kernel.isa)) +
        " is not supported by this CPU (use --kernel auto)");
  }
  setup.mesh_crc = args.get_bool("mesh-crc", false);
  setup.levels = static_cast<std::int32_t>(args.get_int_in("levels", 1, 1, 16));
  setup.trace_path = args.get("trace", "");
  if (!setup.trace_path.empty()) {
    // The deleter fires when the last BenchSetup copy dies at the end of
    // the bench's main, after every sweep — the one common teardown point.
    const std::string path = setup.trace_path;
    setup.tracer = std::shared_ptr<obs::Tracer>(
        new obs::Tracer(), [path](obs::Tracer* tracer) {
          try {
            tracer->write(path);
            std::cout << "# trace: " << tracer->event_count() << " events -> "
                      << path << "\n";
          } catch (const std::exception& error) {
            std::cerr << "trace write failed: " << error.what() << "\n";
          }
          delete tracer;
        });
  }
  for (int isovalue = 10; isovalue <= 210; isovalue += 20) {
    setup.isovalues.push_back(static_cast<float>(isovalue));
  }
  return setup;
}

pipeline::QueryOptions BenchSetup::query_options() const {
  pipeline::QueryOptions options;
  options.image_width = image_size;
  options.image_height = image_size;
  options.inject_faults = inject_faults;
  options.readahead_batches = readahead_batches;
  options.retrieval.queue_depth = queue_depth;
  options.retrieval.coalesce = coalesce;
  options.retrieval.coalesce_gap_bytes = coalesce_gap;
  options.kernel = kernel;
  options.compute_mesh_crc = mesh_crc;
  options.tracer = tracer.get();
  return options;
}

std::uint32_t BenchSetup::next_trace_query(const std::string& label) const {
  if (tracer == nullptr) return 0;
  // Process-wide, not per-setup: benches sweeping several node counts share
  // one tracer, and every executed query needs a distinct pid.
  static std::atomic<std::uint32_t> next_pid{1};
  const std::uint32_t pid = next_pid.fetch_add(1, std::memory_order_relaxed);
  tracer->name_process(pid, label);
  return pid;
}

Prepared prepare_rm(const BenchSetup& setup, std::size_t nodes) {
  util::WallTimer generation_timer;
  const core::VolumeU8 volume =
      data::generate_rm_timestep(setup.rm, setup.time_step);
  const double generation_seconds = generation_timer.seconds();

  parallel::ClusterConfig cluster_config;
  cluster_config.node_count = nodes;
  std::unique_ptr<util::TempDir> storage;
  if (setup.file_backed) {
    storage = std::make_unique<util::TempDir>("oociso-bench");
    cluster_config.storage_dir = storage->path();
  } else {
    cluster_config.in_memory = true;
  }
  auto cluster = std::make_unique<parallel::Cluster>(cluster_config);

  const auto source = metacell::make_source(volume, /*samples_per_side=*/9);
  pipeline::PreprocessConfig prep_config;
  prep_config.placement.replication = setup.replication;
  prep_config.compression = setup.compression;
  prep_config.levels = setup.levels;
  pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, *cluster, prep_config);

  std::cout << "# dataset: RM-analog " << setup.rm.dims << " u8, step "
            << setup.time_step << ", seed " << setup.rm.seed << "\n"
            << "# preprocess: " << util::with_commas(prep.kept_metacells)
            << " of " << util::with_commas(prep.total_metacells)
            << " metacells kept ("
            << util::fixed(100.0 * prep.culled_fraction(), 1)
            << "% culled), bricks "
            << util::human_bytes(prep.bytes_written) << " vs raw "
            << util::human_bytes(prep.raw_bytes) << ", index "
            << util::human_bytes(prep.index_bytes()) << " in-core, "
            << nodes << " node(s), " << util::human_seconds(prep.elapsed_seconds)
            << "\n";
  if (prep.replica_bytes_written > 0) {
    std::cout << "# replication: " << setup.replication << "-way, +"
              << util::human_bytes(prep.replica_bytes_written)
              << " replica bytes\n";
  }
  if (prep.hierarchy_levels() > 0) {
    std::cout << "# hierarchy: " << prep.hierarchy_levels()
              << " coarse level(s), "
              << util::with_commas(prep.hierarchy_nodes_written)
              << " coarse nodes, +"
              << util::human_bytes(prep.hierarchy_bytes_written) << "\n";
  }
  if (setup.compression != codec::Codec::kRaw) {
    const double ratio =
        prep.compressed_bytes_written > 0
            ? static_cast<double>(prep.bytes_written) /
                  static_cast<double>(prep.compressed_bytes_written)
            : 1.0;
    std::cout << "# compression: " << codec::codec_name(setup.compression)
              << ", " << util::human_bytes(prep.compressed_bytes_written)
              << " encoded of " << util::human_bytes(prep.bytes_written)
              << " raw (" << util::fixed(ratio, 2) << "x)\n";
  }

  return Prepared{std::move(storage), std::move(cluster), std::move(prep),
                  generation_seconds};
}

std::vector<pipeline::QueryReport> run_sweep(Prepared& prepared,
                                             const BenchSetup& setup,
                                             bool render) {
  pipeline::QueryEngine engine(*prepared.cluster, prepared.prep);
  pipeline::QueryOptions options = setup.query_options();
  options.render = render;

  std::vector<pipeline::QueryReport> reports;
  reports.reserve(setup.isovalues.size());
  const std::size_t nodes = prepared.cluster->size();
  const auto run_once = [&](float isovalue, int rep) {
    // Every executed run gets its own trace pid (reps included — a rep is
    // a real query execution, and its spans would collide otherwise).
    options.query_id = setup.next_trace_query(
        "iso=" + util::fixed(isovalue, 0) + " rep=" + std::to_string(rep) +
        " (" + std::to_string(nodes) + " nodes)");
    return engine.run(isovalue, options);
  };
  for (const float isovalue : setup.isovalues) {
    // Repeat and keep the fastest run: completion time mixes modeled I/O
    // (deterministic) with measured thread-CPU phases (noisy on a shared
    // host); min-of-N is the standard de-noising for the measured part.
    pipeline::QueryReport best = run_once(isovalue, 0);
    for (int rep = 1; rep < setup.reps; ++rep) {
      pipeline::QueryReport candidate = run_once(isovalue, rep);
      if (candidate.completion_seconds() < best.completion_seconds()) {
        best = std::move(candidate);
      }
    }
    reports.push_back(std::move(best));
  }
  if (setup.inject_faults.has_value()) {
    index::RetrievalFaults faults;
    std::uint32_t failovers = 0;
    bool degraded = false;
    for (const auto& report : reports) {
      faults.merge(report.total_retrieval_faults());
      failovers += report.total_failovers();
      degraded = degraded || report.degraded;
    }
    std::cout << "# faults (seed " << setup.inject_faults->seed << ", rate "
              << setup.inject_faults->read_failure_rate << "): "
              << faults.transient_errors << " transient, "
              << faults.checksum_failures << " checksum, " << faults.retries
              << " retries (+" << util::human_seconds(
                     faults.backoff_modeled_seconds)
              << " modeled backoff), " << failovers << " failovers, "
              << faults.hedged_reads << " hedges"
              << (degraded ? " — DEGRADED sweep" : "") << "\n";
  }
  return reports;
}

std::string mtri(std::uint64_t triangles) {
  return util::fixed(static_cast<double>(triangles) / 1e6, 2) + "M";
}

bool shape_check(const std::string& claim, bool pass) {
  std::cout << "paper-shape check [" << (pass ? "PASS" : "FAIL") << "] "
            << claim << "\n";
  return pass;
}

void print_nodes_table(const std::string& caption, const BenchSetup& /*setup*/,
                       Prepared& /*prepared*/,
                       const std::vector<pipeline::QueryReport>& reports) {
  util::Table table({"isovalue", "active MC", "triangles", "AMC I/O (s)",
                     "triangulate (s)", "overlap (s)", "render (s)",
                     "total (s)", "MTri/s"});
  table.set_caption(caption);

  for (const auto& report : reports) {
    const auto& times = report.times;
    // What the per-node retrieval/triangulation pipeline hid relative to
    // running the two phases with a barrier between them (0 when serial).
    const double overlap_hidden =
        times.max_phase(parallel::Phase::kAmcRetrieval) +
        times.max_phase(parallel::Phase::kTriangulation) -
        times.extraction_completion_seconds();
    table.add_row({
        util::fixed(report.isovalue, 0),
        util::with_commas(report.total_active_metacells()),
        mtri(report.total_triangles()),
        util::fixed(times.max_phase(parallel::Phase::kAmcRetrieval), 3),
        util::fixed(times.max_phase(parallel::Phase::kTriangulation), 3),
        util::fixed(overlap_hidden, 3),
        util::fixed(times.max_phase(parallel::Phase::kRendering) +
                        times.max_phase(parallel::Phase::kCompositing),
                    3),
        util::fixed(report.completion_seconds(), 3),
        util::fixed(report.mtri_per_second(), 2),
    });
  }
  std::cout << table.render() << "\n";

  // Claims shared by Tables 2-5. The paper reports a linear relationship
  // between AMC retrieval time and the data retrieved (a steady ~50 MB/s):
  // at full scale transfer dwarfs seeks. At bench scale the per-brick seek
  // term is visible, so the check targets the underlying property — bulk
  // movement: essentially every byte read is an active metacell's payload.
  bool bulk_movement = true;
  std::uint64_t triangulation_dominant = 0;
  std::uint64_t checked = 0;
  for (const auto& report : reports) {
    if (report.total_active_metacells() < 50) continue;  // too small to judge
    ++checked;
    std::uint64_t fetched = 0;
    std::uint64_t active = 0;
    for (const auto& node : report.nodes) {
      fetched += node.records_fetched;
      active += node.active_metacells;
    }
    if (fetched > active + (active + 4) / 5) bulk_movement = false;
    if (report.times.max_phase(parallel::Phase::kTriangulation) >
        report.times.max_phase(parallel::Phase::kRendering)) {
      ++triangulation_dominant;
    }
  }
  if (checked > 0) {
    shape_check("I/O is bulk movement of active metacells "
                "(fetch overshoot < 20% at every isovalue)",
                bulk_movement);
    // The paper's per-cell kernel made triangulation the per-node
    // bottleneck; the incremental kernel (DESIGN 9.2) roughly halves the
    // phase, so at bench scale the software rasterizer now leads. This
    // check is the kernel's perf canary: a regression that drags
    // triangulation back over rendering flips it.
    shape_check("incremental kernel keeps triangulation under the software "
                "rasterizer (paper's per-cell kernel dominated; DESIGN 9.2)",
                2 * triangulation_dominant < checked);
  }
}

// ---- JSON -----------------------------------------------------------------

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  append_string(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

void JsonWriter::comma() {
  if (pending_key_) {
    // The value completing `"key":` — no separator, and the container's
    // has-items flag was already set by the key itself.
    pending_key_ = false;
    return;
  }
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  append_string(v);
  return *this;
}

void JsonWriter::append_string(std::string_view v) {
  out_ += '"';
  for (const char c : v) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out_ += buffer;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::save(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file << out_ << '\n';
  if (!file) {
    throw std::runtime_error("failed to write JSON to " + path);
  }
}

namespace {

void append_io_json(JsonWriter& json, const io::IoStats& io) {
  json.begin_object()
      .member("read_ops", io.read_ops)
      .member("blocks_read", io.blocks_read)
      .member("bytes_read", io.bytes_read)
      .member("seeks", io.seeks)
      .member("skip_blocks", io.skip_blocks)
      .end_object();
}

}  // namespace

void append_report_json(JsonWriter& json, const pipeline::QueryReport& report) {
  const parallel::ClusterTimes& times = report.times;
  io::IoStats io_total;
  double io_wall = 0.0;
  double io_model = 0.0;
  double overlap_saved = 0.0;
  double turnaround = 0.0;
  for (const pipeline::NodeReport& node : report.nodes) {
    io_total += node.io;
    io_wall += node.io_wall_seconds;
    io_model += node.io_model_seconds;
    overlap_saved += node.overlap_saved_seconds;
    turnaround += node.turnaround_modeled_seconds;
  }
  const double decode_cpu = report.total_decode_cpu_seconds();

  const index::RetrievalFaults faults_total = report.total_retrieval_faults();
  json.begin_object()
      .member("isovalue", static_cast<double>(report.isovalue))
      .member("active_metacells", report.total_active_metacells())
      .member("triangles", report.total_triangles())
      .member("degraded", report.degraded)
      .member("failovers", static_cast<std::uint64_t>(report.total_failovers()))
      .member("hedges",
              static_cast<std::uint64_t>(faults_total.hedged_reads))
      .member("rerouted_reads",
              static_cast<std::uint64_t>(faults_total.rerouted_reads))
      .member("mtri_per_second", report.mtri_per_second())
      .member("kernel_isa", extract::kernel::isa_name(report.kernel_isa))
      .member("cells_classified", report.total_cells_classified())
      .member("active_cells", report.total_active_cells())
      .member("vertex_cache_hits", report.total_vertex_cache_hits())
      .member("classify_seconds", report.total_classify_seconds())
      .member("classified_cells_per_s", report.classified_cells_per_second());
  if (report.mesh_crc.has_value()) {
    json.member("mesh_crc", static_cast<std::uint64_t>(*report.mesh_crc));
  }
  json.key("io");
  append_io_json(json, io_total);
  // Shared-pool accounting; all zeros for uncached queries, kept in the
  // schema unconditionally so consumers can diff warm vs cold runs.
  const io::CacheReadStats cache_total = report.total_cache();
  json.key("cache").begin_object()
      .member("hit_blocks", cache_total.hit_blocks)
      .member("miss_blocks", cache_total.miss_blocks)
      .member("wait_blocks", cache_total.wait_blocks)
      .member("evictions", cache_total.evictions)
      .end_object();
  json.key("times").begin_object()
      .member("amc_retrieval_s",
              times.max_phase(parallel::Phase::kAmcRetrieval))
      .member("triangulation_s",
              times.max_phase(parallel::Phase::kTriangulation))
      .member("rendering_s", times.max_phase(parallel::Phase::kRendering))
      .member("compositing_s", times.max_phase(parallel::Phase::kCompositing))
      .member("extraction_completion_s", times.extraction_completion_seconds())
      .member("completion_s", report.completion_seconds())
      .member("io_model_sum_s", io_model)
      .member("io_wall_sum_s", io_wall)
      .member("overlap_saved_sum_s", overlap_saved)
      .member("turnaround_modeled_sum_s", turnaround)
      .member("decode_cpu_seconds", decode_cpu)
      .end_object();
  json.key("per_node").begin_array();
  for (std::size_t index = 0; index < report.nodes.size(); ++index) {
    const pipeline::NodeReport& node = report.nodes[index];
    json.begin_object()
        .member("active_metacells", node.active_metacells)
        .member("records_fetched", node.records_fetched)
        .member("triangles", node.triangles)
        .member("failovers", static_cast<std::uint64_t>(node.faults.failovers))
        .member("hedges", node.faults.retrieval.hedged_reads)
        .member("rerouted_reads", node.faults.retrieval.rerouted_reads)
        .member("io_model_s", node.io_model_seconds)
        .member("io_wall_s", node.io_wall_seconds)
        .member("triangulation_s", node.triangulation_seconds)
        .member("rendering_s", node.rendering_seconds)
        .member("overlap_saved_s", node.overlap_saved_seconds)
        .member("turnaround_modeled_s", node.turnaround_modeled_seconds)
        .member("decode_cpu_s", node.decode_cpu_seconds);
    json.key("io");
    append_io_json(json, node.io);
    // Replica routing: which holder served each of this stripe's reads
    // (empty array when the query ran unrouted), and the device I/O this
    // node served across every stripe (== "io" when unrouted).
    json.key("routed").begin_array();
    for (const index::RouteCounters& route : node.routed) {
      json.begin_object()
          .member("reads", route.reads)
          .member("bytes", route.bytes)
          .member("failures", route.failures)
          .end_object();
    }
    json.end_array();
    json.key("served_io");
    append_io_json(json, report.served_io(index));
    json.key("cache").begin_object()
        .member("hit_blocks", node.cache.hit_blocks)
        .member("miss_blocks", node.cache.miss_blocks)
        .member("wait_blocks", node.cache.wait_blocks)
        .member("evictions", node.cache.evictions)
        .end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void write_bench_json(const std::string& path, std::string_view bench,
                      const BenchSetup& setup, std::span<const JsonRun> runs) {
  if (path.empty()) return;
  JsonWriter json;
  json.begin_object()
      .member("bench", bench)
      .member("schema_version", std::uint64_t{1});
  json.key("setup").begin_object()
      .member("dims_x", static_cast<std::int64_t>(setup.rm.dims.nx))
      .member("dims_y", static_cast<std::int64_t>(setup.rm.dims.ny))
      .member("dims_z", static_cast<std::int64_t>(setup.rm.dims.nz))
      .member("time_step", static_cast<std::int64_t>(setup.time_step))
      .member("seed", std::uint64_t{setup.rm.seed})
      .member("image_size", static_cast<std::int64_t>(setup.image_size))
      .member("file_backed", setup.file_backed)
      .member("reps", static_cast<std::int64_t>(setup.reps))
      .member("readahead_batches",
              static_cast<std::uint64_t>(setup.readahead_batches))
      .member("queue_depth", static_cast<std::uint64_t>(setup.queue_depth))
      .member("coalesce", setup.coalesce)
      .member("coalesce_gap_bytes", setup.coalesce_gap)
      .member("replication", static_cast<std::uint64_t>(setup.replication))
      .member("compression", codec::codec_name(setup.compression))
      .member("kernel_isa", extract::kernel::isa_name(setup.kernel.isa))
      .member("mesh_crc", setup.mesh_crc)
      .member("levels", static_cast<std::int64_t>(setup.levels))
      .member("inject_faults", setup.inject_faults.has_value())
      .end_object();
  json.key("runs").begin_array();
  for (const JsonRun& run : runs) {
    const pipeline::PreprocessResult& prep = run.prepared.prep;
    json.begin_object()
        .member("nodes", static_cast<std::uint64_t>(run.nodes))
        .member("kept_metacells", prep.kept_metacells)
        .member("total_metacells", prep.total_metacells)
        .member("brick_bytes", prep.bytes_written)
        .member("compressed_bytes", prep.compressed_bytes_written)
        .member("raw_bytes", prep.raw_bytes)
        .member("index_bytes", static_cast<std::uint64_t>(prep.index_bytes()))
        .member("replica_bytes", prep.replica_bytes_written)
        .member("preprocess_s", prep.elapsed_seconds);
    json.key("queries").begin_array();
    for (const pipeline::QueryReport& report : run.reports) {
      append_report_json(json, report);
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.save(path);
  std::cout << "# wrote " << path << "\n";
}

}  // namespace oociso::bench
