// Figure 6 reproduction: speedup relative to the single-node algorithm for
// 2, 4, and 8 processors across the isovalue sweep.
//
// Paper's results: 4-node speedups of 3.54-3.97 and 8-node speedups of
// 6.91-7.83, essentially independent of the isovalue — the consequence of
// the provable per-isovalue load balance of brick striping.

#include <algorithm>
#include <iostream>

#include "common/bench_common.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const bench::BenchSetup setup =
      bench::BenchSetup::from_cli(argc, argv, /*default_dims=*/384);
  const std::size_t node_counts[] = {1, 2, 4, 8};

  std::cout << "== Figure 6: speedups vs isovalue for p = 2, 4, 8 ==\n";

  std::vector<std::vector<double>> completion;
  // With --json the per-p runs must outlive the loop for write_bench_json.
  std::vector<bench::Prepared> kept;
  std::vector<std::vector<pipeline::QueryReport>> kept_reports;
  for (const std::size_t p : node_counts) {
    bench::Prepared prepared = bench::prepare_rm(setup, p);
    auto reports = bench::run_sweep(prepared, setup);
    std::vector<double> row;
    for (const auto& report : reports) {
      row.push_back(report.completion_seconds());
    }
    completion.push_back(std::move(row));
    if (!setup.json_path.empty()) {
      kept.push_back(std::move(prepared));
      kept_reports.push_back(std::move(reports));
    }
  }
  if (!setup.json_path.empty()) {
    std::vector<bench::JsonRun> runs;
    for (std::size_t i = 0; i < kept.size(); ++i) {
      runs.push_back({node_counts[i], kept[i], kept_reports[i]});
    }
    bench::write_bench_json(setup.json_path, "fig6_speedups", setup, runs);
  }

  util::Table table({"isovalue", "speedup p=2", "speedup p=4", "speedup p=8"});
  table.set_caption("Figure 6 (speedup = T1 / Tp)");
  std::vector<double> speedup4;
  std::vector<double> speedup8;
  for (std::size_t i = 0; i < setup.isovalues.size(); ++i) {
    const double t1 = completion[0][i];
    auto speedup = [t1](double tp) { return tp > 0.0 ? t1 / tp : 0.0; };
    if (t1 >= 0.01) {  // skip nearly-empty isovalues in the aggregates
      speedup4.push_back(speedup(completion[2][i]));
      speedup8.push_back(speedup(completion[3][i]));
    }
    table.add_row({util::fixed(setup.isovalues[i], 0),
                   util::fixed(speedup(completion[1][i]), 2),
                   util::fixed(speedup(completion[2][i]), 2),
                   util::fixed(speedup(completion[3][i]), 2)});
  }
  std::cout << table.render() << "\ncsv:\n" << table.render_csv() << "\n";

  auto range = [](const std::vector<double>& v) {
    const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    return std::pair{*lo, *hi};
  };
  const auto [lo4, hi4] = range(speedup4);
  const auto [lo8, hi8] = range(speedup8);
  std::cout << "4-node speedups: " << util::fixed(lo4, 2) << " .. "
            << util::fixed(hi4, 2) << " (paper: 3.54 .. 3.97)\n"
            << "8-node speedups: " << util::fixed(lo8, 2) << " .. "
            << util::fixed(hi8, 2) << " (paper: 6.91 .. 7.83)\n";

  // Thresholds tolerate measured-CPU noise on shared hosts; the exact
  // per-isovalue balance behind these speedups is asserted tightly by
  // Tables 6-7 and the Striping unit tests. Under pipelined extraction the
  // speedup is a ratio of overlap windows, max(io, cpu) + fill. The
  // max(io, cpu) part scales like the phases themselves (~1/p), but the
  // per-node constants — the O(log n) index-walk seeks and the pipeline
  // fill (first-batch read, which nothing can hide) — do not parallelize,
  // and the window metric weighs them against max(io, cpu)/p instead of
  // the barrier metric's (io + cpu)/p, roughly doubling their relative
  // bite on the lightest isovalue. Measured on a quiet host at --dims 384
  // that puts the minimum (isovalue 10, ~1/3 the peak triangle count) at
  // ~3.0 / ~5.0 with every heavier isovalue at 3.2-3.9 / 5.8-6.6; the
  // floors sit ~10% under the minima, the same noise margin the barrier-
  // metric floors carried. At the paper's 171x data volume the constant
  // terms vanish and the paper's 3.54 / 6.91 lows reappear.
  bench::shape_check("4-node speedup is near-linear (>= 2.7) at every "
                     "meaningful isovalue",
                     lo4 >= 2.7);
  bench::shape_check("8-node speedup is near-linear (>= 4.5) at every "
                     "meaningful isovalue",
                     lo8 >= 4.5);
  bench::shape_check("speedup is isovalue-independent (spread < 30% of max)",
                     (hi4 - lo4) / hi4 < 0.3 && (hi8 - lo8) / hi8 < 0.3);
  return 0;
}
