// Table 1 reproduction: size of the compact interval tree versus the
// standard interval tree on the paper's datasets (Stanford volume archive
// analogs, pressure/velocity fields, and the RM time step).
//
// Paper's claim: the compact structure is substantially smaller than the
// standard interval tree, even where N ~ n (Pressure/Velocity), and for
// byte-quantized data it fits trivially in core (the RM index is a few KB
// for a full time step).
//
// Flags: --downscale N (default 4) shrinks each dataset dimension to keep
// the bench quick; the ratio between the structures is scale-stable.

#include <iostream>
#include <set>
#include <sstream>

#include "common/bench_common.h"
#include "data/datasets.h"
#include "index/compact_interval_tree.h"
#include "index/interval_tree.h"
#include "io/memory_block_device.h"
#include "metacell/source.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const util::CliArgs args(argc, argv);
  const auto downscale =
      static_cast<std::int32_t>(args.get_int("downscale", 4));
  const std::string json_path = args.get("json", "");

  std::cout << "== Table 1: index structure sizes, compact vs standard "
               "interval tree ==\n";
  bench::JsonWriter json;
  json.begin_object()
      .member("bench", "table1_index_sizes")
      .member("schema_version", std::uint64_t{1})
      .member("downscale", static_cast<std::int64_t>(downscale));
  json.key("datasets").begin_array();
  util::Table table({"dataset", "dims", "type", "metacells N", "endpoints n",
                     "compact entries", "compact size", "standard entries",
                     "standard size", "ratio"});

  bool all_smaller = true;
  bool rm_index_tiny = false;
  for (const data::DatasetInfo& info : data::table1_datasets()) {
    const data::AnyVolume volume = data::make_dataset(info.name, downscale);
    const auto source = metacell::make_source(volume, /*samples_per_side=*/9);
    const auto infos = source->scan();

    std::set<core::ValueKey> endpoints;
    for (const auto& metacell : infos) {
      endpoints.insert(metacell.interval.vmin);
      endpoints.insert(metacell.interval.vmax);
    }

    io::MemoryBlockDevice device(4096);
    io::BlockDevice* device_ptr = &device;
    const auto built =
        index::CompactTreeBuilder::build(infos, *source, {&device_ptr, 1});
    const index::CompactIntervalTree& compact = built.trees[0];
    const index::IntervalTree standard(infos);

    const double ratio =
        compact.size_bytes() > 0
            ? static_cast<double>(standard.size_bytes()) /
                  static_cast<double>(compact.size_bytes())
            : 0.0;
    all_smaller = all_smaller && compact.size_bytes() < standard.size_bytes();
    if (info.name == "rm") rm_index_tiny = compact.size_bytes() < 64 * 1024;

    std::ostringstream dims;
    dims << data::dims_of(volume);
    table.add_row({info.name, dims.str(),
                   core::scalar_name(info.kind),
                   util::with_commas(infos.size()),
                   util::with_commas(endpoints.size()),
                   util::with_commas(compact.entry_count()),
                   util::human_bytes(compact.size_bytes()),
                   util::with_commas(standard.entry_count()),
                   util::human_bytes(standard.size_bytes()),
                   util::fixed(ratio, 1) + "x"});
    json.begin_object()
        .member("name", std::string_view(info.name))
        .member("dims", dims.str())
        .member("kind", std::string_view(core::scalar_name(info.kind)))
        .member("metacells", std::uint64_t{infos.size()})
        .member("endpoints", std::uint64_t{endpoints.size()})
        .member("compact_entries", std::uint64_t{compact.entry_count()})
        .member("compact_bytes", std::uint64_t{compact.size_bytes()})
        .member("standard_entries", std::uint64_t{standard.entry_count()})
        .member("standard_bytes", std::uint64_t{standard.size_bytes()})
        .member("ratio", ratio)
        .end_object();
  }
  std::cout << table.render() << "\n";
  json.end_array().end_object();
  if (!json_path.empty()) {
    json.save(json_path);
    std::cout << "# wrote " << json_path << "\n";
  }

  using bench_check = bool;
  auto shape_check = [](const std::string& claim, bench_check pass) {
    std::cout << "paper-shape check [" << (pass ? "PASS" : "FAIL") << "] "
              << claim << "\n";
  };
  shape_check("compact interval tree is smaller than the standard interval "
              "tree on every dataset",
              all_smaller);
  shape_check("RM time-step index is a few KB and trivially fits in core",
              rm_index_tiny);
  return 0;
}
