// Extension bench: the compact-interval-tree pipeline on UNSTRUCTURED
// grids (paper Section 4: "Our algorithm can handle both structured and
// unstructured grids"). The paper's evaluation is structured-only; this
// bench demonstrates the same qualitative behavior on a tet mesh:
// output-proportional I/O, per-isovalue load balance, and culling.

#include <iostream>

#include "common/bench_common.h"
#include "unstructured/pipeline.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const util::CliArgs args(argc, argv);
  const auto cells = static_cast<std::int32_t>(args.get_int("cells", 32));

  std::cout << "== Extension: unstructured (tet) pipeline ==\n";
  unstructured::TetGridConfig config;
  config.cells = cells;
  const unstructured::TetMesh mesh =
      make_tet_mesh(config, unstructured::TetField::kMixing);
  std::cout << "# mesh: " << util::with_commas(mesh.tet_count())
            << " jittered tets over the unit cube, RM-like mixing field\n";

  parallel::ClusterConfig cluster_config;
  cluster_config.node_count = 4;
  cluster_config.in_memory = true;
  parallel::Cluster cluster(cluster_config);
  const unstructured::TetPreprocessResult prep =
      unstructured::preprocess_tets(mesh, cluster);
  std::cout << "# preprocess: " << util::with_commas(prep.kept_clusters)
            << " of " << util::with_commas(prep.total_clusters)
            << " clusters kept ("
            << util::fixed(100.0 * prep.culled_fraction(), 1)
            << "% culled), " << util::human_bytes(prep.bytes_written)
            << " on 4 disks\n";

  util::Table table({"isovalue", "active clusters", "triangles",
                     "imbalance %", "I/O (s)", "CPU (s)", "total (s)"});
  table.set_caption("unstructured isovalue sweep (4 nodes)");

  double worst_imbalance = 0.0;
  std::uint64_t min_triangles = ~0ull;
  std::uint64_t max_triangles = 0;
  for (int isovalue = 20; isovalue <= 220; isovalue += 25) {
    const unstructured::TetQueryReport report = unstructured::query_tets(
        cluster, prep, static_cast<float>(isovalue));
    std::vector<std::uint64_t> per_node;
    for (const auto& node : report.nodes) {
      per_node.push_back(node.active_clusters);
    }
    const double imbalance = util::imbalance(per_node);
    if (report.total_active_clusters() >= 100) {
      worst_imbalance = std::max(worst_imbalance, imbalance);
      min_triangles = std::min(min_triangles, report.total_triangles());
      max_triangles = std::max(max_triangles, report.total_triangles());
    }
    table.add_row(
        {std::to_string(isovalue),
         util::with_commas(report.total_active_clusters()),
         util::with_commas(report.total_triangles()),
         util::fixed(100.0 * imbalance, 2),
         util::fixed(report.times.max_phase(parallel::Phase::kAmcRetrieval), 3),
         util::fixed(report.times.max_phase(parallel::Phase::kTriangulation),
                     3),
         util::fixed(report.completion_seconds(), 3)});
  }
  std::cout << table.render() << "\n";

  bench::shape_check(
      "tet clusters balance across nodes for every isovalue (worst " +
          util::fixed(100.0 * worst_imbalance, 2) + "%)",
      worst_imbalance < 0.05);
  bench::shape_check("homogeneous tet clusters are culled like metacells",
                     prep.culled_fraction() > 0.2);
  // (The tet mixing field is milder than the structured RM analog: the
  // mesh is coarse and the layer fixed-width, so expect moderate variation.)
  bench::shape_check("triangle counts respond to the isovalue (>25% spread)",
                     min_triangles > 0 &&
                         4 * max_triangles > 5 * min_triangles);
  return 0;
}
