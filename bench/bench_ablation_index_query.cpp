// Ablation A1: isovalue-query I/O cost of the compact interval tree versus
// the baseline indexing schemes, on identical metacell data and the same
// disk cost model.
//
//   compact   — the paper's structure: index in core, one bulk pass over
//               vmax/vmin-sorted bricks (Sections 4-5).
//   bbio      — external interval tree (Chiang/Silva-style): pays block I/O
//               to walk its own Omega(N) on-disk lists, then scattered
//               reads from an id-ordered metacell store.
//   lattice   — ISSUE span-space lattice held in core, reading the same
//               id-ordered store (in-core index, scattered data).
//   linear    — no index: scan every record and test it.
//
// The paper's claim: same asymptotic I/O as the external interval tree but
// with a much smaller index and more effective bulk data movement.

#include <iostream>

#include "common/bench_common.h"
#include "index/bbio_tree.h"
#include "index/compact_interval_tree.h"
#include "index/span_space_lattice.h"
#include "io/memory_block_device.h"
#include "metacell/source.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const bench::BenchSetup setup = bench::BenchSetup::from_cli(argc, argv);

  std::cout << "== Ablation A1: query I/O across index structures ==\n";
  const core::VolumeU8 volume =
      data::generate_rm_timestep(setup.rm, setup.time_step);
  const auto source = metacell::make_source(volume, 9);
  const auto infos = source->scan();
  const io::DiskModel disk;  // 50 MB/s, 4 KiB blocks, 1 ms settle

  // Compact tree with brick layout on its own device.
  io::MemoryBlockDevice compact_device(disk.block_size);
  io::BlockDevice* compact_ptr = &compact_device;
  const auto built =
      index::CompactTreeBuilder::build(infos, *source, {&compact_ptr, 1});
  const index::CompactIntervalTree& compact = built.trees[0];

  // BBIO external tree + id-ordered store (its data layout).
  io::MemoryBlockDevice bbio_index_device(disk.block_size);
  const index::BbioTree bbio(infos, bbio_index_device);
  io::MemoryBlockDevice store_device(disk.block_size);
  const index::IdOrderStore store(infos, *source, store_device);

  // In-core lattice over the same id-ordered store.
  const index::SpanSpaceLattice lattice(infos, 64);

  const std::uint64_t store_bytes = store_device.size();

  util::Table table({"isovalue", "active MC", "compact (ms)", "bbio (ms)",
                     "lattice (ms)", "linear (ms)", "compact seeks",
                     "bbio seeks"});
  table.set_caption(
      "A1 (modeled I/O per query; in-core index walks cost no I/O)");

  bool compact_wins = true;
  for (const float isovalue : setup.isovalues) {
    // compact
    compact_device.reset_stats();
    std::uint64_t active = 0;
    compact.query(isovalue, compact_device, [&](auto) { ++active; });
    const io::IoStats compact_io = compact_device.stats();

    // bbio: index walk I/O + scattered store reads
    bbio_index_device.reset_stats();
    store_device.reset_stats();
    const auto ids = bbio.query(isovalue, bbio_index_device);
    store.read(ids, store_device, [](auto) {});
    const io::IoStats bbio_io =
        bbio_index_device.stats() + store_device.stats();

    // lattice: in-core query, scattered store reads
    store_device.reset_stats();
    const auto lattice_ids = lattice.query(isovalue);
    store.read(lattice_ids, store_device, [](auto) {});
    const io::IoStats lattice_io = store_device.stats();

    // linear: one sequential scan of the whole store
    io::IoStats linear_io;
    linear_io.read_ops = 1;
    linear_io.bytes_read = store_bytes;
    linear_io.blocks_read = (store_bytes + disk.block_size - 1) / disk.block_size;
    linear_io.seeks = 1;

    if (disk.seconds(compact_io) > disk.seconds(bbio_io) ||
        disk.seconds(compact_io) > disk.seconds(lattice_io) ||
        disk.seconds(compact_io) > disk.seconds(linear_io)) {
      compact_wins = false;
    }

    table.add_row({util::fixed(isovalue, 0), util::with_commas(active),
                   util::fixed(disk.seconds(compact_io) * 1e3, 2),
                   util::fixed(disk.seconds(bbio_io) * 1e3, 2),
                   util::fixed(disk.seconds(lattice_io) * 1e3, 2),
                   util::fixed(disk.seconds(linear_io) * 1e3, 2),
                   util::with_commas(compact_io.seeks),
                   util::with_commas(bbio_io.seeks)});
  }
  std::cout << table.render() << "\n";

  std::cout << "index footprints: compact "
            << util::human_bytes(compact.size_bytes()) << " in-core; bbio "
            << util::human_bytes(bbio.skeleton_bytes()) << " in-core + "
            << util::human_bytes(bbio.on_disk_bytes()) << " on disk; lattice "
            << util::human_bytes(lattice.size_bytes()) << " in-core\n";

  bench::shape_check(
      "compact tree has the lowest modeled query I/O at every isovalue",
      compact_wins);
  bench::shape_check(
      "compact index is smaller than the BBIO on-disk lists by > 10x",
      compact.size_bytes() * 10 < bbio.on_disk_bytes());
  return 0;
}
