// Compositing bench (paper Section 6): "the time of sorting and shuffling
// the frame buffers among various nodes via 10 Gbps InfiniBand doesn't
// cause a noticeable overhead compared to the time it takes to extract and
// render the triangles". Measures both schedules' traffic and modeled time
// across node counts and image sizes, and compares against the extraction
// time of a matching query.

#include <iostream>

#include "common/bench_common.h"
#include "compositing/sort_last.h"
#include "parallel/cost_model.h"
#include "util/rng.h"

namespace {

using namespace oociso;

render::Framebuffer random_frame(std::int32_t size, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  render::Framebuffer fb(size, size);
  for (std::int32_t y = 0; y < size; ++y) {
    for (std::int32_t x = 0; x < size; ++x) {
      if (rng.uniform() < 0.4) {
        fb.plot(x, y, static_cast<float>(rng.uniform(1.0, 100.0)),
                {static_cast<std::uint8_t>(rng.bounded(256)), 128, 128});
      }
    }
  }
  return fb;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oociso;
  bench::BenchSetup setup = bench::BenchSetup::from_cli(argc, argv);
  const parallel::NetworkModel network;  // 10 Gb/s InfiniBand defaults

  std::cout << "== Compositing: direct-send vs binary-swap ==\n";
  util::Table table({"p", "image", "direct bytes", "direct max/node",
                     "direct (ms)", "swap bytes", "swap max/node",
                     "swap (ms)", "rounds"});

  bool swap_scales = true;
  for (const std::size_t p : {2u, 4u, 8u, 16u}) {
    for (const std::int32_t size : {512, 1024}) {
      std::vector<render::Framebuffer> frames;
      for (std::size_t i = 0; i < p; ++i) {
        frames.push_back(random_frame(size, 100 * p + i));
      }
      const auto direct = compositing::direct_send(frames);
      const auto swap = compositing::binary_swap(frames);
      const double direct_ms =
          network.seconds(direct.traffic.rounds, direct.traffic.max_node_bytes) *
          1e3;
      const double swap_ms =
          network.seconds(swap.traffic.rounds, swap.traffic.max_node_bytes) *
          1e3;

      // Binary swap's per-node traffic must stay ~flat in p.
      const std::uint64_t buffer_bytes =
          frames[0].pixel_count() * render::Framebuffer::bytes_per_pixel();
      if (swap.traffic.max_node_bytes > 3 * buffer_bytes) swap_scales = false;

      table.add_row({std::to_string(p), std::to_string(size),
                     util::human_bytes(direct.traffic.bytes_total),
                     util::human_bytes(direct.traffic.max_node_bytes),
                     util::fixed(direct_ms, 2),
                     util::human_bytes(swap.traffic.bytes_total),
                     util::human_bytes(swap.traffic.max_node_bytes),
                     util::fixed(swap_ms, 2),
                     std::to_string(swap.traffic.rounds)});
    }
  }
  std::cout << table.render() << "\n";

  // Compare against a real query's extraction cost at the paper's setting.
  setup.image_size = 512;
  bench::Prepared prepared = bench::prepare_rm(setup, 8);
  pipeline::QueryEngine engine(*prepared.cluster, prepared.prep);
  pipeline::QueryOptions options;
  options.image_width = options.image_height = 512;
  const pipeline::QueryReport report = engine.run(130.0f, options);
  const double extraction =
      report.completion_seconds() - report.composite_model_seconds;
  std::cout << "query iso=130 on 8 nodes: extraction+render "
            << util::human_seconds(extraction) << ", compositing "
            << util::human_seconds(report.composite_model_seconds) << " ("
            << util::fixed(100.0 * report.composite_model_seconds /
                               report.completion_seconds(),
                           1)
            << "% of completion)\n";

  bench::shape_check(
      "binary-swap per-node traffic stays ~constant as p grows",
      swap_scales);
  bench::shape_check(
      "compositing is a small fraction of query completion (< 25%)",
      report.composite_model_seconds < 0.25 * report.completion_seconds());
  return 0;
}
