// Ablation A2: load balance of the paper's per-metacell brick striping
// versus the range-space partition of Zhang, Bajaj & Blanke (2001), the
// scheme Section 2 criticizes: with range partitioning, all metacells of
// one span-space matrix entry land on one processor, so an isovalue that
// activates few heavy entries produces arbitrary imbalance. Brick striping
// balances per isovalue by construction.

#include <iostream>

#include "common/bench_common.h"
#include "index/range_partition.h"
#include "metacell/source.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const bench::BenchSetup setup = bench::BenchSetup::from_cli(argc, argv);

  std::cout << "== Ablation A2: brick striping vs range-space partition ==\n";
  const core::VolumeU8 volume =
      data::generate_rm_timestep(setup.rm, setup.time_step);
  const auto source = metacell::make_source(volume, 9);
  const auto infos = source->scan();

  for (const std::uint32_t p : {4u, 8u}) {
    // Striping: per-node active counts from the striped trees.
    parallel::ClusterConfig cluster_config;
    cluster_config.node_count = p;
    cluster_config.in_memory = true;
    parallel::Cluster cluster(cluster_config);
    const pipeline::PreprocessResult prep =
        pipeline::preprocess(*source, cluster);

    const index::RangePartition range_partition(infos, p);

    util::Table table({"isovalue", "stripe imbalance %", "range imbalance %",
                       "stripe max/node", "range max/node"});
    table.set_caption("A2 (p = " + std::to_string(p) + ")");

    double stripe_worst = 0.0;
    double range_worst = 0.0;
    for (const float isovalue : setup.isovalues) {
      std::vector<std::uint64_t> stripe_counts;
      for (std::size_t d = 0; d < p; ++d) {
        stripe_counts.push_back(
            prep.trees[d]
                .query(isovalue, cluster.disk(d), [](auto) {})
                .active_metacells);
      }
      const auto range_counts =
          range_partition.active_per_processor(infos, isovalue);

      std::uint64_t total = 0;
      for (const auto count : stripe_counts) total += count;
      if (total < 100) continue;  // too small to judge balance

      const double stripe_imbalance = util::imbalance(stripe_counts);
      const double range_imbalance = util::imbalance(range_counts);
      stripe_worst = std::max(stripe_worst, stripe_imbalance);
      range_worst = std::max(range_worst, range_imbalance);

      table.add_row(
          {util::fixed(isovalue, 0),
           util::fixed(100.0 * stripe_imbalance, 2),
           util::fixed(100.0 * range_imbalance, 2),
           util::with_commas(*std::max_element(stripe_counts.begin(),
                                               stripe_counts.end())),
           util::with_commas(*std::max_element(range_counts.begin(),
                                               range_counts.end()))});
    }
    std::cout << table.render() << "\n";

    // The worst-case striping gap is one metacell per brick on the query
    // path, i.e. an imbalance fraction that scales with p over the active
    // count; 0.4% x p admits that at bench scale (paper scale: sub-percent).
    const double stripe_tolerance = 0.004 * p;
    bench::shape_check(
        "p=" + std::to_string(p) + ": striping stays within " +
            util::fixed(100.0 * stripe_tolerance, 1) +
            "% imbalance at every isovalue (worst " +
            util::fixed(100.0 * stripe_worst, 2) + "%)",
        stripe_worst < stripe_tolerance);
    bench::shape_check(
        "p=" + std::to_string(p) +
            ": range partition is at least 5x worse at its worst isovalue (" +
            util::fixed(100.0 * range_worst, 1) + "%)",
        range_worst > 5.0 * std::max(stripe_worst, 1e-9));
  }
  return 0;
}
