// Concurrent serving benchmark: the paper's isovalue sweep replayed as
// simultaneous client requests against a QueryServer. Pass 1 runs on cold
// per-node pools (concurrent queries single-flight their overlapping
// reads), pass 2 repeats the sweep warm. Reported per pass: wall time,
// physical read_ops, and the pool hit/miss/wait ledger; shape checks pin
// the serving-layer claims — bit-identical results, dedup below the
// logical fetch count, and a strictly cheaper warm pass.
//
// Extra flags (on top of the common ones in bench_common.h):
//   --concurrency Q    queries admitted at once (default 8)
//   --cache-blocks M   per-node pool frames (default 16384)
//   --passes N         sweep repetitions; pass 2+ is warm (default 2)
//   --dead-node N      kill node N's store mid-run: its device serves
//                      --die-after reads, then fails permanently. With
//                      --replication 2+ the sweep completes bit-identical
//                      through brick-granular failover (reported degraded);
//                      the per-pass served_read_ops JSON shows how the dead
//                      node's traffic spreads over the survivors.
//   --die-after R      reads the dead node's store serves before dying
//                      (default 256; 0 = dead from the first read)
// --inject-faults applies at the cluster level, under the pools, and is
// mutually exclusive with --dead-node.
//
// With --levels N (N > 1) the store gains N-1 coarse mip levels and the
// bench appends a progressive-refinement A/B after the serve passes: per
// isovalue it times the flat query cold (time-to-first-triangle baseline)
// against a progressive query on cold pools, reporting first-surface
// latency, coarse-level read_ops vs the flat sweep, and final-mesh hash
// identity. The --json document gains a "progressive" section consumed by
// ci/check_progressive.py (DESIGN §16).

#include <cstring>
#include <iostream>

#include "common/bench_common.h"
#include "serve/query_server.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const util::CliArgs args(argc, argv);
  const bench::BenchSetup setup = bench::BenchSetup::from_cli(argc, argv);
  const auto concurrency =
      static_cast<std::size_t>(args.get_int("concurrency", 8));
  const auto cache_blocks =
      static_cast<std::size_t>(args.get_int("cache-blocks", 16384));
  const int passes = static_cast<int>(args.get_int("passes", 2));
  const auto dead_node = args.get_int("dead-node", -1);
  const auto die_after = args.get_int("die-after", 256);
  if (dead_node >= 0 && setup.inject_faults.has_value()) {
    std::cerr << "--dead-node and --inject-faults are mutually exclusive\n";
    return 2;
  }
  if (dead_node >= 4) {
    std::cerr << "--dead-node must name one of the 4 nodes\n";
    return 2;
  }

  std::cout << "== Concurrent serving: " << setup.isovalues.size()
            << "-isovalue sweep, " << concurrency
            << " queries in flight, 4 nodes, " << cache_blocks
            << " cache frames/node, " << setup.replication
            << "-way placement ==\n";
  if (dead_node >= 0) {
    std::cout << "# chaos: node " << dead_node << "'s store dies after "
              << die_after << " reads\n";
  }

  bench::Prepared prepared = bench::prepare_rm(setup, 4);

  // Serial uncached baseline — the bit-identity reference and the read_ops
  // yardstick the shared pools must beat.
  pipeline::QueryOptions serial_options = setup.query_options();
  serial_options.render = false;
  serial_options.keep_triangles = true;
  // Progressive A/B baseline: the flat query's hash is the bit-identity
  // reference the fully refined progressive mesh must reproduce.
  if (setup.levels > 1) serial_options.compute_mesh_crc = true;
  std::vector<extract::TriangleSoup> reference;
  std::uint64_t serial_read_ops = 0;
  std::vector<double> flat_wall_ms;        // per isovalue, cold
  std::vector<std::uint64_t> flat_read_ops;
  std::vector<std::uint32_t> flat_crc;
  {
    pipeline::QueryEngine engine(*prepared.cluster, prepared.prep);
    util::WallTimer timer;
    for (const float isovalue : setup.isovalues) {
      serial_options.query_id = setup.next_trace_query(
          "serial iso=" + util::fixed(isovalue, 0));
      util::WallTimer query_timer;
      pipeline::QueryReport report = engine.run(isovalue, serial_options);
      flat_wall_ms.push_back(query_timer.seconds() * 1e3);
      std::uint64_t query_ops = 0;
      for (const auto& node : report.nodes) {
        query_ops += node.io.read_ops;
      }
      serial_read_ops += query_ops;
      flat_read_ops.push_back(query_ops);
      flat_crc.push_back(report.mesh_crc.value_or(0));
      reference.push_back(std::move(*report.triangles_out));
    }
    std::cout << "# serial uncached sweep: "
              << util::human_seconds(timer.seconds()) << " wall, "
              << util::with_commas(serial_read_ops) << " read_ops\n";
  }

  serve::ServeOptions serve_options;
  serve_options.max_concurrent_queries = concurrency;
  serve_options.cache_capacity_blocks = cache_blocks;
  serve_options.inject_faults = setup.inject_faults;
  if (dead_node >= 0) {
    // One explicit config per node: the dead node's store serves die_after
    // reads (a global ordinal under the shared pools), then every further
    // read fails permanently. Routed queries hedge onto the survivors.
    serve_options.inject_faults_per_node.resize(4);
    serve_options.inject_faults_per_node[static_cast<std::size_t>(dead_node)]
        .die_after_reads = die_after;
  }
  serve_options.query = setup.query_options();
  serve_options.query.inject_faults.reset();  // cluster-level instead
  serve_options.query.render = false;
  serve_options.query.keep_triangles = true;
  // The server stamps its own per-query pids/process names on this sink;
  // start them well above the serial baseline's to keep the ranges apart.
  serve_options.tracer = setup.tracer.get();
  serve_options.first_query_id = 1000;
  serve::QueryServer server(*prepared.cluster, prepared.prep, serve_options);

  util::Table table({"pass", "wall (s)", "read_ops", "hit blocks",
                     "miss blocks", "wait blocks"});
  table.set_caption("Sweep passes through the shared pools (pass 2+ warm)");

  bool identical = true;
  std::vector<std::uint64_t> pass_read_ops;
  std::vector<bool> pass_degraded;
  std::vector<std::vector<std::uint64_t>> pass_served;
  std::vector<std::vector<pipeline::QueryReport>> pass_reports;
  for (int pass = 0; pass < passes; ++pass) {
    util::WallTimer timer;
    std::vector<pipeline::QueryReport> reports =
        server.serve(setup.isovalues);
    const double wall = timer.seconds();

    std::uint64_t read_ops = 0;
    bool degraded = false;
    std::vector<std::uint64_t> served(4, 0);
    io::CacheReadStats cache;
    for (std::size_t i = 0; i < reports.size(); ++i) {
      for (const auto& node : reports[i].nodes) {
        read_ops += node.io.read_ops;
      }
      degraded = degraded || reports[i].degraded;
      for (std::size_t node = 0; node < served.size(); ++node) {
        served[node] += reports[i].served_io(node).read_ops;
      }
      cache.merge(reports[i].total_cache());
      identical =
          identical && reports[i].triangles_out->size() == reference[i].size() &&
          (reference[i].empty() ||
           std::memcmp(reports[i].triangles_out->triangles().data(),
                       reference[i].triangles().data(),
                       reference[i].size() * sizeof(extract::Triangle)) == 0);
    }
    pass_read_ops.push_back(read_ops);
    pass_degraded.push_back(degraded);
    pass_served.push_back(std::move(served));
    table.add_row({std::to_string(pass) + (degraded ? " (degraded)" : ""),
                   util::fixed(wall, 3), util::with_commas(read_ops),
                   util::with_commas(cache.hit_blocks),
                   util::with_commas(cache.miss_blocks),
                   util::with_commas(cache.wait_blocks)});
    pass_reports.push_back(std::move(reports));
  }
  std::cout << table.render() << "\n";
  if (dead_node >= 0) {
    for (std::size_t pass = 0; pass < pass_served.size(); ++pass) {
      std::cout << "# pass " << pass << " served read_ops per node:";
      for (const std::uint64_t ops : pass_served[pass]) {
        std::cout << ' ' << util::with_commas(ops);
      }
      std::cout << (pass_degraded[pass] ? "  (degraded)" : "") << "\n";
    }
  }

  const io::CacheCounters counters = server.cache_counters();
  std::cout << "# pool ledger: " << util::with_commas(counters.fetches)
            << " fetches = " << util::with_commas(counters.hits) << " hits + "
            << util::with_commas(counters.misses) << " misses + "
            << util::with_commas(counters.waits) << " waits; "
            << util::with_commas(counters.evictions) << " evictions, peak "
            << server.peak_in_flight() << " in flight\n";

  // Progressive refinement A/B (--levels > 1): per isovalue, one
  // progressive query on cold pools against the cold flat baseline above.
  // The coarse levels read raw single-copy records outside the pools, so
  // only the final (level 0) refinement touches the cache.
  std::vector<pipeline::ProgressiveReport> progressive;
  std::vector<double> progressive_wall_ms;
  if (setup.levels > 1) {
    std::cout << "\n== Progressive refinement A/B (--levels " << setup.levels
              << ", " << prepared.prep.hierarchy_levels()
              << " stored coarse level(s)) ==\n";
    util::Table prog_table({"isovalue", "first surface", "first tri",
                            "refined", "flat query", "coarse ops", "flat ops",
                            "final mesh"});
    prog_table.set_caption(
        "Progressive serve vs the flat query (both cold; 'coarse ops' = "
        "coarsest-level read_ops)");
    for (std::size_t i = 0; i < setup.isovalues.size(); ++i) {
      server.drop_caches();  // cold start, matching the serial baseline
      util::WallTimer timer;
      pipeline::ProgressiveReport report =
          server.query_progressive(setup.isovalues[i]);
      const double wall_ms = timer.seconds() * 1e3;
      const pipeline::LevelReport& first = report.levels.front();
      const bool crc_match =
          report.mesh_crc.has_value() && *report.mesh_crc == flat_crc[i];
      prog_table.add_row({util::fixed(setup.isovalues[i], 0),
                          util::fixed(first.elapsed_ms, 1) + " ms",
                          util::with_commas(first.triangles),
                          util::fixed(wall_ms, 1) + " ms",
                          util::fixed(flat_wall_ms[i], 1) + " ms",
                          util::with_commas(first.io.read_ops),
                          util::with_commas(flat_read_ops[i]),
                          crc_match ? "match" : "MISMATCH"});
      progressive_wall_ms.push_back(wall_ms);
      progressive.push_back(std::move(report));
    }
    std::cout << prog_table.render() << "\n";
  }

  if (!setup.json_path.empty()) {
    bench::JsonWriter json;
    json.begin_object()
        .member("bench", "serve")
        .member("schema_version", std::uint64_t{1})
        .member("nodes", std::uint64_t{4})
        .member("concurrency", static_cast<std::uint64_t>(concurrency))
        .member("cache_blocks_per_node",
                static_cast<std::uint64_t>(cache_blocks))
        .member("replication", static_cast<std::uint64_t>(setup.replication))
        .member("dead_node", static_cast<std::int64_t>(dead_node))
        .member("die_after", static_cast<std::int64_t>(die_after))
        .member("serial_read_ops", serial_read_ops);
    if (!progressive.empty()) {
      json.key("progressive").begin_object()
          .member("levels_flag", static_cast<std::int64_t>(setup.levels))
          .member("stored_coarse_levels",
                  static_cast<std::uint64_t>(prepared.prep.hierarchy_levels()));
      json.key("queries").begin_array();
      for (std::size_t i = 0; i < progressive.size(); ++i) {
        const pipeline::ProgressiveReport& report = progressive[i];
        const pipeline::LevelReport& first = report.levels.front();
        json.begin_object()
            .member("isovalue", static_cast<double>(report.isovalue))
            .member("flat_wall_ms", flat_wall_ms[i])
            .member("flat_read_ops", flat_read_ops[i])
            .member("flat_mesh_crc", static_cast<std::uint64_t>(flat_crc[i]))
            .member("first_batch_ms", first.elapsed_ms)
            .member("first_triangles", first.triangles)
            .member("coarsest_read_ops", first.io.read_ops)
            .member("refine_wall_ms", progressive_wall_ms[i])
            .member("finest_level_completed",
                    static_cast<std::int64_t>(report.finest_level_completed))
            .member("mesh_crc",
                    static_cast<std::uint64_t>(report.mesh_crc.value_or(0)))
            .member("crc_match", report.mesh_crc.has_value() &&
                                     *report.mesh_crc == flat_crc[i])
            .member("peak_batch_bytes", report.peak_batch_bytes)
            .member("batches_after_cancel", report.batches_after_cancel);
        json.key("levels").begin_array();
        for (const pipeline::LevelReport& level : report.levels) {
          json.begin_object()
              .member("level", static_cast<std::int64_t>(level.level))
              .member("active_metacells", level.active_metacells)
              .member("triangles", level.triangles)
              .member("read_ops", level.io.read_ops)
              .member("elapsed_ms", level.elapsed_ms)
              .member("mesh_crc", static_cast<std::uint64_t>(level.mesh_crc))
              .end_object();
        }
        json.end_array().end_object();
      }
      json.end_array().end_object();
    }
    json.key("cache").begin_object()
        .member("fetches", counters.fetches)
        .member("hits", counters.hits)
        .member("misses", counters.misses)
        .member("waits", counters.waits)
        .member("evictions", counters.evictions)
        .end_object();
    json.key("passes").begin_array();
    for (std::size_t pass = 0; pass < pass_reports.size(); ++pass) {
      json.begin_object()
          .member("pass", static_cast<std::uint64_t>(pass))
          .member("read_ops", pass_read_ops[pass])
          .member("degraded", static_cast<bool>(pass_degraded[pass]));
      json.key("served_read_ops").begin_array();
      for (const std::uint64_t ops : pass_served[pass]) json.value(ops);
      json.end_array();
      json.key("queries").begin_array();
      for (const pipeline::QueryReport& report : pass_reports[pass]) {
        bench::append_report_json(json, report);
      }
      json.end_array().end_object();
    }
    json.end_array().end_object();
    json.save(setup.json_path);
    std::cout << "# wrote " << setup.json_path << "\n";
  }

  bench::shape_check(
      "every concurrent pass is bit-identical to the serial uncached sweep",
      identical);
  bench::shape_check("pool ledger balances (hits + misses + waits == fetches)",
                     counters.hits + counters.misses + counters.waits ==
                         counters.fetches);
  bench::shape_check(
      "cross-query dedup: physical misses stay below logical fetches",
      counters.misses < counters.fetches);
  if (dead_node < 0) {
    bench::shape_check(
        "warm pass reads strictly fewer blocks than the cold pass",
        passes < 2 || pass_read_ops.back() < pass_read_ops.front());
  } else {
    bool any_degraded = false;
    for (const bool flag : pass_degraded) any_degraded = any_degraded || flag;
    bench::shape_check(
        "dead node trips degraded serving (hedged reads reported)",
        any_degraded);
    bench::shape_check(
        "the dead node's store goes quiet in the final pass",
        pass_served.back()[static_cast<std::size_t>(dead_node)] <=
            pass_served.front()[static_cast<std::size_t>(dead_node)]);
  }
  if (!progressive.empty()) {
    bool first_faster = true;
    bool final_identical = true;
    bool monotone = true;
    std::uint64_t coarsest_ops = 0;
    std::uint64_t flat_ops = 0;
    for (std::size_t i = 0; i < progressive.size(); ++i) {
      const pipeline::ProgressiveReport& report = progressive[i];
      const pipeline::LevelReport& first = report.levels.front();
      first_faster = first_faster && first.elapsed_ms < flat_wall_ms[i];
      final_identical = final_identical &&
                        report.finest_level_completed == 0 &&
                        report.mesh_crc.has_value() &&
                        *report.mesh_crc == flat_crc[i];
      coarsest_ops += first.io.read_ops;
      flat_ops += flat_read_ops[i];
      for (std::size_t l = 1; l < report.levels.size(); ++l) {
        monotone = monotone && report.levels[l].triangles >=
                                   report.levels[l - 1].triangles;
      }
    }
    bench::shape_check(
        "progressive first surface lands before the flat query finishes "
        "at every isovalue",
        first_faster);
    bench::shape_check(
        "fully refined progressive mesh hash matches the flat query at "
        "every isovalue",
        final_identical);
    bench::shape_check(
        "coarsest-level preview I/O stays <= 10% of the flat sweep's "
        "read_ops",
        coarsest_ops * 10 <= flat_ops);
    bench::shape_check(
        "refinement is monotone (triangles never shrink level to level)",
        monotone);
  }
  return 0;
}
