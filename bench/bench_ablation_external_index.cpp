// Ablation A4: the blocked external compact interval tree (paper Section 5,
// "in the unlikely case when the compact interval tree does not fit in main
// memory"). Compares, per isovalue sweep:
//   * in-core tree      — index walk costs no I/O (the paper's primary mode);
//   * external, cold    — every index block read from disk, O(log_B n) per
//                         query;
//   * external, cached  — index blocks served from a BufferPool sized to a
//                         fraction of the index (the M/B trade-off).
// Brick I/O is identical in all three; only the index-walk I/O differs.

#include <iostream>

#include "common/bench_common.h"
#include "index/external_tree.h"
#include "io/buffer_pool.h"
#include "io/memory_block_device.h"
#include "metacell/source.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const bench::BenchSetup setup = bench::BenchSetup::from_cli(argc, argv);

  std::cout << "== Ablation A4: in-core vs blocked external index ==\n";
  const core::VolumeU8 volume =
      data::generate_rm_timestep(setup.rm, setup.time_step);
  const auto source = metacell::make_source(volume, 9);
  const auto infos = source->scan();
  const io::DiskModel disk;

  io::MemoryBlockDevice brick_device(disk.block_size);
  io::BlockDevice* brick_ptr = &brick_device;
  const auto built =
      index::CompactTreeBuilder::build(infos, *source, {&brick_ptr, 1});
  const index::CompactIntervalTree& in_core = built.trees[0];

  // Small index blocks so the blocked structure has real depth at bench
  // scale (a real float-field deployment would use the disk block size).
  const std::uint32_t index_block = 512;
  io::MemoryBlockDevice index_device(index_block);
  const index::ExternalCompactTree external =
      index::ExternalCompactTree::build(in_core, index_device, index_block);

  std::cout << "index: in-core " << util::human_bytes(in_core.size_bytes())
            << "; external " << external.build_stats().blocks << " blocks x "
            << index_block << " B ("
            << util::human_bytes(external.build_stats().bytes_written)
            << " on disk), block depth "
            << external.build_stats().max_block_depth << " vs node height "
            << in_core.height() << "\n";

  // Pool sized to 3/4 of the index: a realistic "index partially fits"
  // configuration that still holds one walk's working set (the root node
  // owns ~n/2 bricks, so the root index block alone spans several frames;
  // a pool smaller than root + path blocks would LRU-thrash every walk).
  const auto pool_capacity = std::max<std::size_t>(
      4, static_cast<std::size_t>(external.build_stats().bytes_written * 3 /
                                  4 / index_block));
  io::BufferPool pool(index_device, pool_capacity);

  util::Table table({"isovalue", "in-core blocks", "external cold blocks",
                     "external cached blocks", "cold index I/O (ms)"});
  table.set_caption("A4 (index-walk block reads per query)");

  bool cold_logarithmic = true;
  bool cache_helps = false;
  for (const float isovalue : setup.isovalues) {
    std::uint64_t cold_reads = 0;
    index_device.reset_stats();
    (void)external.plan(isovalue, index_device, &cold_reads);
    const double cold_ms = disk.seconds(index_device.stats()) * 1e3;
    if (cold_reads > external.build_stats().max_block_depth) {
      cold_logarithmic = false;
    }

    // Warm the pool with one walk, then measure the cached walk.
    (void)external.plan(isovalue, pool, nullptr);
    const auto misses_before = pool.misses();
    std::uint64_t cached_fetches = 0;
    (void)external.plan(isovalue, pool, &cached_fetches);
    const std::uint64_t cached_device_reads = pool.misses() - misses_before;
    if (cached_device_reads < cold_reads) cache_helps = true;

    table.add_row({util::fixed(isovalue, 0), "0",
                   util::with_commas(cold_reads),
                   util::with_commas(cached_device_reads),
                   util::fixed(cold_ms, 3)});
  }
  std::cout << table.render() << "\n";

  bench::shape_check(
      "cold external walks read at most log_B(n) blocks (the block depth)",
      cold_logarithmic);
  bench::shape_check("a partial block cache absorbs repeated index walks",
                     cache_helps);
  bench::shape_check(
      "external plans equal in-core plans (spot-checked at iso 110)",
      [&] {
        const auto a = in_core.plan(110.0f);
        const auto b = external.plan(110.0f, index_device);
        return a.scans.size() == b.scans.size() &&
               a.nodes_visited == b.nodes_visited;
      }());
  return 0;
}
