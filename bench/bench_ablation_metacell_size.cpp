// Ablation A3: metacell size sweep. The paper fixes 9x9x9 samples (a small
// multiple of the disk block); this ablation shows the trade-off that
// choice sits on:
//   * small metacells  -> more metacells, larger index, more per-brick I/O
//     overhead, but tighter active sets (less wasted triangulation);
//   * large metacells  -> smaller index, bulkier reads, but each active
//     metacell drags in more inactive cells (wasted CPU) and culling
//     saves less.

#include <iostream>

#include "common/bench_common.h"
#include "metacell/source.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const bench::BenchSetup setup = bench::BenchSetup::from_cli(argc, argv);

  std::cout << "== Ablation A3: metacell size (samples per side) ==\n";
  const core::VolumeU8 volume =
      data::generate_rm_timestep(setup.rm, setup.time_step);

  util::Table table({"k", "record B", "metacells", "kept", "culled %",
                     "index", "bricks", "avg I/O (s)", "avg triangulate (s)",
                     "avg MTri/s"});
  table.set_caption("A3 (averages over the isovalue sweep)");

  struct Row {
    std::int32_t k;
    double culled;
    std::uint64_t index_bytes;
    double mtri;
  };
  std::vector<Row> rows;

  for (const std::int32_t k : {5, 9, 17}) {
    parallel::ClusterConfig cluster_config;
    cluster_config.node_count = 1;
    cluster_config.in_memory = true;
    parallel::Cluster cluster(cluster_config);

    const auto source = metacell::make_source(volume, k);
    pipeline::PreprocessConfig config;
    config.samples_per_side = k;
    const pipeline::PreprocessResult prep =
        pipeline::preprocess(*source, cluster, config);

    pipeline::QueryEngine engine(cluster, prep);
    pipeline::QueryOptions options;
    options.render = false;

    double io_seconds = 0.0;
    double triangulate_seconds = 0.0;
    double mtri = 0.0;
    int counted = 0;
    for (const float isovalue : setup.isovalues) {
      const pipeline::QueryReport report = engine.run(isovalue, options);
      if (report.total_triangles() == 0) continue;
      io_seconds += report.times.max_phase(parallel::Phase::kAmcRetrieval);
      triangulate_seconds +=
          report.times.max_phase(parallel::Phase::kTriangulation);
      mtri += report.mtri_per_second();
      ++counted;
    }
    const double n = std::max(counted, 1);
    rows.push_back(Row{k, prep.culled_fraction(), prep.index_bytes(),
                       mtri / n});
    table.add_row({std::to_string(k),
                   util::with_commas(metacell::record_size(prep.kind, k)),
                   util::with_commas(prep.total_metacells),
                   util::with_commas(prep.kept_metacells),
                   util::fixed(100.0 * prep.culled_fraction(), 1),
                   util::human_bytes(prep.index_bytes()),
                   util::human_bytes(prep.bytes_written),
                   util::fixed(io_seconds / n, 3),
                   util::fixed(triangulate_seconds / n, 3),
                   util::fixed(mtri / n, 2)});
  }
  std::cout << table.render() << "\n";

  bench::shape_check("smaller metacells cull a larger fraction",
                     rows[0].culled > rows[1].culled &&
                         rows[1].culled > rows[2].culled);
  bench::shape_check("larger metacells shrink the index",
                     rows[0].index_bytes > rows[1].index_bytes &&
                         rows[1].index_bytes > rows[2].index_bytes);
  return 0;
}
