// Table 7 reproduction: distribution of GENERATED TRIANGLES across the
// four nodes for the isovalue sweep. Triangle counts are balanced because
// the active metacells are striped per brick and triangle yield per
// metacell is statistically uniform across a brick's stripe.

#include <iostream>

#include "common/bench_common.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const bench::BenchSetup setup = bench::BenchSetup::from_cli(argc, argv);

  std::cout << "== Table 7: triangle distribution across 4 nodes ==\n";
  bench::Prepared prepared = bench::prepare_rm(setup, /*nodes=*/4);
  const auto reports = bench::run_sweep(prepared, setup, /*render=*/false);

  util::Table table({"isovalue", "node 0", "node 1", "node 2", "node 3",
                     "total", "imbalance %"});
  table.set_caption("Table 7 (triangles per node)");
  double worst_imbalance = 0.0;
  for (const auto& report : reports) {
    std::vector<std::uint64_t> per_node;
    for (const auto& node : report.nodes) per_node.push_back(node.triangles);
    const double imbalance = util::imbalance(per_node);
    if (report.total_triangles() >= 10000) {
      worst_imbalance = std::max(worst_imbalance, imbalance);
    }
    table.add_row({util::fixed(report.isovalue, 0),
                   util::with_commas(per_node[0]),
                   util::with_commas(per_node[1]),
                   util::with_commas(per_node[2]),
                   util::with_commas(per_node[3]),
                   util::with_commas(report.total_triangles()),
                   util::fixed(100.0 * imbalance, 2)});
  }
  std::cout << table.render() << "\n";

  bench::shape_check(
      "triangle counts are balanced within 5% on every isovalue "
      "(worst: " + util::fixed(100.0 * worst_imbalance, 2) + "%)",
      worst_imbalance < 0.05);
  const bench::JsonRun runs[] = {{4, prepared, reports}};
  bench::write_bench_json(setup.json_path, "table7_triangle_distribution",
                          setup, runs);
  return 0;
}
