// Table 8 reproduction: the time-varying case. Sixteen consecutive RM time
// steps (paper: 180-195) are preprocessed, all their compact interval trees
// held in core together, and each step queried at isovalue 70 on a
// four-node configuration. Each row reports the step's active metacells,
// triangles, four-node execution time, and the triangle rate.

#include <iostream>

#include "common/bench_common.h"
#include "pipeline/timevarying.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const util::CliArgs args(argc, argv);
  const bench::BenchSetup setup = bench::BenchSetup::from_cli(argc, argv);
  const int first_step = static_cast<int>(args.get_int("first-step", 180));
  const int step_count = static_cast<int>(args.get_int("steps", 16));
  const float isovalue = static_cast<float>(args.get_double("iso", 70.0));

  std::cout << "== Table 8: time-varying case, steps " << first_step << "-"
            << first_step + step_count - 1 << ", isovalue " << isovalue
            << ", 4 nodes ==\n";

  util::TempDir storage("oociso-table8");
  parallel::ClusterConfig cluster_config;
  cluster_config.node_count = 4;
  if (setup.file_backed) cluster_config.storage_dir = storage.path();
  else cluster_config.in_memory = true;
  parallel::Cluster cluster(cluster_config);

  data::RmConfig rm = setup.rm;
  pipeline::TimeVaryingEngine engine(cluster, [&rm](int step) {
    return data::AnyVolume(data::generate_rm_timestep(rm, step));
  });

  util::WallTimer preprocess_timer;
  engine.preprocess_steps(first_step, step_count);
  const double preprocess_seconds = preprocess_timer.seconds();
  std::cout << "# preprocessed " << step_count << " steps in "
            << util::human_seconds(preprocess_seconds)
            << "; total in-core index "
            << util::human_bytes(engine.total_index_bytes()) << "\n";

  util::Table table({"time step", "active MC", "triangles", "time (s)",
                     "MTri/s"});
  table.set_caption("Table 8 (per-step query at isovalue " +
                    util::fixed(isovalue, 0) + ")");

  const pipeline::QueryOptions options = setup.query_options();
  std::vector<std::uint64_t> triangle_series;
  std::vector<pipeline::QueryReport> reports;  // kept for --json
  for (int step = first_step; step < first_step + step_count; ++step) {
    pipeline::QueryReport report = engine.query(step, isovalue, options);
    triangle_series.push_back(report.total_triangles());
    table.add_row({std::to_string(step),
                   util::with_commas(report.total_active_metacells()),
                   util::with_commas(report.total_triangles()),
                   util::fixed(report.completion_seconds(), 3),
                   util::fixed(report.mtri_per_second(), 2)});
    if (!setup.json_path.empty()) reports.push_back(std::move(report));
  }
  std::cout << table.render() << "\n";

  // ---- warm vs cold through the shared per-node pools ---------------------
  // Each step is queried twice back to back through the cluster's shared
  // brick caches: the first (cold) pass faults its blocks in, the repeat
  // runs warm — the interactive-session pattern a time-varying browser
  // produces when the user scrubs back and forth. Per-query inject_faults
  // cannot compose with the pools, so the cached A/B always runs clean.
  const auto cache_blocks = static_cast<std::size_t>(
      args.get_int("cache-blocks", 16384));
  engine.enable_shared_cache(cache_blocks);
  pipeline::QueryOptions cached = options;
  cached.inject_faults.reset();

  util::Table cache_table({"time step", "cold read_ops", "warm read_ops",
                           "warm hits", "cold time (s)", "warm time (s)"});
  cache_table.set_caption(
      "Warm vs cold per-step query through the shared brick cache (" +
      std::to_string(cache_blocks) + " frames/node)");
  const auto total_read_ops = [](const pipeline::QueryReport& report) {
    std::uint64_t ops = 0;
    for (const auto& node : report.nodes) ops += node.io.read_ops;
    return ops;
  };
  std::uint64_t cold_ops_total = 0;
  std::uint64_t warm_ops_total = 0;
  bool warm_identical = true;
  std::vector<pipeline::QueryReport> cold_reports;
  std::vector<pipeline::QueryReport> warm_reports;
  for (std::size_t i = 0; i < static_cast<std::size_t>(step_count); ++i) {
    const int step = first_step + static_cast<int>(i);
    pipeline::QueryReport cold = engine.query(step, isovalue, cached);
    pipeline::QueryReport warm = engine.query(step, isovalue, cached);
    warm_identical =
        warm_identical &&
        warm.total_triangles() == cold.total_triangles() &&
        warm.total_triangles() == triangle_series[i] &&
        warm.total_active_metacells() == cold.total_active_metacells();
    cold_ops_total += total_read_ops(cold);
    warm_ops_total += total_read_ops(warm);
    cache_table.add_row({std::to_string(step),
                         util::with_commas(total_read_ops(cold)),
                         util::with_commas(total_read_ops(warm)),
                         util::with_commas(warm.total_cache().hit_blocks),
                         util::fixed(cold.completion_seconds(), 3),
                         util::fixed(warm.completion_seconds(), 3)});
    if (!setup.json_path.empty()) {
      cold_reports.push_back(std::move(cold));
      warm_reports.push_back(std::move(warm));
    }
  }
  std::cout << cache_table.render() << "\n";
  std::cout << "# cache totals: cold " << util::with_commas(cold_ops_total)
            << " read_ops -> warm " << util::with_commas(warm_ops_total)
            << " read_ops ("
            << util::fixed(cold_ops_total > 0
                               ? 100.0 * (1.0 - static_cast<double>(
                                                    warm_ops_total) /
                                                    static_cast<double>(
                                                        cold_ops_total))
                               : 0.0,
                           1)
            << "% fewer)\n";

  if (!setup.json_path.empty()) {
    // Per-step document: the shared per-query schema, keyed by time step.
    bench::JsonWriter json;
    json.begin_object()
        .member("bench", "table8_time_varying")
        .member("schema_version", std::uint64_t{1})
        .member("isovalue", static_cast<double>(isovalue))
        .member("first_step", static_cast<std::int64_t>(first_step))
        .member("steps", static_cast<std::int64_t>(step_count))
        .member("nodes", std::uint64_t{4})
        .member("total_index_bytes",
                std::uint64_t{engine.total_index_bytes()})
        .member("preprocess_s", preprocess_seconds);
    json.key("queries").begin_array();
    for (std::size_t i = 0; i < reports.size(); ++i) {
      json.begin_object().member(
          "time_step", static_cast<std::int64_t>(first_step) +
                           static_cast<std::int64_t>(i));
      json.key("report");
      bench::append_report_json(json, reports[i]);
      json.end_object();
    }
    json.end_array();
    // The cached A/B: per step, the cold fault-in pass and the warm repeat
    // (full reports, so read_ops and the cache block counters are both
    // machine-readable for the EXPERIMENTS.md delta).
    json.member("cache_blocks_per_node",
                static_cast<std::uint64_t>(cache_blocks));
    json.key("cache_passes").begin_array();
    for (std::size_t i = 0; i < cold_reports.size(); ++i) {
      json.begin_object().member(
          "time_step", static_cast<std::int64_t>(first_step) +
                           static_cast<std::int64_t>(i));
      json.member("cold_read_ops", total_read_ops(cold_reports[i]));
      json.member("warm_read_ops", total_read_ops(warm_reports[i]));
      json.key("cold");
      bench::append_report_json(json, cold_reports[i]);
      json.key("warm");
      bench::append_report_json(json, warm_reports[i]);
      json.end_object();
    }
    json.end_array().end_object();
    json.save(setup.json_path);
    std::cout << "# wrote " << setup.json_path << "\n";
  }

  // Shape: the whole multi-step index stays tiny (paper: 1.6 MB for 270
  // full-resolution steps), and the active set evolves smoothly across
  // consecutive steps (temporal coherence).
  bench::shape_check(
      "multi-step in-core index stays small (< 1 MiB here; paper: 1.6 MB "
      "for 270 full-scale steps)",
      engine.total_index_bytes() < (1u << 20));
  bool smooth = true;
  for (std::size_t i = 1; i < triangle_series.size(); ++i) {
    const double a = static_cast<double>(triangle_series[i - 1]);
    const double b = static_cast<double>(triangle_series[i]);
    if (a > 0 && (b > 1.35 * a || b < 0.65 * a)) smooth = false;
  }
  bench::shape_check(
      "triangle counts vary smoothly across consecutive steps (<35% jumps)",
      smooth);
  bench::shape_check(
      "warm repeat through the shared cache reads strictly fewer blocks "
      "than the cold pass",
      warm_ops_total < cold_ops_total);
  bench::shape_check(
      "warm-cache results identical to cold and uncached runs "
      "(triangles and active metacells)",
      warm_identical);
  return 0;
}
