// Preprocessing-cost bench. The paper reports ~30 minutes to preprocess one
// 7.5 GB RM time step on one node (~4.2 MB/s end to end, dominated by its
// disk). This bench measures both preprocessing paths over a size sweep:
//   * in-memory  — volume resident, one pass (the tests' path);
//   * out-of-core — slab-streamed scan + bounded-memory arrange
//                   (pipeline/ooc_preprocess.h), the deployable path.
// It also verifies the two produce identical layouts.

#include <filesystem>
#include <iostream>

#include "common/bench_common.h"
#include "data/raw_io.h"
#include "metacell/source.h"
#include "pipeline/ooc_preprocess.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const util::CliArgs args(argc, argv);
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 4));

  std::cout << "== Preprocessing throughput (RM-analog, " << nodes
            << " node disks) ==\n";
  util::Table table({"dims", "raw", "kept MC", "in-mem (s)", "in-mem MB/s",
                     "ooc scan (s)", "ooc arrange (s)", "ooc MB/s",
                     "identical"});

  bool always_identical = true;
  for (const std::int32_t dims : {64, 128, 192, 256}) {
    data::RmConfig rm;
    rm.dims = {dims, dims, dims * 15 / 16};
    const core::VolumeU8 volume = data::generate_rm_timestep(rm, 250);
    const double raw_mb =
        static_cast<double>(volume.sample_count()) / 1e6;

    util::TempDir work("oociso-prep");
    const auto volume_file = work.file("volume.oocv");
    data::write_volume(data::AnyVolume(volume), volume_file);

    // In-memory path.
    std::filesystem::create_directories(work.path() / "mem");
    parallel::ClusterConfig mem_config;
    mem_config.node_count = nodes;
    mem_config.storage_dir = work.path() / "mem";
    parallel::Cluster mem_cluster(mem_config);
    util::WallTimer mem_timer;
    const auto source = metacell::make_source(volume, 9);
    const pipeline::PreprocessResult mem_prep =
        pipeline::preprocess(*source, mem_cluster);
    const double mem_seconds = mem_timer.seconds();

    // Out-of-core path.
    std::filesystem::create_directories(work.path() / "ooc");
    parallel::ClusterConfig ooc_config;
    ooc_config.node_count = nodes;
    ooc_config.storage_dir = work.path() / "ooc";
    parallel::Cluster ooc_cluster(ooc_config);
    const pipeline::OocPreprocessResult ooc = pipeline::preprocess_out_of_core(
        volume_file, ooc_cluster, work.path() / "scratch");

    bool identical = mem_prep.bytes_written == ooc.result.bytes_written;
    for (std::size_t d = 0; identical && d < nodes; ++d) {
      identical = mem_cluster.disk(d).size() == ooc_cluster.disk(d).size();
    }
    always_identical = always_identical && identical;

    const double ooc_seconds = ooc.scan_seconds + ooc.arrange_seconds;
    std::ostringstream dims_text;
    dims_text << rm.dims;
    table.add_row({dims_text.str(),
                   util::human_bytes(volume.sample_count()),
                   util::with_commas(mem_prep.kept_metacells),
                   util::fixed(mem_seconds, 2),
                   util::fixed(raw_mb / mem_seconds, 1),
                   util::fixed(ooc.scan_seconds, 2),
                   util::fixed(ooc.arrange_seconds, 2),
                   util::fixed(raw_mb / ooc_seconds, 1),
                   identical ? "yes" : "NO"});
  }
  std::cout << table.render() << "\n";

  bench::shape_check("out-of-core preprocessing produces the identical "
                     "striped layout at every size",
                     always_identical);
  std::cout << "note: the paper's ~30 min/step at 7.5 GB corresponds to "
               "~4.2 MB/s end-to-end on 2006 hardware; shapes (one "
               "sequential scan + arrange pass) match, absolute rates "
               "depend on the host.\n";
  return 0;
}
