// Figure 5 reproduction: overall extraction+rendering time versus isovalue
// for 1, 2, 4, and 8 processors (one curve per node count). Prints the
// series as a table and as CSV for plotting.

#include <iostream>

#include "common/bench_common.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const bench::BenchSetup setup =
      bench::BenchSetup::from_cli(argc, argv, /*default_dims=*/384);
  const std::size_t node_counts[] = {1, 2, 4, 8};

  std::cout << "== Figure 5: overall time vs isovalue for p = 1, 2, 4, 8 ==\n";

  // completion[p index][isovalue index]
  std::vector<std::vector<double>> completion;
  // With --json the per-p runs must outlive the loop for write_bench_json.
  std::vector<bench::Prepared> kept;
  std::vector<std::vector<pipeline::QueryReport>> kept_reports;
  for (const std::size_t p : node_counts) {
    bench::Prepared prepared = bench::prepare_rm(setup, p);
    auto reports = bench::run_sweep(prepared, setup);
    std::vector<double> row;
    row.reserve(reports.size());
    for (const auto& report : reports) {
      row.push_back(report.completion_seconds());
    }
    completion.push_back(std::move(row));
    if (!setup.json_path.empty()) {
      kept.push_back(std::move(prepared));
      kept_reports.push_back(std::move(reports));
    }
  }
  if (!setup.json_path.empty()) {
    std::vector<bench::JsonRun> runs;
    for (std::size_t i = 0; i < kept.size(); ++i) {
      runs.push_back({node_counts[i], kept[i], kept_reports[i]});
    }
    bench::write_bench_json(setup.json_path, "fig5_overall_time", setup, runs);
  }

  util::Table table(
      {"isovalue", "p=1 (s)", "p=2 (s)", "p=4 (s)", "p=8 (s)"});
  table.set_caption("Figure 5 (overall time per query)");
  for (std::size_t i = 0; i < setup.isovalues.size(); ++i) {
    table.add_row({util::fixed(setup.isovalues[i], 0),
                   util::fixed(completion[0][i], 3),
                   util::fixed(completion[1][i], 3),
                   util::fixed(completion[2][i], 3),
                   util::fixed(completion[3][i], 3)});
  }
  std::cout << table.render() << "\ncsv:\n" << table.render_csv() << "\n";

  // Shape: curves are ordered p=1 above p=2 above p=4 above p=8 at every
  // isovalue with meaningful work. Completion is the pipelined extraction
  // window (max(io, cpu) + fill per node) plus render/composite; every p
  // benefits from the same overlap, and both io and cpu shrink ~linearly
  // with p, so the window does too and the ordering argument is unchanged
  // from the barrier (io + cpu) metric the check was first derived for.
  bool ordered = true;
  for (std::size_t i = 0; i < setup.isovalues.size(); ++i) {
    if (completion[0][i] < 0.01) continue;  // nearly-empty isovalue
    for (std::size_t p = 1; p < 4; ++p) {
      if (completion[p][i] >= completion[p - 1][i]) ordered = false;
    }
  }
  bench::shape_check(
      "more processors means strictly lower time at every isovalue",
      ordered);
  return 0;
}
