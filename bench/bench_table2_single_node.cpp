// Table 2 reproduction: single-node out-of-core isosurface extraction and
// rendering on the RM-analog dataset, isovalues 10..210 step 20.
//
// Paper's observations this bench reproduces in shape:
//   * triangle counts vary strongly (paper: 100M..650M at full scale);
//   * AMC retrieval I/O time is linear in the data retrieved (paper:
//     ~50 MB/s effective);
//   * triangulation dominates the pipeline;
//   * overall rate of ~4 MTri/s at full scale on the paper's CPU (absolute
//     rates here depend on the host; the table prints the measured value).

#include <iostream>

#include "common/bench_common.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const bench::BenchSetup setup = bench::BenchSetup::from_cli(argc, argv);

  std::cout << "== Table 2: single-node performance across isovalues ==\n";
  bench::Prepared prepared = bench::prepare_rm(setup, /*nodes=*/1);
  const auto reports = bench::run_sweep(prepared, setup);
  bench::print_nodes_table("Table 2 (1 node)", setup, prepared, reports);
  const bench::JsonRun runs[] = {{1, prepared, reports}};
  bench::write_bench_json(setup.json_path, "table2_single_node", setup, runs);

  // Table 2-specific shape: the preprocessed dataset is roughly half the
  // raw size (paper: 3.828 GB vs 7.5 GB).
  const double ratio = static_cast<double>(prepared.prep.bytes_written) /
                       static_cast<double>(prepared.prep.raw_bytes);
  bench::shape_check(
      "preprocessed bricks are ~40-75% of raw volume size (culling, paper: ~51%)",
      ratio > 0.25 && ratio < 0.85);

  // Triangle counts span a wide range across isovalues.
  std::uint64_t lo = ~0ull;
  std::uint64_t hi = 0;
  for (const auto& report : reports) {
    lo = std::min(lo, report.total_triangles());
    hi = std::max(hi, report.total_triangles());
  }
  bench::shape_check("triangle count varies >3x across the isovalue range",
                     lo > 0 && hi > 3 * lo);

  // The per-node retrieval/triangulation pipeline must actually hide time:
  // at one or more isovalues with real work, the extraction window has to
  // come in measurably (>2%) under the serial io + cpu sum, with nonzero
  // per-node overlap recorded.
  bool overlap_pays = false;
  for (const auto& report : reports) {
    if (report.total_active_metacells() < 50) continue;
    const double serial_sum =
        report.times.max_phase(parallel::Phase::kAmcRetrieval) +
        report.times.max_phase(parallel::Phase::kTriangulation);
    const double window = report.times.extraction_completion_seconds();
    double saved = 0.0;
    for (const auto& node : report.nodes) saved += node.overlap_saved_seconds;
    if (saved > 0.0 && window < serial_sum * 0.98) {
      overlap_pays = true;
      break;
    }
  }
  bench::shape_check(
      "pipelining retrieval with triangulation beats the serial io+cpu sum "
      "at >=1 isovalue",
      overlap_pays);
  return 0;
}
