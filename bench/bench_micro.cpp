// Google-benchmark micro suite for the performance-critical kernels:
// index construction and planning, record decode, marching cubes,
// rasterization, z-compositing, and the noise generator.

#include <benchmark/benchmark.h>

#include <optional>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "data/analytic_fields.h"
#include "data/noise.h"
#include "data/rm_generator.h"
#include "extract/kernel.h"
#include "extract/marching_cubes.h"
#include "extract/mc_tables.h"
#include "index/compact_interval_tree.h"
#include "io/memory_block_device.h"
#include "metacell/source.h"
#include "render/camera.h"
#include "render/rasterizer.h"
#include "util/rng.h"

namespace {

using namespace oociso;

std::vector<metacell::MetacellInfo> random_intervals(std::size_t count,
                                                     std::uint32_t alphabet) {
  util::Xoshiro256 rng(99);
  std::vector<metacell::MetacellInfo> infos;
  infos.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto a = static_cast<core::ValueKey>(rng.bounded(alphabet));
    auto b = static_cast<core::ValueKey>(rng.bounded(alphabet));
    if (a > b) std::swap(a, b);
    if (a == b) b += 1;
    infos.push_back({static_cast<std::uint32_t>(i), {a, b}});
  }
  return infos;
}

/// Tiny controlled source (k=2, u8) for index-only benchmarks.
class MicroSource final : public metacell::MetacellSource {
 public:
  explicit MicroSource(const std::vector<metacell::MetacellInfo>& infos)
      : geometry_({1026, 3, 3}, 2) {
    for (const auto& info : infos) by_id_[info.id] = info.interval;
  }
  [[nodiscard]] const metacell::MetacellGeometry& geometry() const override {
    return geometry_;
  }
  [[nodiscard]] core::ScalarKind kind() const override {
    return core::ScalarKind::kU8;
  }
  [[nodiscard]] std::vector<metacell::MetacellInfo> scan() const override {
    return {};
  }
  void encode(std::uint32_t id, std::vector<std::byte>& out) const override {
    const auto interval = by_id_.at(id);
    out.push_back(std::byte{static_cast<unsigned char>(id)});
    out.push_back(std::byte{static_cast<unsigned char>(id >> 8)});
    out.push_back(std::byte{static_cast<unsigned char>(id >> 16)});
    out.push_back(std::byte{static_cast<unsigned char>(id >> 24)});
    out.push_back(std::byte{static_cast<unsigned char>(interval.vmin)});
    for (int i = 0; i < 8; ++i) {
      out.push_back(std::byte{static_cast<unsigned char>(interval.vmax)});
    }
  }

 private:
  std::map<std::uint32_t, core::ValueInterval> by_id_;
  metacell::MetacellGeometry geometry_;
};

void BM_CompactTreeBuild(benchmark::State& state) {
  const auto infos =
      random_intervals(static_cast<std::size_t>(state.range(0)), 200);
  const MicroSource source(infos);
  for (auto _ : state) {
    io::MemoryBlockDevice device(4096);
    io::BlockDevice* ptr = &device;
    auto built = index::CompactTreeBuilder::build(infos, source, {&ptr, 1});
    benchmark::DoNotOptimize(built.trees[0].entry_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompactTreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CompactTreePlan(benchmark::State& state) {
  const auto infos = random_intervals(50000, 200);
  const MicroSource source(infos);
  io::MemoryBlockDevice device(4096);
  io::BlockDevice* ptr = &device;
  const auto built = index::CompactTreeBuilder::build(infos, source, {&ptr, 1});
  const auto& tree = built.trees[0];
  float isovalue = 0.0f;
  for (auto _ : state) {
    isovalue = isovalue > 199.0f ? 0.0f : isovalue + 7.3f;
    benchmark::DoNotOptimize(tree.plan(isovalue).scans.size());
  }
}
BENCHMARK(BM_CompactTreePlan);

void BM_CompactTreeQueryExecute(benchmark::State& state) {
  const auto infos = random_intervals(50000, 200);
  const MicroSource source(infos);
  io::MemoryBlockDevice device(4096);
  io::BlockDevice* ptr = &device;
  const auto built = index::CompactTreeBuilder::build(infos, source, {&ptr, 1});
  const auto& tree = built.trees[0];
  std::uint64_t total = 0;
  for (auto _ : state) {
    total += tree.query(100.0f, device, [](auto) {}).active_metacells;
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_CompactTreeQueryExecute);

void BM_TriangulateCell(benchmark::State& state) {
  std::array<core::Vec3, 8> corners;
  for (std::size_t i = 0; i < 8; ++i) {
    corners[i] = {static_cast<float>(extract::kCornerOffsets[i][0]),
                  static_cast<float>(extract::kCornerOffsets[i][1]),
                  static_cast<float>(extract::kCornerOffsets[i][2])};
  }
  util::Xoshiro256 rng(3);
  std::array<float, 8> values;
  for (auto& v : values) v = static_cast<float>(rng.bounded(256));
  extract::TriangleSoup soup;
  for (auto _ : state) {
    soup.clear();
    benchmark::DoNotOptimize(
        extract::triangulate_cell(values, corners, 128.0f, soup));
    // rotate values so different MC cases are exercised
    std::rotate(values.begin(), values.begin() + 1, values.end());
  }
}
BENCHMARK(BM_TriangulateCell);

void BM_ExtractMetacell(benchmark::State& state) {
  const auto volume = data::make_gyroid_field({17, 17, 17});
  const metacell::MetacellGeometry geometry(volume.dims(), 9);
  std::vector<std::byte> record;
  metacell::encode_metacell(volume, geometry, 0, record);
  const auto cell =
      metacell::decode_metacell(record, core::ScalarKind::kU8, geometry);
  extract::TriangleSoup soup;
  for (auto _ : state) {
    soup.clear();
    const auto stats = extract::extract_metacell(cell, 128.0f, soup);
    benchmark::DoNotOptimize(stats.triangles);
  }
  state.SetItemsProcessed(state.iterations() * 512);  // cells per metacell
}
BENCHMARK(BM_ExtractMetacell);

void BM_ExtractMetacellPercell(benchmark::State& state) {
  const auto volume = data::make_gyroid_field({17, 17, 17});
  const metacell::MetacellGeometry geometry(volume.dims(), 9);
  std::vector<std::byte> record;
  metacell::encode_metacell(volume, geometry, 0, record);
  const auto cell =
      metacell::decode_metacell(record, core::ScalarKind::kU8, geometry);
  extract::TriangleSoup soup;
  for (auto _ : state) {
    soup.clear();
    const auto stats = extract::extract_metacell_percell(cell, 128.0f, soup);
    benchmark::DoNotOptimize(stats.triangles);
  }
  state.SetItemsProcessed(state.iterations() * 512);  // cells per metacell
}
BENCHMARK(BM_ExtractMetacellPercell);

/// Arg(0..2) -> scalar/sse2/avx2; skipped (not failed) when the host
/// cannot dispatch the requested ISA, so the suite runs everywhere.
std::optional<extract::KernelIsa> bench_isa(benchmark::State& state) {
  const auto isa = static_cast<extract::KernelIsa>(
      static_cast<std::uint8_t>(extract::KernelIsa::kScalar) +
      static_cast<std::uint8_t>(state.range(0)));
  state.SetLabel(std::string(extract::kernel::isa_name(isa)));
  if (!extract::kernel::available(isa)) {
    state.SkipWithError("ISA not available on this CPU");
    return std::nullopt;
  }
  return isa;
}

void BM_ClassifyRow(benchmark::State& state) {
  // The classify primitive in isolation: one long sample row against one
  // isovalue, items/s = samples graded per second. The ratio between the
  // scalar and SIMD labels is the pure lane-width win, before any
  // triangulation amortizes it.
  const auto isa = bench_isa(state);
  if (!isa.has_value()) return;
  const extract::kernel::ClassifyRowFn classify =
      extract::kernel::detail::classify_fn(*isa);
  constexpr std::size_t kSamples = 4096;
  util::Xoshiro256 rng(17);
  std::vector<float> row(kSamples);
  for (float& v : row) v = static_cast<float>(rng.bounded(256));
  std::vector<std::uint64_t> bits((kSamples + 63) / 64);
  for (auto _ : state) {
    classify(row.data(), kSamples, 128.0f, bits.data());
    benchmark::DoNotOptimize(bits.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSamples));
}
BENCHMARK(BM_ClassifyRow)->Arg(0)->Arg(1)->Arg(2);

void BM_ExtractMetacellSimd(benchmark::State& state) {
  // Full metacell extraction with the classify ISA pinned — the
  // end-to-end view of the same A/B (classification is only part of each
  // metacell's work, so expect a smaller ratio than BM_ClassifyRow).
  const auto isa = bench_isa(state);
  if (!isa.has_value()) return;
  const auto volume = data::make_gyroid_field({17, 17, 17});
  const metacell::MetacellGeometry geometry(volume.dims(), 9);
  std::vector<std::byte> record;
  metacell::encode_metacell(volume, geometry, 0, record);
  const auto cell =
      metacell::decode_metacell(record, core::ScalarKind::kU8, geometry);
  extract::TriangleSoup soup;
  const extract::KernelOptions kernel{*isa};
  for (auto _ : state) {
    soup.clear();
    const auto stats = extract::extract_metacell(cell, 128.0f, soup, kernel);
    benchmark::DoNotOptimize(stats.triangles);
  }
  state.SetItemsProcessed(state.iterations() * 512);  // cells per metacell
}
BENCHMARK(BM_ExtractMetacellSimd)->Arg(0)->Arg(1)->Arg(2);

void BM_ExtractVolume(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto volume = data::make_gyroid_field({n, n, n});
  extract::TriangleSoup soup;
  for (auto _ : state) {
    soup.clear();
    const auto stats = extract::extract_volume(volume, 128.0f, soup);
    benchmark::DoNotOptimize(stats.triangles);
  }
  const auto cells = static_cast<std::int64_t>((n - 1) * (n - 1) * (n - 1));
  state.SetItemsProcessed(state.iterations() * cells);
}
BENCHMARK(BM_ExtractVolume)->Arg(17)->Arg(33)->Arg(65);

void BM_ExtractVolumePercell(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto volume = data::make_gyroid_field({n, n, n});
  extract::TriangleSoup soup;
  for (auto _ : state) {
    soup.clear();
    const auto stats = extract::extract_volume_percell(volume, 128.0f, soup);
    benchmark::DoNotOptimize(stats.triangles);
  }
  const auto cells = static_cast<std::int64_t>((n - 1) * (n - 1) * (n - 1));
  state.SetItemsProcessed(state.iterations() * cells);
}
BENCHMARK(BM_ExtractVolumePercell)->Arg(17)->Arg(33)->Arg(65);

void BM_DecodeMetacell(benchmark::State& state) {
  const auto volume = data::make_gyroid_field({17, 17, 17});
  const metacell::MetacellGeometry geometry(volume.dims(), 9);
  std::vector<std::byte> record;
  metacell::encode_metacell(volume, geometry, 0, record);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metacell::decode_metacell(record, core::ScalarKind::kU8, geometry)
            .samples.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(record.size()));
}
BENCHMARK(BM_DecodeMetacell);

void BM_CodecDecodeChunk(benchmark::State& state) {
  // Chunk of encoded metacell records, as the preprocessor writes them —
  // smooth scalar data that byte-shuffle + LZ actually compresses, so the
  // decode loop runs its real mix of matches and literals.
  const auto volume = data::make_gyroid_field({17, 17, 17});
  const metacell::MetacellGeometry geometry(volume.dims(), 9);
  std::vector<std::byte> record;
  metacell::encode_metacell(volume, geometry, 0, record);
  const std::size_t record_size = record.size();
  std::vector<std::byte> raw;
  while (raw.size() < static_cast<std::size_t>(state.range(0))) {
    raw.insert(raw.end(), record.begin(), record.end());
  }
  std::vector<std::byte> encoded;
  const codec::Codec used = codec::encode_chunk(raw, record_size, encoded);
  std::vector<std::byte> out(raw.size());
  for (auto _ : state) {
    codec::decode_chunk(used, encoded, record_size, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(raw.size()));
  state.counters["ratio"] = static_cast<double>(raw.size()) /
                            static_cast<double>(encoded.size());
}
BENCHMARK(BM_CodecDecodeChunk)->Arg(64 << 10)->Arg(1 << 20);

void BM_RasterizeSoup(benchmark::State& state) {
  const auto volume = data::make_sphere_field({32, 32, 32});
  extract::TriangleSoup soup;
  extract::extract_volume(volume, 128.0f, soup);
  const render::Camera camera =
      render::Camera::framing_volume(32, 32, 32, 256, 256);
  render::Framebuffer frame(256, 256);
  render::Rasterizer rasterizer;
  for (auto _ : state) {
    frame.clear();
    benchmark::DoNotOptimize(rasterizer.draw(soup, camera, frame));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(soup.size()));
}
BENCHMARK(BM_RasterizeSoup);

void BM_ZCompositeMerge(benchmark::State& state) {
  render::Framebuffer a(512, 512);
  render::Framebuffer b(512, 512);
  util::Xoshiro256 rng(5);
  for (std::int32_t y = 0; y < 512; ++y) {
    for (std::int32_t x = 0; x < 512; ++x) {
      if (rng.bounded(2)) a.plot(x, y, static_cast<float>(rng.bounded(100)), {1, 2, 3});
      if (rng.bounded(2)) b.plot(x, y, static_cast<float>(rng.bounded(100)), {4, 5, 6});
    }
  }
  for (auto _ : state) {
    render::Framebuffer target = a;
    target.composite_min_depth(b);
    benchmark::DoNotOptimize(target.covered_pixels());
  }
  state.SetItemsProcessed(state.iterations() * 512 * 512);
}
BENCHMARK(BM_ZCompositeMerge);

void BM_NoiseFbm(benchmark::State& state) {
  const data::ValueNoise noise(7);
  float x = 0.0f;
  float sum = 0.0f;
  for (auto _ : state) {
    x += 0.37f;
    sum += noise.fbm(x, 1.3f * x, 0.7f * x, 5);
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_NoiseFbm);

void BM_RmTimestepGeneration(benchmark::State& state) {
  data::RmConfig config;
  config.dims = {64, 64, 60};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        data::generate_rm_timestep(config, 200).sample_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(config.dims.count()));
}
BENCHMARK(BM_RmTimestepGeneration);

}  // namespace

BENCHMARK_MAIN();
