// Table 5 reproduction: 8-node out-of-core isosurface extraction and
// rendering across the paper's isovalue sweep. Data is striped across 8
// per-node local disks during preprocessing; each node queries its own
// compact interval tree with no communication until the final sort-last
// composite. Per-phase times are the max over nodes (BSP completion).

#include <iostream>

#include "common/bench_common.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const bench::BenchSetup setup = bench::BenchSetup::from_cli(argc, argv);

  std::cout << "== Table 5: 8-node performance across isovalues ==\n";
  bench::Prepared prepared = bench::prepare_rm(setup, /*nodes=*/8);
  const auto reports = bench::run_sweep(prepared, setup);
  bench::print_nodes_table("Table 5 (8 nodes)", setup, prepared, reports);
  const bench::JsonRun runs[] = {{8, prepared, reports}};
  bench::write_bench_json(setup.json_path, "table5_eight_nodes", setup, runs);
  return 0;
}
