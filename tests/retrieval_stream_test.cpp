#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "index/compact_interval_tree.h"
#include "index/retrieval_stream.h"
#include "io/memory_block_device.h"
#include "io/serial.h"
#include "io/throttled_block_device.h"
#include "util/rng.h"
#include "util/timer.h"

namespace oociso::index {
namespace {

using metacell::MetacellInfo;

/// Same controlled source as index_test: tiny u8 records whose vmin/vmax
/// match a prescribed interval exactly.
class FakeSource final : public metacell::MetacellSource {
 public:
  explicit FakeSource(std::vector<MetacellInfo> infos)
      : infos_sorted_(std::move(infos)), geometry_({1026, 3, 3}, 2) {
    std::sort(infos_sorted_.begin(), infos_sorted_.end(),
              [](const MetacellInfo& a, const MetacellInfo& b) {
                return a.id < b.id;
              });
    for (const auto& info : infos_sorted_) by_id_[info.id] = info.interval;
  }

  [[nodiscard]] const metacell::MetacellGeometry& geometry() const override {
    return geometry_;
  }
  [[nodiscard]] core::ScalarKind kind() const override {
    return core::ScalarKind::kU8;
  }
  [[nodiscard]] std::vector<MetacellInfo> scan() const override {
    return infos_sorted_;
  }
  void encode(std::uint32_t id, std::vector<std::byte>& out) const override {
    const core::ValueInterval interval = by_id_.at(id);
    io::ByteWriter writer(out);
    writer.put(id);
    writer.put(static_cast<std::uint8_t>(interval.vmin));
    writer.put(static_cast<std::uint8_t>(interval.vmin));
    for (int i = 0; i < 7; ++i) {
      writer.put(static_cast<std::uint8_t>(interval.vmax));
    }
  }

 private:
  std::vector<MetacellInfo> infos_sorted_;
  std::map<std::uint32_t, core::ValueInterval> by_id_;
  metacell::MetacellGeometry geometry_;
};

std::vector<MetacellInfo> random_intervals(std::size_t count,
                                           std::uint32_t alphabet,
                                           std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<MetacellInfo> infos;
  infos.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto a = static_cast<core::ValueKey>(rng.bounded(alphabet));
    auto b = static_cast<core::ValueKey>(rng.bounded(alphabet));
    if (a > b) std::swap(a, b);
    if (a == b) b += 1;
    infos.push_back({static_cast<std::uint32_t>(i), {a, b}});
  }
  return infos;
}

struct Built {
  std::unique_ptr<io::MemoryBlockDevice> device;
  CompactIntervalTree tree;
};

Built build_one(const std::vector<MetacellInfo>& infos) {
  Built built;
  built.device = std::make_unique<io::MemoryBlockDevice>(512);
  const FakeSource source(infos);
  io::BlockDevice* pointer = built.device.get();
  auto result = CompactTreeBuilder::build(infos, source, {&pointer, 1});
  built.tree = std::move(result.trees[0]);
  return built;
}

std::uint32_t record_id(std::span<const std::byte> record) {
  io::ByteReader reader(record);
  return reader.get<std::uint32_t>();
}

std::set<std::uint32_t> brute_force(const std::vector<MetacellInfo>& infos,
                                    core::ValueKey isovalue) {
  std::set<std::uint32_t> ids;
  for (const auto& info : infos) {
    if (info.interval.stabs(isovalue)) ids.insert(info.id);
  }
  return ids;
}

// ---------------------------------------------------------------------------

TEST(RetrievalStream, MatchesCallbackExecuteExactly) {
  const auto infos = random_intervals(3000, 200, 3);
  Built streamed = build_one(infos);
  Built callback = build_one(infos);

  for (std::uint32_t v = 0; v <= 201; v += 7) {
    const auto isovalue = static_cast<core::ValueKey>(v);

    std::vector<std::uint32_t> via_callback;
    const QueryStats reference = callback.tree.query(
        isovalue, *callback.device,
        [&](std::span<const std::byte> record) {
          via_callback.push_back(record_id(record));
        });

    std::vector<std::uint32_t> via_stream;
    RetrievalStream stream = open_stream(streamed.tree, isovalue,
                                         *streamed.device);
    while (std::optional<RecordBatch> batch = stream.next()) {
      EXPECT_EQ(batch->record_size, streamed.tree.record_size());
      for (std::size_t r = 0; r < batch->record_count; ++r) {
        via_stream.push_back(record_id(batch->record(r)));
      }
    }

    // Same records in the same order, same query counters, and — because
    // the stream preserves the galloping read schedule — the same device
    // traffic, so modeled I/O costs are unchanged.
    EXPECT_EQ(via_stream, via_callback) << "isovalue " << v;
    EXPECT_EQ(stream.stats().active_metacells, reference.active_metacells);
    EXPECT_EQ(stream.stats().records_fetched, reference.records_fetched);
    EXPECT_EQ(stream.stats().bricks_scanned, reference.bricks_scanned);
    EXPECT_TRUE(stream.exhausted());
  }
  EXPECT_EQ(streamed.device->stats().read_ops, callback.device->stats().read_ops);
  EXPECT_EQ(streamed.device->stats().blocks_read,
            callback.device->stats().blocks_read);
  EXPECT_EQ(streamed.device->stats().seeks, callback.device->stats().seeks);
}

TEST(RetrievalStream, FindsAllActiveMetacells) {
  const auto infos = random_intervals(1500, 120, 9);
  Built built = build_one(infos);

  for (const float isovalue : {1.0f, 33.0f, 60.5f, 119.0f}) {
    std::set<std::uint32_t> delivered;
    RetrievalStream stream = open_stream(built.tree, isovalue, *built.device);
    while (std::optional<RecordBatch> batch = stream.next()) {
      for (std::size_t r = 0; r < batch->record_count; ++r) {
        delivered.insert(record_id(batch->record(r)));
      }
    }
    EXPECT_EQ(delivered, brute_force(infos, isovalue)) << isovalue;
  }
}

TEST(RetrievalStream, BatchIoAddsUpToDeviceTraffic) {
  const auto infos = random_intervals(2000, 150, 21);
  Built built = build_one(infos);

  const io::IoStats before = built.device->stats();
  RetrievalStream stream = open_stream(built.tree, 75.0f, *built.device);
  io::IoStats batch_sum;
  double batch_seconds = 0.0;
  while (std::optional<RecordBatch> batch = stream.next()) {
    batch_sum += batch->io;
    batch_seconds += batch->io_seconds;
  }
  const io::IoStats device_delta = built.device->stats().since(before);
  EXPECT_EQ(batch_sum.read_ops, device_delta.read_ops);
  EXPECT_EQ(batch_sum.blocks_read, device_delta.blocks_read);
  EXPECT_EQ(batch_sum.bytes_read, device_delta.bytes_read);
  EXPECT_DOUBLE_EQ(batch_seconds, stream.io_wall_seconds());
}

TEST(RetrievalStream, EmptyIndexQueriedThrows) {
  Built built = build_one(random_intervals(50, 40, 5));
  QueryPlan plan = built.tree.plan(20.0f);
  ASSERT_FALSE(plan.scans.empty());
  EXPECT_THROW(RetrievalStream(std::move(plan), core::ScalarKind::kU8,
                               /*record_size=*/0, *built.device),
               std::logic_error);
}

TEST(RetrievalStream, EmptyPlanYieldsNothing) {
  Built built = build_one(random_intervals(50, 40, 5));
  // Isovalue outside every interval: the planner returns no scans.
  RetrievalStream stream = open_stream(built.tree, 1000.0f, *built.device);
  EXPECT_TRUE(stream.exhausted());
  EXPECT_FALSE(stream.next().has_value());
  EXPECT_DOUBLE_EQ(stream.io_wall_seconds(), 0.0);
}

// ---------------------------------------------------------------------------
// The I/O-attribution regression (the bug this stream replaced): time spent
// blocked in a device read is invisible to a thread-CPU clock, so the old
// callback consumer — which timed I/O by re-marking a ThreadCpuTimer around
// the callback — systematically under-reported I/O wall time. The stream
// times each read with a monotonic clock instead.
// ---------------------------------------------------------------------------

TEST(RetrievalStream, IoWallTimeSeesInjectedDeviceDelay) {
  const auto infos = random_intervals(800, 100, 13);
  Built built = build_one(infos);

  constexpr auto kDelay = std::chrono::milliseconds(2);
  io::ThrottledBlockDevice slow(*built.device, kDelay);

  util::ThreadCpuTimer cpu_clock;
  RetrievalStream stream = open_stream(built.tree, 50.0f, slow);
  std::uint64_t records = 0;
  while (std::optional<RecordBatch> batch = stream.next()) {
    records += batch->record_count;
  }
  const double cpu_seconds = cpu_clock.seconds();

  ASSERT_GT(stream.stats().active_metacells, 0u);
  ASSERT_GT(slow.reads(), 0u);
  const double injected =
      static_cast<double>(slow.reads()) *
      std::chrono::duration<double>(kDelay).count();

  // The monotonic measurement must cover every injected sleep...
  EXPECT_GE(stream.io_wall_seconds(), injected);
  // ...while the thread-CPU clock (the old measurement) cannot see it:
  // sleeping consumes no CPU, so it reports far less than the true wall
  // time. Half is a generous bound — the real decode work here is tiny.
  EXPECT_LT(cpu_seconds, injected * 0.5);
  EXPECT_EQ(records, stream.stats().active_metacells);
}

}  // namespace
}  // namespace oociso::index
