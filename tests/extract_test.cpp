#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <map>
#include <numbers>

#include "data/analytic_fields.h"
#include "extract/marching_cubes.h"
#include "extract/mc_tables.h"
#include "extract/mesh.h"
#include "metacell/metacell.h"
#include "metacell/source.h"
#include "util/temp_dir.h"

namespace oociso::extract {
namespace {

using core::Vec3;

const std::array<Vec3, 8> kUnitCorners = [] {
  std::array<Vec3, 8> corners;
  for (std::size_t i = 0; i < 8; ++i) {
    corners[i] = {static_cast<float>(kCornerOffsets[i][0]),
                  static_cast<float>(kCornerOffsets[i][1]),
                  static_cast<float>(kCornerOffsets[i][2])};
  }
  return corners;
}();

// ---------------------------------------------------------------------------
// Table invariants
// ---------------------------------------------------------------------------

TEST(McTables, ComplementSymmetry) {
  // Inverting inside/outside flips no crossed edge: edgeTable[c] == [~c].
  for (unsigned c = 0; c < 256; ++c) {
    EXPECT_EQ(kEdgeTable[c], kEdgeTable[255 - c]) << "case " << c;
  }
}

TEST(McTables, TriTableUsesOnlyCrossedEdges) {
  for (unsigned c = 0; c < 256; ++c) {
    for (std::size_t i = 0; i < 16 && kTriTable[c][i] != -1; ++i) {
      const auto edge = static_cast<unsigned>(kTriTable[c][i]);
      ASSERT_LT(edge, 12u);
      EXPECT_TRUE(kEdgeTable[c] & (1u << edge))
          << "case " << c << " uses un-crossed edge " << edge;
    }
  }
}

TEST(McTables, EveryCrossedEdgeIsUsed) {
  for (unsigned c = 0; c < 256; ++c) {
    std::uint16_t used = 0;
    for (std::size_t i = 0; i < 16 && kTriTable[c][i] != -1; ++i) {
      used |= static_cast<std::uint16_t>(
          1u << static_cast<unsigned>(kTriTable[c][i]));
    }
    EXPECT_EQ(used, kEdgeTable[c]) << "case " << c;
  }
}

TEST(McTables, TriangleCountsMatchLiterature) {
  // 0 triangles only for the two trivial cases; never more than 5.
  for (unsigned c = 0; c < 256; ++c) {
    std::size_t count = 0;
    while (count * 3 < 16 && kTriTable[c][count * 3] != -1) ++count;
    if (c == 0 || c == 255) {
      EXPECT_EQ(count, 0u);
    } else {
      EXPECT_GE(count, 1u) << "case " << c;
      EXPECT_LE(count, 5u) << "case " << c;
    }
  }
}

TEST(McTables, EdgeBitsMatchCornerSignChanges) {
  // Edge e is crossed iff its two corners are on opposite sides.
  for (unsigned c = 0; c < 256; ++c) {
    for (unsigned e = 0; e < 12; ++e) {
      const bool a_in = (c >> static_cast<unsigned>(kEdgeCorners[e][0])) & 1u;
      const bool b_in = (c >> static_cast<unsigned>(kEdgeCorners[e][1])) & 1u;
      const bool crossed = (kEdgeTable[c] >> e) & 1u;
      EXPECT_EQ(crossed, a_in != b_in) << "case " << c << " edge " << e;
    }
  }
}

// ---------------------------------------------------------------------------
// Single-cell triangulation
// ---------------------------------------------------------------------------

TEST(Cell, NoCrossingNoTriangles) {
  TriangleSoup soup;
  EXPECT_EQ(triangulate_cell({0, 0, 0, 0, 0, 0, 0, 0}, kUnitCorners, 128.0f,
                             soup),
            0u);
  EXPECT_EQ(triangulate_cell({255, 255, 255, 255, 255, 255, 255, 255},
                             kUnitCorners, 128.0f, soup),
            0u);
  EXPECT_TRUE(soup.empty());
}

TEST(Cell, SingleCornerGivesOneTriangle) {
  std::array<float, 8> values{};
  values.fill(200.0f);
  values[0] = 0.0f;  // corner v0 below isovalue
  TriangleSoup soup;
  EXPECT_EQ(triangulate_cell(values, kUnitCorners, 100.0f, soup), 1u);
  ASSERT_EQ(soup.size(), 1u);
  // The triangle's vertices sit on the three edges incident to v0, at the
  // midpoint (isovalue 100 is the midpoint of 0..200).
  for (const Vec3& v : {soup.triangles()[0].a, soup.triangles()[0].b,
                        soup.triangles()[0].c}) {
    EXPECT_NEAR(v.x + v.y + v.z, 0.5f, 1e-5f);
  }
}

TEST(Cell, InterpolationPosition) {
  std::array<float, 8> values{};
  values.fill(0.0f);
  values[0] = 100.0f;  // only v0 above... below convention: v0 NOT < iso
  TriangleSoup soup;
  // Isovalue 25: crossing sits at t = 25/100 from v0 along each edge.
  EXPECT_EQ(triangulate_cell(values, kUnitCorners, 25.0f, soup), 1u);
  for (const Vec3& v : {soup.triangles()[0].a, soup.triangles()[0].b,
                        soup.triangles()[0].c}) {
    EXPECT_NEAR(v.x + v.y + v.z, 0.75f, 1e-5f);
  }
}

TEST(Cell, SingleCornerComplementPairsMatch) {
  // Unambiguous complement pairs (one corner in vs seven corners in) must
  // produce the same single triangle. (General complements can legally
  // differ — the classic marching-cubes ambiguity.)
  for (std::size_t corner = 0; corner < 8; ++corner) {
    std::array<float, 8> values{};
    values.fill(90.0f);
    values[corner] = 10.0f;
    std::array<float, 8> flipped;
    for (std::size_t i = 0; i < 8; ++i) flipped[i] = 100.0f - values[i];

    TriangleSoup a;
    TriangleSoup b;
    EXPECT_EQ(triangulate_cell(values, kUnitCorners, 50.0f, a), 1u);
    EXPECT_EQ(triangulate_cell(flipped, kUnitCorners, 50.0f, b), 1u);
    EXPECT_NEAR(a.total_area(), b.total_area(), 1e-5) << "corner " << corner;
  }
}

TEST(Cell, DegenerateEqualValuesAtIsovalue) {
  // All corners exactly at the isovalue: no corner is strictly below, so no
  // geometry — and in particular no crash from zero-length interpolation.
  std::array<float, 8> values{};
  values.fill(50.0f);
  TriangleSoup soup;
  EXPECT_EQ(triangulate_cell(values, kUnitCorners, 50.0f, soup), 0u);
}

// ---------------------------------------------------------------------------
// Volume extraction
// ---------------------------------------------------------------------------

TEST(VolumeExtract, SphereAreaMatchesAnalytic) {
  // The 'distance to center' field's isosurface is a sphere whose radius
  // follows from the quantization; compare areas within a tolerance that
  // admits the mesh's faceting error.
  const std::int32_t n = 64;
  const auto volume = data::make_sphere_field({n, n, n});
  TriangleSoup soup;
  const auto stats = extract_volume(volume, 128.0f, soup);
  EXPECT_GT(stats.triangles, 1000u);
  EXPECT_EQ(stats.triangles, soup.size());

  // value = 255 * (1 - d * 2/sqrt(3)), value 128 -> d ~ 0.2887 of the cube,
  // radius in lattice units = d * (n-1).
  const double radius = (1.0 - 128.0 / 255.0) * std::sqrt(3.0) / 2.0 * (n - 1);
  const double analytic_area = 4.0 * std::numbers::pi * radius * radius;
  EXPECT_NEAR(soup.total_area(), analytic_area, analytic_area * 0.05);
}

TEST(VolumeExtract, BoundsInsideVolume) {
  const auto volume = data::make_gyroid_field({32, 32, 32});
  TriangleSoup soup;
  extract_volume(volume, 128.0f, soup);
  Vec3 lo;
  Vec3 hi;
  ASSERT_TRUE(soup.bounds(lo, hi));
  EXPECT_GE(lo.x, 0.0f);
  EXPECT_LE(hi.x, 31.0f);
  EXPECT_GE(lo.z, 0.0f);
  EXPECT_LE(hi.z, 31.0f);
}

TEST(VolumeExtract, ActiveCellCountsAreConsistent) {
  const auto volume = data::make_gyroid_field({24, 24, 24});
  TriangleSoup soup;
  const auto stats = extract_volume(volume, 100.0f, soup);
  EXPECT_EQ(stats.cells_visited, 23u * 23u * 23u);
  EXPECT_LE(stats.active_cells, stats.cells_visited);
  EXPECT_GE(stats.triangles, stats.active_cells);      // >=1 tri per active
  EXPECT_LE(stats.triangles, stats.active_cells * 5);  // <=5 tris per cell
}

TEST(VolumeExtract, EmptyIsovalueOutsideRange) {
  const auto volume = data::make_sphere_field({16, 16, 16});
  TriangleSoup soup;
  const auto stats = extract_volume(volume, 300.0f, soup);
  EXPECT_EQ(stats.triangles, 0u);
  EXPECT_TRUE(soup.empty());
}

// ---------------------------------------------------------------------------
// Metacell extraction == volume extraction
// ---------------------------------------------------------------------------

TEST(MetacellExtract, MatchesVolumeExtraction) {
  const auto volume = data::make_gyroid_field({25, 25, 25});
  const float isovalue = 128.0f;

  TriangleSoup reference;
  extract_volume(volume, isovalue, reference);

  // Extract via encoded metacells (the out-of-core unit) and compare the
  // triangle multiset through an order-independent checksum.
  const metacell::MetacellGeometry geometry(volume.dims(), 9);
  TriangleSoup via_metacells;
  std::vector<std::byte> bytes;
  for (std::uint32_t id = 0; id < geometry.metacell_count(); ++id) {
    bytes.clear();
    metacell::encode_metacell(volume, geometry, id, bytes);
    const auto cell =
        metacell::decode_metacell(bytes, core::ScalarKind::kU8, geometry);
    extract_metacell(cell, isovalue, via_metacells);
  }

  ASSERT_EQ(via_metacells.size(), reference.size());
  EXPECT_NEAR(via_metacells.total_area(), reference.total_area(), 1e-3);

  auto centroid_sum = [](const TriangleSoup& soup) {
    Vec3 sum{};
    for (const Triangle& tri : soup.triangles()) {
      sum += (tri.a + tri.b + tri.c) / 3.0f;
    }
    return sum;
  };
  const Vec3 a = centroid_sum(reference);
  const Vec3 b = centroid_sum(via_metacells);
  EXPECT_NEAR(a.x, b.x, 0.5f);
  EXPECT_NEAR(a.y, b.y, 0.5f);
  EXPECT_NEAR(a.z, b.z, 0.5f);
}

TEST(MetacellExtract, BorderMetacellEmitsNoDuplicates) {
  // A 14^3 volume tiles into 2^3 metacells with clamped padding; padding
  // cells must NOT produce geometry, so total cells visited across all
  // metacells equals the volume's cell count.
  const auto volume = data::make_sphere_field({14, 14, 14});
  const metacell::MetacellGeometry geometry(volume.dims(), 9);
  std::uint64_t cells = 0;
  std::vector<std::byte> bytes;
  TriangleSoup soup;
  for (std::uint32_t id = 0; id < geometry.metacell_count(); ++id) {
    bytes.clear();
    metacell::encode_metacell(volume, geometry, id, bytes);
    const auto cell =
        metacell::decode_metacell(bytes, core::ScalarKind::kU8, geometry);
    cells += extract_metacell(cell, 128.0f, soup).cells_visited;
  }
  EXPECT_EQ(cells, 13u * 13u * 13u);
}

// ---------------------------------------------------------------------------
// Mesh utilities
// ---------------------------------------------------------------------------

TEST(Mesh, AreaAndAppend) {
  TriangleSoup soup;
  soup.add({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});  // area 0.5
  EXPECT_DOUBLE_EQ(soup.total_area(), 0.5);
  TriangleSoup other;
  other.add({{0, 0, 1}, {2, 0, 1}, {0, 2, 1}});  // area 2
  soup.append(other);
  EXPECT_EQ(soup.size(), 2u);
  EXPECT_DOUBLE_EQ(soup.total_area(), 2.5);
}

TEST(Mesh, EmptyBounds) {
  TriangleSoup soup;
  Vec3 lo;
  Vec3 hi;
  EXPECT_FALSE(soup.bounds(lo, hi));
}

TEST(Mesh, ObjWriterOutput) {
  util::TempDir dir;
  TriangleSoup soup;
  soup.add({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
  const auto path = dir.file("tri.obj");
  write_obj(soup, path);

  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("v 0 0 0"), std::string::npos);
  EXPECT_NE(text.find("f 1 2 3"), std::string::npos);
}

}  // namespace
}  // namespace oociso::extract
